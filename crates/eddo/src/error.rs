//! Error type shared by the EDDO storage idioms.

/// Errors returned by EDDO buffer operations.
///
/// In hardware most of these conditions *stall* rather than fail; in this
/// discrete simulation they surface as errors so a driver can decide what to
/// do (e.g. issue the missing fill and retry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EddoError {
    /// A fill arrived while the buffer had no free credits.
    Full,
    /// A pop/peek arrived while the buffer was empty.
    Empty,
    /// A read/update referenced an index that has not been filled yet.
    /// In hardware this read would stall until the data arrives.
    NotYetFilled {
        /// The requested tile index.
        index: usize,
    },
    /// A read referenced data that was bumped out of an overbooked buffer
    /// and is not currently in the streaming window; the parent must
    /// re-stream it via overwriting fills.
    Bumped {
        /// The requested tile index.
        index: usize,
    },
    /// A shrink asked to retire more elements than are resident.
    ShrinkTooLarge {
        /// Requested number of elements to retire.
        requested: usize,
        /// Current occupancy.
        occupancy: usize,
    },
    /// An overwriting fill was issued while the buffer was not full.
    /// Overwriting fills are only legal on a full buffer (§3.3.2: this is
    /// what prevents fill/OWFill races).
    NotFull,
    /// An overwriting fill was issued before the tile length was declared
    /// via [`crate::Tailor::set_tile_len`].
    TileLenUnknown,
    /// An invalid configuration was supplied (e.g. a FIFO region at least as
    /// large as the whole buffer).
    BadConfig(&'static str),
}

impl core::fmt::Display for EddoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EddoError::Full => write!(f, "buffer is full (no credits available)"),
            EddoError::Empty => write!(f, "buffer is empty"),
            EddoError::NotYetFilled { index } => {
                write!(f, "index {index} has not been filled yet")
            }
            EddoError::Bumped { index } => {
                write!(
                    f,
                    "index {index} was bumped and is not in the streaming window"
                )
            }
            EddoError::ShrinkTooLarge {
                requested,
                occupancy,
            } => write!(
                f,
                "cannot shrink {requested} elements from occupancy {occupancy}"
            ),
            EddoError::NotFull => {
                write!(f, "overwriting fill requires a full buffer")
            }
            EddoError::TileLenUnknown => {
                write!(f, "tile length must be declared before overwriting fills")
            }
            EddoError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for EddoError {}
