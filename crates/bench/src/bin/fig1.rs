//! Fig. 1: tile-occupancy distribution for a fixed large coordinate-space
//! tile size on a high-variability SuiteSparse-style tensor.
//!
//! The paper partitions a SuiteSparse tensor into 51.4 M-element tiles and
//! observes: maximum occupancy (31.6 K) more than three orders of magnitude
//! below the tile size, and a 90th-percentile occupancy more than 15x below
//! the maximum. This binary reproduces those statistics on the synthetic
//! webbase-1M stand-in.
//!
//! Usage: `cargo run --release -p tailors-bench --bin fig1 [scale]`

use tailors_bench::{bar, profile_at, rule, scale_from_args};
use tailors_tensor::stats::{summarize, Histogram};
use tailors_tensor::tiling::RowPanels;

fn main() {
    let scale = scale_from_args();
    let wl = tailors_workloads::by_name("webbase-1M").expect("suite tensor");
    let (scaled, profile) = profile_at(&wl, scale);
    // The paper's 51.4M-element tile size, scaled with the workload.
    let tile_size = (51_400_000.0 * scale) as u64;
    let rows = ((tile_size / profile.ncols().max(1) as u64).max(1)) as usize;
    let panels = RowPanels::new(&profile, rows);
    let occ: Vec<u64> = panels.occupancies().collect();
    let s = summarize(&occ).expect("non-empty tiling");

    println!(
        "Fig. 1 — tile occupancy distribution ({}, scale = {scale})",
        scaled.name
    );
    rule(64);
    println!("uncompressed tile size : {}", panels.tile_size());
    println!("number of tiles        : {}", s.count);
    println!("maximum occupancy      : {}", s.max);
    println!("90th pct occupancy     : {}", s.p90);
    println!("99th pct occupancy     : {}", s.p99);
    println!("median occupancy       : {}", s.median);
    println!(
        "size / max occupancy   : {:.0}x   (paper: >1000x)",
        panels.tile_size() as f64 / s.max.max(1) as f64
    );
    println!(
        "max / 90th pct         : {:.1}x   (paper: >15x)",
        s.max as f64 / s.p90.max(1) as f64
    );
    rule(64);
    println!("histogram (fraction of tiles per occupancy bin):");
    let h = Histogram::new(&occ, 16);
    for ((start, _), frac) in h.iter().zip(h.fractions()) {
        println!("{:>10} | {} {:.1}%", start, bar(frac, 40), 100.0 * frac);
    }
}
