//! Fault tolerance contract: under a deterministic [`FaultPlan`]
//! (injected worker panics, injected latency, forced overload
//! rejections) the runtime must (1) hand every *completed* request a
//! payload bit-identical to a cold, faultless baseline, (2) account for
//! every submission — `completed + rejected + timed_out + faulted ==
//! submitted`, nothing silently lost — and (3) keep its workers alive
//! across every injected panic.

use std::sync::Arc;
use std::time::Duration;

use tailors_serve::{
    FaultPlan, OverloadReason, Reply, RetryPolicy, RuntimeConfig, ServeError, ServiceRuntime,
    SimRequest, SimResponse, SimService, Work,
};
use tailors_sim::{GridMode, MemBudget, Variant};

const SCALE: f64 = 1.0 / 256.0;
const CLIENTS: usize = 4;

/// A smaller cut of the determinism-suite stream: 4 workloads × 3
/// variants, budgets and grids cycled the same way.
fn batch() -> Vec<SimRequest> {
    let names = ["cant", "email-Enron", "p2p-Gnutella31", "roadNet-CA"];
    let variants = [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ];
    names
        .iter()
        .enumerate()
        .flat_map(|(i, name)| {
            variants.into_iter().enumerate().map(move |(j, variant)| {
                let mut req = SimRequest::suite(name, SCALE, variant).expect("suite workload");
                if (i + j) % 2 == 0 {
                    req.budget = MemBudget::bytes(64 << 10);
                }
                if j % 2 == 1 {
                    req.grid = GridMode::Grid2D;
                }
                req
            })
        })
        .collect()
}

fn assert_same_payload(a: &SimResponse, b: &SimResponse, context: &str) {
    assert_eq!(a.name, b.name, "{context}");
    assert_eq!(a.metrics, b.metrics, "{context}: {}", a.name);
    assert_eq!(
        a.metrics.cycles.to_bits(),
        b.metrics.cycles.to_bits(),
        "{context}: {} cycles bits",
        a.name
    );
}

#[test]
fn completed_replies_under_faults_are_bit_identical_and_fully_accounted() {
    let reqs = batch();
    // Cold, faultless, serial ground truth.
    let baseline = SimService::new().submit_batch(&reqs, 1);

    let runtime = Arc::new(ServiceRuntime::new(RuntimeConfig {
        workers: 3,
        mailbox_capacity: 4 * reqs.len(),
        faults: FaultPlan {
            panic_every: Some(5),
            latency_every: Some(3),
            latency_ms: 1,
            ..FaultPlan::none()
        },
        ..RuntimeConfig::default()
    }));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let runtime = Arc::clone(&runtime);
            let reqs = reqs.clone();
            std::thread::spawn(move || {
                let start = client * 7 % reqs.len();
                let outcomes: Vec<(usize, Result<Reply, ServeError>)> = (0..reqs.len())
                    .map(|i| {
                        let idx = (start + i) % reqs.len();
                        (idx, runtime.submit(Work::Sim(reqs[idx].clone())))
                    })
                    .collect();
                outcomes
            })
        })
        .collect();

    let mut completed = 0u64;
    let mut faulted = 0u64;
    for handle in handles {
        for (idx, outcome) in handle.join().expect("client thread") {
            match outcome {
                Ok(Reply::Sim(resp)) => {
                    completed += 1;
                    // The fault plan must be invisible in every payload
                    // that does complete.
                    assert_same_payload(&resp, &baseline[idx], "under faults");
                }
                Ok(Reply::Functional(_)) => panic!("functional reply to a sim request"),
                Err(ServeError::Faulted { panic, .. }) => {
                    assert!(panic, "only injected panics fault this stream");
                    faulted += 1;
                }
                Err(e) => panic!("unexpected outcome: {e}"),
            }
        }
    }

    let submitted = (CLIENTS * reqs.len()) as u64;
    let stats = runtime.stats();
    // Client-side and runtime-side ledgers agree, and they balance.
    assert_eq!(completed + faulted, submitted);
    assert_eq!(stats.submitted, submitted);
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.faulted, faulted);
    assert_eq!(stats.accounted(), stats.submitted);
    // The plan really fired, every panic was isolated, and the pool
    // survived all of them: the panics are a strict subset of requests,
    // and work kept completing afterwards.
    assert!(stats.injected_panics > 0, "fault plan never fired");
    assert_eq!(stats.panics_isolated, stats.injected_panics);
    assert_eq!(stats.injected_latency, submitted / 3);
    assert!(completed > 0);
    let report = runtime.shutdown();
    assert_eq!(report.unserved, 0);
}

#[test]
fn forced_overload_is_typed_retryable_and_retry_recovers() {
    let runtime = ServiceRuntime::new(RuntimeConfig {
        workers: 1,
        faults: FaultPlan {
            reject_every: Some(2),
            ..FaultPlan::none()
        },
        ..RuntimeConfig::default()
    });
    let req = SimRequest::suite("email-Enron", SCALE, Variant::ExTensorP).expect("suite workload");

    // Plain submits see the typed, retryable rejection on the fault
    // cadence (1st submission completes, 2nd is force-rejected).
    runtime.submit(Work::Sim(req.clone())).expect("first");
    let rejected = runtime.submit(Work::Sim(req.clone())).unwrap_err();
    assert!(
        matches!(
            rejected,
            ServeError::Overloaded(OverloadReason::MailboxFull { .. })
        ),
        "{rejected}"
    );
    assert!(rejected.retryable());

    // The retry loop absorbs every forced rejection.
    for _ in 0..4 {
        runtime
            .submit_with_retry(Work::Sim(req.clone()), &RetryPolicy::default())
            .expect("retry must recover from forced overload");
    }
    let stats = runtime.stats();
    assert!(stats.retries > 0, "retries must have been needed");
    assert!(stats.injected_rejects > 0);
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.accounted(), stats.submitted);
}

#[test]
fn injected_latency_against_a_deadline_times_out_with_type() {
    let runtime = ServiceRuntime::new(RuntimeConfig {
        workers: 1,
        faults: FaultPlan {
            latency_every: Some(1),
            latency_ms: 200,
            ..FaultPlan::none()
        },
        ..RuntimeConfig::default()
    });
    let req = SimRequest::suite("cant", SCALE, Variant::ExTensorP).expect("suite workload");
    let deadline = Duration::from_millis(5);
    let e = runtime
        .submit_with_deadline(Work::Sim(req.clone()), Some(deadline))
        .unwrap_err();
    assert_eq!(e, ServeError::Timeout { deadline });
    // The slow worker is still alive: an undeadlined submission rides out
    // the injected latency and completes.
    runtime
        .submit(Work::Sim(req))
        .expect("latency alone must not lose requests");
    let stats = runtime.stats();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.accounted(), stats.submitted);
}

#[test]
fn abrupt_shutdown_refuses_queued_requests_with_typed_errors() {
    // One deliberately slow worker so submissions pile up in the mailbox.
    let runtime = Arc::new(ServiceRuntime::new(RuntimeConfig {
        workers: 1,
        faults: FaultPlan {
            latency_every: Some(1),
            latency_ms: 400,
            ..FaultPlan::none()
        },
        ..RuntimeConfig::default()
    }));
    let req = SimRequest::suite("cant", SCALE, Variant::ExTensorP).expect("suite workload");
    let submitters: Vec<_> = (0..3)
        .map(|_| {
            let runtime = Arc::clone(&runtime);
            let req = req.clone();
            std::thread::spawn(move || runtime.submit(Work::Sim(req)))
        })
        .collect();
    // Let all three enqueue (the worker is asleep in its first injected
    // latency window), then pull the plug.
    std::thread::sleep(Duration::from_millis(100));
    let report = runtime.shutdown_now();

    let mut completed = 0usize;
    let mut refused = 0usize;
    for s in submitters {
        match s.join().expect("submitter thread") {
            Ok(Reply::Sim(_)) => completed += 1,
            Err(ServeError::Shutdown) => refused += 1,
            other => panic!("unexpected shutdown outcome: {other:?}"),
        }
    }
    // Every queued request was refused with the typed error — exactly as
    // many as the report says went unserved — and nothing vanished.
    assert_eq!(refused, report.unserved);
    assert_eq!(completed + refused, 3);
    assert!(refused >= 1, "shutdown_now must have caught queued work");
    let stats = runtime.stats();
    assert_eq!(stats.accounted(), stats.submitted);
    assert_eq!(stats.submitted, 3);
}
