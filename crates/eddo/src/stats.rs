//! Access counters shared by the storage idioms.

/// Operation counters for a storage idiom instance.
///
/// These are the raw activity counts the accelerator model turns into
/// energy: every fill corresponds to a write from the parent level and
/// every read to an access by the child level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Conventional fills (writes of new data at the tail).
    pub fills: u64,
    /// Overwriting fills (streaming writes into the FIFO-managed region).
    pub ow_fills: u64,
    /// Successful reads.
    pub reads: u64,
    /// Reads that failed because the data was bumped or not yet filled.
    pub read_misses: u64,
    /// In-place updates.
    pub updates: u64,
    /// Elements retired by shrinks.
    pub shrunk: u64,
}

impl AccessStats {
    /// Total writes from the parent (fills + overwriting fills) — the
    /// buffer's inbound traffic in elements.
    pub fn parent_traffic(&self) -> u64 {
        self.fills + self.ow_fills
    }

    /// Merges counters from another instance (for aggregating hierarchies).
    pub fn merge(&mut self, other: &AccessStats) {
        self.fills += other.fills;
        self.ow_fills += other.ow_fills;
        self.reads += other.reads;
        self.read_misses += other.read_misses;
        self.updates += other.updates;
        self.shrunk += other.shrunk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_traffic_sums_fill_kinds() {
        let s = AccessStats {
            fills: 3,
            ow_fills: 5,
            ..AccessStats::default()
        };
        assert_eq!(s.parent_traffic(), 8);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = AccessStats {
            fills: 1,
            ow_fills: 2,
            reads: 3,
            read_misses: 4,
            updates: 5,
            shrunk: 6,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            AccessStats {
                fills: 2,
                ow_fills: 4,
                reads: 6,
                read_misses: 8,
                updates: 10,
                shrunk: 12,
            }
        );
    }
}
