//! Offline, API-compatible shim for the subset of `proptest` this workspace
//! uses: the `proptest!` macro, range/tuple/vec/bool strategies,
//! `ProptestConfig::with_cases` and `prop_assert*`.
//!
//! Semantics: each `#[test]` runs `config.cases` times with inputs drawn
//! from its strategies by a deterministic RNG seeded from the test's name,
//! so failures reproduce run-to-run. There is no shrinking — a failing case
//! reports the drawn inputs via the panic message instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and the concrete strategies the shim provides.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value: core::fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Any strategy behind a reference is a strategy.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniformly random booleans (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    /// Uniformly random booleans.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Creates a strategy producing vectors of `element` with a length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the offline suite fast on the
        // single-core CI boxes while still exploring the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from the test's name (FNV-1a) so each
/// property explores a stable input sequence.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Asserts a condition inside a property, reporting the current case on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Declares property-based tests: each `fn name(pat in strategy, ...)` body
/// runs `cases` times against freshly drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal: expands each test fn in a `proptest!` block.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for(::core::stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn vec_strategy_respects_bounds() {
        let s = crate::collection::vec(0u32..10, 2..5);
        let mut rng = crate::rng_for("vec_strategy_respects_bounds");
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn tuple_strategy_samples_each_component() {
        let s = (0usize..3, 10u64..20, -1.0f64..1.0);
        let mut rng = crate::rng_for("tuple");
        let (a, b, c) = s.sample(&mut rng);
        assert!(a < 3);
        assert!((10..20).contains(&b));
        assert!((-1.0..1.0).contains(&c));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple args, trailing comma.
        #[test]
        fn macro_roundtrip(
            mut xs in crate::collection::vec(0u8..4, 1..50),
            flag in crate::bool::ANY,
        ) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
