//! The 22-tensor evaluation suite (paper Table 2) as synthetic workloads.
//!
//! The paper evaluates on SuiteSparse matrices. This crate encodes each
//! tensor's *published characteristics* — dimensions, sparsity (hence nnz),
//! and structural family — and generates a deterministic synthetic stand-in
//! with `tailors-tensor`'s generators. Structural knobs per tensor follow
//! the paper's own qualitative descriptions (§5.3, §6):
//!
//! * linear-system matrices (top half of Table 2) are diagonally banded
//!   with scatter and panel-scale degree modulation;
//! * graph matrices (bottom half) have heavy-tailed degrees, with hub
//!   clustering tuned from "uniformly distributed sparsity" (web-Google,
//!   patents_main) to "highly asymmetric" (webbase-1M);
//! * roadNet-CA is near-diagonal with a few dense clusters, giving the
//!   asymmetric tile-occupancy distribution §6.2 describes.
//!
//! # Example
//!
//! ```
//! use tailors_workloads::suite;
//!
//! let wl = suite().into_iter().find(|w| w.name == "amazon0312").unwrap();
//! // Scale down 64x for a quick run, keeping the average row degree.
//! let a = wl.scaled(1.0 / 64.0).generate();
//! assert!(a.nnz() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gencache;

use tailors_tensor::gen::{GenSpec, Structure};
use tailors_tensor::CsrMatrix;

pub use gencache::{generate_cached, profile_cached};

/// Structural family of a workload tensor (Table 2 is split into these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Built from a system of linear equations: dense diagonal band plus
    /// scattered off-diagonal entries.
    LinearSystem,
    /// Graph / data-analytics adjacency structure: heavy-tailed degrees.
    Graph,
    /// Road network: uniform low degree near the diagonal with dense urban
    /// clusters.
    RoadNetwork,
}

/// One workload from the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// SuiteSparse tensor name.
    pub name: &'static str,
    /// Rows (= columns; all suite tensors are square).
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Target nonzero count, derived from Table 2's dimensions and
    /// sparsity.
    pub target_nnz: usize,
    /// Structural family.
    pub class: WorkloadClass,
    /// Sparsity as printed in Table 2 (fraction of zeros).
    pub paper_sparsity: f64,
    /// Tile-occupancy variability knob: for graphs, the hub-clustering
    /// fraction; for linear systems, the degree-variability sigma; for road
    /// networks, the cluster nnz share.
    pub variability: f64,
    /// Generator seed (stable per workload).
    pub seed: u64,
}

impl Workload {
    /// Returns a copy scaled by `factor` in both dimensions and nnz, which
    /// preserves the average row degree and the occupancy-distribution
    /// shape. `factor = 1.0` is the paper-scale tensor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> Workload {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let mut w = self.clone();
        w.nrows = ((self.nrows as f64 * factor) as usize).max(64);
        w.ncols = ((self.ncols as f64 * factor) as usize).max(64);
        // Floors on the dimensions can collide with the nnz floor at very
        // small scales; never ask for more than half the coordinate space.
        w.target_nnz = ((self.target_nnz as f64 * factor) as usize)
            .max(256)
            .min(w.nrows * w.ncols / 2);
        w
    }

    /// The generator specification for this workload.
    pub fn gen_spec(&self) -> GenSpec {
        let structure = match self.class {
            WorkloadClass::LinearSystem => Structure::Banded {
                band_halfwidth_frac: 0.008,
                scatter_frac: 0.08,
                degree_variability: self.variability,
            },
            WorkloadClass::Graph => Structure::PowerLaw {
                alpha: 0.30 + 0.55 * self.variability,
                hub_clustering: self.variability,
            },
            WorkloadClass::RoadNetwork => Structure::Clustered {
                cluster_frac: 0.02,
                cluster_share: self.variability,
            },
        };
        GenSpec::banded(self.nrows, self.ncols, self.target_nnz)
            .structure(structure)
            .seed(self.seed)
    }

    /// Generates the synthetic tensor.
    pub fn generate(&self) -> CsrMatrix {
        self.gen_spec().generate()
    }

    /// Sparsity implied by the target nnz (matches
    /// [`Workload::paper_sparsity`] up to rounding in Table 2).
    pub fn target_sparsity(&self) -> f64 {
        1.0 - self.target_nnz as f64 / (self.nrows as f64 * self.ncols as f64)
    }
}

/// Builds one Table 2 entry; nnz is derived from the printed sparsity.
fn entry(
    name: &'static str,
    n: usize,
    sparsity: f64,
    class: WorkloadClass,
    variability: f64,
    seed: u64,
) -> Workload {
    let target_nnz = ((n as f64) * (n as f64) * (1.0 - sparsity)).round() as usize;
    Workload {
        name,
        nrows: n,
        ncols: n,
        target_nnz,
        class,
        paper_sparsity: sparsity,
        variability,
        seed,
    }
}

/// The full 22-workload suite of Table 2, in the paper's order (linear
/// systems first, then other applications, each sorted by sparsity).
///
/// Variability knobs encode §6's qualitative observations: webbase-1M and
/// roadNet-CA have highly asymmetric tile-occupancy distributions (largest
/// overbooking wins), web-Google and patents_main have uniformly
/// distributed sparsity (overbooking ≈ prescient), and the diagonal FEM
/// matrices have deterministic band-dominated distributions.
pub fn suite() -> Vec<Workload> {
    use WorkloadClass::*;
    vec![
        entry("rma10", 47_000, 0.9989, LinearSystem, 0.80, 101),
        entry("cant", 63_000, 0.9990, LinearSystem, 0.75, 102),
        entry("consph", 83_000, 0.99913, LinearSystem, 0.75, 103),
        entry("shipsec1", 141_000, 0.99960, LinearSystem, 0.85, 104),
        entry("pwtk", 218_000, 0.99971, LinearSystem, 0.80, 105),
        entry("cop20k_A", 121_000, 0.99982, LinearSystem, 0.90, 106),
        entry("mac_econ_fwd500", 207_000, 0.99997, LinearSystem, 0.85, 107),
        entry("mc2depi", 525_000, 0.999992, LinearSystem, 0.50, 108),
        entry("pdb1HYS", 36_000, 0.9967, LinearSystem, 0.80, 109),
        entry("sx-mathoverflow", 24_000, 0.9996, Graph, 0.50, 110),
        entry("email-Enron", 37_000, 0.99973, Graph, 0.40, 111),
        entry("cage12", 130_000, 0.99988, LinearSystem, 0.60, 112),
        entry("soc-Epinions1", 76_000, 0.99991, Graph, 0.45, 113),
        entry("soc-sign-epinions", 131_000, 0.99995, Graph, 0.40, 114),
        entry("p2p-Gnutella31", 63_000, 0.99996, Graph, 0.30, 115),
        entry("sx-askubuntu", 159_000, 0.99997, Graph, 0.40, 116),
        entry("amazon0312", 400_000, 0.99998, Graph, 0.55, 117),
        entry("patents_main", 241_000, 0.99999, Graph, 0.10, 118),
        entry("email-EuAll", 265_000, 0.999994, Graph, 0.60, 119),
        entry("web-Google", 916_000, 0.9999958, Graph, 0.10, 120),
        entry("webbase-1M", 1_000_000, 0.9999968, Graph, 0.70, 121),
        entry("roadNet-CA", 2_000_000, 0.9999986, RoadNetwork, 0.30, 122),
    ]
}

/// Looks up a workload by its SuiteSparse name.
pub fn by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name == name)
}

/// The scale factor used by this workspace's tests and quick examples
/// (1/32 of paper scale — seconds, not minutes, to generate and evaluate).
pub const QUICK_SCALE: f64 = 1.0 / 32.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_22_workloads_in_paper_order() {
        let s = suite();
        assert_eq!(s.len(), 22);
        assert_eq!(s[0].name, "rma10");
        assert_eq!(s[21].name, "roadNet-CA");
        // Linear systems first (with cage12 among the later entries as in
        // Table 2's ordering by application then sparsity).
        assert_eq!(
            s.iter()
                .filter(|w| w.class == WorkloadClass::LinearSystem)
                .count(),
            10
        );
    }

    #[test]
    fn nnz_matches_table2_sparsity() {
        for w in suite() {
            let implied = w.target_sparsity();
            assert!(
                (implied - w.paper_sparsity).abs() < 1e-6,
                "{}: implied sparsity {implied} vs paper {}",
                w.name,
                w.paper_sparsity
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let s = suite();
        let mut names: Vec<_> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("webbase-1M").is_some());
        assert!(by_name("not-a-tensor").is_none());
    }

    #[test]
    fn scaled_preserves_mean_degree() {
        let w = by_name("amazon0312").unwrap();
        let s = w.scaled(1.0 / 32.0);
        let deg_full = w.target_nnz as f64 / w.nrows as f64;
        let deg_scaled = s.target_nnz as f64 / s.nrows as f64;
        assert!((deg_full - deg_scaled).abs() / deg_full < 0.05);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_panics() {
        let _ = by_name("cant").unwrap().scaled(0.0);
    }

    #[test]
    fn quick_scale_generation_matches_spec() {
        for w in suite().iter().take(3) {
            let scaled = w.scaled(1.0 / 128.0);
            let m = scaled.generate();
            assert_eq!(m.nrows(), scaled.nrows);
            assert!(m.nnz() as f64 >= 0.6 * scaled.target_nnz as f64);
        }
    }

    #[test]
    fn class_specific_structure_is_used() {
        let road = by_name("roadNet-CA").unwrap().scaled(1.0 / 256.0);
        let m = road.generate();
        // Road networks are near-diagonal: most entries within a narrow
        // band or the diagonal clusters.
        let near = m
            .iter()
            .filter(|&(r, c, _)| (r as i64 - c as i64).abs() < (m.ncols() / 4) as i64)
            .count();
        assert!(near as f64 > 0.8 * m.nnz() as f64);
    }
}
