//! Table 2: characteristics of the 22 evaluation tensors, with the actual
//! statistics of the generated synthetic stand-ins alongside the paper's
//! targets.
//!
//! Usage: `cargo run --release -p tailors-bench --bin table2 [scale]`

use tailors_bench::{fmt_count, generate_cached, rule, scale_from_args};

fn main() {
    let scale = scale_from_args();
    println!("Table 2 — workload characteristics (scale = {scale})");
    rule(92);
    println!(
        "{:<20} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "tensor", "dimensions", "target nnz", "actual nnz", "paper spars.", "actual spars."
    );
    rule(92);
    for wl in tailors_workloads::suite() {
        let scaled = wl.scaled(scale);
        let m = generate_cached(&scaled);
        println!(
            "{:<20} {:>6}x{:<7} {:>12} {:>12} {:>11.5}% {:>11.5}%",
            wl.name,
            scaled.nrows,
            scaled.ncols,
            fmt_count(scaled.target_nnz as u128),
            fmt_count(m.nnz() as u128),
            100.0 * wl.paper_sparsity,
            100.0 * m.sparsity(),
        );
    }
    rule(92);
}
