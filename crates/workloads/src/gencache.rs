//! Memoized workload-tensor generation.
//!
//! Every figure/table binary regenerates the same synthetic tensors from
//! the same `(name, seed, scale)` triples; at paper scale generation
//! dominates suite wall-clock. [`generate_cached`] adds two cache layers:
//!
//! * an in-process map of `Weak` tensor handles (live tensors are shared,
//!   dropped ones are never pinned) plus a strong map of their *profiles*
//!   — the analytical suite's actual working set, tiny next to the
//!   tensors — so repeated suite passes skip generation entirely without
//!   holding 22 full matrices resident;
//! * an optional on-disk cache (directory named by the `TAILORS_GEN_CACHE`
//!   environment variable — `run_all` points every child binary at one
//!   directory by default), so the *next binary in the sequence* skips
//!   generation too.
//!
//! Cache keys are the scaled workload's full identity — name, seed, and
//! concrete dimensions/nnz target (which encode the scale) — so distinct
//! scales never collide. Disk entries carry a format-version magic and are
//! re-validated through `CsrMatrix::from_parts` on load; any mismatch or
//! corruption falls back to regeneration and the entry is rewritten.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use tailors_tensor::{CsrMatrix, MatrixProfile};

use crate::Workload;

/// Disk-format magic: bump when the layout (or the generators whose output
/// it snapshots) changes incompatibly.
const MAGIC: &[u8; 8] = b"TGENC001";

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GenKey {
    name: String,
    seed: u64,
    nrows: usize,
    ncols: usize,
    target_nnz: usize,
}

impl GenKey {
    fn of(wl: &Workload) -> GenKey {
        GenKey {
            name: wl.name.to_string(),
            seed: wl.seed,
            nrows: wl.nrows,
            ncols: wl.ncols,
            target_nnz: wl.target_nnz,
        }
    }

    fn file_name(&self) -> String {
        format!(
            "{}-s{}-{}x{}-n{}.tgc",
            self.name, self.seed, self.nrows, self.ncols, self.target_nnz
        )
    }
}

/// In-process tensor cache. Entries are `Weak`: the map never extends a
/// tensor's lifetime, so a binary that only needed a tensor transiently
/// (e.g. to take its profile) frees it as before — peak memory stays at
/// max(live tensors), not sum(all generated). Callers that want in-memory
/// reuse across calls simply keep their `Arc` alive; everyone else falls
/// back to the disk layer or regeneration.
fn memory_cache() -> &'static Mutex<HashMap<GenKey, Weak<CsrMatrix>>> {
    static CACHE: OnceLock<Mutex<HashMap<GenKey, Weak<CsrMatrix>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// In-process profile cache. Profiles are what the analytical suite
/// actually reuses, and they are small (three count vectors) next to the
/// tensors they summarize, so these stay strongly cached.
fn profile_cache() -> &'static Mutex<HashMap<GenKey, Arc<MatrixProfile>>> {
    static CACHE: OnceLock<Mutex<HashMap<GenKey, Arc<MatrixProfile>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The disk-cache directory, when enabled via `TAILORS_GEN_CACHE`.
fn disk_cache_dir() -> Option<PathBuf> {
    match std::env::var("TAILORS_GEN_CACHE") {
        Ok(dir) if !dir.trim().is_empty() => Some(PathBuf::from(dir)),
        _ => None,
    }
}

/// Generates `wl`'s tensor through the cache layers (in-process map, then
/// the optional `TAILORS_GEN_CACHE` disk cache, then the real generator).
///
/// The returned tensor is shared: callers across one process that ask for
/// the same `(name, seed, scale)` get the same allocation.
pub fn generate_cached(wl: &Workload) -> Arc<CsrMatrix> {
    let key = GenKey::of(wl);
    if let Some(hit) = memory_cache()
        .lock()
        .expect("gen cache lock")
        .get(&key)
        .and_then(Weak::upgrade)
    {
        return hit;
    }
    let dir = disk_cache_dir();
    let from_disk = dir
        .as_deref()
        .and_then(|d| load_tensor(&d.join(key.file_name())));
    let tensor = Arc::new(match from_disk {
        Some(t) => t,
        None => {
            let t = wl.generate();
            if let Some(d) = dir.as_deref() {
                // Best-effort: a full disk or read-only directory only
                // costs the caching, never the run.
                let _ = store_tensor(&t, d, &key.file_name());
            }
            t
        }
    });
    memory_cache()
        .lock()
        .expect("gen cache lock")
        .insert(key, Arc::downgrade(&tensor));
    tensor
}

/// The occupancy profile of `wl`'s tensor, memoized strongly in-process
/// (profiles are small and are the analytical model's working set). On a
/// profile miss the tensor comes from [`generate_cached`] and is released
/// as soon as the profile is extracted.
pub fn profile_cached(wl: &Workload) -> Arc<MatrixProfile> {
    let key = GenKey::of(wl);
    if let Some(hit) = profile_cache()
        .lock()
        .expect("profile cache lock")
        .get(&key)
    {
        return Arc::clone(hit);
    }
    let profile = Arc::new(generate_cached(wl).profile());
    profile_cache()
        .lock()
        .expect("profile cache lock")
        .insert(key, Arc::clone(&profile));
    profile
}

/// Serializes `t` into `dir/name` (written via a temp file + rename so a
/// crashed writer never leaves a half-entry behind).
fn store_tensor(t: &CsrMatrix, dir: &Path, name: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut buf: Vec<u8> = Vec::with_capacity(32 + 8 * t.nrows() + 12 * t.nnz());
    buf.extend_from_slice(MAGIC);
    for v in [t.nrows() as u64, t.ncols() as u64, t.nnz() as u64] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for &p in t.row_ptr() {
        buf.extend_from_slice(&(p as u64).to_le_bytes());
    }
    for &c in t.col_indices() {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    for &v in t.values() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let tmp = dir.join(format!("{name}.tmp{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
    }
    std::fs::rename(&tmp, dir.join(name))
}

/// Loads a tensor stored by [`store_tensor`]; `None` on any mismatch
/// (missing file, wrong magic, truncation, invalid CSR).
fn load_tensor(path: &Path) -> Option<CsrMatrix> {
    let bytes = std::fs::read(path).ok()?;
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let s = bytes.get(*at..*at + n)?;
        *at += n;
        Some(s)
    };
    if take(&mut at, 8)? != MAGIC {
        return None;
    }
    let read_u64 =
        |at: &mut usize| -> Option<u64> { Some(u64::from_le_bytes(take(at, 8)?.try_into().ok()?)) };
    let nrows = usize::try_from(read_u64(&mut at)?).ok()?;
    let ncols = usize::try_from(read_u64(&mut at)?).ok()?;
    let nnz = usize::try_from(read_u64(&mut at)?).ok()?;
    // Validate the header against the actual file size BEFORE sizing any
    // allocation from it: a corrupt dims field must cost a regeneration,
    // not a multi-terabyte `with_capacity` abort.
    let expected = 8usize
        .checked_add(3 * 8)?
        .checked_add(nrows.checked_add(1)?.checked_mul(8)?)?
        .checked_add(nnz.checked_mul(4)?)?
        .checked_add(nnz.checked_mul(8)?)?;
    if expected != bytes.len() {
        return None;
    }
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    for _ in 0..=nrows {
        row_ptr.push(read_u64(&mut at)? as usize);
    }
    let mut col_idx = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_idx.push(u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?));
    }
    let mut vals = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        vals.push(f64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?));
    }
    if at != bytes.len() {
        return None;
    }
    // Full canonical-form validation: a corrupt entry must never poison a
    // run, only cost a regeneration.
    CsrMatrix::from_parts(nrows, ncols, row_ptr, col_idx, vals).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_cache_shares_but_never_pins() {
        let wl = crate::by_name("email-Enron").unwrap().scaled(1.0 / 512.0);
        let a = generate_cached(&wl);
        let b = generate_cached(&wl);
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(*a, wl.generate(), "cached tensor equals a fresh one");
        // A different scale is a different key.
        let c = generate_cached(&wl.scaled(0.5));
        assert!(!Arc::ptr_eq(&a, &c));
        // Weak entries: once every caller drops its Arc, the tensor is
        // freed and the next request regenerates instead of upgrading.
        let weak = Arc::downgrade(&a);
        drop((a, b));
        assert!(weak.upgrade().is_none(), "cache must not pin tensors");
        assert_eq!(*generate_cached(&wl), wl.generate());
    }

    #[test]
    fn profile_cache_is_strong_and_shared() {
        let wl = crate::by_name("cant").unwrap().scaled(1.0 / 512.0);
        let p1 = profile_cached(&wl);
        let p2 = profile_cached(&wl);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(*p1, wl.generate().profile());
    }

    #[test]
    fn disk_roundtrip_is_lossless_and_validates() {
        let wl = crate::by_name("pdb1HYS").unwrap().scaled(1.0 / 512.0);
        let t = wl.generate();
        let dir = std::env::temp_dir().join(format!("tgc-test-{}", std::process::id()));
        store_tensor(&t, &dir, "roundtrip.tgc").unwrap();
        let back = load_tensor(&dir.join("roundtrip.tgc")).expect("loadable");
        assert_eq!(back, t);
        // Truncation and bad magic are rejected, not propagated.
        let full = std::fs::read(dir.join("roundtrip.tgc")).unwrap();
        std::fs::write(dir.join("short.tgc"), &full[..full.len() - 3]).unwrap();
        assert!(load_tensor(&dir.join("short.tgc")).is_none());
        let mut bad = full.clone();
        bad[0] ^= 0xFF;
        std::fs::write(dir.join("bad.tgc"), &bad).unwrap();
        assert!(load_tensor(&dir.join("bad.tgc")).is_none());
        assert!(load_tensor(&dir.join("missing.tgc")).is_none());
        // A corrupt dims header under an intact magic must be rejected by
        // the size cross-check, not fed into an allocation.
        let mut huge = full.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes()); // nrows
        std::fs::write(dir.join("huge.tgc"), &huge).unwrap();
        assert!(load_tensor(&dir.join("huge.tgc")).is_none());
        let mut huge_nnz = full.clone();
        huge_nnz[24..32].copy_from_slice(&(u64::MAX / 2).to_le_bytes()); // nnz
        std::fs::write(dir.join("huge_nnz.tgc"), &huge_nnz).unwrap();
        assert!(load_tensor(&dir.join("huge_nnz.tgc")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
