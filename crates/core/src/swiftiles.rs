//! Swiftiles: the one-shot statistical tile-size estimator (§4.2).
//!
//! Swiftiles picks a coordinate-space tile size such that approximately `y%`
//! of tiles *overbook* a buffer of capacity `b` nonzeros, in three steps:
//!
//! 1. **Initial estimate** (§4.2.1): `T_initial = b / (1 - s)` where `s` is
//!    the tensor's global sparsity — computable in constant time from shape
//!    and nnz alone.
//! 2. **Tile sampling** (§4.2.2): tile the tensor at `T_initial` and sample
//!    `k / y` random tile occupancies, so that `k` samples are expected in
//!    the top-`y%` tail regardless of `y`.
//! 3. **Distribution scaling** (§4.2.3): find the occupancy `Q_y` that `y%`
//!    of sampled tiles exceed, and linearly scale
//!    `T_target = T_initial × b / Q_y`, assuming the occupancy distribution
//!    shape is stable under small tile-size changes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tailors_tensor::stats::overbooking_quantile;
use tailors_tensor::tiling::RowPanels;
use tailors_tensor::MatrixProfile;

use crate::CoreError;

/// Sample-count floor below which occupancy lookups stay serial: each
/// lookup is an O(1) prefix-sum difference, so fanning out only pays for
/// itself on large sample sets (full-population sweeps over fine tilings).
const PARALLEL_SAMPLE_THRESHOLD: usize = 4_096;

/// Configuration for a Swiftiles estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwiftilesConfig {
    /// Target overbooking rate `y` as a fraction in `[0, 1]` (the paper's
    /// default operating point is 0.10).
    pub y: f64,
    /// Number of samples expected to land in the top-`y%` tail; the total
    /// sample budget is `k / y`. `k = 0` disables sampling entirely and the
    /// initial estimate is used as-is (Fig. 12's leftmost point).
    pub k: usize,
    /// Sample every tile instead of `k / y` random ones (Fig. 11's setup).
    pub sample_all: bool,
    /// RNG seed for sample selection.
    pub seed: u64,
}

impl SwiftilesConfig {
    /// Creates a configuration targeting overbooking rate `y` with sample
    /// parameter `k`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParameter`] if `y` is outside `[0, 1]` or not
    /// finite.
    pub fn new(y: f64, k: usize) -> Result<Self, CoreError> {
        if !y.is_finite() || !(0.0..=1.0).contains(&y) {
            return Err(CoreError::BadParameter("y must be a fraction in [0, 1]"));
        }
        Ok(SwiftilesConfig {
            y,
            k,
            sample_all: false,
            seed: 0,
        })
    }

    /// Samples every tile (exact occupancy distribution at `T_initial`).
    pub fn sample_all(mut self) -> Self {
        self.sample_all = true;
        self
    }

    /// Overrides the sampling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of tiles to sample from a population of `n_tiles`.
    pub fn sample_budget(&self, n_tiles: usize) -> usize {
        if self.sample_all {
            return n_tiles;
        }
        if self.k == 0 {
            return 0;
        }
        // k samples in the top-y tail needs k / y total; for y = 0 ("no
        // tile may overbook") fall back to a large multiple so the sampled
        // maximum is a meaningful stand-in for the true maximum.
        let budget = if self.y > 0.0 {
            (self.k as f64 / self.y).ceil() as usize
        } else {
            self.k * 100
        };
        budget.min(n_tiles)
    }
}

/// The outcome of a Swiftiles estimation (all three steps).
#[derive(Debug, Clone, PartialEq)]
pub struct SwiftilesEstimate {
    /// Initial tile size `T_initial` in coordinate-space elements.
    pub t_initial: u64,
    /// Rows per tile corresponding to `T_initial` (row panels spanning `K`).
    pub rows_initial: usize,
    /// Sampled tile occupancies at `T_initial` (empty when `k = 0`).
    pub samples: Vec<u64>,
    /// The `y%`-tail quantile of the samples (`Q_y`); `None` when no
    /// sampling occurred.
    pub q_y: Option<u64>,
    /// Final predicted tile size `T_target` in coordinate-space elements.
    pub t_target: u64,
    /// Rows per tile corresponding to `T_target`.
    pub rows_target: usize,
    /// Preprocessing cost: total nonzeros inspected while sampling (the
    /// overbooking row of Table 1's "tiling tax").
    pub sampling_nnz_touched: u64,
}

/// The Swiftiles estimator.
///
/// See the [module docs](self) for the algorithm; see
/// [`SwiftilesEstimate`] for everything a run reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Swiftiles {
    config: SwiftilesConfig,
}

impl Swiftiles {
    /// Creates an estimator with the given configuration.
    pub fn new(config: SwiftilesConfig) -> Self {
        Swiftiles { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> SwiftilesConfig {
        self.config
    }

    /// Runs the three-step estimation against `profile` for a buffer of
    /// `capacity` nonzeros.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or the profile is empty of nonzeros (no
    /// meaningful tile size exists).
    pub fn estimate(&self, profile: &MatrixProfile, capacity: u64) -> SwiftilesEstimate {
        assert!(capacity > 0, "buffer capacity must be positive");
        assert!(profile.nnz() > 0, "cannot size tiles for an empty tensor");

        // Step 1: initial estimate from global density only.
        let density = profile.density().max(f64::MIN_POSITIVE);
        let t_initial = (capacity as f64 / density).ceil() as u64;
        let rows_initial = rows_for_size(profile, t_initial);

        // Step 2: sample tile occupancies at T_initial. The tile *indices*
        // are drawn serially from the seeded RNG (so the draw sequence —
        // and therefore the estimate — is identical at every thread
        // count), then the independent occupancy lookups fan out across
        // the rayon substrate with an order-preserving collect.
        let panels = RowPanels::new(profile, rows_initial);
        let n_tiles = panels.n_tiles();
        let budget = self.config.sample_budget(n_tiles);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5317_F71E_5EED_0001);
        let indices: Vec<usize> = if budget >= n_tiles {
            (0..n_tiles).collect()
        } else {
            (0..budget).map(|_| rng.gen_range(0..n_tiles)).collect()
        };
        let samples: Vec<u64> =
            if indices.len() >= PARALLEL_SAMPLE_THRESHOLD && rayon::current_num_threads() > 1 {
                use rayon::prelude::*;
                indices
                    .into_par_iter()
                    .map(|i| panels.occupancy(i))
                    .collect()
            } else {
                indices.into_iter().map(|i| panels.occupancy(i)).collect()
            };
        let sampling_nnz_touched = samples.iter().sum();

        // Step 3: scale so the y-tail quantile exactly fills the buffer.
        let (q_y, t_target) = if samples.is_empty() {
            (None, t_initial)
        } else {
            let q = overbooking_quantile(&samples, self.config.y).max(1);
            let target = (t_initial as f64 * capacity as f64 / q as f64).ceil() as u64;
            (Some(q), target.max(1))
        };
        let rows_target = rows_for_size(profile, t_target);

        SwiftilesEstimate {
            t_initial,
            rows_initial,
            samples,
            q_y,
            t_target,
            rows_target,
            sampling_nnz_touched,
        }
    }
}

/// Converts a coordinate-space tile size into whole rows of a row panel
/// (`K`-spanning tiles), clamped to `[1, nrows]`.
pub fn rows_for_size(profile: &MatrixProfile, tile_size: u64) -> usize {
    let ncols = profile.ncols().max(1) as u64;
    let rows = (tile_size / ncols).max(1);
    (rows as usize).min(profile.nrows().max(1))
}

/// Measures the *achieved* overbooking rate when tiling `profile` with
/// `rows_per_tile`-row panels against a buffer of `capacity` nonzeros —
/// the ground truth Figs. 11-12 compare Swiftiles' predictions to.
pub fn achieved_overbooking_rate(
    profile: &MatrixProfile,
    rows_per_tile: usize,
    capacity: u64,
) -> f64 {
    RowPanels::new(profile, rows_per_tile).overbooking_rate(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailors_tensor::gen::GenSpec;

    fn test_profile() -> MatrixProfile {
        GenSpec::power_law(20_000, 20_000, 150_000)
            .seed(7)
            .generate()
            .profile()
    }

    #[test]
    fn config_validates_y() {
        assert!(SwiftilesConfig::new(-0.1, 5).is_err());
        assert!(SwiftilesConfig::new(1.5, 5).is_err());
        assert!(SwiftilesConfig::new(f64::NAN, 5).is_err());
        assert!(SwiftilesConfig::new(0.1, 5).is_ok());
    }

    #[test]
    fn sample_budget_scales_inversely_with_y() {
        let c10 = SwiftilesConfig::new(0.10, 10).unwrap();
        assert_eq!(c10.sample_budget(10_000), 100);
        let c50 = SwiftilesConfig::new(0.50, 10).unwrap();
        assert_eq!(c50.sample_budget(10_000), 20);
        let zero_k = SwiftilesConfig::new(0.10, 0).unwrap();
        assert_eq!(zero_k.sample_budget(10_000), 0);
        let all = SwiftilesConfig::new(0.10, 10).unwrap().sample_all();
        assert_eq!(all.sample_budget(123), 123);
        // Budget never exceeds the population.
        assert_eq!(c10.sample_budget(50), 50);
    }

    #[test]
    fn initial_estimate_matches_formula() {
        let profile = test_profile();
        let est = Swiftiles::new(SwiftilesConfig::new(0.1, 0).unwrap()).estimate(&profile, 2_048);
        let expected = (2_048.0 / profile.density()).ceil() as u64;
        assert_eq!(est.t_initial, expected);
        // k = 0: no sampling, target falls back to the initial estimate.
        assert!(est.samples.is_empty());
        assert_eq!(est.q_y, None);
        assert_eq!(est.t_target, est.t_initial);
        assert_eq!(est.sampling_nnz_touched, 0);
    }

    #[test]
    fn scaling_pulls_overbooking_toward_target() {
        let profile = test_profile();
        let capacity = 2_048;
        let y = 0.10;
        let config = SwiftilesConfig::new(y, 10).unwrap().sample_all();
        let est = Swiftiles::new(config).estimate(&profile, capacity);
        let initial_rate = achieved_overbooking_rate(&profile, est.rows_initial, capacity);
        let target_rate = achieved_overbooking_rate(&profile, est.rows_target, capacity);
        // The scaled prediction must land closer to y than the raw initial
        // estimate does (Fig. 11's whole point).
        assert!(
            (target_rate - y).abs() <= (initial_rate - y).abs() + 0.02,
            "initial {initial_rate:.3}, scaled {target_rate:.3}, target {y}"
        );
    }

    #[test]
    fn sampled_estimation_is_deterministic_per_seed() {
        let profile = test_profile();
        let config = SwiftilesConfig::new(0.1, 10).unwrap().seed(3);
        let a = Swiftiles::new(config).estimate(&profile, 1_024);
        let b = Swiftiles::new(config).estimate(&profile, 1_024);
        assert_eq!(a, b);
        let c = Swiftiles::new(config.seed(4)).estimate(&profile, 1_024);
        // Different seeds may sample different tiles (targets may differ).
        assert_eq!(a.t_initial, c.t_initial);
    }

    #[test]
    fn estimation_is_identical_across_thread_counts() {
        // Tiny capacity → single-digit-row panels → >10k tiles, so the
        // full-population sweep crosses PARALLEL_SAMPLE_THRESHOLD and
        // genuinely fans out; the random-subsample path is pinned too.
        let profile = test_profile();
        for config in [
            SwiftilesConfig::new(0.1, 10).unwrap().sample_all(),
            SwiftilesConfig::new(0.05, 300).unwrap().seed(9),
        ] {
            let in_pool = |threads: usize| {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap()
                    .install(|| Swiftiles::new(config).estimate(&profile, 16))
            };
            let serial = in_pool(1);
            assert!(
                serial.samples.len() >= 4_096,
                "test must exercise the parallel path ({} samples)",
                serial.samples.len()
            );
            for threads in [2, 5] {
                assert_eq!(serial, in_pool(threads), "threads={threads}");
            }
        }
    }

    #[test]
    fn larger_y_yields_larger_tiles() {
        // Allowing more tiles to overbook must never shrink the tile size.
        let profile = test_profile();
        let capacity = 2_048;
        let mut last = 0u64;
        for y in [0.0, 0.05, 0.1, 0.25, 0.5, 0.9] {
            let config = SwiftilesConfig::new(y, 10).unwrap().sample_all();
            let est = Swiftiles::new(config).estimate(&profile, capacity);
            assert!(
                est.t_target >= last,
                "t_target should grow with y (y={y}: {} < {last})",
                est.t_target
            );
            last = est.t_target;
        }
    }

    #[test]
    fn rows_for_size_clamps() {
        let profile = MatrixProfile::new(10, 100, vec![1; 10], {
            let mut v = vec![0u32; 100];
            v[..10].fill(1);
            v
        });
        assert_eq!(rows_for_size(&profile, 50), 1); // < one row
        assert_eq!(rows_for_size(&profile, 250), 2);
        assert_eq!(rows_for_size(&profile, 1_000_000), 10); // > whole tensor
    }

    #[test]
    fn sampling_tax_counts_touched_nonzeros() {
        let profile = test_profile();
        let config = SwiftilesConfig::new(0.1, 10).unwrap();
        // A small capacity gives many tiles, so the k/y budget is a real
        // subsample rather than a full traversal.
        let est = Swiftiles::new(config).estimate(&profile, 256);
        assert_eq!(est.sampling_nnz_touched, est.samples.iter().sum::<u64>());
        // Sampling must touch far less than the full tensor (the efficiency
        // claim vs prescient tiling).
        assert!(est.sampling_nnz_touched < profile.nnz());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let profile = test_profile();
        let _ = Swiftiles::new(SwiftilesConfig::new(0.1, 1).unwrap()).estimate(&profile, 0);
    }
}
