//! Invariant tests for the analytical accelerator model: physics the model
//! must respect for any plan on any workload.

use tailors_sim::{simulate, ArchConfig, TilePlan, Variant};
use tailors_tensor::gen::GenSpec;
use tailors_tensor::MatrixProfile;

fn profiles() -> Vec<MatrixProfile> {
    vec![
        GenSpec::banded(8_000, 8_000, 120_000)
            .seed(1)
            .generate()
            .profile(),
        GenSpec::power_law(8_000, 8_000, 80_000)
            .seed(2)
            .generate()
            .profile(),
        GenSpec::clustered(8_000, 8_000, 60_000)
            .seed(3)
            .generate()
            .profile(),
        GenSpec::uniform(8_000, 8_000, 60_000)
            .seed(4)
            .generate()
            .profile(),
    ]
}

fn plan(rows: usize, pe_rows: usize, overbooking: bool) -> TilePlan {
    TilePlan {
        gb_rows_a: rows,
        gb_cols_b: rows,
        pe_rows_a: pe_rows,
        pe_cols_b: pe_rows,
        full_k: true,
        overbooking,
    }
}

/// DRAM traffic can never drop below the compulsory traffic: each operand
/// fetched at least once.
#[test]
fn dram_has_compulsory_floor() {
    let arch = ArchConfig::extensor().scaled(0.05);
    for p in profiles() {
        for rows in [64, 512, 4_096, 8_000] {
            for ob in [false, true] {
                let m = simulate(&p, &arch, plan(rows, rows / 8 + 1, ob));
                assert!(
                    m.activity.dram_elems >= 2 * p.nnz() as u128,
                    "dram below compulsory floor at rows={rows} ob={ob}"
                );
            }
        }
    }
}

/// Growing the buffers (same plan) never increases cycles or traffic.
/// (Energy is deliberately *not* asserted: larger SRAMs cost more per
/// access under the CACTI-style √capacity scaling — the very reason the
/// paper wants small buffers with high utilization.)
#[test]
fn bigger_buffers_never_hurt() {
    for p in profiles() {
        let small = ArchConfig::extensor().scaled(0.02);
        let large = ArchConfig::extensor().scaled(0.5);
        let pl = plan(1_024, 128, true);
        let m_small = simulate(&p, &small, pl);
        let m_large = simulate(&p, &large, pl);
        assert!(m_large.cycles <= m_small.cycles * 1.0001);
        assert!(m_large.activity.dram_elems <= m_small.activity.dram_elems);
        assert!(m_large.activity.gb_accesses <= m_small.activity.gb_accesses);
    }
}

/// With buffers big enough for everything, overbooking support changes
/// nothing: no tile overflows, so Tailors are inert.
#[test]
fn overbooking_is_inert_when_everything_fits() {
    let arch = ArchConfig::extensor(); // full 30 MB vs small test tensors
    for p in profiles() {
        let with = simulate(&p, &arch, plan(256, 64, true));
        let without = simulate(&p, &arch, plan(256, 64, false));
        assert_eq!(with.dram.overbook_extra, 0);
        assert_eq!(with.activity.dram_elems, without.activity.dram_elems);
        assert_eq!(with.reuse.overbooked_a_tiles, 0);
    }
}

/// The DRAM breakdown always reconciles: baseline + extra = total, and the
/// overhead fraction is a valid fraction.
#[test]
fn dram_breakdown_reconciles() {
    let arch = ArchConfig::extensor().scaled(0.02);
    for p in profiles() {
        for rows in [128, 1_000, 8_000] {
            let m = simulate(&p, &arch, plan(rows, (rows / 16).max(1), true));
            assert_eq!(m.dram.baseline + m.dram.overbook_extra, m.dram.total);
            let f = m.dram.overhead_fraction();
            assert!((0.0..=1.0).contains(&f));
        }
    }
}

/// Variant planners always produce plans the simulator accepts, across
/// arch scales.
#[test]
fn planners_are_total() {
    for p in profiles() {
        for scale in [0.01, 0.1, 1.0] {
            let arch = ArchConfig::extensor().scaled(scale);
            for v in [
                Variant::ExTensorN,
                Variant::ExTensorP,
                Variant::ExTensorOB { y: 0.0, k: 10 },
                Variant::ExTensorOB { y: 0.5, k: 3 },
                Variant::ExTensorOB { y: 1.0, k: 10 },
            ] {
                let m = v.run(&p, &arch);
                assert!(m.cycles.is_finite() && m.cycles > 0.0, "{v:?} at {scale}");
            }
        }
    }
}

/// Reuse statistics are valid fractions and respond to capacity in the
/// right direction.
#[test]
fn reuse_fractions_are_sane() {
    for p in profiles() {
        let tight = simulate(
            &p,
            &ArchConfig::extensor().scaled(0.01),
            plan(4_000, 500, true),
        );
        let roomy = simulate(
            &p,
            &ArchConfig::extensor().scaled(1.0),
            plan(4_000, 500, true),
        );
        for m in [&tight, &roomy] {
            assert!((0.0..=1.0).contains(&m.reuse.reused_fraction));
            assert!(m.reuse.bumped_fraction >= 0.0);
        }
        assert!(roomy.reuse.reused_fraction >= tight.reuse.reused_fraction);
        assert!(tight.reuse.bumped_fraction >= roomy.reuse.bumped_fraction);
    }
}

/// Energy decreases when traffic decreases: a plan with strictly fewer
/// passes over B costs no more energy.
#[test]
fn energy_tracks_traffic() {
    let arch = ArchConfig::extensor().scaled(0.1);
    for p in profiles() {
        let few_passes = simulate(&p, &arch, plan(4_000, 256, false));
        let many_passes = simulate(&p, &arch, plan(250, 125, false));
        assert!(few_passes.activity.dram_elems <= many_passes.activity.dram_elems);
        assert!(few_passes.energy_pj <= many_passes.energy_pj * 1.0001);
    }
}
