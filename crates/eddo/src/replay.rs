//! Whole-tile traversal replay: the Fig. 3 comparison machinery.
//!
//! Sparse tensor dataflows scan a tile repeatedly (once per matching tile of
//! the other operand). This module drives a real [`Buffet`] or [`Tailor`]
//! through `passes` sequential traversals of a tile and counts how many
//! elements had to be (re)fetched from the parent level:
//!
//! * A **buffet** holding a tile larger than its capacity retains *nothing*
//!   across traversals — its sliding window can only move forward, so every
//!   pass refetches the whole tile (Fig. 3, buffets row).
//! * A **Tailor** keeps its resident region hot and only restreams the
//!   bumped remainder: `len + (passes-1) × (len - resident)` fetches
//!   (Fig. 3, Tailors row).
//!
//! The per-tile accounting here is exactly what the analytical model in
//! `tailors-sim` uses in closed form; an integration test cross-checks the
//! two.

use crate::{Buffet, EddoError, Tailor, TailorConfig};

/// Outcome of replaying sequential traversals of one tile through a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraversalReport {
    /// Number of full traversals performed.
    pub passes: u64,
    /// Total elements requested by the child (`passes × tile_len`).
    pub reads: u64,
    /// Elements delivered by the parent (fills + overwriting fills).
    pub parent_fetches: u64,
}

impl TraversalReport {
    /// Fraction of reads served from data already in the buffer — the
    /// paper's "data reused" metric (Fig. 9b). 1.0 means every read after
    /// the compulsory first fetch hit; 0.0 means every read required a
    /// fresh fetch.
    pub fn reuse_fraction(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        1.0 - (self.parent_fetches as f64 / self.reads as f64).min(1.0)
    }
}

/// Replays `passes` sequential traversals of `tile` through a [`Tailor`]
/// with the given configuration, returning the traffic report.
///
/// Every element read is checked against the tile, so this doubles as a
/// correctness test of the Tailor's index translation.
///
/// # Errors
///
/// Propagates any unexpected buffer protocol error (none occur for a
/// well-formed tile; bumped data is restreamed transparently).
///
/// # Panics
///
/// Panics if the Tailor returns wrong data for an index.
pub fn replay_tailor<T: Clone + PartialEq + core::fmt::Debug>(
    tile: &[T],
    config: TailorConfig,
    passes: u64,
) -> Result<TraversalReport, EddoError> {
    let mut t: Tailor<T> = Tailor::new(config);
    t.set_tile_len(tile.len());
    let mut fetches = 0u64;
    for pass in 0..passes {
        for (i, expect) in tile.iter().enumerate() {
            // Ensure index i is present, streaming if necessary.
            loop {
                match t.read(i) {
                    Ok(v) => {
                        assert_eq!(&v, expect, "tailor returned wrong data at {i}");
                        break;
                    }
                    Err(EddoError::NotYetFilled { .. }) => {
                        // Conventional fill path (buffer not yet full).
                        match t.fill(tile[t.occupancy()].clone()) {
                            Ok(()) => fetches += 1,
                            Err(EddoError::Full) => {
                                // Transition to streaming.
                                let idx = t.next_stream_index().unwrap_or(t.occupancy());
                                t.ow_fill(tile[idx].clone())?;
                                fetches += 1;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    Err(EddoError::Bumped { .. }) => {
                        let idx = t.next_stream_index().expect("overbooked");
                        t.ow_fill(tile[idx].clone())?;
                        fetches += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        let _ = pass;
    }
    Ok(TraversalReport {
        passes,
        reads: passes * tile.len() as u64,
        parent_fetches: fetches,
    })
}

/// Replays `passes` sequential traversals of `tile` through a [`Buffet`]
/// of `capacity`, managed as a forward-only sliding window (its only legal
/// management), returning the traffic report.
///
/// When the tile does not fit, each traversal is forced to drop everything
/// and refill — the Fig. 3a behaviour.
///
/// # Errors
///
/// Propagates any unexpected buffer protocol error.
///
/// # Panics
///
/// Panics if the buffet returns wrong data for an index.
pub fn replay_buffet<T: Clone + PartialEq + core::fmt::Debug>(
    tile: &[T],
    capacity: usize,
    passes: u64,
) -> Result<TraversalReport, EddoError> {
    let mut b: Buffet<T> = Buffet::new(capacity);
    let mut window_start = 0usize; // tile index of the buffet head
    let mut window_end = 0usize; // one past the newest filled tile index
    let mut fetches = 0u64;
    for _ in 0..passes {
        for (i, expect) in tile.iter().enumerate() {
            if i < window_start {
                // The sliding window cannot move backward: drop everything
                // and refill from here.
                let occ = b.occupancy();
                b.shrink(occ)?;
                window_start = i;
                window_end = i;
            }
            while i >= window_end {
                if b.is_full() {
                    b.shrink(1)?;
                    window_start += 1;
                }
                b.fill(tile[window_end].clone())?;
                window_end += 1;
                fetches += 1;
            }
            let v = b.read(i - window_start)?;
            assert_eq!(&v, expect, "buffet returned wrong data at {i}");
        }
    }
    Ok(TraversalReport {
        passes,
        reads: passes * tile.len() as u64,
        parent_fetches: fetches,
    })
}

/// Closed-form parent-fetch count for a Tailor traversal, matching
/// [`replay_tailor`]: the first pass fetches the whole tile; each further
/// pass refetches only the bumped portion `len - resident` (zero when the
/// tile fits).
pub fn tailor_fetch_model(tile_len: u64, config: TailorConfig, passes: u64) -> u64 {
    if passes == 0 {
        return 0;
    }
    if tile_len <= config.capacity() as u64 {
        return tile_len;
    }
    let bumped = tile_len - config.resident_region() as u64;
    tile_len + (passes - 1) * bumped
}

/// Closed-form parent-fetch count for a buffet traversal, matching
/// [`replay_buffet`]: free after the first pass when the tile fits,
/// otherwise a full refetch per pass.
pub fn buffet_fetch_model(tile_len: u64, capacity: u64, passes: u64) -> u64 {
    if passes == 0 {
        return 0;
    }
    if tile_len <= capacity {
        tile_len
    } else {
        passes * tile_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    /// Fig. 3: an overbooked tile through a buffet loses all reuse; through
    /// a Tailor the resident portion keeps its reuse.
    #[test]
    fn fig3_tailor_beats_buffet_on_overbooked_tile() {
        let t = tile(8);
        let cap = 6;
        let passes = 4;
        let buffet = replay_buffet(&t, cap, passes).unwrap();
        let tailor = replay_tailor(&t, TailorConfig::new(cap, 2).unwrap(), passes).unwrap();
        assert_eq!(buffet.parent_fetches, 8 * 4);
        // 8 + 3 passes × bumped (8 - 4 resident) = 8 + 12 = 20.
        assert_eq!(tailor.parent_fetches, 20);
        assert!(tailor.reuse_fraction() > buffet.reuse_fraction());
    }

    /// Fig. 3 fitting case: both idioms fetch the tile exactly once.
    #[test]
    fn fig3_fitting_tile_is_free_for_both() {
        let t = tile(5);
        let buffet = replay_buffet(&t, 8, 3).unwrap();
        let tailor = replay_tailor(&t, TailorConfig::new(8, 2).unwrap(), 3).unwrap();
        assert_eq!(buffet.parent_fetches, 5);
        assert_eq!(tailor.parent_fetches, 5);
        assert!((buffet.reuse_fraction() - (1.0 - 5.0 / 15.0)).abs() < 1e-12);
    }

    #[test]
    fn replay_matches_closed_form_models() {
        for (len, cap, fifo, passes) in [
            (10usize, 4usize, 1usize, 3u64),
            (10, 4, 2, 1),
            (10, 4, 3, 5),
            (16, 8, 4, 2),
            (4, 8, 2, 4),
            (9, 8, 7, 3),
        ] {
            let t = tile(len);
            let config = TailorConfig::new(cap, fifo).unwrap();
            let tailor = replay_tailor(&t, config, passes).unwrap();
            assert_eq!(
                tailor.parent_fetches,
                tailor_fetch_model(len as u64, config, passes),
                "tailor mismatch for len={len} cap={cap} fifo={fifo} passes={passes}"
            );
            let buffet = replay_buffet(&t, cap, passes).unwrap();
            assert_eq!(
                buffet.parent_fetches,
                buffet_fetch_model(len as u64, cap as u64, passes),
                "buffet mismatch for len={len} cap={cap} fifo={fifo} passes={passes}"
            );
        }
    }

    #[test]
    fn zero_passes_fetch_nothing() {
        let t = tile(6);
        let r = replay_tailor(&t, TailorConfig::new(4, 2).unwrap(), 0).unwrap();
        assert_eq!(r.parent_fetches, 0);
        assert_eq!(r.reuse_fraction(), 0.0);
        assert_eq!(
            tailor_fetch_model(6, TailorConfig::new(4, 2).unwrap(), 0),
            0
        );
        assert_eq!(buffet_fetch_model(6, 4, 0), 0);
    }

    #[test]
    fn reuse_fraction_bounds() {
        let t = tile(12);
        let r = replay_tailor(&t, TailorConfig::new(6, 5).unwrap(), 10).unwrap();
        assert!(r.reuse_fraction() >= 0.0 && r.reuse_fraction() <= 1.0);
        // With a tiny resident region, reuse tends toward resident/len.
        let expected = 1.0 - r.parent_fetches as f64 / r.reads as f64;
        assert!((r.reuse_fraction() - expected).abs() < 1e-12);
    }

    /// More bumped data -> less reuse, monotonically (the Fig. 9b trend).
    #[test]
    fn reuse_decreases_with_bumped_fraction() {
        let passes = 8;
        let mut last = f64::INFINITY;
        for len in [8usize, 12, 16, 24, 40] {
            let t = tile(len);
            let r = replay_tailor(&t, TailorConfig::new(8, 2).unwrap(), passes).unwrap();
            assert!(
                r.reuse_fraction() <= last + 1e-12,
                "reuse should not increase as tiles grow"
            );
            last = r.reuse_fraction();
        }
    }
}
