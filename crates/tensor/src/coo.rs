//! Coordinate-list (COO) sparse matrix format.

use crate::TensorError;

/// A sparse matrix in coordinate (triplet) format.
///
/// COO is the natural output format for the synthetic generators in
/// [`crate::gen`] and the natural input format for building a
/// [`crate::CsrMatrix`]. Entries may be unsorted and may contain duplicates;
/// conversion to CSR sorts and sums duplicates.
///
/// # Example
///
/// ```
/// use tailors_tensor::{CooMatrix, CsrMatrix};
///
/// let mut coo = CooMatrix::new(2, 3);
/// coo.push(0, 1, 2.0).unwrap();
/// coo.push(1, 2, 3.0).unwrap();
/// coo.push(0, 1, 1.0).unwrap(); // duplicate: summed during CSR conversion
///
/// let csr = CsrMatrix::from_coo(&coo);
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.get(0, 1), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty COO matrix with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds `u32::MAX`, the widest coordinate
    /// this crate supports.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows <= u32::MAX as usize && ncols <= u32::MAX as usize,
            "matrix dimensions must fit in u32"
        );
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with capacity reserved for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut m = Self::new(nrows, ncols);
        m.rows.reserve(cap);
        m.cols.reserve(cap);
        m.vals.reserve(cap);
        m
    }

    /// Appends a nonzero entry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::CoordOutOfBounds`] if `(row, col)` lies outside
    /// the matrix shape.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<(), TensorError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(TensorError::CoordOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries, including any duplicates.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Iterates over `(row, col, value)` triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Consumes the matrix, returning the raw `(rows, cols, vals)` triplet
    /// arrays.
    pub fn into_parts(self) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
        (self.rows, self.cols, self.vals)
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    /// Extends the matrix with triplets.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds (use [`CooMatrix::push`] for
    /// a fallible variant).
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v).expect("coordinate out of bounds");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter_roundtrip() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(2, 3, -2.5).unwrap();
        let triplets: Vec<_> = coo.iter().collect();
        assert_eq!(triplets, vec![(0, 0, 1.0), (2, 3, -2.5)]);
        assert_eq!(coo.len(), 2);
        assert!(!coo.is_empty());
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        let err = coo.push(2, 0, 1.0).unwrap_err();
        assert_eq!(
            err,
            TensorError::CoordOutOfBounds {
                row: 2,
                col: 0,
                nrows: 2,
                ncols: 2
            }
        );
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.is_empty());
    }

    #[test]
    fn extend_accepts_triplets() {
        let mut coo = CooMatrix::new(2, 2);
        coo.extend(vec![(0, 1, 1.0), (1, 0, 2.0)]);
        assert_eq!(coo.len(), 2);
    }

    #[test]
    fn empty_matrix_properties() {
        let coo = CooMatrix::new(5, 7);
        assert_eq!(coo.nrows(), 5);
        assert_eq!(coo.ncols(), 7);
        assert!(coo.is_empty());
        assert_eq!(coo.iter().count(), 0);
    }

    #[test]
    fn display_of_error_is_informative() {
        let err = TensorError::CoordOutOfBounds {
            row: 9,
            col: 1,
            nrows: 3,
            ncols: 3,
        };
        assert!(err.to_string().contains("(9, 1)"));
    }
}
