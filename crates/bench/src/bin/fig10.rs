//! Fig. 10: geomean speedup of ExTensor-OB over ExTensor-P as the target
//! overbooking rate y sweeps 0..100 %.
//!
//! The paper's curve: ~0.75x at y = 0 (pure estimation error), rising to a
//! peak around y = 22 %, then degrading as streaming overhead dominates,
//! far below 1x at y = 100 %. It also reports an idealized best-y-per-
//! workload oracle at 2.1x the fixed y = 10 % choice — printed here too.
//!
//! Usage: `cargo run --release -p tailors-bench --bin fig10 [scale]`

use tailors_bench::{arch_at, bar, profile_at, rule, scale_from_args};
use tailors_sim::Variant;
use tailors_tensor::stats::geomean;

fn main() {
    let scale = scale_from_args();
    let arch = arch_at(scale);
    let ys = [
        0.0, 0.02, 0.05, 0.10, 0.15, 0.22, 0.30, 0.40, 0.50, 0.65, 0.80, 0.90, 1.0,
    ];

    // Generate each workload once; sweep y on the cached profiles.
    let suite: Vec<_> = tailors_workloads::suite()
        .iter()
        .map(|wl| profile_at(wl, scale))
        .collect();
    let p_runs: Vec<_> = suite
        .iter()
        .map(|(_, profile)| Variant::ExTensorP.run(profile, &arch))
        .collect();

    println!("Fig. 10 — geomean OB/P speedup vs overbooking target y (scale = {scale})");
    rule(64);
    let mut per_workload_best = vec![0.0f64; suite.len()];
    for &y in &ys {
        let mut ratios = Vec::new();
        for (i, (_, profile)) in suite.iter().enumerate() {
            let ob = Variant::ExTensorOB { y, k: 10 }.run(profile, &arch);
            let ratio = ob.speedup_over(&p_runs[i]);
            per_workload_best[i] = per_workload_best[i].max(ratio);
            ratios.push(ratio);
        }
        let g = geomean(&ratios).expect("non-empty suite");
        println!(
            "y = {:>5.1}% : {:>6.2}x  {}",
            100.0 * y,
            g,
            bar(g / 4.0, 32)
        );
    }
    rule(64);
    let oracle = geomean(&per_workload_best).expect("non-empty suite");
    println!(
        "idealized best-y-per-workload oracle: {oracle:.2}x over P (paper: 4.8x over P, \
         2.1x over fixed y = 10%)"
    );
    println!("paper's curve: ~0.75x at y=0, peak near y=22%, <<1x at y=100%");
}
