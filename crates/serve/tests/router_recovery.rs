//! Elastic fleet membership, end to end against in-process wire shards:
//! a killed-and-restarted shard is re-admitted by health probes (with
//! warm-up replay observable on its fresh runtime), R-way replicated
//! placement absorbs a kill without a single timeout, live join/leave
//! remap only the moved keys, and the fleet accounting ledger
//! (`completed + rejected + timed_out + faulted == submitted`) holds
//! through every probe, join, leave, and failover — including membership
//! churn concurrent with a driven batch.

use std::sync::Arc;
use std::time::Duration;

use tailors_serve::wire::WireTcpServer;
use tailors_serve::{
    MembershipError, Placement, Reply, RouterConfig, RuntimeConfig, ServiceRuntime, ShardRouter,
    SimRequest, SimResponse, SimService, Work,
};
use tailors_sim::{GridMode, MemBudget, Variant};

const SCALE: f64 = 1.0 / 256.0;
const SHARDS: usize = 3;

/// The shared 24-request stream the wire determinism suite uses: 8
/// workloads × 3 variants with budgets and grids cycled.
fn batch() -> Vec<SimRequest> {
    let names = [
        "cant",
        "email-Enron",
        "pdb1HYS",
        "rma10",
        "soc-Epinions1",
        "p2p-Gnutella31",
        "webbase-1M",
        "roadNet-CA",
    ];
    let variants = [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ];
    names
        .iter()
        .enumerate()
        .flat_map(|(i, name)| {
            variants.into_iter().enumerate().map(move |(j, variant)| {
                let mut req = SimRequest::suite(name, SCALE, variant).expect("suite workload");
                if (i + j) % 2 == 0 {
                    req.budget = MemBudget::bytes(64 << 10);
                }
                if j % 2 == 1 {
                    req.grid = GridMode::Grid2D;
                }
                req
            })
        })
        .collect()
}

struct Fleet {
    runtimes: Vec<Arc<ServiceRuntime>>,
    servers: Vec<WireTcpServer>,
}

impl Fleet {
    fn spawn(n: usize) -> Fleet {
        let mut fleet = Fleet {
            runtimes: Vec::new(),
            servers: Vec::new(),
        };
        for _ in 0..n {
            fleet.grow("127.0.0.1:0");
        }
        fleet
    }

    /// Spawns one more shard (fresh runtime + wire server) at `addr` and
    /// returns its endpoint.
    fn grow(&mut self, addr: &str) -> String {
        let runtime = Arc::new(ServiceRuntime::new(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        }));
        let server = WireTcpServer::spawn(Arc::clone(&runtime), addr).expect("bind shard");
        let endpoint = server.addr().to_string();
        self.runtimes.push(runtime);
        self.servers.push(server);
        endpoint
    }

    fn endpoints(&self) -> Vec<String> {
        self.servers.iter().map(|s| s.addr().to_string()).collect()
    }

    /// Takes shard `i` down completely: accept loop joined, sessions
    /// closed, workers drained, port freed.
    fn kill(&mut self, i: usize) {
        self.servers[i].stop();
        self.runtimes[i].shutdown();
    }

    /// Brings shard `i` back on its original port with a cold runtime —
    /// a crashed-and-restarted process, as far as the router can tell.
    fn restart(&mut self, i: usize) {
        let addr = self.servers[i].addr().to_string();
        let runtime = Arc::new(ServiceRuntime::new(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        }));
        self.servers[i] =
            WireTcpServer::spawn(Arc::clone(&runtime), addr.as_str()).expect("rebind shard");
        self.runtimes[i] = runtime;
    }

    fn shutdown(mut self) {
        for server in &mut self.servers {
            server.stop();
        }
        for runtime in &self.runtimes {
            runtime.shutdown();
        }
    }
}

fn sim_replies(outcomes: Vec<Result<Reply, tailors_serve::ServeError>>) -> Vec<SimResponse> {
    outcomes
        .into_iter()
        .map(|o| o.expect("served").into_sim().expect("sim reply"))
        .collect()
}

fn assert_bit_identical(served: &[SimResponse], baseline: &[SimResponse], context: &str) {
    assert_eq!(served.len(), baseline.len(), "{context}");
    for (s, b) in served.iter().zip(baseline) {
        assert_eq!(s.name, b.name, "{context}");
        assert_eq!(s.metrics, b.metrics, "{context}: {}", s.name);
        assert_eq!(
            s.metrics.cycles.to_bits(),
            b.metrics.cycles.to_bits(),
            "{context}: {} cycles bits",
            s.name
        );
        assert_eq!(
            s.metrics.energy_pj.to_bits(),
            b.metrics.energy_pj.to_bits(),
            "{context}: {} energy bits",
            s.name
        );
    }
}

#[test]
fn killed_shard_is_readmitted_by_probes_with_warmup_and_ledger_intact() {
    let reqs = batch();
    let baseline = SimService::new().submit_batch(&reqs, 1);
    let works: Vec<Work> = reqs.iter().cloned().map(Work::Sim).collect();

    let mut fleet = Fleet::spawn(SHARDS);
    let router =
        ShardRouter::connect(&fleet.endpoints(), RouterConfig::default()).expect("router dials");

    let owners: Vec<usize> = works.iter().map(|w| router.primary(w)).collect();
    let victim = owners[0];
    assert!(owners.iter().filter(|&&o| o == victim).count() > 0);

    // Healthy leg populates the warm-up log.
    let first = sim_replies(router.submit_batch(&works));
    assert_bit_identical(&first, &baseline, "healthy leg");

    // Kill the victim; its keys fail over and the shard is marked down.
    fleet.kill(victim);
    let second = sim_replies(router.submit_batch(&works));
    assert_bit_identical(&second, &baseline, "failover leg");
    assert!(router.down_shards()[victim]);
    assert_eq!(router.stats().shards_down, 1);

    // Probing while the shard is still dead changes nothing.
    assert_eq!(router.probe_now(), 0);
    assert!(router.down_shards()[victim], "dead shard must stay down");
    assert_eq!(router.stats().recoveries, 0);

    // Restart on the same port (cold runtime — a process restart) and
    // probe: the shard is re-admitted and warm-replayed before any live
    // traffic reaches it.
    fleet.restart(victim);
    assert_eq!(router.probe_now(), 1);
    assert!(!router.down_shards()[victim], "probe must clear the mark");
    let stats = router.stats();
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.shards_down, 0);
    // Warm-up replay reached the victim's fresh runtime on the low lane:
    // its shard-local ledger saw the replays, while the router ledger and
    // the shard's router-visible replies never counted them.
    assert!(
        fleet.runtimes[victim].stats().submitted > 0,
        "warm replay must prime the restarted shard"
    );
    assert!(stats.warmups > 0, "router must count warm replays");
    let replies_before = router.shard_stats()[victim].replies;

    // Traffic returns to the recovered primary, bit-identical.
    let third = sim_replies(router.submit_batch(&works));
    assert_bit_identical(&third, &baseline, "recovered leg");
    assert!(
        router.shard_stats()[victim].replies > replies_before,
        "recovered shard must serve its ring keys again"
    );

    // The fleet ledger held across kill, probe, recovery, and replay.
    let stats = router.stats();
    assert_eq!(stats.submitted, 3 * works.len() as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.accounted(), stats.submitted);
    let per_shard = router.shard_stats();
    assert_eq!(
        per_shard.iter().map(|s| s.replies).sum::<u64>(),
        stats.completed,
        "warm replays must not inflate router-visible replies"
    );
    fleet.shutdown();
}

#[test]
fn background_prober_readmits_without_manual_sweeps() {
    let reqs = &batch()[..6];
    let works: Vec<Work> = reqs.iter().cloned().map(Work::Sim).collect();

    let mut fleet = Fleet::spawn(SHARDS);
    let config = RouterConfig {
        probe_interval: Some(Duration::from_millis(10)),
        ..RouterConfig::default()
    };
    let router = ShardRouter::connect(&fleet.endpoints(), config).expect("router dials");
    for work in &works {
        router.submit(work).expect("healthy fleet serves");
    }

    let victim = router.primary(&works[0]);
    fleet.kill(victim);
    for work in &works {
        router.submit(work).expect("failover serves");
    }
    assert!(router.down_shards()[victim]);

    fleet.restart(victim);
    // Bounded poll: the background prober must clear the mark on its own.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while router.down_shards()[victim] {
        assert!(
            std::time::Instant::now() < deadline,
            "prober failed to re-admit the restarted shard in 5s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = router.stats();
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.accounted(), stats.submitted);
    fleet.shutdown();
}

#[test]
fn replicated_placement_absorbs_a_kill_without_timeouts() {
    let reqs = batch();
    let baseline = SimService::new().submit_batch(&reqs, 1);
    let works: Vec<Work> = reqs.iter().cloned().map(Work::Sim).collect();

    let mut fleet = Fleet::spawn(SHARDS);
    let config = RouterConfig {
        placement: Placement::Replicated(2),
        ..RouterConfig::default()
    };
    let router = ShardRouter::connect(&fleet.endpoints(), config).expect("router dials");

    let first = sim_replies(router.submit_batch(&works));
    assert_bit_identical(&first, &baseline, "healthy replicated leg");

    // Kill one shard: every one of its keys already has a designated
    // live replica, so the batch completes bit-identically with no
    // deadline ever reached — failovers advance, timeouts must not.
    let victim = router.primary(&works[0]);
    fleet.kill(victim);
    let second = sim_replies(router.submit_batch(&works));
    assert_bit_identical(&second, &baseline, "replicated failover leg");

    let stats = router.stats();
    assert_eq!(stats.submitted, 2 * works.len() as u64);
    assert_eq!(stats.completed, stats.submitted, "no request lost");
    assert_eq!(stats.accounted(), stats.submitted);
    assert_eq!(
        stats.timed_out, 0,
        "replicated placement must never pay a discovery timeout"
    );
    assert!(stats.failovers >= 1, "the kill is visible as failover hops");
    fleet.shutdown();
}

#[test]
fn live_join_and_leave_remap_only_moved_keys() {
    let reqs = batch();
    let baseline = SimService::new().submit_batch(&reqs, 1);
    let works: Vec<Work> = reqs.iter().cloned().map(Work::Sim).collect();

    let mut fleet = Fleet::spawn(SHARDS);
    let router =
        ShardRouter::connect(&fleet.endpoints(), RouterConfig::default()).expect("router dials");

    let before: Vec<usize> = works.iter().map(|w| router.primary(w)).collect();
    let first = sim_replies(router.submit_batch(&works));
    assert_bit_identical(&first, &baseline, "pre-join leg");

    // Join a fourth shard: only keys the joiner now owns may move, and
    // those keys are warm-replayed onto it before live traffic.
    let endpoint = fleet.grow("127.0.0.1:0");
    let joined = router.join(endpoint.as_str()).expect("join dials");
    assert_eq!(joined, SHARDS);
    assert_eq!(router.ring().shards(), SHARDS + 1);
    let after: Vec<usize> = works.iter().map(|w| router.primary(w)).collect();
    let mut moved = 0;
    for (b, a) in before.iter().zip(&after) {
        if a != b {
            assert_eq!(*a, joined, "keys may only move to the joiner");
            moved += 1;
        }
    }
    if moved > 0 {
        // The joiner's keys arrived warm: its cold runtime served the
        // replays on the low lane before any router traffic.
        assert!(fleet.runtimes[joined].stats().submitted > 0);
        assert!(router.stats().warmups > 0);
        assert_eq!(router.shard_stats()[joined].replies, 0);
    }

    let second = sim_replies(router.submit_batch(&works));
    assert_bit_identical(&second, &baseline, "post-join leg");
    if moved > 0 {
        assert!(
            router.shard_stats()[joined].replies > 0,
            "the joiner must serve its keys"
        );
    }

    // Leave: the departed member's keys re-home to survivors; everyone
    // else's keys stay put. The wire server keeps running — leaving is
    // administrative, not a crash — so in-flight work drains cleanly.
    let leaver = after[0];
    router.leave(leaver).expect("leave a live member");
    let third_owners: Vec<usize> = works.iter().map(|w| router.primary(w)).collect();
    for (prev, now) in after.iter().zip(&third_owners) {
        assert_ne!(*now, leaver, "departed members own nothing");
        if *prev != leaver {
            assert_eq!(now, prev, "only the leaver's keys may move");
        }
    }
    let calls_before = router.shard_stats()[leaver].calls;
    let third = sim_replies(router.submit_batch(&works));
    assert_bit_identical(&third, &baseline, "post-leave leg");
    assert_eq!(
        router.shard_stats()[leaver].calls,
        calls_before,
        "departed shards take no further calls"
    );
    assert!(router.shard_stats()[leaver].departed);

    // Membership errors are typed.
    assert_eq!(router.leave(99), Err(MembershipError::UnknownShard(99)));
    assert_eq!(
        router.leave(leaver),
        Err(MembershipError::AlreadyDeparted(leaver))
    );

    // The ledger held across join, leave, and every replay.
    let stats = router.stats();
    assert_eq!(stats.submitted, 3 * works.len() as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.accounted(), stats.submitted);
    fleet.shutdown();
}

#[test]
fn membership_churn_during_a_driven_batch_never_drops_a_request() {
    let reqs = batch();
    let baseline = SimService::new().submit_batch(&reqs, 1);
    let works: Vec<Work> = reqs.iter().cloned().map(Work::Sim).collect();
    const PASSES: usize = 3;

    let mut fleet = Fleet::spawn(SHARDS);
    let router =
        ShardRouter::connect(&fleet.endpoints(), RouterConfig::default()).expect("router dials");
    let endpoint = fleet.grow("127.0.0.1:0");

    // One thread drives batches continuously while the main thread joins
    // a shard and retires another mid-stream: requests route on whichever
    // ring they catch (a membership write drains in-flight reads), and
    // every payload must still be bit-identical with the ledger whole.
    std::thread::scope(|scope| {
        let driver = scope.spawn(|| {
            for pass in 0..PASSES {
                let served = sim_replies(router.submit_batch(&works));
                assert_bit_identical(&served, &baseline, &format!("churn pass={pass}"));
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let joined = router.join(endpoint.as_str()).expect("join mid-stream");
        std::thread::sleep(Duration::from_millis(5));
        router.leave(0).expect("leave mid-stream");
        driver.join().expect("driver thread");
        assert_eq!(joined, SHARDS);
    });

    let stats = router.stats();
    assert_eq!(stats.submitted, (PASSES * works.len()) as u64);
    assert_eq!(stats.completed, stats.submitted, "no request lost to churn");
    assert_eq!(stats.accounted(), stats.submitted);
    // Post-churn placement agrees with the final membership: member 0 is
    // gone, the joiner is live.
    for work in &works {
        assert_ne!(router.primary(work), 0);
    }
    assert_eq!(router.ring().shards(), SHARDS);
    fleet.shutdown();
}
