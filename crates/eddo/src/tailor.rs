//! The Tailor (tail-overbooked buffer) storage idiom — the paper's §3.3.

use std::collections::VecDeque;

use crate::{AccessStats, EddoError};

/// Configuration of a [`Tailor`]: total capacity and the size of the
/// FIFO-managed streaming region at the tail.
///
/// The paper sizes the FIFO region statically so double-buffering hides the
/// round-trip latency to the parent level (§3.3.1): a region of `2 ×
/// round-trip latency × fill bandwidth` keeps the child from stalling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailorConfig {
    capacity: usize,
    fifo_region: usize,
}

impl TailorConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EddoError::BadConfig`] unless `0 < fifo_region < capacity`.
    pub fn new(capacity: usize, fifo_region: usize) -> Result<Self, EddoError> {
        if capacity == 0 {
            return Err(EddoError::BadConfig("capacity must be positive"));
        }
        if fifo_region == 0 {
            return Err(EddoError::BadConfig(
                "fifo_region must be positive (streaming needs at least one slot)",
            ));
        }
        if fifo_region >= capacity {
            return Err(EddoError::BadConfig(
                "fifo_region must be smaller than capacity",
            ));
        }
        Ok(TailorConfig {
            capacity,
            fifo_region,
        })
    }

    /// Sizes the FIFO region to hide a parent round-trip of
    /// `round_trip_latency` cycles at `fill_bandwidth` elements per cycle
    /// (double-buffered), clamped to leave at least one resident slot.
    ///
    /// # Errors
    ///
    /// Returns [`EddoError::BadConfig`] if `capacity < 2`.
    pub fn for_latency(
        capacity: usize,
        round_trip_latency: usize,
        fill_bandwidth: usize,
    ) -> Result<Self, EddoError> {
        let region = (2 * round_trip_latency * fill_bandwidth)
            .max(1)
            .min(capacity.saturating_sub(1));
        Self::new(capacity, region)
    }

    /// Total capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Size of the FIFO-managed streaming region in elements.
    pub fn fifo_region(&self) -> usize {
        self.fifo_region
    }

    /// Size of the buffet-managed resident region when overbooked
    /// (`capacity - fifo_region`); also the *FIFO head* index.
    pub fn resident_region(&self) -> usize {
        self.capacity - self.fifo_region
    }
}

/// Which regime the Tailor is operating in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The tile fits (so far): the whole buffer is buffet-managed.
    Buffet,
    /// The tile overbooked the buffer: resident region + streaming window.
    Overbooked,
}

/// A Tail-Overbooked Buffer: a buffet that tolerates tiles larger than its
/// capacity by streaming the overflow through a FIFO-managed tail region.
///
/// A Tailor has two modes (§3.3):
///
/// 1. While the current tile fits, it behaves exactly like a
///    [`crate::Buffet`]: `Fill`/`Read`/`Update`/`Shrink`.
/// 2. The first [`Tailor::ow_fill`] on a full buffer *splits* it: the last
///    [`TailorConfig::fifo_region`] slots are cleared and become a rolling
///    FIFO window through which the bumped remainder of the tile streams
///    (in tile order, cycling back to the first bumped index); the head-side
///    [`TailorConfig::resident_region`] slots keep their data, and reads to
///    them keep hitting — that retained reuse is the whole point.
///
/// Reads address the *tile index* (position in the current tile), exactly
/// like buffet reads address the position in the stream. The Tailor
/// translates tile indices in the streaming window to buffer offsets using
/// the *FIFO offset* (§3.3.2); [`Tailor::fifo_offset`] and
/// [`Tailor::buffer_offset`] expose that bookkeeping, and the Fig. 5
/// operation sequence is reproduced verbatim in this module's tests.
///
/// # Deviations from the paper
///
/// The paper sketches a backfill protocol for shrinks that land while
/// overbooked (§3.3.2 "Maintaining support for Shrink"). The evaluated
/// dataflow only retires whole tiles, so this implementation accepts a
/// shrink of the full occupancy while overbooked (equivalently
/// [`Tailor::reset_tile`]) and rejects partial overbooked shrinks.
///
/// # Example
///
/// ```
/// use tailors_eddo::{Tailor, TailorConfig};
///
/// let mut t = Tailor::new(TailorConfig::new(4, 2)?);
/// t.set_tile_len(6);
/// for v in 0..4 {
///     t.fill(v)?;
/// }
/// assert!(t.ow_fill(4).is_ok()); // split: resident [0, 1], stream the rest
/// assert_eq!(t.read(0)?, 0);     // resident hit — reuse preserved
/// assert_eq!(t.read(4)?, 4);     // served from the streaming window
/// assert!(t.read(2).is_err());   // bumped: must come around again
/// # Ok::<(), tailors_eddo::EddoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tailor<T> {
    config: TailorConfig,
    mode: Mode,
    /// Buffet-managed data; tile indices `0..resident.len()` (head-relative
    /// after shrinks).
    resident: Vec<T>,
    /// FIFO-managed streaming window: `(tile_index, data)` pairs, oldest
    /// first, at most `fifo_region` entries.
    window: VecDeque<(usize, T)>,
    /// Length of the current tile, if declared.
    tile_len: Option<usize>,
    /// Number of elements of the current tile delivered so far by `fill`.
    filled_this_tile: usize,
    /// Tile index the next auto-ordered `ow_fill` delivers.
    next_stream_index: usize,
    stats: AccessStats,
}

impl<T: Clone> Tailor<T> {
    /// Creates an empty Tailor.
    pub fn new(config: TailorConfig) -> Self {
        Tailor {
            config,
            mode: Mode::Buffet,
            resident: Vec::with_capacity(config.capacity()),
            window: VecDeque::with_capacity(config.fifo_region()),
            tile_len: None,
            filled_this_tile: 0,
            next_stream_index: 0,
            stats: AccessStats::default(),
        }
    }

    /// The configuration this Tailor was built with.
    pub fn config(&self) -> TailorConfig {
        self.config
    }

    /// Total capacity in elements.
    pub fn capacity(&self) -> usize {
        self.config.capacity()
    }

    /// Current occupancy (resident + streaming window).
    pub fn occupancy(&self) -> usize {
        self.resident.len() + self.window.len()
    }

    /// Remaining fill credits. Zero while overbooked (streaming replaces
    /// data instead of consuming credits).
    pub fn credits(&self) -> usize {
        match self.mode {
            Mode::Buffet => self.capacity() - self.resident.len(),
            Mode::Overbooked => 0,
        }
    }

    /// Whether the buffer has entered overbooked (split) operation for the
    /// current tile.
    pub fn is_overbooked(&self) -> bool {
        self.mode == Mode::Overbooked
    }

    /// Declares the length of the next tile and resets all tile state.
    ///
    /// This models the EDDO program-configuration step: the address
    /// generator knows each tile's extent before streaming it.
    pub fn set_tile_len(&mut self, len: usize) {
        self.tile_len = Some(len);
        self.mode = Mode::Buffet;
        self.resident.clear();
        self.window.clear();
        self.filled_this_tile = 0;
        self.next_stream_index = 0;
    }

    /// Discards all buffered data and tile state (retiring the current
    /// tile). Equivalent to a shrink of the full occupancy.
    pub fn reset_tile(&mut self) {
        self.stats.shrunk += self.occupancy() as u64;
        self.resident.clear();
        self.window.clear();
        self.mode = Mode::Buffet;
        self.tile_len = None;
        self.filled_this_tile = 0;
        self.next_stream_index = 0;
    }

    /// **Fill(Data)**: appends at the tail (buffet semantics).
    ///
    /// # Errors
    ///
    /// Returns [`EddoError::Full`] when no credits remain — the signal that
    /// the remainder of the tile must arrive via [`Tailor::ow_fill`].
    pub fn fill(&mut self, value: T) -> Result<(), EddoError> {
        if self.credits() == 0 {
            return Err(EddoError::Full);
        }
        self.resident.push(value);
        self.filled_this_tile += 1;
        self.stats.fills += 1;
        Ok(())
    }

    /// **OWFill(Data)**: the overwriting fill (§3.3.1).
    ///
    /// The first overwriting fill of a tile requires a full buffer, clears
    /// the FIFO region (dropping the most recently filled
    /// [`TailorConfig::fifo_region`] elements) and starts streaming. The
    /// element is implicitly the next tile index in stream order, cycling
    /// over the bumped portion `[resident_region, tile_len)`.
    ///
    /// # Errors
    ///
    /// * [`EddoError::TileLenUnknown`] if [`Tailor::set_tile_len`] was not
    ///   called.
    /// * [`EddoError::NotFull`] if the buffer still has credits (ordinary
    ///   fills and overwriting fills must never race, §3.3.2).
    pub fn ow_fill(&mut self, value: T) -> Result<(), EddoError> {
        let tile_len = self.tile_len.ok_or(EddoError::TileLenUnknown)?;
        if self.mode == Mode::Buffet {
            if self.resident.len() < self.capacity() {
                return Err(EddoError::NotFull);
            }
            // Initial overwriting fill: split the buffer. The last
            // `fifo_region` elements are sacrificed to the streaming window.
            self.resident.truncate(self.config.resident_region());
            self.mode = Mode::Overbooked;
            // The stream continues from where conventional fills stopped.
            self.next_stream_index = self.filled_this_tile;
        }
        if self.window.len() == self.config.fifo_region() {
            self.window.pop_front();
        }
        let index = self.next_stream_index;
        self.window.push_back((index, value));
        self.next_stream_index = if index + 1 >= tile_len {
            // Wrap to the first bumped tile index.
            self.config.resident_region()
        } else {
            index + 1
        };
        self.stats.ow_fills += 1;
        Ok(())
    }

    /// The tile index the next [`Tailor::ow_fill`] will deliver, if
    /// streaming has begun.
    pub fn next_stream_index(&self) -> Option<usize> {
        (self.mode == Mode::Overbooked).then_some(self.next_stream_index)
    }

    /// **Read(Index)**: reads the element at tile index `index`.
    ///
    /// # Errors
    ///
    /// * [`EddoError::NotYetFilled`] if the index is beyond everything
    ///   delivered so far (a hardware stall).
    /// * [`EddoError::Bumped`] if the index was bumped out and is not in the
    ///   current streaming window; the parent must stream it around again.
    pub fn read(&mut self, index: usize) -> Result<T, EddoError> {
        match self.locate(index) {
            Ok(value) => {
                self.stats.reads += 1;
                Ok(value)
            }
            Err(e) => {
                self.stats.read_misses += 1;
                Err(e)
            }
        }
    }

    /// **Update(Index, Data)**: overwrites the element at tile index
    /// `index`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tailor::read`].
    pub fn update(&mut self, index: usize, value: T) -> Result<(), EddoError> {
        if index < self.resident.len() {
            self.resident[index] = value;
            self.stats.updates += 1;
            return Ok(());
        }
        if let Some(pos) = self.window_pos(index) {
            self.window[pos].1 = value;
            self.stats.updates += 1;
            return Ok(());
        }
        Err(self.miss_kind(index))
    }

    /// **Shrink(Num)**: retires `num` elements from the head.
    ///
    /// # Errors
    ///
    /// * In buffet mode, [`EddoError::ShrinkTooLarge`] if `num` exceeds
    ///   occupancy.
    /// * In overbooked mode, only a shrink of the full occupancy is
    ///   supported (see the type-level docs); anything else returns
    ///   [`EddoError::ShrinkTooLarge`].
    pub fn shrink(&mut self, num: usize) -> Result<(), EddoError> {
        match self.mode {
            Mode::Buffet => {
                if num > self.resident.len() {
                    return Err(EddoError::ShrinkTooLarge {
                        requested: num,
                        occupancy: self.resident.len(),
                    });
                }
                self.resident.drain(..num);
                self.stats.shrunk += num as u64;
                Ok(())
            }
            Mode::Overbooked => {
                if num != self.occupancy() {
                    return Err(EddoError::ShrinkTooLarge {
                        requested: num,
                        occupancy: self.occupancy(),
                    });
                }
                self.reset_tile();
                Ok(())
            }
        }
    }

    /// The *FIFO head*: the boundary between the buffet-managed and
    /// FIFO-managed regions (equals [`TailorConfig::resident_region`]).
    pub fn fifo_head(&self) -> usize {
        self.config.resident_region()
    }

    /// The *FIFO offset* (§3.3.2): the difference between the tile index of
    /// the oldest data in the streaming window and the FIFO head. Zero when
    /// not overbooked or the window is empty.
    pub fn fifo_offset(&self) -> usize {
        match self.window.front() {
            Some(&(oldest, _)) => oldest - self.fifo_head(),
            None => 0,
        }
    }

    /// The buffer offset a read of tile index `index` resolves to, if the
    /// data is currently resident — the paper's `Index - FIFO Offset`
    /// translation (modulo capacity once the stream wraps).
    pub fn buffer_offset(&self, index: usize) -> Option<usize> {
        if index < self.resident.len() {
            return Some(index);
        }
        self.window_pos(index).map(|pos| self.fifo_head() + pos)
    }

    /// Position of tile index `index` in the streaming window, computed in
    /// O(1) by the paper's `Index - FIFO Offset` translation (§3.3.2)
    /// instead of scanning the window.
    ///
    /// The window always holds a run of *consecutive* stream indices
    /// (oldest first): `ow_fill` delivers indices in stream order — cycling
    /// over the bumped range `[resident_region, tile_len)` — and evicts
    /// from the front. So an index is present iff its cyclic distance from
    /// the oldest entry is within the window length; the stored index is
    /// still compared as a guard so protocol misuse degrades to a miss
    /// rather than wrong data.
    fn window_pos(&self, index: usize) -> Option<usize> {
        let &(oldest, _) = self.window.front()?;
        let tile_len = self.tile_len?;
        let head = self.fifo_head();
        if index < head || index >= tile_len {
            return None;
        }
        // Cyclic distance over the streaming period `tile_len - head`;
        // both operands lie in [head, tile_len), so adding one period
        // before the modulo keeps the subtraction non-negative.
        let period = tile_len - head;
        let pos = (index + period - oldest) % period;
        (self.window.get(pos)?.0 == index).then_some(pos)
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    fn locate(&self, index: usize) -> Result<T, EddoError> {
        if index < self.resident.len() {
            return Ok(self.resident[index].clone());
        }
        if let Some(pos) = self.window_pos(index) {
            return Ok(self.window[pos].1.clone());
        }
        Err(self.miss_kind(index))
    }

    fn miss_kind(&self, index: usize) -> EddoError {
        match self.mode {
            Mode::Buffet => EddoError::NotYetFilled { index },
            Mode::Overbooked => EddoError::Bumped { index },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_tailor() -> Tailor<char> {
        // Capacity 4, FIFO region 2, tile [a, b, c, d, e, f].
        let mut t = Tailor::new(TailorConfig::new(4, 2).unwrap());
        t.set_tile_len(6);
        t
    }

    /// Reproduces the paper's Fig. 5 operation sequence step by step,
    /// checking buffer contents, FIFO offset, and buffer offset.
    #[test]
    fn fig5_sequence() {
        let mut t = fig5_tailor();
        // Steps 1-2: Fill(a..d); Read(3) -> offset 3.
        for ch in ['a', 'b', 'c', 'd'] {
            t.fill(ch).unwrap();
        }
        assert_eq!(t.read(3).unwrap(), 'd');
        assert_eq!(t.buffer_offset(3), Some(3));
        assert!(!t.is_overbooked());

        // Step 3: OWFill(e) splits the buffer; FIFO offset = 2 (the region
        // size), FIFO head = 2.
        t.ow_fill('e').unwrap();
        assert!(t.is_overbooked());
        assert_eq!(t.fifo_head(), 2);
        assert_eq!(t.fifo_offset(), 2);

        // Step 4: Read(4) resolves to buffer offset 2 (Index - FIFO Offset).
        assert_eq!(t.read(4).unwrap(), 'e');
        assert_eq!(t.buffer_offset(4), Some(2));

        // Step 5-6: OWFill(f); Read(5) -> offset 3.
        t.ow_fill('f').unwrap();
        assert_eq!(t.fifo_offset(), 2);
        assert_eq!(t.read(5).unwrap(), 'f');
        assert_eq!(t.buffer_offset(5), Some(3));

        // Steps 7-8: reads below the FIFO head proceed unmodified.
        assert_eq!(t.read(1).unwrap(), 'b');
        assert_eq!(t.buffer_offset(1), Some(1));
        assert_eq!(t.read(0).unwrap(), 'a');

        // Step 9: OWFill(c) — the stream wraps past the end of the tile to
        // the first bumped index (2); the oldest window entry (e) drops and
        // the FIFO offset increments to 3.
        assert_eq!(t.next_stream_index(), Some(2));
        t.ow_fill('c').unwrap();
        assert_eq!(t.fifo_offset(), 3);

        // Step 10: Read(2) rolls over and accesses buffer offset 3.
        assert_eq!(t.read(2).unwrap(), 'c');
        assert_eq!(t.buffer_offset(2), Some(3));
        // `e` (index 4) is gone until it streams around again.
        assert_eq!(t.read(4), Err(EddoError::Bumped { index: 4 }));

        // Step 11: OWFill(d) replaces the data at the end of the tile (f)
        // and resets the FIFO offset to zero.
        t.ow_fill('d').unwrap();
        assert_eq!(t.fifo_offset(), 0);
        assert_eq!(t.buffer_offset(2), Some(2));
        assert_eq!(t.buffer_offset(3), Some(3));
        assert_eq!(t.read(3).unwrap(), 'd');
    }

    /// The paper's `Index - FIFO Offset` translation (taken modulo the
    /// streaming cycle period once the stream wraps; in Fig. 5 the period
    /// `6 - 2` happens to equal the capacity) agrees with the positional
    /// bookkeeping at every Fig. 5 step.
    #[test]
    fn index_translation_formula_agrees() {
        let mut t = fig5_tailor();
        for ch in ['a', 'b', 'c', 'd'] {
            t.fill(ch).unwrap();
        }
        let period = (6 - t.config().resident_region()) as isize;
        let check = |t: &Tailor<char>, index: usize| {
            if let Some(offset) = t.buffer_offset(index) {
                if index >= t.fifo_head() {
                    let oldest = (t.fifo_offset() + t.fifo_head()) as isize;
                    let formula =
                        t.fifo_head() + (index as isize - oldest).rem_euclid(period) as usize;
                    assert_eq!(offset, formula, "index {index}");
                }
            }
        };
        for ch in ['e', 'f', 'c', 'd', 'e', 'f', 'c'] {
            t.ow_fill(ch).unwrap();
            for idx in 0..6 {
                check(&t, idx);
            }
        }
    }

    #[test]
    fn fits_entirely_behaves_like_buffet() {
        let mut t = Tailor::new(TailorConfig::new(4, 2).unwrap());
        t.set_tile_len(3);
        for v in 0..3 {
            t.fill(v).unwrap();
        }
        assert!(!t.is_overbooked());
        for v in 0..3 {
            assert_eq!(t.read(v).unwrap(), v);
        }
        t.update(1, 99).unwrap();
        assert_eq!(t.read(1).unwrap(), 99);
        t.shrink(2).unwrap();
        assert_eq!(t.read(0).unwrap(), 2); // head-relative after shrink
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn ow_fill_requires_declared_tile_and_full_buffer() {
        let mut t: Tailor<u8> = Tailor::new(TailorConfig::new(4, 2).unwrap());
        assert_eq!(t.ow_fill(0), Err(EddoError::TileLenUnknown));
        t.set_tile_len(6);
        t.fill(0).unwrap();
        assert_eq!(t.ow_fill(1), Err(EddoError::NotFull));
    }

    #[test]
    fn fill_blocked_while_overbooked() {
        let mut t = Tailor::new(TailorConfig::new(4, 2).unwrap());
        t.set_tile_len(6);
        for v in 0..4 {
            t.fill(v).unwrap();
        }
        t.ow_fill(4).unwrap();
        // No credits while overbooked: conventional fills must not race
        // with overwriting fills.
        assert_eq!(t.credits(), 0);
        assert_eq!(t.fill(9), Err(EddoError::Full));
    }

    #[test]
    fn resident_data_survives_arbitrary_streaming() {
        let mut t = Tailor::new(TailorConfig::new(8, 3).unwrap());
        let tile: Vec<u32> = (0..20).collect();
        t.set_tile_len(tile.len());
        for &v in &tile[..8] {
            t.fill(v).unwrap();
        }
        for &v in &tile[8..] {
            t.ow_fill(v).unwrap();
        }
        // Stream several more cycles.
        for _ in 0..3 {
            let mut idx = t.next_stream_index().unwrap();
            for _ in 0..10 {
                t.ow_fill(tile[idx]).unwrap();
                idx = if idx + 1 >= tile.len() { 5 } else { idx + 1 };
            }
        }
        // Resident region (first capacity - fifo = 5 elements) always hits.
        for v in 0..5u32 {
            assert_eq!(t.read(v as usize).unwrap(), v);
        }
    }

    #[test]
    fn streaming_window_serves_in_order_scan() {
        // A full sequential re-traversal succeeds if the driver re-streams
        // each bumped element before reading it.
        let mut t = Tailor::new(TailorConfig::new(4, 2).unwrap());
        let tile: Vec<u32> = (0..10).collect();
        t.set_tile_len(tile.len());
        for &v in &tile[..4] {
            t.fill(v).unwrap();
        }
        // First traversal tail.
        for &v in &tile[4..] {
            t.ow_fill(v).unwrap();
            assert_eq!(t.read(v as usize).unwrap(), v);
        }
        // Second traversal: resident part hits, bumped part needs one
        // ow_fill per element (its tile index equals next_stream_index).
        for i in 0..tile.len() {
            if i < t.fifo_head() {
                assert_eq!(t.read(i).unwrap(), tile[i]);
            } else {
                match t.read(i) {
                    Ok(v) => assert_eq!(v, tile[i]),
                    Err(EddoError::Bumped { .. }) => {
                        while t.buffer_offset(i).is_none() {
                            let idx = t.next_stream_index().unwrap();
                            t.ow_fill(tile[idx]).unwrap();
                        }
                        assert_eq!(t.read(i).unwrap(), tile[i]);
                    }
                    Err(e) => panic!("unexpected error {e:?}"),
                }
            }
        }
    }

    #[test]
    fn update_reaches_both_regions() {
        let mut t = Tailor::new(TailorConfig::new(4, 2).unwrap());
        t.set_tile_len(6);
        for v in 0..4 {
            t.fill(v).unwrap();
        }
        t.ow_fill(4).unwrap();
        t.update(0, 100).unwrap(); // resident
        t.update(4, 104).unwrap(); // window
        assert_eq!(t.read(0).unwrap(), 100);
        assert_eq!(t.read(4).unwrap(), 104);
        assert_eq!(t.update(2, 0), Err(EddoError::Bumped { index: 2 }));
    }

    #[test]
    fn overbooked_shrink_must_be_total() {
        let mut t = Tailor::new(TailorConfig::new(4, 2).unwrap());
        t.set_tile_len(6);
        for v in 0..4 {
            t.fill(v).unwrap();
        }
        t.ow_fill(4).unwrap();
        assert!(t.shrink(1).is_err());
        let occ = t.occupancy();
        t.shrink(occ).unwrap();
        assert_eq!(t.occupancy(), 0);
        assert!(!t.is_overbooked());
    }

    #[test]
    fn config_validation() {
        assert!(TailorConfig::new(0, 0).is_err());
        assert!(TailorConfig::new(4, 0).is_err());
        assert!(TailorConfig::new(4, 4).is_err());
        assert!(TailorConfig::new(4, 5).is_err());
        let c = TailorConfig::new(4, 2).unwrap();
        assert_eq!(c.resident_region(), 2);
    }

    #[test]
    fn for_latency_sizes_region() {
        let c = TailorConfig::for_latency(1024, 10, 4).unwrap();
        assert_eq!(c.fifo_region(), 80);
        // Clamped when the buffer is small.
        let small = TailorConfig::for_latency(8, 100, 4).unwrap();
        assert_eq!(small.fifo_region(), 7);
        assert!(TailorConfig::for_latency(1, 1, 1).is_err());
    }

    #[test]
    fn stats_track_ow_fills_and_misses() {
        let mut t = Tailor::new(TailorConfig::new(4, 2).unwrap());
        t.set_tile_len(6);
        for v in 0..4 {
            t.fill(v).unwrap();
        }
        t.ow_fill(4).unwrap();
        let _ = t.read(2); // bumped -> miss
        let _ = t.read(0); // hit
        let s = t.stats();
        assert_eq!(s.fills, 4);
        assert_eq!(s.ow_fills, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.parent_traffic(), 5);
    }
}
