//! Scientific-computing scenario: forming normal equations for a sparse
//! least-squares solve.
//!
//! Iterative solvers form `AᵀA` (here `A·Aᵀ` on the transposed system) from
//! FEM-style matrices — the top half of the paper's Table 2. This example
//! compares all four tiling strategies from Table 1 on a banded
//! linear-system matrix and then simulates the three accelerator variants.
//!
//! Run with: `cargo run --release --example linear_solver`

use tailors::core::swiftiles::SwiftilesConfig;
use tailors::core::TilingStrategy;
use tailors::sim::{ArchConfig, Variant};
use tailors::tensor::gen::GenSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An rma10-like system matrix at 1/4 scale.
    let a = GenSpec::banded(12_000, 12_000, 600_000).seed(9).generate();
    let profile = a.profile();
    println!(
        "system matrix: {}x{}, {} nonzeros",
        profile.nrows(),
        profile.ncols(),
        profile.nnz()
    );

    let arch = ArchConfig::extensor().scaled(0.25);
    let capacity = arch.tile_capacity();

    println!();
    println!("Table-1 style strategy comparison (buffer = {capacity} nnz):");
    let strategies: [(&str, TilingStrategy); 4] = [
        ("uniform shape", TilingStrategy::UniformShape),
        ("prescient", TilingStrategy::PrescientUniformShape),
        ("uniform occupancy", TilingStrategy::UniformOccupancy),
        (
            "overbooking y=10%",
            TilingStrategy::Overbooked(SwiftilesConfig::new(0.10, 10)?),
        ),
    ];
    for (label, strategy) in &strategies {
        let choice = strategy.choose(&profile, capacity);
        println!(
            "  {label:<18}: {:>6} tiles, utilization {:>5.1}%, overbooked {:>4.1}%, \
             tax {} element-touches",
            choice.n_tiles,
            100.0 * choice.mean_utilization,
            100.0 * choice.overbooking_rate,
            choice.tax.total()
        );
    }

    println!();
    println!("accelerator simulation (Z = A·Aᵀ):");
    let n = Variant::ExTensorN.run(&profile, &arch);
    for v in [Variant::ExTensorP, Variant::default_ob()] {
        let m = v.run(&profile, &arch);
        println!(
            "  {:<11}: {:.2}x speedup, {:.2}x energy vs ExTensor-N (bound by {})",
            v.name(),
            m.speedup_over(&n),
            m.energy_gain_over(&n),
            m.bound_by
        );
    }
    Ok(())
}
