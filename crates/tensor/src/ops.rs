//! Sparse kernels: the fast SPA (sparse-accumulator) SpMSpM used across the
//! workspace, plus retained reference implementations used as oracles.
//!
//! Gustavson's row-wise algorithm computes row `m` of `Z = A·B` as a linear
//! combination of B rows. The classic formulation accumulates each output
//! row in a *dense scratch array* (the SPA): `O(ncols)` storage reused for
//! every row, giving O(1) accumulation per effectual multiply with no
//! hashing, no per-element searches, and no allocation in the hot loop.
//! [`spmspm_into`] exposes the allocation-reusing entry point;
//! [`SpmspmScratch`] carries the scratch between calls.
//!
//! The seed's hash-accumulator kernel lives on in [`reference`] — it is the
//! obviously-correct ground truth the property tests and benchmarks compare
//! against, never the kernel anything hot calls.

use crate::{CsrMatrix, TensorError};

/// Reusable workspace for [`spmspm_into`]: a dense accumulator spanning the
/// output's columns plus the touched-coordinate list.
///
/// Reusing one scratch across many multiplies (the tiled engines do this
/// per row panel) keeps the hot path allocation-free after the first call.
///
/// # Example
///
/// ```
/// use tailors_tensor::ops::{spmspm_into, SpmspmScratch};
/// use tailors_tensor::CsrMatrix;
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
/// let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, 4.0)]).unwrap();
/// let mut scratch = SpmspmScratch::new();
/// let z1 = spmspm_into(&a, &b, &mut scratch)?;
/// let z2 = spmspm_into(&b, &a, &mut scratch)?; // same scratch, no realloc
/// assert_eq!(z1.get(0, 1), Some(3.0));
/// assert_eq!(z2.get(0, 1), Some(6.0));
/// assert_eq!(z2.get(1, 0), Some(4.0));
/// # Ok::<(), tailors_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpmspmScratch {
    /// Dense per-column accumulator; entries outside `touched` are 0.0.
    dense: Vec<f64>,
    /// Columns written this row (may contain duplicates after a transient
    /// exact cancellation; emission deduplicates).
    touched: Vec<u32>,
}

impl SpmspmScratch {
    /// Creates an empty scratch; it grows to the first multiply's width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current dense-accumulator width in columns.
    pub fn width(&self) -> usize {
        self.dense.len()
    }

    fn ensure_width(&mut self, ncols: usize) {
        if self.dense.len() < ncols {
            self.dense.resize(ncols, 0.0);
        }
    }
}

/// Sparse matrix-matrix multiply `Z = A·B` (Gustavson + dense SPA
/// accumulator).
///
/// Output values are bit-identical to [`reference::spmspm`]: contributions
/// to each output coordinate are accumulated in the same (row-of-A) order,
/// and entries whose sum is exactly `0.0` are dropped, as the reference
/// does.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
///
/// # Example
///
/// ```
/// use tailors_tensor::{CsrMatrix, ops::spmspm};
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
/// let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, 4.0)]).unwrap();
/// let z = spmspm(&a, &b)?;
/// assert_eq!(z.get(0, 1), Some(3.0));
/// assert_eq!(z.get(1, 0), Some(8.0));
/// # Ok::<(), tailors_tensor::TensorError>(())
/// ```
pub fn spmspm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, TensorError> {
    let mut scratch = SpmspmScratch::new();
    spmspm_into(a, b, &mut scratch)
}

/// [`spmspm`] with caller-owned scratch, reusing its allocations.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
pub fn spmspm_into(
    a: &CsrMatrix,
    b: &CsrMatrix,
    scratch: &mut SpmspmScratch,
) -> Result<CsrMatrix, TensorError> {
    if a.ncols() != b.nrows() {
        return Err(TensorError::ShapeMismatch {
            left: (a.nrows(), a.ncols()),
            right: (b.nrows(), b.ncols()),
        });
    }
    scratch.ensure_width(b.ncols());
    let dense = &mut scratch.dense;
    let touched = &mut scratch.touched;

    let b_row_ptr = b.row_ptr();
    let b_cols = b.col_indices();
    let b_vals = b.values();

    // Symbolic upper bound on the output size would need a second pass;
    // start from A's nnz (every multiply has ≥1 output per A row on
    // average for the workloads here) and let Vec growth amortize.
    let mut out_row_ptr: Vec<usize> = Vec::with_capacity(a.nrows() + 1);
    let mut out_cols: Vec<u32> = Vec::with_capacity(a.nnz());
    let mut out_vals: Vec<f64> = Vec::with_capacity(a.nnz());
    out_row_ptr.push(0);

    for m in 0..a.nrows() {
        touched.clear();
        let row_a = a.row(m);
        for (&k, &va) in row_a.coords().iter().zip(row_a.values()) {
            let (lo, hi) = (b_row_ptr[k as usize], b_row_ptr[k as usize + 1]);
            for (&n, &vb) in b_cols[lo..hi].iter().zip(&b_vals[lo..hi]) {
                let slot = &mut dense[n as usize];
                // `0.0` doubles as the "untouched" marker. A transient
                // exact cancellation re-pushes `n`; emission below
                // deduplicates because the first visit resets the slot.
                if *slot == 0.0 {
                    touched.push(n);
                }
                *slot += va * vb;
            }
        }
        touched.sort_unstable();
        for &n in touched.iter() {
            let v = core::mem::take(&mut dense[n as usize]);
            if v != 0.0 {
                out_cols.push(n);
                out_vals.push(v);
            }
        }
        out_row_ptr.push(out_cols.len());
    }

    Ok(CsrMatrix::from_sorted_parts_unchecked(
        a.nrows(),
        b.ncols(),
        out_row_ptr,
        out_cols,
        out_vals,
    ))
}

/// `Z = A·Aᵀ`, the paper's evaluation workload (§5.3), on the SPA kernel.
pub fn spmspm_a_at(a: &CsrMatrix) -> CsrMatrix {
    let at = a.transpose();
    spmspm(a, &at).expect("A and Aᵀ always have compatible shapes")
}

/// Counts effectual multiplies and output nonzeros of `A·B` symbolically —
/// a marker-scratch pass over coordinates only, with no value arithmetic
/// and no materialized output.
///
/// `output_nnz` is the *structural* nonzero count of the product (exact
/// numerical cancellations are not subtracted; the generators guarantee
/// positive values, so none occur in the evaluation workloads).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
pub fn count_work(a: &CsrMatrix, b: &CsrMatrix) -> Result<WorkCounts, TensorError> {
    if a.ncols() != b.nrows() {
        return Err(TensorError::ShapeMismatch {
            left: (a.nrows(), a.ncols()),
            right: (b.nrows(), b.ncols()),
        });
    }
    let b_row_ptr = b.row_ptr();
    let b_cols = b.col_indices();
    // Generation-stamped marker scratch: bumping `generation` invalidates
    // every stamp at once, so the array is never re-cleared between rows.
    let mut marks: Vec<u64> = vec![0; b.ncols()];
    let mut generation: u64 = 0;
    let mut mults: u128 = 0;
    let mut output_nnz: u64 = 0;
    for m in 0..a.nrows() {
        generation += 1;
        for &k in a.row(m).coords() {
            let (lo, hi) = (b_row_ptr[k as usize], b_row_ptr[k as usize + 1]);
            mults += (hi - lo) as u128;
            for &n in &b_cols[lo..hi] {
                let mark = &mut marks[n as usize];
                if *mark != generation {
                    *mark = generation;
                    output_nnz += 1;
                }
            }
        }
    }
    Ok(WorkCounts { mults, output_nnz })
}

/// Work counts for a sparse multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkCounts {
    /// Number of effectual scalar multiplications.
    pub mults: u128,
    /// Number of structural nonzeros in the output.
    pub output_nnz: u64,
}

/// Returns `true` if two matrices are elementwise equal within `tol`.
pub fn approx_eq(a: &CsrMatrix, b: &CsrMatrix, tol: f64) -> bool {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return false;
    }
    // Every entry of a must be matched in b and vice versa.
    let within = |x: &CsrMatrix, y: &CsrMatrix| {
        x.iter()
            .all(|(r, c, v)| (y.get(r, c).unwrap_or(0.0) - v).abs() <= tol)
    };
    within(a, b) && within(b, a)
}

pub mod reference {
    //! The seed's hash-accumulator kernels, retained verbatim as oracles
    //! for property tests and before/after benchmarks.

    use std::collections::HashMap;

    use crate::{CooMatrix, CsrMatrix, TensorError};

    /// Reference `Z = A·B`: Gustavson with a `HashMap` accumulator
    /// (the seed implementation of `ops::spmspm`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
    pub fn spmspm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, TensorError> {
        if a.ncols() != b.nrows() {
            return Err(TensorError::ShapeMismatch {
                left: (a.nrows(), a.ncols()),
                right: (b.nrows(), b.ncols()),
            });
        }
        let mut coo = CooMatrix::new(a.nrows(), b.ncols());
        let mut acc: HashMap<u32, f64> = HashMap::new();
        for m in 0..a.nrows() {
            acc.clear();
            let row_a = a.row(m);
            for (&k, &va) in row_a.coords().iter().zip(row_a.values()) {
                let row_b = b.row(k as usize);
                for (&n, &vb) in row_b.coords().iter().zip(row_b.values()) {
                    *acc.entry(n).or_insert(0.0) += va * vb;
                }
            }
            for (&n, &v) in &acc {
                if v != 0.0 {
                    coo.push(m, n as usize, v)
                        .expect("accumulator coordinates are in bounds");
                }
            }
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// Reference `Z = A·Aᵀ` on the hash-accumulator kernel.
    pub fn spmspm_a_at(a: &CsrMatrix) -> CsrMatrix {
        let at = a.transpose();
        spmspm(a, &at).expect("A and Aᵀ always have compatible shapes")
    }

    /// Reference work counts by materializing the full product
    /// (the seed implementation of `ops::count_work`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
    pub fn count_work(a: &CsrMatrix, b: &CsrMatrix) -> Result<super::WorkCounts, TensorError> {
        let z = spmspm(a, b)?;
        let mut mults: u128 = 0;
        for m in 0..a.nrows() {
            let row_a = a.row(m);
            for &k in row_a.coords() {
                mults += b.row_nnz(k as usize) as u128;
            }
        }
        Ok(super::WorkCounts {
            mults,
            output_nnz: z.nnz() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mul(a: &CsrMatrix, b: &CsrMatrix) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; b.ncols()]; a.nrows()];
        for (m, k, va) in a.iter() {
            for (k2, n, vb) in b.iter() {
                if k == k2 {
                    out[m][n] += va * vb;
                }
            }
        }
        out
    }

    #[test]
    fn spmspm_matches_dense_reference() {
        let a = CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, -1.0),
                (2, 3, 0.5),
                (2, 0, 3.0),
            ],
        )
        .unwrap();
        let b = CsrMatrix::from_triplets(
            4,
            3,
            &[
                (0, 0, 2.0),
                (1, 2, 4.0),
                (2, 1, -3.0),
                (3, 0, 1.0),
                (3, 2, 1.0),
            ],
        )
        .unwrap();
        let z = spmspm(&a, &b).unwrap();
        let dense = dense_mul(&a, &b);
        for (r, row) in dense.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert!(
                    (z.get(r, c).unwrap_or(0.0) - v).abs() < 1e-12,
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn spmspm_matches_hash_reference_bitwise() {
        let a = crate::gen::GenSpec::power_law(300, 300, 3_000)
            .seed(7)
            .generate();
        let z_spa = spmspm_a_at(&a);
        let z_ref = reference::spmspm_a_at(&a);
        assert_eq!(z_spa, z_ref, "SPA and hash kernels must agree bitwise");
    }

    #[test]
    fn spmspm_into_reuses_scratch_across_shapes() {
        let a = CsrMatrix::from_triplets(2, 5, &[(0, 4, 1.0), (1, 0, 2.0)]).unwrap();
        let b = CsrMatrix::from_triplets(5, 3, &[(4, 2, 3.0), (0, 0, 1.0)]).unwrap();
        let mut scratch = SpmspmScratch::new();
        let z1 = spmspm_into(&a, &b, &mut scratch).unwrap();
        assert_eq!(z1.get(0, 2), Some(3.0));
        assert_eq!(z1.get(1, 0), Some(2.0));
        assert_eq!(scratch.width(), 3);
        // A wider multiply grows the scratch in place...
        let wide = CsrMatrix::from_triplets(3, 9, &[(0, 8, 1.0), (2, 0, 2.0)]).unwrap();
        let tall = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 4.0)]).unwrap();
        let z2 = spmspm_into(&tall, &wide, &mut scratch).unwrap();
        assert_eq!(scratch.width(), 9);
        assert_eq!(z2.get(0, 8), Some(1.0));
        assert_eq!(z2.get(1, 0), Some(8.0));
        // ...and a narrower one reuses it untouched.
        let z3 = spmspm_into(&a, &b, &mut scratch).unwrap();
        assert_eq!(scratch.width(), 9);
        assert_eq!(z3, z1);
    }

    #[test]
    fn transient_cancellation_keeps_output_sorted_and_deduped() {
        // Row 0 of A hits column 0 of Z through two paths that cancel
        // exactly, then a third that revives it: the touched list sees
        // column 0 twice, emission must still produce one sorted entry.
        let a = CsrMatrix::from_triplets(1, 3, &[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)]).unwrap();
        let b =
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 5.0), (1, 0, -5.0), (2, 0, 2.0), (2, 1, 1.0)])
                .unwrap();
        let z = spmspm(&a, &b).unwrap();
        assert_eq!(z.nnz(), 2);
        assert_eq!(z.get(0, 0), Some(2.0));
        assert_eq!(z.get(0, 1), Some(1.0));
        assert_eq!(z.row(0).coords(), &[0, 1]);
    }

    #[test]
    fn exact_zero_outputs_are_dropped_like_reference() {
        let a = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let b = CsrMatrix::from_triplets(2, 1, &[(0, 0, 3.0), (1, 0, -3.0)]).unwrap();
        let z = spmspm(&a, &b).unwrap();
        let z_ref = reference::spmspm(&a, &b).unwrap();
        assert_eq!(z.nnz(), 0);
        assert_eq!(z_ref.nnz(), 0);
    }

    #[test]
    fn spmspm_rejects_shape_mismatch() {
        let a = CsrMatrix::new(2, 3);
        let b = CsrMatrix::new(2, 3);
        assert!(matches!(
            spmspm(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            count_work(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn a_at_is_symmetric() {
        let a = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 0, 3.0),
                (3, 3, 4.0),
                (0, 3, -1.0),
            ],
        )
        .unwrap();
        let z = spmspm_a_at(&a);
        for (r, c, v) in z.iter() {
            assert!((z.get(c, r).unwrap_or(0.0) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn count_work_matches_profile_formula() {
        let a = CsrMatrix::from_triplets(
            5,
            5,
            &[
                (0, 0, 1.0),
                (1, 0, 1.0),
                (2, 0, 1.0),
                (2, 3, 1.0),
                (4, 3, 1.0),
            ],
        )
        .unwrap();
        let at = a.transpose();
        let counts = count_work(&a, &at).unwrap();
        assert_eq!(counts.mults, a.profile().mults_a_at());
    }

    #[test]
    fn count_work_matches_reference_on_random_input() {
        let a = crate::gen::GenSpec::power_law(200, 200, 2_000)
            .seed(5)
            .generate();
        let at = a.transpose();
        let fast = count_work(&a, &at).unwrap();
        let slow = reference::count_work(&a, &at).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn approx_eq_detects_differences() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0 + 1e-13)]).unwrap();
        let c = CsrMatrix::from_triplets(2, 2, &[(1, 1, 1.0)]).unwrap();
        assert!(approx_eq(&a, &b, 1e-9));
        assert!(!approx_eq(&a, &c, 1e-9));
        assert!(!approx_eq(&a, &CsrMatrix::new(3, 3), 1e-9));
    }

    #[test]
    fn multiply_by_empty_is_empty() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        let z = spmspm(&a, &CsrMatrix::new(2, 2)).unwrap();
        assert_eq!(z.nnz(), 0);
        let e = spmspm(&CsrMatrix::new(0, 0), &CsrMatrix::new(0, 0)).unwrap();
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.nrows(), 0);
    }
}
