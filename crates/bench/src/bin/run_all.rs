//! Runs every figure/table reproduction in sequence (the full evaluation).
//!
//! Usage: `cargo run --release -p tailors-bench --bin run_all [scale]`
//!
//! At `scale = 1.0` (default) the workloads are generated at the paper's
//! full dimensions; expect a few minutes, dominated by tensor generation.

use std::process::Command;

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "1.0".to_string());
    let bins = [
        "table2", "fig1", "table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        "fig13",
    ];
    for bin in bins {
        println!();
        println!("==================== {bin} ====================");
        let status = Command::new(std::env::current_exe().expect("self path")
            .parent().expect("bin dir").join(bin))
            .arg(&scale)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("failed to launch {bin}: {e}"),
        }
    }
}
