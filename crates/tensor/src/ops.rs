//! Reference sparse kernels.
//!
//! These are straightforward, obviously-correct implementations used as
//! ground truth for the functional accelerator engine, not as fast kernels.

use std::collections::HashMap;

use crate::{CooMatrix, CsrMatrix, TensorError};

/// Reference sparse matrix-matrix multiply `Z = A·B` (Gustavson's row-wise
/// algorithm with a hash accumulator).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
///
/// # Example
///
/// ```
/// use tailors_tensor::{CsrMatrix, ops::spmspm};
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
/// let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, 4.0)]).unwrap();
/// let z = spmspm(&a, &b)?;
/// assert_eq!(z.get(0, 1), Some(3.0));
/// assert_eq!(z.get(1, 0), Some(8.0));
/// # Ok::<(), tailors_tensor::TensorError>(())
/// ```
pub fn spmspm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, TensorError> {
    if a.ncols() != b.nrows() {
        return Err(TensorError::ShapeMismatch {
            left: (a.nrows(), a.ncols()),
            right: (b.nrows(), b.ncols()),
        });
    }
    let mut coo = CooMatrix::new(a.nrows(), b.ncols());
    let mut acc: HashMap<u32, f64> = HashMap::new();
    for m in 0..a.nrows() {
        acc.clear();
        let row_a = a.row(m);
        for (&k, &va) in row_a.coords().iter().zip(row_a.values()) {
            let row_b = b.row(k as usize);
            for (&n, &vb) in row_b.coords().iter().zip(row_b.values()) {
                *acc.entry(n).or_insert(0.0) += va * vb;
            }
        }
        for (&n, &v) in &acc {
            if v != 0.0 {
                coo.push(m, n as usize, v)
                    .expect("accumulator coordinates are in bounds");
            }
        }
    }
    Ok(CsrMatrix::from_coo(&coo))
}

/// Reference `Z = A·Aᵀ`, the paper's evaluation workload (§5.3).
pub fn spmspm_a_at(a: &CsrMatrix) -> CsrMatrix {
    let at = a.transpose();
    spmspm(a, &at).expect("A and Aᵀ always have compatible shapes")
}

/// Counts effectual multiplies and output nonzeros of `A·B` by brute force.
///
/// Used to validate the O(K) analytical counts in
/// [`crate::MatrixProfile::mults_a_b`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
pub fn count_work(a: &CsrMatrix, b: &CsrMatrix) -> Result<WorkCounts, TensorError> {
    let z = spmspm(a, b)?;
    let mut mults: u128 = 0;
    for m in 0..a.nrows() {
        let row_a = a.row(m);
        for &k in row_a.coords() {
            mults += b.row_nnz(k as usize) as u128;
        }
    }
    Ok(WorkCounts {
        mults,
        output_nnz: z.nnz() as u64,
    })
}

/// Work counts for a sparse multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkCounts {
    /// Number of effectual scalar multiplications.
    pub mults: u128,
    /// Number of structural nonzeros in the output.
    pub output_nnz: u64,
}

/// Returns `true` if two matrices are elementwise equal within `tol`.
pub fn approx_eq(a: &CsrMatrix, b: &CsrMatrix, tol: f64) -> bool {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return false;
    }
    // Every entry of a must be matched in b and vice versa.
    let within = |x: &CsrMatrix, y: &CsrMatrix| {
        x.iter()
            .all(|(r, c, v)| (y.get(r, c).unwrap_or(0.0) - v).abs() <= tol)
    };
    within(a, b) && within(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mul(a: &CsrMatrix, b: &CsrMatrix) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; b.ncols()]; a.nrows()];
        for (m, k, va) in a.iter() {
            for (k2, n, vb) in b.iter() {
                if k == k2 {
                    out[m][n] += va * vb;
                }
            }
        }
        out
    }

    #[test]
    fn spmspm_matches_dense_reference() {
        let a = CsrMatrix::from_triplets(
            3,
            4,
            &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0), (2, 3, 0.5), (2, 0, 3.0)],
        )
        .unwrap();
        let b = CsrMatrix::from_triplets(
            4,
            3,
            &[(0, 0, 2.0), (1, 2, 4.0), (2, 1, -3.0), (3, 0, 1.0), (3, 2, 1.0)],
        )
        .unwrap();
        let z = spmspm(&a, &b).unwrap();
        let dense = dense_mul(&a, &b);
        for (r, row) in dense.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert!(
                    (z.get(r, c).unwrap_or(0.0) - v).abs() < 1e-12,
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn spmspm_rejects_shape_mismatch() {
        let a = CsrMatrix::new(2, 3);
        let b = CsrMatrix::new(2, 3);
        assert!(matches!(
            spmspm(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn a_at_is_symmetric() {
        let a = CsrMatrix::from_triplets(
            4,
            4,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0), (3, 3, 4.0), (0, 3, -1.0)],
        )
        .unwrap();
        let z = spmspm_a_at(&a);
        for (r, c, v) in z.iter() {
            assert!((z.get(c, r).unwrap_or(0.0) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn count_work_matches_profile_formula() {
        let a = CsrMatrix::from_triplets(
            5,
            5,
            &[(0, 0, 1.0), (1, 0, 1.0), (2, 0, 1.0), (2, 3, 1.0), (4, 3, 1.0)],
        )
        .unwrap();
        let at = a.transpose();
        let counts = count_work(&a, &at).unwrap();
        assert_eq!(counts.mults, a.profile().mults_a_at());
    }

    #[test]
    fn approx_eq_detects_differences() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0 + 1e-13)]).unwrap();
        let c = CsrMatrix::from_triplets(2, 2, &[(1, 1, 1.0)]).unwrap();
        assert!(approx_eq(&a, &b, 1e-9));
        assert!(!approx_eq(&a, &c, 1e-9));
        assert!(!approx_eq(&a, &CsrMatrix::new(3, 3), 1e-9));
    }

    #[test]
    fn multiply_by_empty_is_empty() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        let z = spmspm(&a, &CsrMatrix::new(2, 2)).unwrap();
        assert_eq!(z.nnz(), 0);
    }
}
