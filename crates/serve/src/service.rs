//! The long-lived simulation service: request/response types, the cache
//! tiers, and the batched submission path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tailors_sim::functional::{run_with_threads, EngineError, FunctionalConfig, FunctionalResult};
use tailors_sim::{
    run_balanced, ArchConfig, CostModel, ExecutionPlan, GridMode, MemBudget, RunMetrics, TilePlan,
    Variant,
};
use tailors_tensor::{CsrMatrix, MatrixProfile};
use tailors_workloads::{generate_cached, Workload};

use crate::lru::Lru;
use crate::sync::PoisonFreeMutex;

/// The identity of a matrix for cache keying: its stable content hash
/// (see [`CsrMatrix::content_hash`]) plus shape and nonzero count, so a
/// 64-bit hash collision additionally has to match the matrix's
/// dimensions before two distinct matrices could share cached artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixId {
    /// Stable content hash of the matrix.
    pub hash: u64,
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
}

impl MatrixId {
    /// The identity of `a` (one linear hashing pass).
    pub fn of(a: &CsrMatrix) -> MatrixId {
        MatrixId {
            hash: a.content_hash(),
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
        }
    }
}

/// A workload spec's identity — the same fields the generation cache keys
/// by, so equal specs resolve to one [`MatrixId`] without regeneration.
/// Shared with the shard router, which memoizes spec → identity the same
/// way to route requests by content hash without regenerating tensors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SpecKey {
    name: &'static str,
    seed: u64,
    nrows: usize,
    ncols: usize,
    target_nnz: usize,
}

impl SpecKey {
    pub(crate) fn of(wl: &Workload) -> SpecKey {
        SpecKey {
            name: wl.name,
            seed: wl.seed,
            nrows: wl.nrows,
            ncols: wl.ncols,
            target_nnz: wl.target_nnz,
        }
    }
}

/// The LPT scheduling cost of one analytical request — the shared
/// currency of [`SimService::submit_batch`]'s thread bins and the shard
/// router's per-connection bins. Workload size scales the shared
/// per-request work (generation/hashing/profiling when cold, row-panel
/// sums always). A cold request's dominant cost is variant planning,
/// which differs sharply by variant: overbooked plans run Swiftiles
/// occupancy sampling and prescient plans scan candidate panel heights,
/// while ExTensor-N's plan is constant-time — so same-size requests must
/// not cost the same or one bin inherits all the sampling.
pub(crate) fn request_cost(wl: &Workload, variant: Variant) -> u128 {
    let planning = match variant {
        Variant::ExTensorN => 1,
        Variant::ExTensorP => 2,
        Variant::ExTensorOB { .. } => 4,
        // `Variant` is non_exhaustive; price future variants like the
        // prescient planner.
        _ => 2,
    };
    (wl.target_nnz as u128 + wl.nrows as u128 + 1) * planning
}

/// One analytical simulation request: a workload (already at its final
/// dimensions), the variant to plan with, the architecture, and the
/// software execution-plan knobs.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// The workload spec; its tensor resolves through the generation
    /// cache and its identity keys the profile/plan tiers.
    pub workload: Workload,
    /// The accelerator variant to plan and simulate.
    pub variant: Variant,
    /// The architecture to plan against.
    pub arch: ArchConfig,
    /// Per-thread scratch budget for the induced execution plan.
    pub budget: MemBudget,
    /// Functional grid decomposition recorded in the scratch stats.
    pub grid: GridMode,
    /// Opt-in budget-aware auto-tiling: derive the execution plan through
    /// [`Variant::auto_execution_plan`] (panel height co-optimized
    /// against `budget`) instead of fixing it at the variant's tile
    /// height. Part of the plan-tier cache key — auto and fixed plans for
    /// the same (matrix, variant, arch, budget) are distinct artifacts.
    pub auto_plan: bool,
}

impl SimRequest {
    /// A request for suite workload `name` at `scale` (workload and
    /// architecture scaled together, as the bench suite does), with an
    /// unbounded budget, the default grid, and fixed (non-auto) tiling.
    /// `None` if `name` is not a suite workload.
    pub fn suite(name: &str, scale: f64, variant: Variant) -> Option<SimRequest> {
        Some(SimRequest {
            workload: tailors_workloads::by_name(name)?.scaled(scale),
            variant,
            arch: ArchConfig::extensor().scaled(scale),
            budget: MemBudget::Unbounded,
            grid: GridMode::default(),
            auto_plan: false,
        })
    }
}

/// Which cache tiers a request hit. Observability metadata only: the
/// response *payload* (metrics or functional result) is bit-identical
/// whether a tier hit or missed, so hit flags are excluded from the
/// determinism guarantees (they legitimately vary with cache state and
/// submission interleaving).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheHits {
    /// The workload spec had already been resolved to a matrix identity
    /// (no tensor regeneration or rehash was needed).
    pub tensor: bool,
    /// The occupancy profile came from the profile tier.
    pub profile: bool,
    /// The tile + execution plans came from the plan tier.
    pub plan: bool,
}

/// One analytical response: the workload's name, the full run metrics
/// (scratch stats included, under [`RunMetrics::scratch`]), and the cache
/// tiers the request hit.
#[derive(Debug, Clone)]
pub struct SimResponse {
    /// Name of the workload the request named.
    pub name: &'static str,
    /// The simulated metrics — bit-identical to a cold
    /// [`Variant::run_gridded`] call on the same inputs.
    pub metrics: RunMetrics,
    /// Cache observability (not part of the deterministic payload).
    pub hits: CacheHits,
}

/// One functional-engine request: the service resolves the tensor through
/// the generation cache, takes the tiling from the variant's (cached)
/// plan, and executes the dataflow through real buffers.
#[derive(Debug, Clone)]
pub struct FunctionalRequest {
    /// The workload spec.
    pub workload: Workload,
    /// The variant whose tile plan shapes the functional tiling.
    pub variant: Variant,
    /// The architecture: sizes the operand buffer
    /// ([`ArchConfig::tile_capacity`]) and the Tailors FIFO region
    /// ([`ArchConfig::gb_fifo_region`]) as well as the tile plan.
    pub arch: ArchConfig,
    /// Per-thread dense-scratch budget for the engine.
    pub budget: MemBudget,
    /// Functional grid decomposition.
    pub grid: GridMode,
    /// Opt-in budget-aware auto-tiling: take the panel height from the
    /// variant's (cached) auto execution plan instead of its tile plan.
    /// The served result is bit-identical to a direct engine run at the
    /// returned configuration's tiling, as always.
    pub auto_plan: bool,
    /// Worker threads for the engine (results never depend on this).
    pub threads: usize,
}

/// One functional response: the exact engine configuration the service
/// derived (so callers can diff against
/// [`reference_run`](tailors_sim::functional::reference_run) under the
/// *same* configuration) and the engine's result.
#[derive(Debug, Clone)]
pub struct FunctionalResponse {
    /// The derived engine configuration.
    pub config: FunctionalConfig,
    /// The engine result — bit-identical to a direct
    /// [`run_with_threads`] call with `config` at any thread count.
    pub result: FunctionalResult,
    /// Cache observability (not part of the deterministic payload).
    pub hits: CacheHits,
}

/// Cache-tier capacities and planner configuration for a [`SimService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum cached occupancy profiles (one per matrix identity).
    pub profile_capacity: usize,
    /// Maximum cached plan pairs (one per matrix × variant × arch ×
    /// budget combination).
    pub plan_capacity: usize,
    /// The planner cost model auto-planned requests are optimized under.
    /// [`CostModel::UNIFORM`] (the default) reproduces the historical
    /// element-touch planner; a calibrated model
    /// ([`CostModel::calibrated`]) minimizes estimated wall time instead.
    /// Auto plans are versioned in the plan tier by [`CostModel::key`],
    /// so services restarted under a different model never replay a stale
    /// tiling. Never affects served payloads — only which tiling an auto
    /// plan picks.
    pub cost_model: CostModel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // Profiles are the expensive tier (O(nnz) construction, O(nrows +
        // ncols) resident); 64 comfortably covers the 22-workload suite at
        // a couple of scales. Plans are tiny (two Copy structs) but more
        // numerous: #profiles × #variants × #budgets.
        ServeConfig {
            profile_capacity: 64,
            plan_capacity: 512,
            cost_model: CostModel::UNIFORM,
        }
    }
}

/// A point-in-time snapshot of the service's cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Analytical requests served.
    pub requests: u64,
    /// Functional requests served.
    pub functional_requests: u64,
    /// Profile-tier hits.
    pub profile_hits: u64,
    /// Profile-tier misses (profile was built from the tensor).
    pub profile_misses: u64,
    /// Plan-tier hits.
    pub plan_hits: u64,
    /// Plan-tier misses (tile + execution plans were constructed).
    pub plan_misses: u64,
    /// Profiles currently resident in the profile tier.
    pub profile_resident: u64,
    /// The profile tier's capacity bound.
    pub profile_capacity: u64,
    /// Plan pairs currently resident in the plan tier.
    pub plan_resident: u64,
    /// The plan tier's capacity bound.
    pub plan_capacity: u64,
}

impl ServeStats {
    /// Plan-tier hit rate in `[0, 1]` (1.0 when no plan lookups happened).
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            1.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }

    /// Plan-tier occupancy in `[0, 1]` — 1.0 means the tier is full and
    /// every further distinct plan evicts another. Combined with a low
    /// [`ServeStats::plan_hit_rate`] this is the thrash signal the
    /// runtime's admission policy gates analytical requests on.
    pub fn plan_pressure(&self) -> f64 {
        if self.plan_capacity == 0 {
            0.0
        } else {
            self.plan_resident as f64 / self.plan_capacity as f64
        }
    }

    /// Profile-tier hit rate in `[0, 1]` (1.0 when no lookups happened).
    pub fn profile_hit_rate(&self) -> f64 {
        let total = self.profile_hits + self.profile_misses;
        if total == 0 {
            1.0
        } else {
            self.profile_hits as f64 / total as f64
        }
    }
}

/// The cached (tile plan, execution plan) pair for one
/// (matrix, variant, arch, budget) key.
#[derive(Debug, Clone, Copy)]
struct Planned {
    tile: TilePlan,
    exec: ExecutionPlan,
}

type PlanKey = (
    MatrixId,
    tailors_sim::VariantKey,
    tailors_sim::ArchKey,
    MemBudget,
    // Auto-planned vs fixed tiling — the two derive different execution
    // plans from the same inputs, so they must never share a cache slot.
    bool,
    // For auto plans, the [`CostModel::key`] fingerprint of the cost
    // model the plan was optimized under: plans chosen under different
    // models are distinct artifacts. Fixed plans never consult the model,
    // so they key under 0 and stay hot across model changes.
    u64,
);

/// The long-lived, thread-safe simulation service. See the
/// [crate docs](crate) for the cache-tier architecture.
#[derive(Debug)]
pub struct SimService {
    /// Workload spec → matrix identity, so analytical requests for a
    /// known spec never regenerate (or re-hash) the tensor. Unbounded:
    /// entries are a handful of words each. All three tiers sit behind
    /// poison-recovering locks ([`PoisonFreeMutex`]) so a request that
    /// panics under the runtime's `catch_unwind` isolation cannot wedge
    /// the caches for every later request.
    ids: PoisonFreeMutex<HashMap<SpecKey, MatrixId>>,
    /// Tier 2: matrix identity → occupancy profile.
    profiles: PoisonFreeMutex<Lru<MatrixId, Arc<MatrixProfile>>>,
    /// Tier 3: (matrix, variant, arch, budget) → (tile plan, exec plan).
    plans: PoisonFreeMutex<Lru<PlanKey, Planned>>,
    /// The planner cost model for auto-planned requests (see
    /// [`ServeConfig::cost_model`]).
    cost_model: CostModel,
    requests: AtomicU64,
    functional_requests: AtomicU64,
    profile_hits: AtomicU64,
    profile_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

impl Default for SimService {
    fn default() -> Self {
        Self::new()
    }
}

impl SimService {
    /// A service with the default cache capacities.
    pub fn new() -> Self {
        Self::with_config(ServeConfig::default())
    }

    /// A service with explicit cache capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn with_config(config: ServeConfig) -> Self {
        SimService {
            ids: PoisonFreeMutex::new(HashMap::new()),
            profiles: PoisonFreeMutex::new(Lru::new(config.profile_capacity)),
            plans: PoisonFreeMutex::new(Lru::new(config.plan_capacity)),
            cost_model: config.cost_model,
            requests: AtomicU64::new(0),
            functional_requests: AtomicU64::new(0),
            profile_hits: AtomicU64::new(0),
            profile_misses: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
        }
    }

    /// A snapshot of the cache counters, including tier occupancy (the
    /// admission policy's plan-pressure signal).
    pub fn stats(&self) -> ServeStats {
        let (profile_resident, profile_capacity) = {
            let p = self.profiles.lock();
            (p.len() as u64, p.capacity() as u64)
        };
        let (plan_resident, plan_capacity) = {
            let p = self.plans.lock();
            (p.len() as u64, p.capacity() as u64)
        };
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            functional_requests: self.functional_requests.load(Ordering::Relaxed),
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            profile_misses: self.profile_misses.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            profile_resident,
            profile_capacity,
            plan_resident,
            plan_capacity,
        }
    }

    /// Serves one analytical request. Bit-identical to
    /// `req.variant.run_gridded(&profile, &req.arch, req.budget,
    /// req.grid)` on the workload's freshly built profile, for any cache
    /// state.
    ///
    /// # Panics
    ///
    /// As [`Variant::plan`] and
    /// [`simulate_planned`](tailors_sim::simulate_planned) (non-square or
    /// empty workload tensor, invalid overbooked `y`).
    pub fn submit(&self, req: &SimRequest) -> SimResponse {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let (id, tensor_hot, warmed) = self.resolve_identity(&req.workload);
        let (profile, profile_hit) = match warmed {
            // First sight of the spec: resolve_identity just built and
            // tiered the profile (counted as the miss it is).
            Some(profile) => (profile, false),
            // Eviction refill: re-resolve the tensor (generation cache)
            // and profile it again — the documented cost of a bounded
            // tier. Deliberately NOT `profile_cached`: its process-global
            // map is strong and unbounded, and routing misses through it
            // would quietly void this tier's memory bound.
            None => self.profile_of(id, || Arc::new(generate_cached(&req.workload).profile())),
        };
        let (planned, plan_hit) = self.plans_of(
            id,
            req.variant,
            &req.arch,
            req.budget,
            req.auto_plan,
            &profile,
        );
        let metrics =
            req.variant
                .run_planned(&profile, &req.arch, &planned.tile, &planned.exec, req.grid);
        SimResponse {
            name: req.workload.name,
            metrics,
            hits: CacheHits {
                tensor: tensor_hot,
                profile: profile_hit,
                plan: plan_hit,
            },
        }
    }

    /// Serves a whole batch, fanning the requests across `threads`
    /// workers in cost-balanced LPT bins
    /// ([`balanced_partition`](tailors_sim::balanced_partition) on
    /// workload size, the same scheduler the functional engine and the
    /// bench suite use) so heterogeneous requests share the pool instead
    /// of running serially. Responses come back in request order and
    /// their payloads are bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// As [`SimService::submit`]; additionally if `threads == 0`.
    pub fn submit_batch(&self, reqs: &[SimRequest], threads: usize) -> Vec<SimResponse> {
        assert!(threads > 0, "thread count must be positive");
        let costs: Vec<u128> = reqs
            .iter()
            .map(|r| request_cost(&r.workload, r.variant))
            .collect();
        run_balanced(reqs.len(), &costs, threads, |i| self.submit(&reqs[i]))
    }

    /// Serves one analytical request for a raw matrix (no workload spec):
    /// the matrix is hashed to its [`MatrixId`] and the profile/plan
    /// tiers apply as usual. Bit-identical to a cold
    /// `variant.run_gridded(&a.profile(), arch, budget, grid)`.
    ///
    /// # Panics
    ///
    /// As [`SimService::submit`].
    pub fn run_matrix(
        &self,
        a: &CsrMatrix,
        variant: Variant,
        arch: &ArchConfig,
        budget: MemBudget,
        grid: GridMode,
    ) -> (RunMetrics, CacheHits) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let id = MatrixId::of(a);
        let (profile, profile_hit) = self.profile_of(id, || Arc::new(a.profile()));
        let (planned, plan_hit) = self.plans_of(id, variant, arch, budget, false, &profile);
        let metrics = variant.run_planned(&profile, arch, &planned.tile, &planned.exec, grid);
        (
            metrics,
            CacheHits {
                tensor: false,
                profile: profile_hit,
                plan: plan_hit,
            },
        )
    }

    /// Serves one functional request: resolves the tensor through the
    /// generation cache, takes `rows_a`/`cols_b`/overbooking from the
    /// variant's (cached) tile plan, sizes the operand buffer from the
    /// architecture, and executes the dataflow. The result is
    /// bit-identical to a direct [`run_with_threads`] call with the
    /// returned [`FunctionalConfig`] — and therefore to
    /// [`reference_run`](tailors_sim::functional::reference_run) — at
    /// every thread count.
    ///
    /// # Errors
    ///
    /// A typed [`EngineError`]: [`ConfigError`] for a degenerate derived
    /// configuration (e.g. a non-square workload tensor), buffer-protocol
    /// errors otherwise (none occur for well-formed input).
    ///
    /// # Panics
    ///
    /// As [`Variant::plan`] (empty workload tensor, invalid overbooked
    /// `y`); the serving runtime isolates those with `catch_unwind`.
    ///
    /// [`ConfigError`]: tailors_sim::functional::ConfigError
    pub fn run_functional(
        &self,
        req: &FunctionalRequest,
    ) -> Result<FunctionalResponse, EngineError> {
        self.functional_requests.fetch_add(1, Ordering::Relaxed);
        let spec = SpecKey::of(&req.workload);
        let known = self.ids.lock().get(&spec).copied();
        let tensor_hot = known.is_some();
        // The engine needs the tensor itself, so resolve it through the
        // generation cache and keep the Arc alive for the run.
        let tensor = generate_cached(&req.workload);
        let id = match known {
            Some(id) => id,
            None => {
                let id = MatrixId::of(&tensor);
                self.ids.lock().insert(spec, id);
                id
            }
        };
        let (profile, profile_hit) = self.profile_of(id, || Arc::new(tensor.profile()));
        let (planned, plan_hit) = self.plans_of(
            id,
            req.variant,
            &req.arch,
            req.budget,
            req.auto_plan,
            &profile,
        );
        // An auto-planned request resolves its panel height here, from
        // the *cached* auto execution plan (the engine would derive the
        // identical plan itself — same profile, same buffer model, same
        // baseline — but resolving at the plan tier keeps hot requests
        // planning-free and the returned config self-contained: callers
        // diff it against `reference_run` directly).
        let config = FunctionalConfig {
            capacity: (req.arch.tile_capacity() as usize).max(1),
            fifo_region: req.arch.gb_fifo_region() as usize,
            rows_a: if req.auto_plan {
                planned.exec.rows_a()
            } else {
                planned.tile.gb_rows_a
            },
            cols_b: planned.tile.gb_cols_b,
            overbooking: planned.tile.overbooking,
            mem_budget: req.budget,
            grid: req.grid,
            auto_plan: false,
        };
        let result = run_with_threads(&tensor, &config, req.threads)?;
        Ok(FunctionalResponse {
            config,
            result,
            hits: CacheHits {
                tensor: tensor_hot,
                profile: profile_hit,
                plan: plan_hit,
            },
        })
    }

    /// Resolves a workload spec to its matrix identity, generating (or
    /// disk-loading) the tensor only on the first sight of the spec. On
    /// that cold path the profile is built while the tensor is live,
    /// tiered, counted as the profile miss it is, and returned so the
    /// caller does not immediately re-consult the tier. The service
    /// builds profiles itself rather than through the unbounded
    /// `profile_cached` strong map, so [`ServeConfig::profile_capacity`]
    /// is a real bound on what the service retains.
    fn resolve_identity(&self, wl: &Workload) -> (MatrixId, bool, Option<Arc<MatrixProfile>>) {
        let spec = SpecKey::of(wl);
        if let Some(id) = self.ids.lock().get(&spec) {
            return (*id, true, None);
        }
        let tensor = generate_cached(wl);
        let id = MatrixId::of(&tensor);
        let profile = Arc::new(tensor.profile());
        drop(tensor);
        self.profile_misses.fetch_add(1, Ordering::Relaxed);
        self.profiles.lock().insert(id, Arc::clone(&profile));
        self.ids.lock().insert(spec, id);
        (id, false, Some(profile))
    }

    /// Tier-2 lookup: the profile for `id`, built with `make` on a miss.
    /// `make` runs outside the cache lock, so concurrent misses for the
    /// same identity may build twice — both builds are bit-identical, so
    /// last-insert-wins is safe.
    fn profile_of(
        &self,
        id: MatrixId,
        make: impl FnOnce() -> Arc<MatrixProfile>,
    ) -> (Arc<MatrixProfile>, bool) {
        if let Some(p) = self.profiles.lock().get(&id) {
            self.profile_hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(p), true);
        }
        self.profile_misses.fetch_add(1, Ordering::Relaxed);
        let profile = make();
        self.profiles.lock().insert(id, Arc::clone(&profile));
        (profile, false)
    }

    /// Tier-3 lookup: the (tile, execution) plan pair for the request
    /// key, constructed from the profile on a miss (outside the lock; see
    /// [`SimService::profile_of`] for why double construction is safe).
    fn plans_of(
        &self,
        id: MatrixId,
        variant: Variant,
        arch: &ArchConfig,
        budget: MemBudget,
        auto_plan: bool,
        profile: &MatrixProfile,
    ) -> (Planned, bool) {
        let model_key = if auto_plan { self.cost_model.key() } else { 0 };
        let key: PlanKey = (
            id,
            variant.cache_key(),
            arch.cache_key(),
            budget,
            auto_plan,
            model_key,
        );
        if let Some(p) = self.plans.lock().get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return (*p, true);
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let tile = variant.plan(profile, arch);
        let exec = if auto_plan {
            variant.auto_execution_plan_costed(profile, arch, budget, &tile, self.cost_model)
        } else {
            ExecutionPlan::for_tile_plan(profile.nrows(), profile.ncols(), &tile, budget)
        };
        let planned = Planned { tile, exec };
        self.plans.lock().insert(key, planned);
        (planned, false)
    }
}
