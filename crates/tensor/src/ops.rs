//! Sparse kernels: the fast SPA (sparse-accumulator) SpMSpM used across the
//! workspace, plus retained reference implementations used as oracles.
//!
//! Gustavson's row-wise algorithm computes row `m` of `Z = A·B` as a linear
//! combination of B rows. The classic formulation accumulates each output
//! row in a *dense scratch array* (the SPA): `O(ncols)` storage reused for
//! every row, giving O(1) accumulation per effectual multiply with no
//! hashing, no per-element searches, and no allocation in the hot loop.
//! The scratch here is a [`BlockedSpa`]: a `u64` occupancy-word array rides
//! alongside the dense values, so extraction walks only the set words and
//! bits (in ascending-coordinate order, for free) instead of sorting a
//! touched-coordinate list. [`spmspm_into`] exposes the allocation-reusing
//! entry point; [`SpmspmScratch`] carries the scratch between calls.
//!
//! The seed's hash-accumulator kernel lives on in [`reference`] — it is the
//! obviously-correct ground truth the property tests and benchmarks compare
//! against, never the kernel anything hot calls.

use crate::{CsrMatrix, TensorError};

/// A bitmask-blocked sparse accumulator: a dense `f64` grid of
/// `rows × width` slots with one `u64` occupancy word per 64 columns of
/// each row.
///
/// Accumulation is one dense write plus one mask OR — branchless, no
/// touched-list push. Extraction ([`BlockedSpa::drain_row`]) visits only
/// the words a row actually touched (tracked per row as word indices, so
/// sparse rows never scan the full width) and walks their set bits with
/// `trailing_zeros`, which yields coordinates in ascending order without a
/// sort and restores the all-zero invariant as it goes.
///
/// Both the [`spmspm_into`] kernel and the functional engine's panel
/// scratch (`tailors_sim::functional`) are built on this type; the
/// property suites pin its output bit-identical to the seed hash
/// accumulator.
///
/// # Example
///
/// ```
/// use tailors_tensor::ops::BlockedSpa;
///
/// let mut spa = BlockedSpa::new();
/// spa.reset_shape(1, 200);
/// spa.accumulate(0, 130, 2.0);
/// spa.accumulate(0, 7, 1.5);
/// spa.accumulate(0, 130, -1.0);
/// let (mut cols, mut vals) = (Vec::new(), Vec::new());
/// spa.drain_row(0, 1000, &mut cols, &mut vals);
/// assert_eq!(cols, vec![1007, 1130]); // ascending, re-based
/// assert_eq!(vals, vec![1.5, 1.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockedSpa {
    rows: usize,
    width: usize,
    /// Occupancy words per row: `width.div_ceil(64)`.
    words: usize,
    /// Dense accumulator, `rows × width`, all-zero outside set mask bits.
    dense: Vec<f64>,
    /// Occupancy words, `rows × words`; bit `c % 64` of word `c / 64`
    /// marks column `c` as touched.
    mask: Vec<u64>,
    /// Word indices each row touched this round, unsorted, no duplicates
    /// (a word is pushed only on its 0 → nonzero transition).
    touched: Vec<Vec<u32>>,
}

impl BlockedSpa {
    /// Creates an empty accumulator; [`BlockedSpa::reset_shape`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)shapes the accumulator to `rows × width`, growing the backing
    /// storage as needed (never shrinking). All slots start — and, between
    /// drains, stay — zero, so reshaping is O(1) beyond first-time growth.
    pub fn reset_shape(&mut self, rows: usize, width: usize) {
        let words = width.div_ceil(64);
        if self.dense.len() < rows * width {
            self.dense.resize(rows * width, 0.0);
        }
        if self.mask.len() < rows * words {
            self.mask.resize(rows * words, 0);
        }
        if self.touched.len() < rows {
            self.touched.resize(rows, Vec::new());
        }
        self.rows = rows;
        self.width = width;
        self.words = words;
        debug_assert!(self.is_clear(), "reshaped a non-drained accumulator");
    }

    /// Rows of the current shape.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns per row of the current shape.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Allocated dense slots (grows monotonically across reshapes).
    pub fn capacity_slots(&self) -> usize {
        self.dense.len()
    }

    /// Heap bytes currently backing the accumulator (capacities, not the
    /// logical shape) — what slab-pool retention accounting charges for
    /// keeping this scratch warm.
    pub fn heap_bytes(&self) -> u64 {
        let touched_inner: usize = self.touched.iter().map(|t| t.capacity() * 4).sum();
        (self.dense.capacity() * 8
            + self.mask.capacity() * 8
            + self.touched.capacity() * core::mem::size_of::<Vec<u32>>()
            + touched_inner) as u64
    }

    /// Adds `v` to slot (`row`, `col`) and marks its occupancy bit.
    ///
    /// `row < rows()` and `col < width()` are preconditions checked only
    /// in debug builds: the backing storage never shrinks, so in release
    /// an out-of-shape index that still lands inside a previous (larger)
    /// shape's allocation writes a stale slot — and would later drain as
    /// a wrong coordinate — rather than panicking. Indices beyond the
    /// allocation panic on the slice bound either way.
    #[inline]
    pub fn accumulate(&mut self, row: usize, col: usize, v: f64) {
        debug_assert!(row < self.rows && col < self.width);
        self.dense[row * self.width + col] += v;
        let word = &mut self.mask[row * self.words + (col >> 6)];
        if *word == 0 {
            self.touched[row].push((col >> 6) as u32);
        }
        *word |= 1u64 << (col & 63);
    }

    /// Drains one row in ascending-column order into `cols`/`vals`,
    /// re-basing each local column by `base` and dropping slots whose
    /// accumulated value is exactly `0.0` (matching the reference kernel's
    /// exact-cancellation behaviour). Resets every touched slot, word, and
    /// the row's touched list — the all-zero invariant is restored for
    /// free.
    pub fn drain_row(&mut self, row: usize, base: u32, cols: &mut Vec<u32>, vals: &mut Vec<f64>) {
        debug_assert!(row < self.rows);
        let row_touched = &mut self.touched[row];
        row_touched.sort_unstable();
        for &wi in row_touched.iter() {
            let word = core::mem::take(&mut self.mask[row * self.words + wi as usize]);
            let mut bits = word;
            while bits != 0 {
                let c = (wi as usize) * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = core::mem::take(&mut self.dense[row * self.width + c]);
                if v != 0.0 {
                    cols.push(base + c as u32);
                    vals.push(v);
                }
            }
        }
        row_touched.clear();
    }

    /// Adds `v` to slot (`row`, `col`) **without** maintaining the
    /// occupancy bit or touched-word list — the *dense-mode* accumulate,
    /// paired with [`BlockedSpa::drain_row_dense`]. The right mode when a
    /// block is expected to fill densely: near-dense blocks set almost
    /// every occupancy bit anyway, so the mask OR and touched-word
    /// bookkeeping per write buy nothing. Same storage, same shape, same
    /// preconditions as [`BlockedSpa::accumulate`] — callers (the
    /// functional engine's per-unit kernel dispatch) pick the mode per
    /// drained block, so the one allocation backs both.
    #[inline]
    pub fn accumulate_dense(&mut self, row: usize, col: usize, v: f64) {
        debug_assert!(row < self.rows && col < self.width);
        self.dense[row * self.width + col] += v;
    }

    /// The dense-mode extraction: drains one row by scanning **every**
    /// slot of the row in ascending order (no occupancy walk), re-basing
    /// by `base`, dropping exact-zero sums, and resetting each slot to
    /// `+0.0` unconditionally — the full-width wipe this mode trades the
    /// per-accumulate mask work for. Any mask words the row holds are
    /// cleared too, so the all-zero invariant is restored even if masked
    /// and dense accumulates were mixed on one row.
    ///
    /// Emission is **bit-identical** to [`BlockedSpa::drain_row`] on the
    /// same write sequence: untouched slots are exactly `0.0` (the
    /// between-drains invariant), sums of `±0.0` are dropped by both
    /// (IEEE compares `-0.0 == 0.0`), ascending-column order is the scan
    /// order itself, and both reset drained slots to `+0.0`. The
    /// property suite pins the two modes against each other on arbitrary
    /// write sequences.
    pub fn drain_row_dense(
        &mut self,
        row: usize,
        base: u32,
        cols: &mut Vec<u32>,
        vals: &mut Vec<f64>,
    ) {
        debug_assert!(row < self.rows);
        let slots = &mut self.dense[row * self.width..row * self.width + self.width];
        for (c, slot) in slots.iter_mut().enumerate() {
            let v = core::mem::take(slot);
            if v != 0.0 {
                cols.push(base + c as u32);
                vals.push(v);
            }
        }
        let row_touched = &mut self.touched[row];
        for &wi in row_touched.iter() {
            self.mask[row * self.words + wi as usize] = 0;
        }
        row_touched.clear();
    }

    /// Discards all pending accumulation, restoring the all-zero invariant
    /// without emitting anything (the error-path reset). Dense-mode writes
    /// ([`BlockedSpa::accumulate_dense`]) leave no occupancy trail, so
    /// they are wiped by the full-shape scan below.
    pub fn clear(&mut self) {
        for slot in &mut self.dense[..self.rows * self.width] {
            *slot = 0.0;
        }
        for row in 0..self.rows {
            let row_touched = &mut self.touched[row];
            for &wi in row_touched.iter() {
                self.mask[row * self.words + wi as usize] = 0;
            }
            row_touched.clear();
        }
    }

    /// Whether every slot, word, and touched list is zero/empty (the
    /// between-uses invariant; O(allocation), debug assertions only).
    pub fn is_clear(&self) -> bool {
        self.dense.iter().all(|&v| v == 0.0)
            && self.mask.iter().all(|&w| w == 0)
            && self.touched.iter().all(|t| t.is_empty())
    }
}

/// Reusable workspace for [`spmspm_into`]: a one-row [`BlockedSpa`]
/// spanning the output's columns.
///
/// Reusing one scratch across many multiplies (the tiled engines do this
/// per row panel) keeps the hot path allocation-free after the first call.
///
/// # Example
///
/// ```
/// use tailors_tensor::ops::{spmspm_into, SpmspmScratch};
/// use tailors_tensor::CsrMatrix;
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
/// let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, 4.0)]).unwrap();
/// let mut scratch = SpmspmScratch::new();
/// let z1 = spmspm_into(&a, &b, &mut scratch)?;
/// let z2 = spmspm_into(&b, &a, &mut scratch)?; // same scratch, no realloc
/// assert_eq!(z1.get(0, 1), Some(3.0));
/// assert_eq!(z2.get(0, 1), Some(6.0));
/// assert_eq!(z2.get(1, 0), Some(4.0));
/// # Ok::<(), tailors_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpmspmScratch {
    spa: BlockedSpa,
}

impl SpmspmScratch {
    /// Creates an empty scratch; it grows to the first multiply's width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current dense-accumulator width in columns (the widest multiply
    /// seen so far; the backing storage never shrinks).
    pub fn width(&self) -> usize {
        self.spa.capacity_slots()
    }
}

/// Sparse matrix-matrix multiply `Z = A·B` (Gustavson + dense SPA
/// accumulator).
///
/// Output values are bit-identical to [`reference::spmspm`]: contributions
/// to each output coordinate are accumulated in the same (row-of-A) order,
/// and entries whose sum is exactly `0.0` are dropped, as the reference
/// does.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
///
/// # Example
///
/// ```
/// use tailors_tensor::{CsrMatrix, ops::spmspm};
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
/// let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, 4.0)]).unwrap();
/// let z = spmspm(&a, &b)?;
/// assert_eq!(z.get(0, 1), Some(3.0));
/// assert_eq!(z.get(1, 0), Some(8.0));
/// # Ok::<(), tailors_tensor::TensorError>(())
/// ```
pub fn spmspm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, TensorError> {
    let mut scratch = SpmspmScratch::new();
    spmspm_into(a, b, &mut scratch)
}

/// [`spmspm`] with caller-owned scratch, reusing its allocations.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
pub fn spmspm_into(
    a: &CsrMatrix,
    b: &CsrMatrix,
    scratch: &mut SpmspmScratch,
) -> Result<CsrMatrix, TensorError> {
    if a.ncols() != b.nrows() {
        return Err(TensorError::ShapeMismatch {
            left: (a.nrows(), a.ncols()),
            right: (b.nrows(), b.ncols()),
        });
    }
    scratch.spa.reset_shape(1, b.ncols());
    let spa = &mut scratch.spa;

    let b_row_ptr = b.row_ptr();
    let b_cols = b.col_indices();
    let b_vals = b.values();

    // Symbolic upper bound on the output size would need a second pass;
    // start from A's nnz (every multiply has ≥1 output per A row on
    // average for the workloads here) and let Vec growth amortize.
    let mut out_row_ptr: Vec<usize> = Vec::with_capacity(a.nrows() + 1);
    let mut out_cols: Vec<u32> = Vec::with_capacity(a.nnz());
    let mut out_vals: Vec<f64> = Vec::with_capacity(a.nnz());
    out_row_ptr.push(0);

    for m in 0..a.nrows() {
        let row_a = a.row(m);
        for (&k, &va) in row_a.coords().iter().zip(row_a.values()) {
            let (lo, hi) = (b_row_ptr[k as usize], b_row_ptr[k as usize + 1]);
            for (&n, &vb) in b_cols[lo..hi].iter().zip(&b_vals[lo..hi]) {
                spa.accumulate(0, n as usize, va * vb);
            }
        }
        // Bit-walk emission is ascending and deduplicated by construction;
        // exact cancellations (sum == 0.0) are dropped, as the reference
        // does.
        spa.drain_row(0, 0, &mut out_cols, &mut out_vals);
        out_row_ptr.push(out_cols.len());
    }

    Ok(CsrMatrix::from_sorted_parts_unchecked(
        a.nrows(),
        b.ncols(),
        out_row_ptr,
        out_cols,
        out_vals,
    ))
}

/// `Z = A·Aᵀ`, the paper's evaluation workload (§5.3), on the SPA kernel.
pub fn spmspm_a_at(a: &CsrMatrix) -> CsrMatrix {
    let at = a.transpose();
    spmspm(a, &at).expect("A and Aᵀ always have compatible shapes")
}

/// Counts effectual multiplies and output nonzeros of `A·B` symbolically —
/// a marker-scratch pass over coordinates only, with no value arithmetic
/// and no materialized output.
///
/// `output_nnz` is the *structural* nonzero count of the product (exact
/// numerical cancellations are not subtracted; the generators guarantee
/// positive values, so none occur in the evaluation workloads).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
pub fn count_work(a: &CsrMatrix, b: &CsrMatrix) -> Result<WorkCounts, TensorError> {
    if a.ncols() != b.nrows() {
        return Err(TensorError::ShapeMismatch {
            left: (a.nrows(), a.ncols()),
            right: (b.nrows(), b.ncols()),
        });
    }
    let b_row_ptr = b.row_ptr();
    let b_cols = b.col_indices();
    // Generation-stamped marker scratch: bumping `generation` invalidates
    // every stamp at once, so the array is never re-cleared between rows.
    let mut marks: Vec<u64> = vec![0; b.ncols()];
    let mut generation: u64 = 0;
    let mut mults: u128 = 0;
    let mut output_nnz: u64 = 0;
    for m in 0..a.nrows() {
        generation += 1;
        for &k in a.row(m).coords() {
            let (lo, hi) = (b_row_ptr[k as usize], b_row_ptr[k as usize + 1]);
            mults += (hi - lo) as u128;
            for &n in &b_cols[lo..hi] {
                let mark = &mut marks[n as usize];
                if *mark != generation {
                    *mark = generation;
                    output_nnz += 1;
                }
            }
        }
    }
    Ok(WorkCounts { mults, output_nnz })
}

/// Work counts for a sparse multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkCounts {
    /// Number of effectual scalar multiplications.
    pub mults: u128,
    /// Number of structural nonzeros in the output.
    pub output_nnz: u64,
}

/// Returns `true` if two matrices are elementwise equal within `tol`.
pub fn approx_eq(a: &CsrMatrix, b: &CsrMatrix, tol: f64) -> bool {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return false;
    }
    // Every entry of a must be matched in b and vice versa.
    let within = |x: &CsrMatrix, y: &CsrMatrix| {
        x.iter()
            .all(|(r, c, v)| (y.get(r, c).unwrap_or(0.0) - v).abs() <= tol)
    };
    within(a, b) && within(b, a)
}

pub mod reference {
    //! The seed's hash-accumulator kernels, retained verbatim as oracles
    //! for property tests and before/after benchmarks.

    use std::collections::HashMap;

    use crate::{CooMatrix, CsrMatrix, TensorError};

    /// Reference `Z = A·B`: Gustavson with a `HashMap` accumulator
    /// (the seed implementation of `ops::spmspm`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
    pub fn spmspm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, TensorError> {
        if a.ncols() != b.nrows() {
            return Err(TensorError::ShapeMismatch {
                left: (a.nrows(), a.ncols()),
                right: (b.nrows(), b.ncols()),
            });
        }
        let mut coo = CooMatrix::new(a.nrows(), b.ncols());
        let mut acc: HashMap<u32, f64> = HashMap::new();
        for m in 0..a.nrows() {
            acc.clear();
            let row_a = a.row(m);
            for (&k, &va) in row_a.coords().iter().zip(row_a.values()) {
                let row_b = b.row(k as usize);
                for (&n, &vb) in row_b.coords().iter().zip(row_b.values()) {
                    *acc.entry(n).or_insert(0.0) += va * vb;
                }
            }
            for (&n, &v) in &acc {
                if v != 0.0 {
                    coo.push(m, n as usize, v)
                        .expect("accumulator coordinates are in bounds");
                }
            }
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// Reference `Z = A·Aᵀ` on the hash-accumulator kernel.
    pub fn spmspm_a_at(a: &CsrMatrix) -> CsrMatrix {
        let at = a.transpose();
        spmspm(a, &at).expect("A and Aᵀ always have compatible shapes")
    }

    /// Reference work counts by materializing the full product
    /// (the seed implementation of `ops::count_work`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `A.ncols != B.nrows`.
    pub fn count_work(a: &CsrMatrix, b: &CsrMatrix) -> Result<super::WorkCounts, TensorError> {
        let z = spmspm(a, b)?;
        let mut mults: u128 = 0;
        for m in 0..a.nrows() {
            let row_a = a.row(m);
            for &k in row_a.coords() {
                mults += b.row_nnz(k as usize) as u128;
            }
        }
        Ok(super::WorkCounts {
            mults,
            output_nnz: z.nnz() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mul(a: &CsrMatrix, b: &CsrMatrix) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; b.ncols()]; a.nrows()];
        for (m, k, va) in a.iter() {
            for (k2, n, vb) in b.iter() {
                if k == k2 {
                    out[m][n] += va * vb;
                }
            }
        }
        out
    }

    #[test]
    fn spmspm_matches_dense_reference() {
        let a = CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, -1.0),
                (2, 3, 0.5),
                (2, 0, 3.0),
            ],
        )
        .unwrap();
        let b = CsrMatrix::from_triplets(
            4,
            3,
            &[
                (0, 0, 2.0),
                (1, 2, 4.0),
                (2, 1, -3.0),
                (3, 0, 1.0),
                (3, 2, 1.0),
            ],
        )
        .unwrap();
        let z = spmspm(&a, &b).unwrap();
        let dense = dense_mul(&a, &b);
        for (r, row) in dense.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert!(
                    (z.get(r, c).unwrap_or(0.0) - v).abs() < 1e-12,
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn spmspm_matches_hash_reference_bitwise() {
        let a = crate::gen::GenSpec::power_law(300, 300, 3_000)
            .seed(7)
            .generate();
        let z_spa = spmspm_a_at(&a);
        let z_ref = reference::spmspm_a_at(&a);
        assert_eq!(z_spa, z_ref, "SPA and hash kernels must agree bitwise");
    }

    #[test]
    fn spmspm_into_reuses_scratch_across_shapes() {
        let a = CsrMatrix::from_triplets(2, 5, &[(0, 4, 1.0), (1, 0, 2.0)]).unwrap();
        let b = CsrMatrix::from_triplets(5, 3, &[(4, 2, 3.0), (0, 0, 1.0)]).unwrap();
        let mut scratch = SpmspmScratch::new();
        let z1 = spmspm_into(&a, &b, &mut scratch).unwrap();
        assert_eq!(z1.get(0, 2), Some(3.0));
        assert_eq!(z1.get(1, 0), Some(2.0));
        assert_eq!(scratch.width(), 3);
        // A wider multiply grows the scratch in place...
        let wide = CsrMatrix::from_triplets(3, 9, &[(0, 8, 1.0), (2, 0, 2.0)]).unwrap();
        let tall = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 4.0)]).unwrap();
        let z2 = spmspm_into(&tall, &wide, &mut scratch).unwrap();
        assert_eq!(scratch.width(), 9);
        assert_eq!(z2.get(0, 8), Some(1.0));
        assert_eq!(z2.get(1, 0), Some(8.0));
        // ...and a narrower one reuses it untouched.
        let z3 = spmspm_into(&a, &b, &mut scratch).unwrap();
        assert_eq!(scratch.width(), 9);
        assert_eq!(z3, z1);
    }

    #[test]
    fn transient_cancellation_keeps_output_sorted_and_deduped() {
        // Row 0 of A hits column 0 of Z through two paths that cancel
        // exactly, then a third that revives it: the occupancy bit stays
        // set through the cancellation, emission must still produce one
        // sorted entry.
        let a = CsrMatrix::from_triplets(1, 3, &[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0)]).unwrap();
        let b =
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 5.0), (1, 0, -5.0), (2, 0, 2.0), (2, 1, 1.0)])
                .unwrap();
        let z = spmspm(&a, &b).unwrap();
        assert_eq!(z.nnz(), 2);
        assert_eq!(z.get(0, 0), Some(2.0));
        assert_eq!(z.get(0, 1), Some(1.0));
        assert_eq!(z.row(0).coords(), &[0, 1]);
    }

    #[test]
    fn exact_zero_outputs_are_dropped_like_reference() {
        let a = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let b = CsrMatrix::from_triplets(2, 1, &[(0, 0, 3.0), (1, 0, -3.0)]).unwrap();
        let z = spmspm(&a, &b).unwrap();
        let z_ref = reference::spmspm(&a, &b).unwrap();
        assert_eq!(z.nnz(), 0);
        assert_eq!(z_ref.nnz(), 0);
    }

    #[test]
    fn spmspm_rejects_shape_mismatch() {
        let a = CsrMatrix::new(2, 3);
        let b = CsrMatrix::new(2, 3);
        assert!(matches!(
            spmspm(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            count_work(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn a_at_is_symmetric() {
        let a = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 0, 3.0),
                (3, 3, 4.0),
                (0, 3, -1.0),
            ],
        )
        .unwrap();
        let z = spmspm_a_at(&a);
        for (r, c, v) in z.iter() {
            assert!((z.get(c, r).unwrap_or(0.0) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn count_work_matches_profile_formula() {
        let a = CsrMatrix::from_triplets(
            5,
            5,
            &[
                (0, 0, 1.0),
                (1, 0, 1.0),
                (2, 0, 1.0),
                (2, 3, 1.0),
                (4, 3, 1.0),
            ],
        )
        .unwrap();
        let at = a.transpose();
        let counts = count_work(&a, &at).unwrap();
        assert_eq!(counts.mults, a.profile().mults_a_at());
    }

    #[test]
    fn count_work_matches_reference_on_random_input() {
        let a = crate::gen::GenSpec::power_law(200, 200, 2_000)
            .seed(5)
            .generate();
        let at = a.transpose();
        let fast = count_work(&a, &at).unwrap();
        let slow = reference::count_work(&a, &at).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn approx_eq_detects_differences() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0 + 1e-13)]).unwrap();
        let c = CsrMatrix::from_triplets(2, 2, &[(1, 1, 1.0)]).unwrap();
        assert!(approx_eq(&a, &b, 1e-9));
        assert!(!approx_eq(&a, &c, 1e-9));
        assert!(!approx_eq(&a, &CsrMatrix::new(3, 3), 1e-9));
    }

    #[test]
    fn blocked_spa_drains_ascending_across_words() {
        let mut spa = BlockedSpa::new();
        spa.reset_shape(2, 300);
        // Touch words out of order, multiple bits per word, on both rows.
        for &(r, c, v) in &[
            (1usize, 299usize, 1.0),
            (0, 64, 2.0),
            (0, 0, 3.0),
            (0, 63, 4.0),
            (0, 128, 5.0),
            (0, 65, 6.0),
        ] {
            spa.accumulate(r, c, v);
        }
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        spa.drain_row(0, 10, &mut cols, &mut vals);
        assert_eq!(cols, vec![10, 73, 74, 75, 138]);
        assert_eq!(vals, vec![3.0, 4.0, 2.0, 6.0, 5.0]);
        spa.drain_row(1, 0, &mut cols, &mut vals);
        assert_eq!(cols.last(), Some(&299));
        assert!(spa.is_clear());
    }

    #[test]
    fn blocked_spa_drops_exact_cancellations_but_keeps_the_bit_cost_free() {
        let mut spa = BlockedSpa::new();
        spa.reset_shape(1, 64);
        spa.accumulate(0, 5, 1.0);
        spa.accumulate(0, 5, -1.0);
        spa.accumulate(0, 9, 2.0);
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        spa.drain_row(0, 0, &mut cols, &mut vals);
        assert_eq!(cols, vec![9]);
        assert_eq!(vals, vec![2.0]);
        assert!(spa.is_clear());
    }

    #[test]
    fn blocked_spa_clear_restores_the_invariant_without_emitting() {
        let mut spa = BlockedSpa::new();
        spa.reset_shape(3, 100);
        spa.accumulate(0, 99, 1.0);
        spa.accumulate(2, 0, 2.0);
        assert!(!spa.is_clear());
        spa.clear();
        assert!(spa.is_clear());
        // Reshape (narrower and wider) keeps the invariant and reuses the
        // allocation.
        spa.reset_shape(1, 10);
        assert_eq!(spa.width(), 10);
        spa.reset_shape(2, 170);
        spa.accumulate(1, 169, 7.0);
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        spa.drain_row(1, 0, &mut cols, &mut vals);
        assert_eq!(
            (cols.as_slice(), vals.as_slice()),
            (&[169u32][..], &[7.0][..])
        );
    }

    #[test]
    fn dense_mode_is_bit_identical_to_masked_mode() {
        // The same write sequence through both modes, including a
        // transient cancellation, a persistent cancellation, and a -0.0
        // product: emission and post-drain state must agree exactly.
        let writes: &[(usize, usize, f64)] = &[
            (0, 130, 2.0),
            (1, 5, 1.0),
            (0, 7, 1.5),
            (0, 130, -2.0), // cancels...
            (0, 130, 3.0),  // ...then revives
            (1, 5, -1.0),   // cancels for good
            (1, 64, -0.0),  // negative-zero sum: dropped by both
            (1, 199, 4.0),
        ];
        let mut masked = BlockedSpa::new();
        let mut dense = BlockedSpa::new();
        masked.reset_shape(2, 200);
        dense.reset_shape(2, 200);
        for &(r, c, v) in writes {
            masked.accumulate(r, c, v);
            dense.accumulate_dense(r, c, v);
        }
        for row in 0..2 {
            let (mut bc, mut bv) = (Vec::new(), Vec::new());
            let (mut dc, mut dv) = (Vec::new(), Vec::new());
            masked.drain_row(row, 10, &mut bc, &mut bv);
            dense.drain_row_dense(row, 10, &mut dc, &mut dv);
            assert_eq!(bc, dc, "row {row} columns");
            assert_eq!(bv.len(), dv.len());
            for (b, d) in bv.iter().zip(&dv) {
                assert_eq!(b.to_bits(), d.to_bits(), "row {row} value bits");
            }
        }
        assert!(masked.is_clear());
        assert!(dense.is_clear());
        // A second round on the drained scratch accumulates onto +0.0 in
        // both modes (the reset must not leave -0.0 behind). The dense
        // drain also covers masked writes (it clears their mask words
        // too), so one scratch can switch modes between drained blocks.
        masked.accumulate(1, 64, -0.5);
        dense.accumulate_dense(1, 64, -0.5);
        let (mut bc, mut bv) = (Vec::new(), Vec::new());
        let (mut dc, mut dv) = (Vec::new(), Vec::new());
        masked.drain_row_dense(1, 0, &mut bc, &mut bv);
        dense.drain_row_dense(1, 0, &mut dc, &mut dv);
        assert!(masked.is_clear());
        assert!(dense.is_clear());
        assert_eq!(bc, dc);
        assert_eq!(bv[0].to_bits(), dv[0].to_bits());
    }

    #[test]
    fn dense_mode_clear_and_reshape_keep_the_invariant() {
        let mut spa = BlockedSpa::new();
        spa.reset_shape(3, 100);
        spa.accumulate_dense(0, 99, 1.0);
        spa.accumulate(2, 0, 2.0);
        assert!(!spa.is_clear());
        // `clear` wipes dense-mode writes too (they leave no mask trail).
        spa.clear();
        assert!(spa.is_clear());
        spa.reset_shape(1, 10);
        assert_eq!((spa.rows(), spa.width()), (1, 10));
        spa.reset_shape(2, 170);
        spa.accumulate_dense(1, 169, 7.0);
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        spa.drain_row_dense(1, 0, &mut cols, &mut vals);
        assert_eq!(
            (cols.as_slice(), vals.as_slice()),
            (&[169u32][..], &[7.0][..])
        );
        assert!(spa.is_clear());
    }

    #[test]
    fn multiply_by_empty_is_empty() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        let z = spmspm(&a, &CsrMatrix::new(2, 2)).unwrap();
        assert_eq!(z.nnz(), 0);
        let e = spmspm(&CsrMatrix::new(0, 0), &CsrMatrix::new(0, 0)).unwrap();
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.nrows(), 0);
    }
}
