//! Property tests: the rewritten functional engine (CSR-slice walking,
//! tile column-pointer slicing, bitmask-blocked dense panel scratch,
//! cost-balanced rayon fan-out, memory-governed column blocking) is
//! bit-identical to the retained seed engine on arbitrary inputs and
//! configurations — output matrix, DRAM traffic counts and
//! overbooked-tile counts alike; a budgeted column-split run is
//! bit-identical to the unbudgeted path for arbitrary budgets, tilings,
//! and thread counts, including budgets smaller than a single column
//! block; and the 2-D (panel × block) grid mode — private buffer driver
//! per unit — reports block-local traffic whose per-block reduction sums
//! *exactly* to the shared-driver totals at every thread count.

use proptest::prelude::*;
use tailors_sim::functional::{
    auto_execution_plan, auto_execution_plan_costed, reference_run, run_grid, run_with_threads,
    FunctionalConfig,
};
use tailors_sim::{CostModel, GridMode, MemBudget};
use tailors_tensor::gen::GenSpec;
use tailors_tensor::ops::{approx_eq, spmspm_a_at};
use tailors_tensor::CsrMatrix;

fn check_equivalent(a: &CsrMatrix, config: &FunctionalConfig, threads: usize) {
    let new = run_with_threads(a, config, threads).expect("rewritten engine");
    let old = reference_run(a, config).expect("seed engine");
    assert_eq!(
        new.z, old.z,
        "output mismatch: {config:?} threads={threads}"
    );
    assert_eq!(new.dram_a_fetches, old.dram_a_fetches, "{config:?}");
    assert_eq!(new.dram_b_fetches, old.dram_b_fetches, "{config:?}");
    assert_eq!(new.overbooked_a_tiles, old.overbooked_a_tiles, "{config:?}");
    // And both equal the untiled kernel numerically.
    assert!(approx_eq(&new.z, &spmspm_a_at(a), 1e-9));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random structure × random tiling × random buffer sizing × random
    /// thread count: everything the two engines report must agree.
    #[test]
    fn engines_agree_on_random_inputs(
        seed in 0u64..40,
        heavy in proptest::bool::ANY,
        capacity in 8usize..120,
        fifo_frac in 1usize..90,
        rows_a in 1usize..70,
        cols_b in 1usize..70,
        overbooking in proptest::bool::ANY,
        threads in 1usize..5,
    ) {
        let spec = if heavy {
            GenSpec::power_law(48, 48, 400)
        } else {
            GenSpec::uniform(48, 48, 300)
        };
        let a = spec.seed(seed).generate();
        let config = FunctionalConfig {
            capacity,
            fifo_region: (capacity * fifo_frac / 100).clamp(1, capacity - 1),
            rows_a,
            cols_b,
            overbooking,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        check_equivalent(&a, &config, threads);
    }

    /// Random budget × random tiling × random thread count: the budgeted
    /// column-split run must equal the unbudgeted path *and* the seed
    /// engine in every reported field. `budget_bytes` spans everything
    /// from 0 (smaller than any column block: the planner clamps to a
    /// single streamed tile) to more than the widest possible scratch.
    #[test]
    fn budgeted_column_split_is_bit_identical(
        seed in 0u64..40,
        heavy in proptest::bool::ANY,
        capacity in 8usize..120,
        fifo_frac in 1usize..90,
        rows_a in 1usize..70,
        cols_b in 1usize..70,
        overbooking in proptest::bool::ANY,
        threads in 1usize..5,
        budget_bytes in 0u64..40_000,
        grid2d in proptest::bool::ANY,
    ) {
        let spec = if heavy {
            GenSpec::power_law(48, 48, 400)
        } else {
            GenSpec::uniform(48, 48, 300)
        };
        let a = spec.seed(seed).generate();
        let base = FunctionalConfig {
            capacity,
            fifo_region: (capacity * fifo_frac / 100).clamp(1, capacity - 1),
            rows_a,
            cols_b,
            overbooking,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let budgeted_config = FunctionalConfig {
            mem_budget: MemBudget::bytes(budget_bytes),
            grid: if grid2d { GridMode::Grid2D } else { GridMode::Panels },
            auto_plan: false,
            ..base
        };
        let unbudgeted = run_with_threads(&a, &base, 1).expect("unbudgeted run");
        let budgeted = run_with_threads(&a, &budgeted_config, threads).expect("budgeted run");
        prop_assert_eq!(&budgeted, &unbudgeted);
        let oracle = reference_run(&a, &base).expect("seed engine");
        prop_assert_eq!(&budgeted.z, &oracle.z);
        prop_assert_eq!(budgeted.dram_a_fetches, oracle.dram_a_fetches);
        prop_assert_eq!(budgeted.dram_b_fetches, oracle.dram_b_fetches);
        prop_assert_eq!(budgeted.overbooked_a_tiles, oracle.overbooked_a_tiles);
    }

    /// Budget-aware auto-planned runs, on arbitrary inputs: the engine
    /// re-plans the panel height, so the run must be bit-identical to a
    /// *fixed* run at the chosen height — every field, every thread
    /// count, both grids — and therefore to the seed engine at that
    /// tiling (which also pins the output matrix to the reference
    /// product, since the output never depends on the tiling at all).
    #[test]
    fn auto_planned_runs_are_bit_identical_to_reference(
        seed in 0u64..40,
        heavy in proptest::bool::ANY,
        capacity in 8usize..120,
        fifo_frac in 1usize..90,
        rows_a in 1usize..70,
        cols_b in 1usize..70,
        overbooking in proptest::bool::ANY,
        threads in 1usize..5,
        budget_bytes in 0u64..40_000,
        grid2d in proptest::bool::ANY,
    ) {
        let spec = if heavy {
            GenSpec::power_law(48, 48, 400)
        } else {
            GenSpec::uniform(48, 48, 300)
        };
        let a = spec.seed(seed).generate();
        let auto_config = FunctionalConfig {
            capacity,
            fifo_region: (capacity * fifo_frac / 100).clamp(1, capacity - 1),
            rows_a,
            cols_b,
            overbooking,
            mem_budget: MemBudget::bytes(budget_bytes),
            grid: if grid2d { GridMode::Grid2D } else { GridMode::Panels },
            auto_plan: true,
        };
        let chosen = auto_execution_plan(&a, &auto_config);
        let fixed_config = FunctionalConfig {
            rows_a: chosen.rows_a(),
            auto_plan: false,
            ..auto_config
        };
        let auto = run_with_threads(&a, &auto_config, threads).expect("auto run");
        let fixed = run_with_threads(&a, &fixed_config, 1).expect("fixed run at chosen height");
        prop_assert_eq!(&auto, &fixed);
        let oracle = reference_run(&a, &fixed_config).expect("seed engine");
        prop_assert_eq!(&auto.z, &oracle.z);
        prop_assert_eq!(auto.dram_a_fetches, oracle.dram_a_fetches);
        prop_assert_eq!(auto.dram_b_fetches, oracle.dram_b_fetches);
        prop_assert_eq!(auto.overbooked_a_tiles, oracle.overbooked_a_tiles);
        // The output matrix is additionally tiling-invariant: identical
        // to the seed engine at the *baseline* tiling too.
        let baseline_oracle = reference_run(
            &a,
            &FunctionalConfig { auto_plan: false, ..auto_config },
        )
        .expect("seed engine at baseline tiling");
        prop_assert_eq!(&auto.z, &baseline_oracle.z);
    }

    /// Arbitrary planner cost-model weights, on arbitrary inputs: the
    /// weights only move which panel height the auto planner picks (the
    /// calibrated-model neighborhood sweep included) — a run at the
    /// chosen tiling stays bit-identical to the seed engine in every
    /// reported field, at every thread count, under both grids. This is
    /// the calibrated planner's core contract: measurement can change
    /// plans, never results.
    #[test]
    fn costed_auto_plans_are_bit_identical_to_reference(
        seed in 0u64..40,
        heavy in proptest::bool::ANY,
        capacity in 8usize..120,
        fifo_frac in 1usize..90,
        rows_a in 1usize..70,
        cols_b in 1usize..70,
        overbooking in proptest::bool::ANY,
        threads in 1usize..5,
        budget_bytes in 0u64..40_000,
        grid2d in proptest::bool::ANY,
        w_fill in 1u64..50_000,
        w_refetch in 1u64..50_000,
        w_extract in 1u64..50_000,
    ) {
        let spec = if heavy {
            GenSpec::power_law(48, 48, 400)
        } else {
            GenSpec::uniform(48, 48, 300)
        };
        let a = spec.seed(seed).generate();
        let auto_config = FunctionalConfig {
            capacity,
            fifo_region: (capacity * fifo_frac / 100).clamp(1, capacity - 1),
            rows_a,
            cols_b,
            overbooking,
            mem_budget: MemBudget::bytes(budget_bytes),
            grid: if grid2d { GridMode::Grid2D } else { GridMode::Panels },
            auto_plan: true,
        };
        let model = CostModel { w_fill, w_refetch, w_extract };
        let chosen = auto_execution_plan_costed(&a, &auto_config, model);
        prop_assert!(chosen.rows_a() >= 1 && chosen.rows_a() <= a.nrows());
        let fixed_config = FunctionalConfig {
            rows_a: chosen.rows_a(),
            auto_plan: false,
            ..auto_config
        };
        let run = run_with_threads(&a, &fixed_config, threads).expect("run at chosen height");
        let oracle = reference_run(&a, &fixed_config).expect("seed engine");
        prop_assert_eq!(&run.z, &oracle.z);
        prop_assert_eq!(run.dram_a_fetches, oracle.dram_a_fetches);
        prop_assert_eq!(run.dram_b_fetches, oracle.dram_b_fetches);
        prop_assert_eq!(run.overbooked_a_tiles, oracle.overbooked_a_tiles);
        // The output matrix is tiling-invariant: whatever the weights
        // picked, it matches the seed engine at the baseline tiling too.
        let baseline_oracle = reference_run(
            &a,
            &FunctionalConfig { auto_plan: false, ..auto_config },
        )
        .expect("seed engine at baseline tiling");
        prop_assert_eq!(&run.z, &baseline_oracle.z);
        // And an all-equal model — whatever the shared value — must pick
        // exactly the plan the uniform planner picks: scaling every
        // candidate's total by a constant cannot reorder candidates.
        let degenerate = CostModel { w_fill, w_refetch: w_fill, w_extract: w_fill };
        prop_assert_eq!(
            auto_execution_plan_costed(&a, &auto_config, degenerate),
            auto_execution_plan_costed(&a, &auto_config, CostModel::UNIFORM)
        );
    }

    /// The 2-D grid's block-local accounting, on arbitrary inputs:
    /// per-unit adjusted DRAM counts must sum *exactly* to the
    /// shared-driver totals (globally, and per panel for the streamed
    /// operand), private counts must dominate adjusted ones, the
    /// overbooked flag must fire once per overbooked panel, and none of
    /// it may depend on the thread count.
    #[test]
    fn per_block_counts_sum_to_shared_driver_totals(
        seed in 0u64..40,
        heavy in proptest::bool::ANY,
        capacity in 8usize..120,
        fifo_frac in 1usize..90,
        rows_a in 1usize..70,
        cols_b in 1usize..70,
        overbooking in proptest::bool::ANY,
        threads in 1usize..5,
        budget_bytes in 0u64..40_000,
    ) {
        let spec = if heavy {
            GenSpec::power_law(48, 48, 400)
        } else {
            GenSpec::uniform(48, 48, 300)
        };
        let a = spec.seed(seed).generate();
        let config = FunctionalConfig {
            capacity,
            fifo_region: (capacity * fifo_frac / 100).clamp(1, capacity - 1),
            rows_a,
            cols_b,
            overbooking,
            mem_budget: MemBudget::bytes(budget_bytes),
            grid: GridMode::Grid2D,
            auto_plan: false,
        };
        let shared = run_with_threads(
            &a,
            &FunctionalConfig { grid: GridMode::Panels, ..config },
            1,
        )
        .expect("shared-driver run");
        let (result, traffic) = run_grid(&a, &config, threads).expect("2-D grid run");
        prop_assert_eq!(&result, &shared);
        let plan = config.execution_plan(a.nrows(), a.ncols());
        prop_assert_eq!(traffic.len(), plan.parallel_units(GridMode::Grid2D));
        let adjusted: u64 = traffic.iter().map(|t| t.dram_a_fetches).sum();
        let private: u64 = traffic.iter().map(|t| t.dram_a_private).sum();
        prop_assert_eq!(adjusted, shared.dram_a_fetches);
        prop_assert!(private >= adjusted);
        prop_assert_eq!(
            traffic.iter().map(|t| t.dram_b_fetches).sum::<u64>(),
            shared.dram_b_fetches
        );
        prop_assert_eq!(
            traffic.iter().filter(|t| t.overbooked).count(),
            shared.overbooked_a_tiles
        );
        for pi in 0..plan.n_row_panels() {
            let panel_b: u64 = traffic
                .iter()
                .filter(|t| t.row_panel == pi)
                .map(|t| t.dram_b_fetches)
                .sum();
            prop_assert_eq!(panel_b, a.nnz() as u64);
        }
    }
}

#[test]
fn engines_agree_on_empty_matrix() {
    let a = CsrMatrix::new(12, 12);
    for overbooking in [false, true] {
        let config = FunctionalConfig {
            capacity: 8,
            fifo_region: 2,
            rows_a: 4,
            cols_b: 4,
            overbooking,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        check_equivalent(&a, &config, 3);
    }
}

#[test]
fn engines_agree_on_single_row_panels() {
    // rows_a = 1: one panel per row, including empty panels.
    let a = CsrMatrix::from_triplets(6, 6, &[(0, 1, 1.0), (0, 5, -2.0), (3, 0, 4.0), (5, 5, 0.5)])
        .unwrap();
    let config = FunctionalConfig {
        capacity: 3,
        fifo_region: 1,
        rows_a: 1,
        cols_b: 2,
        overbooking: true,
        mem_budget: MemBudget::Unbounded,
        grid: GridMode::Panels,
        auto_plan: false,
    };
    check_equivalent(&a, &config, 4);
}

#[test]
fn engines_agree_on_heavily_overbooked_tiles() {
    // Capacity far below every panel occupancy: every tile overbooks and
    // the Tailors restream path dominates.
    let a = GenSpec::power_law(64, 64, 700).seed(99).generate();
    let config = FunctionalConfig {
        capacity: 10,
        fifo_region: 4,
        rows_a: 32,
        cols_b: 8,
        overbooking: true,
        mem_budget: MemBudget::Unbounded,
        grid: GridMode::Panels,
        auto_plan: false,
    };
    let result = run_with_threads(&a, &config, 2).unwrap();
    assert_eq!(result.overbooked_a_tiles, 2, "both tiles must overbook");
    check_equivalent(&a, &config, 2);
}

#[test]
fn engines_agree_on_one_by_one_matrix() {
    let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 2.5)]).unwrap();
    let config = FunctionalConfig {
        capacity: 1,
        fifo_region: 1,
        rows_a: 1,
        cols_b: 1,
        overbooking: false,
        mem_budget: MemBudget::Unbounded,
        grid: GridMode::Panels,
        auto_plan: false,
    };
    check_equivalent(&a, &config, 1);
}
