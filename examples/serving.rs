//! Quickstart for the serving layer: stand up a long-lived [`SimService`],
//! submit a mixed batch of simulation requests, and watch the second
//! sweep answer from hot profile/plan caches — bit-identical to the
//! first, at a fraction of the cost.
//!
//! Run with: `cargo run --release --example serving`

use std::time::Instant;

use tailors::serve::{SimRequest, SimService};
use tailors::sim::{GridMode, MemBudget, Variant};

fn main() {
    // 1. A batch of heterogeneous requests: four suite workloads × the
    //    three paper variants at 1/32 scale, with a tight scratch budget
    //    and the 2-D grid on the overbooked rows — exactly the kind of
    //    mixed traffic the cost-balanced batch scheduler is for.
    let mut batch: Vec<SimRequest> = Vec::new();
    for name in ["cant", "email-Enron", "amazon0312", "roadNet-CA"] {
        for variant in [
            Variant::ExTensorN,
            Variant::ExTensorP,
            Variant::default_ob(),
        ] {
            let mut req =
                SimRequest::suite(name, 1.0 / 32.0, variant).expect("suite workload exists");
            if matches!(variant, Variant::ExTensorOB { .. }) {
                req.budget = MemBudget::mib(16);
                req.grid = GridMode::Grid2D;
            }
            batch.push(req);
        }
    }

    // 2. A long-lived service. Submissions share three cache tiers:
    //    generated tensors, occupancy profiles (keyed by the matrix's
    //    stable content hash), and tile/execution plans (keyed by matrix
    //    × variant × architecture × budget).
    let service = SimService::new();

    // 3. Sweep 1 is cold: every request pays profile + plan construction.
    let t = Instant::now();
    let cold = service.submit_batch(&batch, 4);
    println!(
        "cold sweep: {:>10.2?} for {} requests",
        t.elapsed(),
        batch.len()
    );

    // 4. Sweep 2 is hot: profiles and plans replay from the caches and
    //    each request is a pure `Variant::run_planned` evaluation.
    let t = Instant::now();
    let hot = service.submit_batch(&batch, 4);
    println!(
        "hot sweep:  {:>10.2?} (plans and profiles cached)",
        t.elapsed()
    );

    // 5. The serving contract: hot responses are bit-identical to cold
    //    ones — caching is invisible in the payload.
    for (c, h) in cold.iter().zip(&hot) {
        assert_eq!(c.metrics, h.metrics);
        assert!(h.hits.profile && h.hits.plan);
    }
    let stats = service.stats();
    println!(
        "cache tiers: plan hit rate {:.0} %, profile hit rate {:.0} % over {} requests",
        100.0 * stats.plan_hit_rate(),
        100.0 * stats.profile_hit_rate(),
        stats.requests,
    );

    // 6. Read results off the hot sweep as usual.
    println!(
        "\n{:<14} {:>12} {:>14} {:>8}",
        "workload", "variant", "cycles", "bound"
    );
    for resp in &hot {
        let variant = if resp.metrics.plan.overbooking {
            "ExTensor-OB"
        } else if resp.metrics.plan.full_k {
            "ExTensor-P"
        } else {
            "ExTensor-N"
        };
        println!(
            "{:<14} {:>12} {:>14.0} {:>8}",
            resp.name, variant, resp.metrics.cycles, resp.metrics.bound_by,
        );
    }
}
