//! Umbrella crate for the Tailors (MICRO 2023) reproduction.
//!
//! Re-exports the workspace crates under one roof.

pub use tailors_core as core;
pub use tailors_eddo as eddo;
pub use tailors_serve as serve;
pub use tailors_sim as sim;
pub use tailors_tensor as tensor;
pub use tailors_workloads as workloads;
