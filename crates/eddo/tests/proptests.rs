//! Property-based tests for the EDDO storage idioms.

use std::collections::VecDeque;

use proptest::prelude::*;
use tailors_eddo::replay::{buffet_fetch_model, replay_buffet, replay_tailor, tailor_fetch_model};
use tailors_eddo::{Buffet, EddoError, Tailor, TailorConfig};

proptest! {
    /// A Tailor driven through sequential traversals always returns the
    /// right data (asserted inside the replay) and its parent traffic always
    /// matches the closed-form model used by the analytical simulator.
    #[test]
    fn tailor_replay_matches_model(
        len in 1usize..80,
        cap in 2usize..40,
        fifo_frac in 1usize..100,
        passes in 0u64..6,
    ) {
        let fifo = (cap * fifo_frac / 100).clamp(1, cap - 1);
        let tile: Vec<u32> = (0..len as u32).collect();
        let config = TailorConfig::new(cap, fifo).unwrap();
        let report = replay_tailor(&tile, config, passes).unwrap();
        prop_assert_eq!(
            report.parent_fetches,
            tailor_fetch_model(len as u64, config, passes)
        );
        prop_assert_eq!(report.reads, passes * len as u64);
    }

    /// Buffet traversal traffic matches its closed-form model.
    #[test]
    fn buffet_replay_matches_model(
        len in 1usize..80,
        cap in 1usize..40,
        passes in 0u64..6,
    ) {
        let tile: Vec<u32> = (0..len as u32).collect();
        let report = replay_buffet(&tile, cap, passes).unwrap();
        prop_assert_eq!(
            report.parent_fetches,
            buffet_fetch_model(len as u64, cap as u64, passes)
        );
    }

    /// A Tailor never outperforms physics: parent fetches are at least the
    /// tile length (compulsory traffic) and at most the buffet's traffic.
    #[test]
    fn tailor_traffic_is_bounded(
        len in 1usize..60,
        cap in 2usize..30,
        passes in 1u64..6,
    ) {
        let fifo = (cap / 3).max(1).min(cap - 1);
        let tile: Vec<u32> = (0..len as u32).collect();
        let config = TailorConfig::new(cap, fifo).unwrap();
        let tailor = replay_tailor(&tile, config, passes).unwrap();
        let buffet = replay_buffet(&tile, cap, passes).unwrap();
        prop_assert!(tailor.parent_fetches >= len as u64);
        prop_assert!(tailor.parent_fetches <= buffet.parent_fetches);
    }

    /// Buffet against a reference model (a plain VecDeque sliding window)
    /// under random operation sequences.
    #[test]
    fn buffet_matches_reference_model(ops in proptest::collection::vec(0u8..4, 1..200)) {
        let cap = 8usize;
        let mut b: Buffet<u64> = Buffet::new(cap);
        let mut reference: VecDeque<u64> = VecDeque::new();
        let mut next_value = 0u64;
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                0 => {
                    // Fill.
                    let r = b.fill(next_value);
                    if reference.len() < cap {
                        prop_assert!(r.is_ok());
                        reference.push_back(next_value);
                    } else {
                        prop_assert_eq!(r, Err(EddoError::Full));
                    }
                    next_value += 1;
                }
                1 => {
                    // Read a pseudo-random index.
                    let idx = step % cap;
                    let r = b.read(idx);
                    match reference.get(idx) {
                        Some(&v) => prop_assert_eq!(r, Ok(v)),
                        None => prop_assert!(r.is_err()),
                    }
                }
                2 => {
                    // Update a pseudo-random index.
                    let idx = step % cap;
                    let r = b.update(idx, 9_000 + step as u64);
                    if idx < reference.len() {
                        prop_assert!(r.is_ok());
                        reference[idx] = 9_000 + step as u64;
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                _ => {
                    // Shrink 1.
                    let r = b.shrink(1);
                    if reference.is_empty() {
                        prop_assert!(r.is_err());
                    } else {
                        prop_assert!(r.is_ok());
                        reference.pop_front();
                    }
                }
            }
            prop_assert_eq!(b.occupancy(), reference.len());
            prop_assert_eq!(b.credits(), cap - reference.len());
        }
    }

    /// A Tailor's occupancy never exceeds its capacity, whatever the driver
    /// does.
    #[test]
    fn tailor_occupancy_bounded(ops in proptest::collection::vec(0u8..3, 1..150)) {
        let config = TailorConfig::new(6, 2).unwrap();
        let mut t: Tailor<u64> = Tailor::new(config);
        t.set_tile_len(32);
        let mut v = 0u64;
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                0 => {
                    let _ = t.fill(v);
                    v += 1;
                }
                1 => {
                    let _ = t.ow_fill(v);
                    v += 1;
                }
                _ => {
                    let _ = t.read(step % 32);
                }
            }
            prop_assert!(t.occupancy() <= t.capacity());
        }
    }

    /// Index translation consistency: whenever a bumped index is resident in
    /// the window, the paper's `Index - FIFO Offset` translation — taken
    /// modulo the streaming cycle period `tile_len - resident` once the
    /// stream wraps — agrees with the Tailor's positional bookkeeping.
    #[test]
    fn tailor_translation_formula_holds(
        len in 7usize..40,
        n_owfills in 1usize..60,
    ) {
        let config = TailorConfig::new(6, 2).unwrap();
        let mut t: Tailor<u32> = Tailor::new(config);
        t.set_tile_len(len);
        for i in 0..6u32 {
            t.fill(i).unwrap();
        }
        let period = (len - config.resident_region()) as isize;
        for _ in 0..n_owfills {
            let idx = t.next_stream_index().unwrap_or(6);
            t.ow_fill(idx as u32).unwrap();
            for index in t.fifo_head()..len {
                if let Some(offset) = t.buffer_offset(index) {
                    let oldest = t.fifo_offset() + t.fifo_head();
                    let formula = t.fifo_head()
                        + (index as isize - oldest as isize).rem_euclid(period) as usize;
                    prop_assert_eq!(offset, formula, "index {}", index);
                }
            }
        }
    }
}
