//! Fig. 13: Swiftiles' distributions on amazon0312 for a buffer of 8 K
//! nonzeros at y = 10 %: the sampled distribution at T_initial, the scaled
//! prediction at T_target, and the observed distribution when the tensor is
//! actually tiled at T_target.
//!
//! Usage: `cargo run --release -p tailors-bench --bin fig13 [scale]`

use tailors_bench::{profile_at, rule, scale_from_args};
use tailors_core::swiftiles::{Swiftiles, SwiftilesConfig};
use tailors_tensor::stats::{quantile, Histogram};
use tailors_tensor::tiling::RowPanels;

fn main() {
    let scale = scale_from_args();
    let capacity = (8_192.0 * scale).max(64.0) as u64; // the paper's 8K buffer
    let y = 0.10;
    let wl = tailors_workloads::by_name("amazon0312").expect("suite tensor");
    let (scaled_wl, profile) = profile_at(&wl, scale);

    let config = SwiftilesConfig::new(y, 10).expect("valid y").sample_all();
    let est = Swiftiles::new(config).estimate(&profile, capacity);

    // The three distributions of Fig. 13.
    let initial: Vec<u64> = est.samples.clone();
    // Predicted: the sampled distribution linearly rescaled so Q_y lands on
    // the capacity (what Swiftiles *assumes* tiling at T_target looks like).
    let q_y = est.q_y.expect("sampled") as f64;
    let predicted: Vec<u64> = initial
        .iter()
        .map(|&o| (o as f64 * capacity as f64 / q_y).round() as u64)
        .collect();
    let observed: Vec<u64> = RowPanels::new(&profile, est.rows_target)
        .occupancies()
        .collect();

    println!(
        "Fig. 13 — Swiftiles distributions on {} (buffer = {} nnz, y = 10%, scale = {scale})",
        scaled_wl.name, capacity
    );
    rule(74);
    println!(
        "T_initial = {} ({} rows/tile); T_target = {} ({} rows/tile)",
        est.t_initial, est.rows_initial, est.t_target, est.rows_target
    );
    let frac_over = |v: &[u64]| {
        100.0 * v.iter().filter(|&&o| o > capacity).count() as f64 / v.len().max(1) as f64
    };
    println!(
        "tiles over capacity: initial {:.1}%, predicted {:.1}%, observed {:.1}% (target 10%)",
        frac_over(&initial),
        frac_over(&predicted),
        frac_over(&observed)
    );
    rule(74);

    for (label, data) in [
        ("T_initial (sampled)", &initial),
        ("T_target (predicted)", &predicted),
        ("T_target (observed)", &observed),
    ] {
        println!();
        println!("{label}: CDF at selected occupancies");
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for pct in [50.0, 80.0, 90.0, 95.0, 99.0, 100.0] {
            let v = quantile(&sorted, pct / 100.0);
            println!("  {:>5.1}% of tiles <= {:>10} nnz", pct, v);
        }
        let h = Histogram::new(data, 8);
        let fr = h.fractions();
        print!("  pdf:");
        for ((start, _), f) in h.iter().zip(fr) {
            print!(" [{start}:{:.0}%]", 100.0 * f);
        }
        println!();
    }
    rule(74);
    println!("paper: scaling aligns the predicted CDF with the observed one at the");
    println!("y = 10% point (90% of tiles fit) despite T_initial being inaccurate.");
}
