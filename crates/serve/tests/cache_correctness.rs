//! Property test: serving never leaks state between requests. For
//! arbitrary matrices, budgets, and grids, a served response — after an
//! arbitrary interleaving of cache hits and LRU evictions (tiny tier
//! capacities force constant eviction churn) — is bit-identical to a
//! cold `Variant::run_gridded` call on a freshly built profile. Repeated
//! submissions are additionally checked against themselves, so the hit
//! path and the miss path are pinned to one another.

use proptest::prelude::*;
use tailors_serve::{ServeConfig, SimRequest, SimService};
use tailors_sim::{ArchConfig, CostModel, GridMode, MemBudget, Variant};
use tailors_tensor::gen::GenSpec;
use tailors_tensor::CsrMatrix;

fn variant_of(idx: u8) -> Variant {
    match idx % 3 {
        0 => Variant::ExTensorN,
        1 => Variant::ExTensorP,
        _ => Variant::default_ob(),
    }
}

fn matrix_of(seed: u64, heavy: bool, n: usize, nnz: usize) -> CsrMatrix {
    let spec = if heavy {
        GenSpec::power_law(n, n, nnz)
    } else {
        GenSpec::uniform(n, n, nnz)
    };
    spec.seed(seed).generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary request streams over a pool of matrices through a
    /// service whose tiers are much smaller than the pool's working set:
    /// every response equals the cold run, bitwise, regardless of what
    /// was cached, hit, or evicted before it.
    #[test]
    fn served_equals_cold_under_arbitrary_interleaving(
        seed in 0u64..50,
        heavy in proptest::bool::ANY,
        n in 40usize..70,
        nnz in 200usize..500,
        gb_elems in 60u64..2_000,
        pe_elems in 12u64..200,
        ops in proptest::collection::vec(
            (0u8..3, 0u8..3, 0u8..3, proptest::bool::ANY),
            8..20
        ),
    ) {
        // Three distinct matrices cycling through a 2-profile tier and a
        // 3-plan tier: evictions on nearly every switch.
        let pool: Vec<CsrMatrix> = (0..3)
            .map(|i| matrix_of(seed * 3 + i, heavy, n + i as usize, nnz))
            .collect();
        let arch = ArchConfig::tiny(gb_elems, pe_elems);
        let service = SimService::with_config(ServeConfig {
            profile_capacity: 2,
            plan_capacity: 3,
            ..ServeConfig::default()
        });
        for (mi, vi, bi, grid2d) in ops {
            let a = &pool[mi as usize % pool.len()];
            let variant = variant_of(vi);
            let budget = match bi % 3 {
                0 => MemBudget::Unbounded,
                // Tight: a handful of column tiles per block.
                1 => MemBudget::bytes((n as u64) * 16 * 8),
                // Sub-tile: clamps to the minimum schedulable unit.
                _ => MemBudget::bytes(64),
            };
            let grid = if grid2d { GridMode::Grid2D } else { GridMode::Panels };
            let (served, _) = service.run_matrix(a, variant, &arch, budget, grid);
            let cold = variant.run_gridded(&a.profile(), &arch, budget, grid);
            prop_assert_eq!(served, cold, "matrix {} variant {} budget {} grid {}",
                mi, variant.name(), budget, grid);
            prop_assert_eq!(served.cycles.to_bits(), cold.cycles.to_bits());
            prop_assert_eq!(served.energy_pj.to_bits(), cold.energy_pj.to_bits());
            // The immediate resubmission (a guaranteed hit on both tiers)
            // must also match — hit path == miss path.
            let (again, hits) = service.run_matrix(a, variant, &arch, budget, grid);
            prop_assert!(hits.profile && hits.plan);
            prop_assert_eq!(again, served);
        }
        // The tiers really were too small to hold everything: the churn
        // above must have produced misses beyond the first fills.
        let stats = service.stats();
        prop_assert!(stats.profile_misses >= 1 && stats.plan_misses >= 1);
    }
}

/// The planner cost model versions auto plans in the plan tier but never
/// touches fixed plans: a service configured with a skewed (calibrated-
/// like) model serves fixed requests bit-identical to the default
/// service, and serves auto-planned requests bit-identical to a cold
/// replan under its own model — with the hit path pinned to the miss
/// path on immediate resubmission in both cases.
#[test]
fn cost_model_versions_auto_plans_but_not_fixed_ones() {
    let workload = tailors_workloads::by_name("email-Enron")
        .expect("suite workload")
        .scaled(1.0 / 64.0);
    let arch = ArchConfig::extensor().scaled(1.0 / 64.0);
    let budget = MemBudget::bytes(64 << 10);
    let skewed = CostModel {
        w_fill: 37,
        w_refetch: 3,
        w_extract: 9_000,
    };
    assert_ne!(skewed.key(), CostModel::UNIFORM.key());
    let uniform_svc = SimService::new();
    let skewed_svc = SimService::with_config(ServeConfig {
        cost_model: skewed,
        ..ServeConfig::default()
    });
    let profile = tailors_workloads::generate_cached(&workload).profile();
    for auto_plan in [false, true] {
        let req = SimRequest {
            workload: workload.clone(),
            variant: Variant::default_ob(),
            arch,
            budget,
            grid: GridMode::Panels,
            auto_plan,
        };
        let uniform_resp = uniform_svc.submit(&req);
        let skewed_resp = skewed_svc.submit(&req);
        let tile = req.variant.plan(&profile, &arch);
        if auto_plan {
            // Each service must match a cold replan under *its own*
            // model; the models may legitimately pick different tilings.
            for (resp, model) in [(&uniform_resp, CostModel::UNIFORM), (&skewed_resp, skewed)] {
                let exec = req
                    .variant
                    .auto_execution_plan_costed(&profile, &arch, budget, &tile, model);
                let direct = req
                    .variant
                    .run_planned(&profile, &arch, &tile, &exec, req.grid);
                assert_eq!(
                    resp.metrics, direct,
                    "served auto metrics diverged from the cold costed replan"
                );
            }
        } else {
            // Fixed plans never consult the model: both services must
            // agree bitwise.
            assert_eq!(
                uniform_resp.metrics, skewed_resp.metrics,
                "a fixed plan drifted with the cost model"
            );
        }
        // Hit path == miss path, under either model.
        let again = skewed_svc.submit(&req);
        assert!(again.hits.profile && again.hits.plan);
        assert_eq!(again.metrics, skewed_resp.metrics);
    }
}
