//! Drives repeated variant sweeps through the long-lived [`SimService`],
//! demonstrating plan-hot steady state: sweep 1 pays profile + plan
//! construction, every later sweep answers from the caches and is proven
//! bit-identical to the first.
//!
//! Usage: `cargo run --release -p tailors-serve --bin serve --
//! [scale] [--sweeps N] [--threads N] [--mem-budget SPEC] [--grid MODE]
//! [--auto-plan] [--calibrate] [--no-simd] [--verify] [--smoke-functional]
//! [--wire ADDR | --wire-stdio | --wire-smoke]
//! [--router N | --shards ADDR,ADDR,... | --router-smoke]
//! [--replicas R] [--probe-ms MS]`
//!
//! `--no-simd` pins `TAILORS_SIMD=off` for the process: every fiber
//! intersection takes the portable scalar superblock path (results are
//! bit-identical either way; this is the knob for isolating the SIMD
//! dispatch when debugging or benchmarking). `--calibrate` plans
//! auto-planned requests under the measured [`CostModel::calibrated`]
//! weights instead of the uniform element-touch model; it also falls
//! back to `TAILORS_CALIBRATE`, so `run_all --calibrate` reaches this
//! binary the same way as the other knobs. Calibrated plans are
//! versioned in the plan tier by the model fingerprint.
//!
//! The three `--wire*` modes run the fault-tolerant service runtime
//! (bounded priority mailbox + worker pool + admission control; see
//! `tailors_serve::runtime`) behind the line-delimited JSON wire
//! protocol instead of the sweep driver:
//!
//! * `--wire ADDR` — TCP server on `ADDR` (port 0 picks an ephemeral
//!   port; the bound address is printed). Serves until stdin reaches
//!   EOF, then drains and reports.
//! * `--wire-stdio` — serve requests from stdin, replies on stdout
//!   (diagnostics go to stderr; stdout carries only protocol lines).
//! * `--wire-smoke` — self-contained CI round trip: spawns the TCP
//!   server, drives the suite batch through wire clients, and asserts
//!   every completed reply is bit-identical to an in-process baseline
//!   and that `completed + faulted + rejected + timed_out` accounts for
//!   every submission. Honors `TAILORS_FAULTS` (e.g.
//!   `panic:7,latency:3`), under which completed replies must *still*
//!   be bit-identical and nothing may be lost.
//!
//! The three `--router*`/`--shards` modes put the consistent-hash
//! [`ShardRouter`] in front of N wire shard processes:
//!
//! * `--router N` — spawn N child `serve --wire 127.0.0.1:0` shard
//!   processes, route the suite sweeps through them, and assert every
//!   hot sweep is bit-identical to the first.
//! * `--shards ADDR,ADDR,...` — the same sweeps against an existing
//!   fleet of wire servers (no children spawned).
//! * `--router-smoke` — self-contained CI round trip, four legs: a
//!   3-shard suite batch proven bit-identical to an in-process
//!   baseline; a shard killed mid-stream with failover proven to
//!   complete; the victim restarted on its original port and proven
//!   re-admitted by health probes (with its keys warm-replayed) before
//!   serving again; and a fourth shard live-joined, driven, then
//!   retired again — with the fleet accounting ledger
//!   (`completed + rejected + timed_out + faulted == submitted`)
//!   proven intact across all four.
//!
//! `--replicas R` switches the router modes to R-way replicated
//! placement ([`Placement::Replicated`]): each key's first R live ring
//! candidates are designated owners, so a kill costs a zero-backoff hop
//! to an already-warm replica instead of a discovery timeout (the smoke
//! asserts `timed_out == 0` across the kill leg under `--replicas 2`).
//! `--probe-ms MS` arms the background health prober at that cadence;
//! without it the smoke exercises the synchronous
//! [`ShardRouter::probe_now`] path instead.
//!
//! The batch is the full 22-workload suite × the three variants at
//! `scale` (default 1.0), submitted through
//! [`SimService::submit_batch`]'s cost-balanced LPT scheduler. `--threads`
//! falls back to `TAILORS_THREADS`, `--mem-budget` to
//! `TAILORS_MEM_BUDGET`, `--grid` to `TAILORS_GRID`, and `--auto-plan`
//! to `TAILORS_AUTO_PLAN`, so `run_all --serve` reaches this binary with
//! the same knobs as every other child. With auto-planning on, execution
//! plans come from the budget-aware auto planner (cached per request key
//! like any other plan) and `--verify` diffs against `Variant::run_auto`.
//!
//! `--verify` additionally recomputes every response cold — a direct
//! `Variant::run_gridded` on a freshly built profile — and asserts
//! bit-identical metrics. `--smoke-functional` runs a batch of mixed
//! variants *functionally* on a 50 000-column tensor through the service
//! and diffs each result against the seed engine
//! (`functional::reference_run`) under the identical configuration.

use std::io::BufRead;
use std::sync::Arc;
use std::time::Instant;

use tailors_serve::wire::{serve_lines, WireClient, WireTcpServer};
use tailors_serve::{
    FaultPlan, FunctionalRequest, Placement, Reply, RouterConfig, RuntimeConfig, ServeConfig,
    ServeError, ServiceRuntime, ShardRouter, SimRequest, SimService, Work,
};
use tailors_sim::functional::reference_run;
use tailors_sim::{
    auto_plan_from_env, cost_model_from_env, grid_from_env, mem_budget_from_env, threads_from_env,
    ArchConfig, CostModel, GridMode, MemBudget, Variant,
};
use tailors_workloads::{Workload, WorkloadClass};

fn main() {
    let mut scale = 1.0f64;
    let mut sweeps = 3usize;
    let mut threads: Option<usize> = None;
    let mut budget: Option<MemBudget> = None;
    let mut grid: Option<GridMode> = None;
    let mut auto_plan = false;
    let mut calibrate = false;
    let mut no_simd = false;
    let mut verify = false;
    let mut smoke_functional = false;
    let mut wire_addr: Option<String> = None;
    let mut wire_stdio = false;
    let mut wire_smoke = false;
    let mut router: Option<usize> = None;
    let mut shard_list: Option<String> = None;
    let mut router_smoke = false;
    let mut replicas = 1usize;
    let mut probe_ms: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--sweeps" => {
                sweeps = next("--sweeps")
                    .parse()
                    .expect("--sweeps: positive integer")
            }
            "--threads" => {
                threads = Some(
                    next("--threads")
                        .parse()
                        .expect("--threads: positive integer"),
                )
            }
            "--mem-budget" => {
                budget = Some(MemBudget::parse(&next("--mem-budget")).expect("--mem-budget"))
            }
            "--grid" => grid = Some(GridMode::parse(&next("--grid")).expect("--grid")),
            "--auto-plan" => auto_plan = true,
            "--calibrate" => calibrate = true,
            "--no-simd" => no_simd = true,
            "--verify" => verify = true,
            "--smoke-functional" => smoke_functional = true,
            "--wire" => wire_addr = Some(next("--wire")),
            "--wire-stdio" => wire_stdio = true,
            "--wire-smoke" => wire_smoke = true,
            "--router" => {
                router = Some(
                    next("--router")
                        .parse()
                        .expect("--router: positive shard count"),
                )
            }
            "--shards" => shard_list = Some(next("--shards")),
            "--router-smoke" => router_smoke = true,
            "--replicas" => {
                replicas = next("--replicas")
                    .parse()
                    .expect("--replicas: positive replica count")
            }
            "--probe-ms" => {
                probe_ms = Some(
                    next("--probe-ms")
                        .parse()
                        .expect("--probe-ms: probe cadence in milliseconds"),
                )
            }
            other if !other.starts_with('-') => {
                scale = other.parse().expect("scale: a number in (0, 1]");
                assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
            }
            other => panic!("unknown argument {other:?}; see the module docs"),
        }
    }
    assert!(sweeps > 0, "--sweeps must be positive");
    if no_simd {
        // Before any intersection runs: the SIMD dispatch level is
        // resolved lazily (once per process) from this variable.
        std::env::set_var("TAILORS_SIMD", "off");
    }
    let threads = threads.unwrap_or_else(threads_from_env);
    let budget = budget.unwrap_or_else(mem_budget_from_env);
    let grid = grid.unwrap_or_else(grid_from_env);
    let auto_plan = auto_plan || auto_plan_from_env();
    let cost_model = if calibrate {
        CostModel::calibrated()
    } else {
        cost_model_from_env()
    };

    if wire_stdio {
        run_wire_stdio(threads);
        return;
    }
    if let Some(addr) = wire_addr {
        run_wire_tcp(&addr, threads);
        return;
    }
    if wire_smoke {
        run_wire_smoke(scale, threads);
        return;
    }
    assert!(replicas > 0, "--replicas must be positive");
    let router_config = RouterConfig {
        placement: if replicas > 1 {
            Placement::Replicated(replicas)
        } else {
            Placement::Primary
        },
        probe_interval: probe_ms.map(std::time::Duration::from_millis),
        ..RouterConfig::default()
    };
    if router_smoke {
        run_router_smoke(scale, threads, router_config);
        return;
    }
    if let Some(list) = shard_list {
        let endpoints: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        run_router_sweeps(&endpoints, scale, threads, sweeps, router_config);
        return;
    }
    if let Some(n) = router {
        assert!(n > 0, "--router needs at least one shard");
        let fleet = spawn_shard_fleet(n, threads);
        let endpoints: Vec<String> = fleet.iter().map(|s| s.addr.clone()).collect();
        run_router_sweeps(&endpoints, scale, threads, sweeps, router_config);
        for shard in fleet {
            shard.stop();
        }
        return;
    }

    let variants = [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ];
    let arch = ArchConfig::extensor().scaled(scale);
    let batch: Vec<SimRequest> = tailors_workloads::suite()
        .iter()
        .flat_map(|wl| {
            variants.map(|variant| SimRequest {
                workload: wl.scaled(scale),
                variant,
                arch,
                budget,
                grid,
                auto_plan,
            })
        })
        .collect();
    println!(
        "serve: {} requests/sweep ({} workloads x {} variants) at scale {scale}, \
         {threads} threads, budget {budget}, grid {grid}, auto-plan {auto_plan}, \
         simd {}, cost model {}",
        batch.len(),
        batch.len() / variants.len(),
        variants.len(),
        tailors_tensor::simd::active_level(),
        if cost_model.is_uniform() {
            "uniform".to_string()
        } else {
            format!(
                "calibrated (fill {} / refetch {} / extract {} ps, key {:#018x})",
                cost_model.w_fill,
                cost_model.w_refetch,
                cost_model.w_extract,
                cost_model.key()
            )
        },
    );

    let service = SimService::with_config(ServeConfig {
        cost_model,
        ..ServeConfig::default()
    });
    let mut first: Option<Vec<tailors_serve::SimResponse>> = None;
    for sweep in 1..=sweeps {
        let before = service.stats();
        let t = Instant::now();
        let responses = service.submit_batch(&batch, threads);
        let elapsed = t.elapsed();
        let after = service.stats();
        println!(
            "sweep {sweep}: {elapsed:.2?}  (profile {} hit / {} miss, plan {} hit / {} miss)",
            after.profile_hits - before.profile_hits,
            after.profile_misses - before.profile_misses,
            after.plan_hits - before.plan_hits,
            after.plan_misses - before.plan_misses,
        );
        match &first {
            None => {
                // Steady state starts at sweep 2: every tier hot.
                first = Some(responses);
            }
            Some(cold) => {
                assert!(
                    responses.iter().all(|r| r.hits.profile && r.hits.plan),
                    "steady-state sweeps must hit the profile and plan tiers"
                );
                for (c, h) in cold.iter().zip(&responses) {
                    assert_eq!(c.name, h.name);
                    assert_eq!(
                        c.metrics, h.metrics,
                        "{}: hot response diverged from cold",
                        c.name
                    );
                }
            }
        }
    }
    let stats = service.stats();
    println!(
        "steady state: plan hit rate {:.1} %, profile hit rate {:.1} % over {} requests",
        100.0 * stats.plan_hit_rate(),
        100.0 * stats.profile_hit_rate(),
        stats.requests,
    );

    if verify {
        println!("verify: diffing every served response against a cold Variant run ...");
        let t = Instant::now();
        let responses = first.as_ref().expect("at least one sweep ran");
        // The batch is grouped per workload (one request per variant), so
        // the O(nnz) profiling pass runs once per workload, not per
        // request.
        for (reqs, resps) in batch
            .chunks(variants.len())
            .zip(responses.chunks(variants.len()))
        {
            let profile = tailors_workloads::generate_cached(&reqs[0].workload).profile();
            for (req, resp) in reqs.iter().zip(resps) {
                let direct = if req.auto_plan {
                    // Replan cold under the *same* cost model the service
                    // planned with — a calibrated service legitimately
                    // picks a different tiling than `run_auto`'s uniform
                    // default would.
                    let tile = req.variant.plan(&profile, &req.arch);
                    let exec = req.variant.auto_execution_plan_costed(
                        &profile, &req.arch, req.budget, &tile, cost_model,
                    );
                    req.variant
                        .run_planned(&profile, &req.arch, &tile, &exec, req.grid)
                } else {
                    req.variant
                        .run_gridded(&profile, &req.arch, req.budget, req.grid)
                };
                assert_eq!(
                    resp.metrics,
                    direct,
                    "{} / {}: served metrics diverged from the direct run",
                    req.workload.name,
                    req.variant.name()
                );
            }
        }
        println!(
            "verify: all {} responses bit-identical ({:.2?})",
            batch.len(),
            t.elapsed()
        );
    }

    if smoke_functional {
        functional_smoke(threads, budget, grid, auto_plan, cost_model);
    }
    println!("OK");
}

/// The CI serving smoke: a batch of mixed variants executed *functionally*
/// at 50 000 columns through the service, each result diffed against the
/// seed engine under the identical derived configuration.
fn functional_smoke(
    threads: usize,
    budget: MemBudget,
    grid: GridMode,
    auto_plan: bool,
    cost_model: CostModel,
) {
    let workload = Workload {
        name: "serve-smoke-50k",
        nrows: 50_000,
        ncols: 50_000,
        target_nnz: 300_000,
        class: WorkloadClass::Graph,
        paper_sparsity: 1.0 - 300_000.0 / (50_000.0 * 50_000.0),
        variability: 0.5,
        seed: 77,
    };
    // A 1/64-scaled architecture keeps tile plans small enough that the
    // overbooked variant actually overbooks at this occupancy.
    let arch = ArchConfig::extensor().scaled(1.0 / 64.0);
    let budget = match budget {
        // The suite sweep above may run unbounded; the functional engine
        // at 50 k columns must not (a full-width panel scratch would be
        // gigabytes), so floor the smoke at 256 MiB.
        MemBudget::Unbounded => MemBudget::mib(256),
        bounded => bounded,
    };
    println!(
        "functional smoke: {} x {} tensor, mixed variants, budget {budget}, grid {grid}",
        workload.nrows, workload.ncols
    );
    let service = SimService::with_config(ServeConfig {
        cost_model,
        ..ServeConfig::default()
    });
    let a = tailors_workloads::generate_cached(&workload);
    for variant in [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ] {
        let req = FunctionalRequest {
            workload: workload.clone(),
            variant,
            arch,
            budget,
            grid,
            auto_plan,
            threads,
        };
        let t = Instant::now();
        let served = service.run_functional(&req).expect("served functional run");
        let served_time = t.elapsed();
        let t = Instant::now();
        let oracle = reference_run(&a, &served.config).expect("seed engine run");
        println!(
            "  {}: served {served_time:.2?} (tiling {} x {}), seed engine {:.2?}, z nnz {}",
            variant.name(),
            served.config.rows_a,
            served.config.cols_b,
            t.elapsed(),
            served.result.z.nnz(),
        );
        assert_eq!(
            served.result,
            oracle,
            "{}: served functional result diverged from reference_run",
            variant.name()
        );
    }
    println!("functional smoke: all variants bit-identical to reference_run");
}

/// The runtime every wire mode serves from: worker pool sized from the
/// thread knob, faults armed from `TAILORS_FAULTS`.
fn wire_runtime(threads: usize) -> Arc<ServiceRuntime> {
    let faults = FaultPlan::from_env();
    if faults.is_active() {
        eprintln!("wire: fault injection armed: {faults:?}");
        // Injected panics are expected traffic here; keep their default
        // hook output (message + backtrace) off stderr so the harness
        // logs stay readable. Real panics still print.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.starts_with("injected fault"));
            if !injected {
                default_hook(info);
            }
        }));
    }
    Arc::new(ServiceRuntime::new(RuntimeConfig {
        workers: threads.clamp(1, 8),
        faults,
        ..RuntimeConfig::default()
    }))
}

/// `--wire-stdio`: protocol lines on stdin/stdout, diagnostics on stderr.
fn run_wire_stdio(threads: usize) {
    let runtime = wire_runtime(threads);
    eprintln!(
        "wire: serving line-delimited JSON on stdio ({} workers)",
        runtime.config().workers
    );
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let report = serve_lines(&runtime, stdin.lock(), stdout.lock()).expect("stdio transport");
    let shutdown = runtime.shutdown();
    eprintln!(
        "wire: served {} requests ({} protocol errors); outcomes {:?}; {} unserved",
        report.served, report.protocol_errors, shutdown.stats, shutdown.unserved
    );
    assert_eq!(
        shutdown.stats.accounted(),
        shutdown.stats.submitted,
        "request accounting must balance"
    );
}

/// `--wire ADDR`: TCP front door; serves until stdin reaches EOF.
fn run_wire_tcp(addr: &str, threads: usize) {
    let runtime = wire_runtime(threads);
    let mut server = WireTcpServer::spawn(Arc::clone(&runtime), addr).expect("bind wire server");
    println!("wire: listening on {}", server.addr());
    println!("wire: close stdin (ctrl-d) to drain and exit");
    // Block until the controlling stream closes, then drain.
    for _line in std::io::stdin().lock().lines() {}
    server.stop();
    let shutdown = runtime.shutdown();
    println!(
        "wire: drained; outcomes {:?}; {} unserved",
        shutdown.stats, shutdown.unserved
    );
    assert_eq!(
        shutdown.stats.accounted(),
        shutdown.stats.submitted,
        "request accounting must balance"
    );
}

/// `--wire-smoke`: the CI round trip. Drives the suite batch through TCP
/// wire clients against an in-process baseline; under `TAILORS_FAULTS`
/// some requests fail with typed errors, but every *completed* reply must
/// stay bit-identical and every submission must be accounted for.
fn run_wire_smoke(scale: f64, threads: usize) {
    let runtime = wire_runtime(threads);
    let mut server =
        WireTcpServer::spawn(Arc::clone(&runtime), "127.0.0.1:0").expect("bind wire server");
    let addr = server.addr();

    let variants = [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ];
    let batch: Vec<SimRequest> = tailors_workloads::suite()
        .iter()
        .flat_map(|wl| {
            variants
                .iter()
                .filter_map(|&v| SimRequest::suite(wl.name, scale, v))
        })
        .collect();
    println!(
        "wire smoke: {} analytical requests at scale {scale} against {addr}",
        batch.len()
    );

    // In-process baseline on a *separate* service: what every completed
    // wire reply must match bitwise.
    let baseline_service = SimService::new();
    let baseline: Vec<_> = batch.iter().map(|r| baseline_service.submit(r)).collect();

    let mut clients: Vec<WireClient> = (0..2)
        .map(|_| WireClient::connect(addr).expect("connect wire client"))
        .collect();
    let (mut completed, mut faulted, mut rejected, mut timed_out) = (0u64, 0u64, 0u64, 0u64);
    let t = Instant::now();
    for (i, (req, expect)) in batch.iter().zip(&baseline).enumerate() {
        let client = &mut clients[i % 2];
        match client
            .call(&Work::Sim(req.clone()))
            .expect("wire transport")
        {
            Ok(Reply::Sim(resp)) => {
                assert_eq!(resp.name, expect.name);
                assert_eq!(
                    resp.metrics, expect.metrics,
                    "{}: wire reply diverged from the in-process baseline",
                    expect.name
                );
                completed += 1;
            }
            Ok(Reply::Functional(_)) => panic!("functional reply to a sim request"),
            Err(ServeError::Faulted { .. }) => faulted += 1,
            Err(ServeError::Timeout { .. }) => timed_out += 1,
            Err(e @ (ServeError::Overloaded(_) | ServeError::BadRequest(_))) => {
                // Admission is sized generously for this batch; anything
                // rejected here must be an *injected* fault, not policy.
                assert!(
                    FaultPlan::from_env().is_active(),
                    "unexpected rejection without faults armed: {e}"
                );
                rejected += 1;
            }
            Err(ServeError::Shutdown) => panic!("server shut down mid-smoke"),
        }
    }

    // One functional request rides along, proving the heavyweight payload
    // (CSR output matrix included) survives the wire bit-for-bit.
    let fwl = tailors_workloads::by_name("email-Enron")
        .expect("suite workload")
        .scaled(1.0 / 64.0);
    let freq = FunctionalRequest {
        workload: fwl,
        variant: Variant::default_ob(),
        arch: ArchConfig::extensor().scaled(1.0 / 64.0),
        budget: MemBudget::mib(64),
        grid: GridMode::Grid2D,
        auto_plan: false,
        threads: threads.clamp(1, 4),
    };
    match clients[0].functional(&freq).expect("wire transport") {
        Ok(resp) => {
            let direct = baseline_service
                .run_functional(&freq)
                .expect("baseline functional run");
            assert_eq!(resp.config, direct.config);
            assert_eq!(
                resp.result, direct.result,
                "functional wire reply diverged from the in-process baseline"
            );
            completed += 1;
        }
        Err(ServeError::Faulted { .. }) => faulted += 1,
        Err(ServeError::Timeout { .. }) => timed_out += 1,
        Err(ServeError::Shutdown) => panic!("server shut down mid-smoke"),
        Err(_) => rejected += 1,
    }
    let elapsed = t.elapsed();

    drop(clients);
    server.stop();
    let shutdown = runtime.shutdown();
    let stats = shutdown.stats;
    println!(
        "wire smoke: {elapsed:.2?}; client view: {completed} completed, {faulted} faulted, \
         {rejected} rejected, {timed_out} timed out"
    );
    println!(
        "wire smoke: server view: {} submitted = {} completed + {} faulted + {} rejected + \
         {} timed out ({} panics isolated, {} injected panics, {} injected latency, \
         {} injected rejects); {} unserved at shutdown",
        stats.submitted,
        stats.completed,
        stats.faulted,
        stats.rejected,
        stats.timed_out,
        stats.panics_isolated,
        stats.injected_panics,
        stats.injected_latency,
        stats.injected_rejects,
        shutdown.unserved
    );
    // The accounting invariant: nothing lost, client and server agree.
    assert_eq!(
        stats.accounted(),
        stats.submitted,
        "request accounting must balance"
    );
    assert_eq!(
        completed + faulted + rejected + timed_out,
        stats.submitted,
        "client outcomes must account for every submission"
    );
    assert!(completed > 0, "smoke must complete at least one request");
    let faults = FaultPlan::from_env();
    if faults.panic_every.is_some() {
        assert!(
            stats.panics_isolated > 0,
            "panic injection was armed but no panic was isolated"
        );
        assert_eq!(
            stats.panics_isolated, stats.injected_panics,
            "every injected panic must be isolated (and nothing else may panic)"
        );
    }
    println!("wire smoke: every completed reply bit-identical to the in-process baseline");
    println!("OK");
}

// ---------------------------------------------------------------------------
// Sharded router modes
// ---------------------------------------------------------------------------

/// One spawned shard process: `serve --wire 127.0.0.1:0` with its stdin
/// piped (EOF is its drain-and-exit signal) and its bound address parsed
/// from the startup banner.
struct ChildShard {
    child: std::process::Child,
    addr: String,
}

impl ChildShard {
    /// Graceful stop: close stdin so the shard drains and exits, then
    /// reap it.
    fn stop(mut self) {
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }

    /// Hard kill, as a crashed worker: no drain, connections reset.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns one shard process of this same binary at `bind` (which may be
/// `127.0.0.1:0` for an ephemeral port, or a concrete address when
/// restarting a crashed shard on its original port) and waits for it to
/// report its bound address. Shard stdout is drained on a thread so a
/// chatty shard can never block on a full pipe.
fn spawn_shard(i: usize, bind: &str, threads: usize) -> ChildShard {
    let exe = std::env::current_exe().expect("current executable path");
    let mut child = std::process::Command::new(&exe)
        .arg("--wire")
        .arg(bind)
        .arg("--threads")
        .arg(threads.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn shard {i}: {e}"));
    let stdout = child.stdout.take().expect("piped shard stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        let bytes = reader
            .read_line(&mut line)
            .unwrap_or_else(|e| panic!("shard {i} stdout: {e}"));
        if bytes == 0 {
            panic!("shard {i} exited before binding its wire port");
        }
        if let Some(bound) = line.trim().strip_prefix("wire: listening on ") {
            break bound.to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });
    println!("router: shard {i} up at {addr}");
    ChildShard { child, addr }
}

/// Spawns `n` shard processes on ephemeral ports.
fn spawn_shard_fleet(n: usize, threads: usize) -> Vec<ChildShard> {
    (0..n)
        .map(|i| spawn_shard(i, "127.0.0.1:0", threads))
        .collect()
}

/// The suite batch every router mode drives: 22 workloads × 3 variants,
/// in suite order (the same stream `--wire-smoke` uses).
fn router_batch(scale: f64) -> Vec<SimRequest> {
    let variants = [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ];
    tailors_workloads::suite()
        .iter()
        .flat_map(|wl| {
            variants
                .iter()
                .filter_map(|&v| SimRequest::suite(wl.name, scale, v))
        })
        .collect()
}

/// `--router N` / `--shards ...`: suite sweeps through the ring, hot
/// sweeps proven bit-identical to the first, fleet ledger proven
/// balanced.
fn run_router_sweeps(
    endpoints: &[String],
    scale: f64,
    threads: usize,
    sweeps: usize,
    config: RouterConfig,
) {
    let batch = router_batch(scale);
    let works: Vec<Work> = batch.iter().cloned().map(Work::Sim).collect();
    println!(
        "router: {} requests/sweep over {} shards at scale {scale}, {threads} threads",
        works.len(),
        endpoints.len()
    );
    let router = ShardRouter::connect(endpoints, config).expect("router dials every shard");
    let mut first: Option<Vec<tailors_serve::SimResponse>> = None;
    for sweep in 1..=sweeps {
        let t = Instant::now();
        let outcomes = router.submit_batch(&works);
        let elapsed = t.elapsed();
        let responses: Vec<tailors_serve::SimResponse> = outcomes
            .into_iter()
            .map(|o| o.expect("request served").into_sim().expect("sim reply"))
            .collect();
        println!("router sweep {sweep}: {elapsed:.2?}");
        match &first {
            None => first = Some(responses),
            Some(cold) => {
                for (c, h) in cold.iter().zip(&responses) {
                    assert_eq!(c.name, h.name);
                    assert_eq!(
                        c.metrics, h.metrics,
                        "{}: routed sweep diverged from the first",
                        c.name
                    );
                }
            }
        }
    }
    report_router(&router);
    println!("OK");
}

/// Prints the fleet ledger and per-shard rollup, asserting the
/// accounting invariant.
fn report_router(router: &ShardRouter) {
    let stats = router.stats();
    println!(
        "router: {} submitted = {} completed + {} faulted + {} rejected + {} timed out \
         ({} failovers, {} spills, {} reconnects, {} recoveries, {} warmups, {} shards down)",
        stats.submitted,
        stats.completed,
        stats.faulted,
        stats.rejected,
        stats.timed_out,
        stats.failovers,
        stats.spills,
        stats.reconnects,
        stats.recoveries,
        stats.warmups,
        stats.shards_down,
    );
    for (i, s) in router.shard_stats().iter().enumerate() {
        println!(
            "router: shard {i}: {} calls, {} replies, {} typed errors, {} transport errors, \
             {} reconnects, {} warmups{}{}",
            s.calls,
            s.replies,
            s.typed_errors,
            s.transport_errors,
            s.reconnects,
            s.warmups,
            if s.down { " [down]" } else { "" },
            if s.departed { " [departed]" } else { "" },
        );
    }
    assert_eq!(
        stats.accounted(),
        stats.submitted,
        "fleet accounting must balance"
    );
}

/// `--router-smoke`: the four-leg CI round trip. Leg one routes the
/// suite batch through three freshly spawned shards and proves every
/// completed reply bit-identical to an in-process baseline. Leg two
/// kills one shard mid-stream (a hard process kill, between the two
/// halves of the batch) and proves failover completes — the dead shard's
/// keys re-home, payloads stay bit-identical, and the fleet ledger stays
/// balanced. Leg three restarts the victim on its original port and
/// proves health probes re-admit it (warm-replaying its keys) before it
/// serves its ring slice again. Leg four live-joins a fourth shard,
/// drives the batch, retires it, and drives again — membership churn
/// with the ledger intact throughout. Under `--replicas 2` the kill leg
/// additionally proves `timed_out == 0`: a replica absorbs the victim's
/// keys with zero discovery cost.
fn run_router_smoke(scale: f64, threads: usize, config: RouterConfig) {
    let batch = router_batch(scale);
    let works: Vec<Work> = batch.iter().cloned().map(Work::Sim).collect();
    let replicated = matches!(config.placement, Placement::Replicated(r) if r > 1);
    println!(
        "router smoke: {} requests over 3 shards at scale {scale} (placement {:?}, probe {:?})",
        works.len(),
        config.placement,
        config.probe_interval,
    );
    let baseline_service = SimService::new();
    let baseline = baseline_service.submit_batch(&batch, threads.max(1));

    let mut fleet = spawn_shard_fleet(3, threads);
    let endpoints: Vec<String> = fleet.iter().map(|s| s.addr.clone()).collect();
    let router = ShardRouter::connect(&endpoints, config).expect("router dials every shard");

    // Leg one: everything healthy — route the whole batch.
    let t = Instant::now();
    let healthy = drive_router(&router, &works, &baseline);
    println!(
        "router smoke leg 1: {:.2?}; {} completed, {} faulted, {} rejected, {} timed out",
        t.elapsed(),
        healthy[0],
        healthy[1],
        healthy[2],
        healthy[3],
    );
    assert!(healthy[0] > 0, "leg 1 must complete requests");
    let stats = router.stats();
    assert_eq!(stats.shards_down, 0, "leg 1 must not lose a shard");
    assert_eq!(stats.failovers, 0, "leg 1 must not fail over");

    // Leg two: replay the batch in two halves and hard-kill one shard
    // between them — a shard that provably owns keys in the second half,
    // so failover is exercised, not just possible.
    let mid = works.len() / 2;
    let victim = router.primary(&works[mid]);
    let t = Instant::now();
    let first_half = drive_router(&router, &works[..mid], &baseline[..mid]);
    println!("router smoke leg 2: killing shard {victim} mid-stream");
    fleet[victim].kill();
    let second_half = drive_router(&router, &works[mid..], &baseline[mid..]);
    println!(
        "router smoke leg 2: {:.2?}; {} completed, {} faulted, {} rejected, {} timed out \
         after losing shard {victim}",
        t.elapsed(),
        first_half[0] + second_half[0],
        first_half[1] + second_half[1],
        first_half[2] + second_half[2],
        first_half[3] + second_half[3],
    );
    let stats = router.stats();
    assert_eq!(stats.shards_down, 1, "exactly the killed shard goes down");
    assert!(router.down_shards()[victim], "the victim is the down shard");
    assert!(
        stats.failovers >= 1,
        "losing an owning shard mid-stream must fail over"
    );
    if replicated {
        assert_eq!(
            stats.timed_out, 0,
            "replicated placement must absorb the kill without a single timeout"
        );
        assert_eq!(
            first_half[3] + second_half[3],
            0,
            "no client-visible timeout under replication"
        );
    }

    // Leg three: the victim comes back on its original port — a crashed
    // process restarting — and health probes must re-admit it, replaying
    // its keys warm, before it serves its ring slice again.
    println!(
        "router smoke leg 3: restarting shard {victim} at {}",
        endpoints[victim]
    );
    fleet[victim] = spawn_shard(victim, &endpoints[victim], threads);
    if config.probe_interval.is_some() {
        // Bounded poll: the background prober clears the mark on its own.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while router.down_shards()[victim] {
            assert!(
                Instant::now() < deadline,
                "prober failed to re-admit shard {victim} within 10s"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    } else {
        assert_eq!(router.probe_now(), 1, "the restarted shard must recover");
    }
    let stats = router.stats();
    assert!(stats.recoveries >= 1, "recovery must be counted");
    assert_eq!(
        stats.shards_down, 0,
        "no shard may stay down after recovery"
    );
    assert!(
        stats.warmups >= 1,
        "recovery must warm-replay the victim's logged keys"
    );
    let replies_before = router.shard_stats()[victim].replies;
    let t = Instant::now();
    let recovered = drive_router(&router, &works, &baseline);
    println!(
        "router smoke leg 3: {:.2?}; {} completed after probe recovery",
        t.elapsed(),
        recovered[0],
    );
    assert!(recovered[0] > 0, "leg 3 must complete requests");
    assert!(
        router.shard_stats()[victim].replies > replies_before,
        "the recovered shard must serve its ring keys again"
    );

    // Leg four: live membership. A fourth shard joins (taking its keys
    // warm), serves a batch, then leaves again — and takes no further
    // calls once departed.
    let fourth = spawn_shard(3, "127.0.0.1:0", threads);
    let joined = router
        .join(fourth.addr.as_str())
        .expect("join the fourth shard");
    let owned = works.iter().filter(|w| router.primary(w) == joined).count();
    println!(
        "router smoke leg 4: shard {joined} joined at {} (owns {owned} of {} requests)",
        fourth.addr,
        works.len()
    );
    let t = Instant::now();
    let post_join = drive_router(&router, &works, &baseline);
    assert!(post_join[0] > 0, "leg 4 must complete requests");
    if owned > 0 {
        assert!(
            router.shard_stats()[joined].replies > 0,
            "the joiner must serve the keys it took over"
        );
    }
    router.leave(joined).expect("retire the fourth shard");
    let calls_at_leave = router.shard_stats()[joined].calls;
    let post_leave = drive_router(&router, &works, &baseline);
    assert!(post_leave[0] > 0, "post-leave batch must complete");
    assert_eq!(
        router.shard_stats()[joined].calls,
        calls_at_leave,
        "departed shards take no further calls"
    );
    println!(
        "router smoke leg 4: {:.2?}; joined, served, and retired shard {joined} cleanly",
        t.elapsed()
    );
    fourth.stop();
    report_router(&router);

    for shard in fleet {
        shard.stop();
    }
    println!("router smoke: all four legs bit-identical to the in-process baseline");
    println!("OK");
}

/// Routes `works` and checks every completed reply bitwise against the
/// in-process `expect` baseline; returns
/// `[completed, faulted, rejected, timed_out]`. Non-completed outcomes
/// are legitimate only under armed fault injection — with a healthy or
/// merely degraded (not empty) fleet, everything must complete.
fn drive_router(
    router: &ShardRouter,
    works: &[Work],
    expect: &[tailors_serve::SimResponse],
) -> [u64; 4] {
    let outcomes = router.submit_batch(works);
    let mut tally = [0u64; 4];
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(reply) => {
                let resp = reply.into_sim().expect("sim reply");
                assert_eq!(resp.name, expect[i].name);
                assert_eq!(
                    resp.metrics, expect[i].metrics,
                    "{}: routed reply diverged from the in-process baseline",
                    expect[i].name
                );
                tally[0] += 1;
            }
            Err(ServeError::Faulted { .. }) => tally[1] += 1,
            Err(ServeError::Timeout { .. }) => tally[3] += 1,
            Err(e) => {
                assert!(
                    FaultPlan::from_env().is_active(),
                    "unexpected rejection without faults armed: {e}"
                );
                tally[2] += 1;
            }
        }
    }
    tally
}
