//! The analytical ExTensor dataflow model.
//!
//! Closed-form per-level access counts for the A-stationary, intersection-
//! based SpMSpM schedule (paper §5.2):
//!
//! ```text
//! for each A-tile i (resident in the GB A-partition):        # n_a tiles
//!     for each B-tile j (streamed into the GB B-partition):  # n_b tiles
//!         for each batch of 128 PE A-subtiles:               # n_batches
//!             for each B streaming chunk:                    # n_chunks
//!                 intersect coordinate streams, MAC matches
//! ```
//!
//! Reuse structure (what overbooking changes):
//!
//! * the GB **A-tile** is traversed once per B-tile (`n_b` times over its
//!   residence). An overbooked A-tile refetches its bumped portion from
//!   DRAM on each traversal after the first — with Tailors only the bumped
//!   portion; with plain buffets the *whole* tile (Fig. 3).
//! * the GB **B-tile** is traversed once per PE batch within a pair
//!   (`n_batches` times). Overbooked B-tiles refetch analogously.
//! * the PE **A-subtile** is traversed once per B chunk (`n_chunks` times
//!   within a pair); overflow refetches come from the GB, not DRAM.
//!
//! Because every tile is a `K`-spanning panel, all sums reduce to O(#tiles)
//! prefix-sum arithmetic on the workload's [`MatrixProfile`] — exact even
//! for the 2 M-row tensors.

use tailors_tensor::tiling::RowPanels;
use tailors_tensor::MatrixProfile;

use crate::arch::ArchConfig;
use crate::energy::{ActivityCounts, EnergyModel};
use crate::exec::{ExecutionPlan, GridMode, MemBudget};
use crate::metrics::{DramBreakdown, ReuseStats, RunMetrics};
use crate::plan::TilePlan;

/// Simulates one `Z = A·Aᵀ` run and returns its metrics, with an
/// unbounded software-scratch budget (see [`simulate_budgeted`]).
///
/// # Panics
///
/// Panics if the profile is not square (the suite workloads all are) or has
/// no nonzeros.
pub fn simulate(profile: &MatrixProfile, arch: &ArchConfig, plan: TilePlan) -> RunMetrics {
    simulate_budgeted(profile, arch, plan, MemBudget::Unbounded)
}

/// [`simulate`] under a per-thread scratch [`MemBudget`], with the
/// historical panels-only grid decomposition (see [`simulate_gridded`]).
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_budgeted(
    profile: &MatrixProfile,
    arch: &ArchConfig,
    plan: TilePlan,
    budget: MemBudget,
) -> RunMetrics {
    simulate_gridded(profile, arch, plan, budget, GridMode::Panels)
}

/// [`simulate`] under a per-thread scratch [`MemBudget`] and a functional
/// [`GridMode`].
///
/// Neither knob changes the modeled hardware counts — they govern the
/// *software* execution plan (how a functional replay of this tiling
/// would block its dense scratch, and how many independently schedulable
/// work units that exposes), which is derived here and recorded in
/// [`RunMetrics::scratch`] so budget/grid sweeps can report feasibility
/// and parallel width alongside performance.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_gridded(
    profile: &MatrixProfile,
    arch: &ArchConfig,
    plan: TilePlan,
    budget: MemBudget,
    grid: GridMode,
) -> RunMetrics {
    let plan = plan.normalized(profile.nrows());
    let exec = ExecutionPlan::for_tile_plan(profile.nrows(), profile.ncols(), &plan, budget);
    simulate_planned(profile, arch, plan, &exec, grid)
}

/// [`simulate_gridded`] with the execution plan precomputed: the pure
/// simulation function all the `simulate*` entry points (and
/// [`Variant::run_planned`](crate::variants::Variant::run_planned))
/// bottom out in.
///
/// `exec` must be the plan [`simulate_gridded`] would derive —
/// `ExecutionPlan::for_tile_plan(nrows, ncols, &plan.normalized(nrows),
/// budget)` — which callers like `tailors-serve` cache keyed by (matrix
/// identity, variant, architecture, budget) so a hot request performs no
/// planning at all. Checked in debug builds.
///
/// # Panics
///
/// As [`simulate`]; additionally (debug builds) if `exec` disagrees with
/// the plan derived from `plan`.
pub fn simulate_planned(
    profile: &MatrixProfile,
    arch: &ArchConfig,
    plan: TilePlan,
    exec: &ExecutionPlan,
    grid: GridMode,
) -> RunMetrics {
    assert_eq!(
        profile.nrows(),
        profile.ncols(),
        "the A·Aᵀ dataflow expects a square tensor"
    );
    assert!(profile.nnz() > 0, "cannot simulate an empty tensor");
    let plan = plan.normalized(profile.nrows());
    // The exec plan's panel height may legitimately differ from the tile
    // plan's (the auto planner co-optimizes it against the budget), but
    // its streamed tile width and block grouping must be the canonical
    // ones for that height — anything else means a cache served a plan
    // derived from different inputs.
    debug_assert_eq!(
        *exec,
        ExecutionPlan::new(
            profile.nrows(),
            profile.ncols(),
            exec.rows_a().max(1),
            plan.gb_cols_b,
            exec.budget()
        ),
        "exec plan must be canonical for its height and the tile plan's width"
    );
    let nnz = profile.nnz() as u128;

    let n_a = profile.nrows().div_ceil(plan.gb_rows_a) as u128;
    let n_b = profile.nrows().div_ceil(plan.gb_cols_b) as u128;

    let cap_gb = arch.tile_capacity();
    let cap_pe = arch.pe_operand_capacity();
    let resident_gb = if plan.overbooking {
        cap_gb.saturating_sub(arch.gb_fifo_region()).max(1)
    } else {
        cap_gb
    };
    let resident_pe = if plan.overbooking {
        cap_pe.saturating_sub(arch.pe_fifo_region()).max(1)
    } else {
        cap_pe
    };

    // Per-traversal refetch volume for a tile of occupancy `occ` behind a
    // buffer of `cap` slots: zero when it fits; the bumped remainder with
    // Tailors; the whole tile with plain buffets (Fig. 3a). Single-row
    // panels that exceed capacity are K-split by the address generator in
    // every variant (a fiber longer than the buffer cannot be tiled any
    // finer in coordinate space), so they carry no refetch penalty.
    let refetch = |occ: u64, cap: u64, resident: u64, overbooking: bool, rows: usize| -> u64 {
        if occ <= cap || rows <= 1 {
            0
        } else if overbooking {
            occ - resident.min(occ)
        } else {
            occ
        }
    };

    // PE batching: 128 subtiles run concurrently, and a batch can hold at
    // most the PE array's aggregate (resident) capacity. An A-tile whose
    // occupancy exceeds that staging capacity must flow through the array
    // in multiple waves — and every wave re-traverses the B-tile. This is
    // the cost that makes "one giant overbooked tile" (y → 100 %) lose.
    let subtiles_per_a_tile = plan.gb_rows_a.div_ceil(plan.pe_rows_a) as u128;
    let batch_floor = subtiles_per_a_tile.div_ceil(arch.pe_count as u128).max(1);
    let pe_array_resident = (arch.pe_count as u128 * resident_pe as u128).max(1);
    let batches_for = |occ: u128| batch_floor.max(occ.div_ceil(pe_array_resident));

    // Occupancy-dependent sums (full-K panels only; dense-safe 2-D tiles
    // can never overflow).
    let (dram_a, gb_refetch_a_total, bumped_a_total, overbooked_a_tiles, total_batches) = if plan
        .full_k
    {
        let panels = RowPanels::new(profile, plan.gb_rows_a);
        let mut dram_a: u128 = 0;
        let mut refetch_total: u128 = 0;
        let mut bumped_total: u128 = 0;
        let mut over = 0usize;
        let mut batches: u128 = 0;
        for occ in panels.occupancies() {
            let rf = refetch(occ, cap_gb, resident_gb, plan.overbooking, plan.gb_rows_a) as u128;
            dram_a += occ as u128 + (n_b - 1) * rf;
            refetch_total += rf;
            batches += batches_for(occ as u128);
            if occ > cap_gb {
                over += 1;
                bumped_total += (occ - resident_gb.min(occ)) as u128;
            }
        }
        (dram_a, refetch_total, bumped_total, over, batches)
    } else {
        let avg_occ = nnz / n_a.max(1);
        (nnz, 0, 0, 0, n_a * batches_for(avg_occ))
    };

    // B side: per-pass occupancy and refetch sums over B tiles. The bumped
    // portion of an overbooked B-tile is refetched once per extra wave.
    // When both operands tile at the same panel height (the prescient and
    // overbooked variants always do — B = Aᵀ of a square tensor, so the
    // panels are literally the same), the A-side sums above already are
    // the B-side sums; re-walking the tiling would double the hot loop.
    let (b_refetch_per_pass, overbooked_b_tiles) = if !plan.full_k {
        (0, 0)
    } else if plan.gb_cols_b == plan.gb_rows_a {
        (gb_refetch_a_total, overbooked_a_tiles)
    } else {
        let panels = RowPanels::new(profile, plan.gb_cols_b);
        let mut refetch_sum: u128 = 0;
        let mut over = 0usize;
        for occ in panels.occupancies() {
            refetch_sum +=
                refetch(occ, cap_gb, resident_gb, plan.overbooking, plan.gb_cols_b) as u128;
            if occ > cap_gb {
                over += 1;
            }
        }
        (refetch_sum, over)
    };
    // Σ_i [nnz + (batches_i - 1) × Σ_j refetch_j].
    let dram_b = n_a * nnz + (total_batches - n_a) * b_refetch_per_pass;

    // PE-level A-subtile overflow (refetched from the GB per extra chunk
    // traversal). Single-row subtiles carry no refetch penalty by the
    // `rows <= 1` rule above, so the near-per-row walk the prescient
    // variant otherwise forces here (pe_rows_a of 1 on million-row
    // tensors) is skipped outright.
    let pe_refetch_a_total: u128 = if plan.full_k && plan.pe_rows_a > 1 {
        RowPanels::new(profile, plan.pe_rows_a)
            .occupancies()
            .map(|occ| refetch(occ, cap_pe, resident_pe, plan.overbooking, plan.pe_rows_a) as u128)
            .sum()
    } else {
        0
    };

    let macs = profile.mults_a_at();

    // Bumped PE data is fetched from the global buffer *for every use*
    // (§6.2) instead of once per pair; a resident element is used
    // `macs / nnz` times on average over the run but fetched only `n_b`
    // times, so each bumped element pays the difference.
    let avg_uses = (macs / nnz).max(1);
    let pe_stream_extra = pe_refetch_a_total * avg_uses.saturating_sub(n_b.min(avg_uses));

    // Per-use refetches that target data *also* bumped out of the global
    // buffer escalate past it to DRAM. This coupling is what makes fully
    // overbooked hierarchies (y -> 100 %) thrash: every use of doubly
    // bumped data is a DRAM access (the paper's "pays the data reuse
    // penalty for overbooking every tile").
    let dram_escalation = pe_stream_extra * bumped_a_total / nnz;

    // Global-buffer reads: A once per pair plus PE-overflow streaming; B
    // once per batch per pair.
    let gb_reads_a = n_b * nnz + pe_stream_extra;
    let gb_reads_b = total_batches * nnz;
    let gb_writes = dram_a + dram_b + dram_escalation;
    let gb_accesses = gb_reads_a + gb_reads_b + gb_writes;

    // Intersection scan work: coordinate streams are walked monotonically,
    // so each operand's coordinates are scanned once per tile traversal
    // (not once per PE chunk — the two-finger scan does not restart), plus
    // per-match work proportional to the effectual multiplies.
    let isect_coords = n_b * nnz + total_batches * nnz + 2 * macs;

    // PE-buffer activity: fills from the GB plus datapath operand reads and
    // accumulator updates.
    let pe_buf_accesses = gb_reads_a + gb_reads_b + 3 * macs;

    let dram_total = dram_a + dram_b + dram_escalation;
    let counts = ActivityCounts {
        dram_elems: dram_total,
        gb_accesses,
        pe_buf_accesses,
        macs,
        isect_coords,
    };

    // Roofline over the four resources.
    let dram_cycles = dram_total as f64 / arch.dram_elems_per_cycle();
    let gb_cycles = gb_accesses as f64 / arch.gb_elems_per_cycle;
    let isect_cycles = isect_coords as f64 / arch.isect_coords_per_cycle;
    let mac_cycles = macs as f64 / (arch.pe_count as f64 * arch.macs_per_pe_per_cycle);
    let cycles = dram_cycles.max(gb_cycles).max(isect_cycles).max(mac_cycles);

    // Overbooking overhead split (Fig. 9a): extra DRAM beyond an
    // infinitely-large-buffer baseline with the same tiling.
    let extra_a = (n_b - 1) * gb_refetch_a_total;
    let extra_b = (total_batches - n_a) * b_refetch_per_pass;
    let dram = DramBreakdown {
        total: dram_total,
        baseline: (dram_a - extra_a) + n_a * nnz,
        overbook_extra: extra_a + extra_b + dram_escalation,
    };

    // Reuse statistics on the stationary operand (Fig. 9b). "Reused" is
    // normalized to reuse *opportunities* — reads beyond the compulsory
    // first fetch — so an all-fitting tiling scores 100 % regardless of how
    // many tiles it has (the paper's definition: "if all tiles fit...the
    // percentage of data reused would be 100%").
    let a_reads = n_b * nnz;
    let reuse_opportunities = a_reads.saturating_sub(nnz);
    let reuse = ReuseStats {
        bumped_fraction: bumped_a_total as f64 / nnz as f64,
        reused_fraction: if reuse_opportunities == 0 {
            1.0
        } else {
            ((a_reads - dram_a.min(a_reads)) as f64 / reuse_opportunities as f64).clamp(0.0, 1.0)
        },
        overbooked_a_tiles,
        total_a_tiles: n_a as usize,
        overbooked_b_tiles,
        total_b_tiles: n_b as usize,
    };

    let energy = EnergyModel::for_arch(arch);
    let scratch = exec.scratch_stats(grid);
    RunMetrics {
        cycles,
        energy_pj: energy.total_pj(&counts),
        activity: counts,
        dram,
        reuse,
        plan,
        scratch,
        bound_by: bound_name(dram_cycles, gb_cycles, isect_cycles, mac_cycles),
    }
}

fn bound_name(dram: f64, gb: f64, isect: f64, mac: f64) -> &'static str {
    let max = dram.max(gb).max(isect).max(mac);
    if max == dram {
        "dram"
    } else if max == gb {
        "global-buffer"
    } else if max == isect {
        "intersection"
    } else {
        "compute"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailors_tensor::gen::GenSpec;

    fn profile() -> MatrixProfile {
        GenSpec::power_law(4_096, 4_096, 40_000)
            .seed(5)
            .generate()
            .profile()
    }

    fn base_plan(rows: usize) -> TilePlan {
        TilePlan {
            gb_rows_a: rows,
            gb_cols_b: rows,
            pe_rows_a: (rows / 4).max(1),
            pe_cols_b: (rows / 4).max(1),
            full_k: true,
            overbooking: false,
        }
    }

    #[test]
    fn dram_traffic_has_compulsory_floor() {
        let p = profile();
        let arch = ArchConfig::extensor();
        let m = simulate(&p, &arch, base_plan(4_096));
        // One tile holding everything: A fetched once, B fetched once.
        assert_eq!(m.activity.dram_elems, 2 * p.nnz() as u128);
        assert_eq!(m.dram.overbook_extra, 0);
    }

    #[test]
    fn smaller_tiles_mean_more_b_refetch() {
        let p = profile();
        let arch = ArchConfig::extensor();
        let big = simulate(&p, &arch, base_plan(2_048));
        let small = simulate(&p, &arch, base_plan(256));
        assert!(small.activity.dram_elems > big.activity.dram_elems);
        assert!(small.cycles >= big.cycles);
    }

    #[test]
    fn macs_are_tiling_invariant() {
        let p = profile();
        let arch = ArchConfig::extensor();
        let a = simulate(&p, &arch, base_plan(4_096));
        let b = simulate(&p, &arch, base_plan(128));
        assert_eq!(a.activity.macs, b.activity.macs);
        assert_eq!(a.activity.macs, p.mults_a_at());
    }

    #[test]
    fn overbooking_tolerates_oversized_tiles() {
        let p = profile();
        // Tiny buffers so panels overbook.
        let arch = ArchConfig::tiny(2_000, 200);
        let mut plan = base_plan(2_048);
        plan.overbooking = true;
        let m = simulate(&p, &arch, plan);
        assert!(m.reuse.overbooked_a_tiles > 0);
        assert!(m.dram.overbook_extra > 0);
        assert!(m.dram.total == m.dram.baseline + m.dram.overbook_extra);
    }

    #[test]
    fn buffet_fallback_costs_more_than_tailors() {
        // PE buffers are sized generously so both runs use identical PE
        // batching and the comparison isolates the GB-level idiom: with the
        // same tiling, buffets refetch whole overbooked tiles where Tailors
        // refetch only the bumped remainder (Fig. 3).
        let p = profile();
        let arch = ArchConfig::tiny(2_000, 60_000);
        let mut with_tailors = base_plan(2_048);
        with_tailors.overbooking = true;
        let mut without = with_tailors;
        without.overbooking = false;
        let t = simulate(&p, &arch, with_tailors);
        let b = simulate(&p, &arch, without);
        assert!(b.activity.dram_elems > t.activity.dram_elems);
    }

    #[test]
    fn dense_safe_plans_never_overbook() {
        let p = profile();
        let arch = ArchConfig::tiny(500, 50);
        let plan = TilePlan {
            gb_rows_a: 22,
            gb_cols_b: 22,
            pe_rows_a: 7,
            pe_cols_b: 7,
            full_k: false,
            overbooking: false,
        };
        let m = simulate(&p, &arch, plan);
        assert_eq!(m.reuse.overbooked_a_tiles, 0);
        assert_eq!(m.dram.overbook_extra, 0);
    }

    #[test]
    fn reuse_fraction_falls_as_buffers_shrink() {
        let p = profile();
        let mut plan = base_plan(2_048);
        plan.overbooking = true;
        let roomy = simulate(&p, &ArchConfig::tiny(100_000, 4_000), plan);
        let tight = simulate(&p, &ArchConfig::tiny(1_000, 100), plan);
        assert!(roomy.reuse.reused_fraction >= tight.reuse.reused_fraction);
        assert!(tight.reuse.bumped_fraction >= roomy.reuse.bumped_fraction);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let p = GenSpec::uniform(10, 20, 30).generate().profile();
        simulate(&p, &ArchConfig::extensor(), base_plan(4));
    }
}
