//! The functional engine: executes the tiled `Z = A·Aᵀ` dataflow
//! operation-by-operation through real `tailors-eddo` buffers.
//!
//! This is the ground truth the analytical model is validated against:
//!
//! * the computed output matrix must equal the reference
//!   [`tailors_tensor::ops::spmspm_a_at`];
//! * the counted DRAM fetches must equal the closed-form expressions in
//!   [`crate::dataflow`] (the integration tests cross-check this).
//!
//! The engine models one buffered level (DRAM → operand buffer → compute),
//! i.e. the analytical model with a degenerate PE level — exactly the part
//! of the hierarchy overbooking changes.

use std::collections::HashMap;

use tailors_eddo::{Buffet, EddoError, Tailor, TailorConfig};
use tailors_tensor::{CooMatrix, CsrMatrix};

/// Configuration of a functional run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalConfig {
    /// Operand-buffer capacity in nonzeros.
    pub capacity: usize,
    /// Tailors FIFO-region size (ignored when `overbooking` is false).
    pub fifo_region: usize,
    /// Rows of `A` per tile (`K`-spanning row panels).
    pub rows_a: usize,
    /// Columns of `B = Aᵀ` per tile.
    pub cols_b: usize,
    /// Whether the operand buffer is a Tailor (otherwise a plain buffet,
    /// which drops everything and refills when a tile does not fit).
    pub overbooking: bool,
}

/// Result of a functional run.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalResult {
    /// The computed output `Z = A·Aᵀ`.
    pub z: CsrMatrix,
    /// Elements fetched from DRAM for the stationary operand `A`
    /// (including overbooking restreams).
    pub dram_a_fetches: u64,
    /// Elements fetched from DRAM for the streamed operand `B`.
    pub dram_b_fetches: u64,
    /// Number of A tiles that overbooked the buffer.
    pub overbooked_a_tiles: usize,
}

/// One stored nonzero of the stationary operand as it moves through the
/// buffer.
type Elem = (u32, u32, f64);

/// Executes the tiled dataflow on `a`, returning the output and DRAM
/// traffic counts.
///
/// # Errors
///
/// Propagates buffer-protocol errors (none occur for well-formed input).
///
/// # Panics
///
/// Panics if `a` is not square or the configuration is degenerate
/// (`capacity == 0`, or `fifo_region >= capacity` while overbooking).
pub fn run(a: &CsrMatrix, config: &FunctionalConfig) -> Result<FunctionalResult, EddoError> {
    assert_eq!(a.nrows(), a.ncols(), "A·Aᵀ expects a square matrix");
    assert!(config.capacity > 0, "capacity must be positive");
    let b = a.transpose();
    let n = a.nrows();
    let n_a_tiles = n.div_ceil(config.rows_a.max(1));
    let n_b_tiles = n.div_ceil(config.cols_b.max(1));

    let mut acc: HashMap<(u32, u32), f64> = HashMap::new();
    let mut dram_a = 0u64;
    let mut dram_b = 0u64;
    let mut overbooked = 0usize;

    for ti in 0..n_a_tiles {
        let m0 = ti * config.rows_a;
        let m1 = ((ti + 1) * config.rows_a).min(n);
        // Materialize the tile's elements in stream (row-major) order —
        // this is what the parent's address generator would walk.
        let tile: Vec<Elem> = (m0..m1)
            .flat_map(|m| {
                let row = a.row(m);
                row.coords()
                    .iter()
                    .zip(row.values())
                    .map(move |(&k, &v)| (m as u32, k, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        if tile.len() > config.capacity {
            overbooked += 1;
        }

        let mut driver = TileDriver::new(&tile, config)?;
        for tj in 0..n_b_tiles {
            let n0 = (tj * config.cols_b) as u32;
            let n1 = (((tj + 1) * config.cols_b).min(n)) as u32;
            // Stream the B tile from DRAM: its occupancy is the nonzeros of
            // B columns [n0, n1), i.e. rows n0..n1 of A.
            for col in n0..n1 {
                dram_b += a.row_nnz(col as usize) as u64;
            }
            // Traverse the stationary tile once, intersecting each element
            // against the B tile.
            driver.traverse(|&(m, k, va)| {
                let row_b = b.row(k as usize);
                let coords = row_b.coords();
                let start = coords.partition_point(|&c| c < n0);
                for (idx, &nn) in coords[start..].iter().enumerate() {
                    if nn >= n1 {
                        break;
                    }
                    let vb = row_b.values()[start + idx];
                    *acc.entry((m, nn)).or_insert(0.0) += va * vb;
                }
            })?;
        }
        dram_a += driver.fetches();
    }

    let mut coo = CooMatrix::with_capacity(n, n, acc.len());
    for ((m, nn), v) in acc {
        if v != 0.0 {
            coo.push(m as usize, nn as usize, v)
                .expect("accumulator coordinates in bounds");
        }
    }
    Ok(FunctionalResult {
        z: CsrMatrix::from_coo(&coo),
        dram_a_fetches: dram_a,
        dram_b_fetches: dram_b,
        overbooked_a_tiles: overbooked,
    })
}

/// Drives sequential traversals of one stationary tile through either a
/// Tailor or a buffet, counting parent fetches.
enum TileDriver<'t> {
    Tailor {
        tile: &'t [Elem],
        buf: Tailor<Elem>,
        fetches: u64,
    },
    Buffet {
        tile: &'t [Elem],
        buf: Buffet<Elem>,
        window_start: usize,
        window_end: usize,
        fetches: u64,
    },
}

impl<'t> TileDriver<'t> {
    fn new(tile: &'t [Elem], config: &FunctionalConfig) -> Result<Self, EddoError> {
        if config.overbooking {
            let tc = TailorConfig::new(config.capacity, config.fifo_region)?;
            let mut buf = Tailor::new(tc);
            buf.set_tile_len(tile.len());
            Ok(TileDriver::Tailor {
                tile,
                buf,
                fetches: 0,
            })
        } else {
            Ok(TileDriver::Buffet {
                tile,
                buf: Buffet::new(config.capacity),
                window_start: 0,
                window_end: 0,
                fetches: 0,
            })
        }
    }

    fn fetches(&self) -> u64 {
        match self {
            TileDriver::Tailor { fetches, .. } => *fetches,
            TileDriver::Buffet { fetches, .. } => *fetches,
        }
    }

    /// One full in-order traversal of the tile, calling `visit` on every
    /// element exactly once.
    fn traverse<F: FnMut(&Elem)>(&mut self, mut visit: F) -> Result<(), EddoError> {
        match self {
            TileDriver::Tailor {
                tile,
                buf,
                fetches,
            } => {
                for i in 0..tile.len() {
                    loop {
                        match buf.read(i) {
                            Ok(e) => {
                                visit(&e);
                                break;
                            }
                            Err(EddoError::NotYetFilled { .. }) => {
                                match buf.fill(tile[buf.occupancy()]) {
                                    Ok(()) => *fetches += 1,
                                    Err(EddoError::Full) => {
                                        let idx =
                                            buf.next_stream_index().unwrap_or(buf.occupancy());
                                        buf.ow_fill(tile[idx])?;
                                        *fetches += 1;
                                    }
                                    Err(e) => return Err(e),
                                }
                            }
                            Err(EddoError::Bumped { .. }) => {
                                let idx = buf.next_stream_index().expect("overbooked");
                                buf.ow_fill(tile[idx])?;
                                *fetches += 1;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                Ok(())
            }
            TileDriver::Buffet {
                tile,
                buf,
                window_start,
                window_end,
                fetches,
            } => {
                for i in 0..tile.len() {
                    if i < *window_start {
                        // Sliding window cannot rewind: drop and refill.
                        let occ = buf.occupancy();
                        buf.shrink(occ)?;
                        *window_start = i;
                        *window_end = i;
                    }
                    while i >= *window_end {
                        if buf.is_full() {
                            buf.shrink(1)?;
                            *window_start += 1;
                        }
                        buf.fill(tile[*window_end])?;
                        *window_end += 1;
                        *fetches += 1;
                    }
                    let e = buf.read(i - *window_start)?;
                    visit(&e);
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailors_tensor::gen::GenSpec;
    use tailors_tensor::ops::{approx_eq, spmspm_a_at};

    fn small() -> CsrMatrix {
        GenSpec::power_law(64, 64, 500).seed(13).generate()
    }

    #[test]
    fn output_matches_reference_with_overbooking() {
        let a = small();
        let config = FunctionalConfig {
            capacity: 40,
            fifo_region: 8,
            rows_a: 16,
            cols_b: 16,
            overbooking: true,
        };
        let result = run(&a, &config).unwrap();
        let reference = spmspm_a_at(&a);
        assert!(
            approx_eq(&result.z, &reference, 1e-9),
            "functional output must equal the reference product"
        );
        assert!(result.overbooked_a_tiles > 0, "test should exercise overbooking");
    }

    #[test]
    fn output_matches_reference_without_overbooking() {
        let a = small();
        let config = FunctionalConfig {
            capacity: 4_096, // everything fits
            fifo_region: 8,
            rows_a: 16,
            cols_b: 16,
            overbooking: false,
        };
        let result = run(&a, &config).unwrap();
        assert!(approx_eq(&result.z, &spmspm_a_at(&a), 1e-9));
        assert_eq!(result.overbooked_a_tiles, 0);
        // Fitting tiles are fetched exactly once.
        assert_eq!(result.dram_a_fetches, a.nnz() as u64);
    }

    #[test]
    fn dram_a_matches_closed_form() {
        let a = small();
        let (capacity, fifo, rows_a, cols_b) = (40usize, 8usize, 16usize, 16usize);
        let config = FunctionalConfig {
            capacity,
            fifo_region: fifo,
            rows_a,
            cols_b,
            overbooking: true,
        };
        let result = run(&a, &config).unwrap();
        // Closed form: occ + (n_b - 1) × bumped per tile.
        let profile = a.profile();
        let n_b = a.nrows().div_ceil(cols_b) as u64;
        let resident = (capacity - fifo) as u64;
        let mut expected = 0u64;
        for t in 0..a.nrows().div_ceil(rows_a) {
            let lo = t * rows_a;
            let hi = ((t + 1) * rows_a).min(a.nrows());
            let occ = profile.row_range_nnz(lo, hi);
            let bumped = if occ > capacity as u64 {
                occ - resident
            } else {
                0
            };
            expected += occ + (n_b - 1) * bumped;
        }
        assert_eq!(result.dram_a_fetches, expected);
    }

    #[test]
    fn dram_b_is_one_pass_per_a_tile() {
        let a = small();
        let config = FunctionalConfig {
            capacity: 40,
            fifo_region: 8,
            rows_a: 16,
            cols_b: 16,
            overbooking: true,
        };
        let result = run(&a, &config).unwrap();
        let n_a = a.nrows().div_ceil(config.rows_a) as u64;
        assert_eq!(result.dram_b_fetches, n_a * a.nnz() as u64);
    }

    #[test]
    fn buffet_fallback_fetches_whole_tiles_per_pass() {
        let a = small();
        let overbooked = FunctionalConfig {
            capacity: 40,
            fifo_region: 8,
            rows_a: 64, // one big tile that cannot fit
            cols_b: 16,
            overbooking: true,
        };
        let buffet = FunctionalConfig {
            overbooking: false,
            ..overbooked
        };
        let t = run(&a, &overbooked).unwrap();
        let b = run(&a, &buffet).unwrap();
        assert!(approx_eq(&t.z, &b.z, 1e-9), "both must compute the same Z");
        assert!(
            b.dram_a_fetches > t.dram_a_fetches,
            "buffets refetch whole overbooked tiles (Fig. 3): {} vs {}",
            b.dram_a_fetches,
            t.dram_a_fetches
        );
        // Buffet: n_b full refetches of the tile.
        let n_b = a.nrows().div_ceil(16) as u64;
        assert_eq!(b.dram_a_fetches, n_b * a.nnz() as u64);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = CsrMatrix::new(8, 8);
        let config = FunctionalConfig {
            capacity: 4,
            fifo_region: 1,
            rows_a: 4,
            cols_b: 4,
            overbooking: true,
        };
        let r = run(&a, &config).unwrap();
        assert_eq!(r.z.nnz(), 0);
        assert_eq!(r.dram_a_fetches, 0);
        assert_eq!(r.dram_b_fetches, 0);
    }
}
