//! Per-action energy model (the Accelergy/CACTI substitute).
//!
//! The paper characterizes component energies with synthesized RTL, an SRAM
//! compiler, and CACTI at 65 nm. Absolute picojoules are testbed-specific;
//! what drives every conclusion is the *ordering* DRAM ≫ large SRAM ≫ small
//! SRAM ≫ datapath, which this model preserves with a CACTI-like
//! √capacity scaling for SRAM access energy.

use crate::arch::ArchConfig;

/// Per-action energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// DRAM access energy per element.
    pub dram_pj: f64,
    /// Global-buffer access energy per element.
    pub gb_pj: f64,
    /// PE-buffer access energy per element.
    pub pe_buf_pj: f64,
    /// Multiply-accumulate energy per operation.
    pub mac_pj: f64,
    /// Intersection-unit energy per coordinate scanned.
    pub isect_pj: f64,
}

impl EnergyModel {
    /// Derives a model from an architecture: SRAM energies scale with the
    /// square root of capacity (CACTI-like), anchored at 1 pJ for a 64 KB
    /// array; DRAM is fixed at 160 pJ per 12-byte element (≈ 13 pJ/B, a
    /// typical DDR4 figure).
    pub fn for_arch(arch: &ArchConfig) -> Self {
        EnergyModel {
            dram_pj: 160.0,
            gb_pj: sram_access_pj(arch.gb_bytes),
            pe_buf_pj: sram_access_pj(arch.pe_buf_bytes),
            mac_pj: 0.5,
            isect_pj: 0.1,
        }
    }

    /// Total energy in picojoules for the given activity counts.
    pub fn total_pj(&self, counts: &ActivityCounts) -> f64 {
        counts.dram_elems as f64 * self.dram_pj
            + counts.gb_accesses as f64 * self.gb_pj
            + counts.pe_buf_accesses as f64 * self.pe_buf_pj
            + counts.macs as f64 * self.mac_pj
            + counts.isect_coords as f64 * self.isect_pj
    }
}

/// CACTI-like SRAM energy per access: 1 pJ at 64 KB, scaling with √capacity.
pub fn sram_access_pj(bytes: u64) -> f64 {
    (bytes as f64 / (64.0 * 1024.0)).sqrt().max(0.05)
}

/// Raw activity counts an accelerator run produces, fed to the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// Elements transferred over the DRAM interface.
    pub dram_elems: u128,
    /// Global-buffer accesses (reads + writes) in elements.
    pub gb_accesses: u128,
    /// PE-buffer accesses (reads + writes) in elements.
    pub pe_buf_accesses: u128,
    /// Effectual multiply-accumulates.
    pub macs: u128,
    /// Coordinates scanned by intersection units.
    pub isect_coords: u128,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_ordering_holds() {
        let arch = ArchConfig::extensor();
        let e = EnergyModel::for_arch(&arch);
        assert!(e.dram_pj > e.gb_pj);
        assert!(e.gb_pj > e.pe_buf_pj);
        assert!(e.pe_buf_pj > e.mac_pj / 10.0);
        // 30 MB GB is ~22x the 64 KB anchor in sqrt terms.
        assert!((e.gb_pj - (30.0 * 1024.0 * 1024.0 / 65536.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn sram_scaling_is_sqrt() {
        let e64k = sram_access_pj(64 * 1024);
        let e256k = sram_access_pj(256 * 1024);
        assert!((e256k / e64k - 2.0).abs() < 1e-9);
        // Tiny arrays floor out instead of going to zero.
        assert!(sram_access_pj(16) >= 0.05);
    }

    #[test]
    fn total_is_linear_in_counts() {
        let e = EnergyModel::for_arch(&ArchConfig::extensor());
        let one = ActivityCounts {
            dram_elems: 1,
            gb_accesses: 1,
            pe_buf_accesses: 1,
            macs: 1,
            isect_coords: 1,
        };
        let two = ActivityCounts {
            dram_elems: 2,
            gb_accesses: 2,
            pe_buf_accesses: 2,
            macs: 2,
            isect_coords: 2,
        };
        assert!((e.total_pj(&two) - 2.0 * e.total_pj(&one)).abs() < 1e-9);
        assert_eq!(e.total_pj(&ActivityCounts::default()), 0.0);
    }
}
