//! Tile plans: how a workload is partitioned across the memory hierarchy.

/// A two-level tiling of the `Z = A·B` (B = Aᵀ) dataflow.
///
/// For the prescient and overbooked variants, tiles are coordinate-space
/// row/column panels spanning the full shared dimension `K` (paper §5.2's
/// construction: expand along `K` first). For the no-preprocessing variant
/// (ExTensor-N), tiles are dense-safe 2-D blocks; they can never overflow,
/// so `full_k = false` disables all occupancy-dependent accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    /// Rows of `A` per global-buffer tile.
    pub gb_rows_a: usize,
    /// Columns of `B` per global-buffer tile.
    pub gb_cols_b: usize,
    /// Rows of `A` per PE-buffer subtile.
    pub pe_rows_a: usize,
    /// Columns of `B` per PE-level streaming chunk.
    pub pe_cols_b: usize,
    /// Whether tiles span the full shared dimension (occupancy accounting
    /// applies) or are dense-safe 2-D blocks (never overflow).
    pub full_k: bool,
    /// Whether the buffers are Tailors (overbooked tiles stream their
    /// bumped portion and keep the resident region hot). When `false`, a
    /// tile that exceeds capacity falls back to buffet behaviour: the
    /// entire tile is refetched on every traversal (Fig. 3a).
    pub overbooking: bool,
}

impl TilePlan {
    /// Validates and normalizes the plan against a workload of `nrows`
    /// rows: clamps tile extents into range and PE extents to their parent
    /// tiles.
    pub fn normalized(mut self, nrows: usize) -> TilePlan {
        let n = nrows.max(1);
        self.gb_rows_a = self.gb_rows_a.clamp(1, n);
        self.gb_cols_b = self.gb_cols_b.clamp(1, n);
        self.pe_rows_a = self.pe_rows_a.clamp(1, self.gb_rows_a);
        self.pe_cols_b = self.pe_cols_b.clamp(1, self.gb_cols_b);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_clamps_everything() {
        let p = TilePlan {
            gb_rows_a: 0,
            gb_cols_b: 10_000,
            pe_rows_a: 9_999,
            pe_cols_b: 0,
            full_k: true,
            overbooking: true,
        }
        .normalized(100);
        assert_eq!(p.gb_rows_a, 1);
        assert_eq!(p.gb_cols_b, 100);
        assert_eq!(p.pe_rows_a, 1); // clamped to gb_rows_a
        assert_eq!(p.pe_cols_b, 1);
    }
}
