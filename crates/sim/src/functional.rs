//! The functional engine: executes the tiled `Z = A·Aᵀ` dataflow
//! operation-by-operation through real `tailors-eddo` buffers.
//!
//! This is the ground truth the analytical model is validated against:
//!
//! * the computed output matrix must equal the reference
//!   [`tailors_tensor::ops::spmspm_a_at`];
//! * the counted DRAM fetches must equal the closed-form expressions in
//!   [`crate::dataflow`] (the integration tests cross-check this).
//!
//! The engine models one buffered level (DRAM → operand buffer → compute),
//! i.e. the analytical model with a degenerate PE level — exactly the part
//! of the hierarchy overbooking changes.
//!
//! # Execution substrate
//!
//! Row panels of `A` produce disjoint row ranges of `Z`, so panels execute
//! independently — serially in deterministic order with `threads == 1`, or
//! fanned out across a rayon pool with [`run_with_threads`]. Within a
//! panel the engine walks CSR row slices directly (the stationary tile is
//! never materialized as a coordinate list), slices each streamed B tile
//! through a precomputed [`TileColPtr`] column-pointer view instead of a
//! per-element binary search, and accumulates into a bitmask-blocked
//! dense scratch ([`BlockedSpa`]): one dense write plus one occupancy-word
//! OR per effectual multiply, with extraction walking only set words/bits
//! (ascending by construction — no per-row sort, no full zero-scan).
//!
//! # Memory governance
//!
//! The per-panel scratch is governed by an [`ExecutionPlan`]: under a
//! finite [`MemBudget`] the panel's streamed tiles are grouped into
//! *column blocks* and the scratch spans `rows_a × block_cols` instead of
//! `rows_a × ncols`. A block is a run of whole B tiles traversed in the
//! same global order, every output coordinate is owned by exactly one
//! block, and a panel's blocks are extracted and merged in column order —
//! so the budgeted run is bit-identical to the unbudgeted one in every
//! reported field, and large column counts become feasible (the scratch
//! no longer scales with `ncols`).
//!
//! # Grid parallelism and per-block traffic accounting
//!
//! [`GridMode`] picks the parallel decomposition. Under
//! [`GridMode::Panels`] all column blocks of a panel run on the panel's
//! thread through one shared buffer driver, so every DRAM count is the
//! shared-driver count by construction. Under [`GridMode::Grid2D`] every
//! (panel × block) [`PlanUnit`](crate::exec::PlanUnit) is its own work
//! item with its **own** buffer driver — `panels × blocks`-way
//! parallelism — and traffic is accounted per block ([`UnitTraffic`])
//! with an exact reduction back to the shared-driver totals:
//!
//! * A private driver's first traversal cold-fills the whole panel
//!   (`occ` fetches); in the shared traversal order only the *first*
//!   block of a panel pays that cold fill, and every later traversal
//!   refetches exactly the steady-state volume `r` (`occ − resident` for
//!   an overbooked Tailor, `occ` for an overbooked buffet, `0` when the
//!   tile fits — see `TileDriver::steady_refetch`).
//! * So a non-first block with a private driver (`occ + (k−1)·r` actual
//!   fetches over its `k` tiles) is charged `k·r`: its private fetches
//!   minus the cold fill plus one steady refetch. Summed over a panel's
//!   blocks this telescopes to `occ + (Σk − 1)·r` — **exactly** the
//!   shared driver's count, for every tiling and budget (property-tested
//!   in `crates/sim/tests/functional_equivalence.rs`).
//! * Streamed-operand traffic partitions exactly: each unit owns the B
//!   columns of its block, and per-panel block sums equal one full pass
//!   over B (`nnz`).
//!
//! Work items are distributed across threads by cost-balanced bins
//! ([`crate::exec::balanced_partition`]) and reassembled in unit order,
//! so results — including every floating-point accumulation order and
//! every reported traffic count — are bit-identical for every thread
//! count, every memory budget, and both grid modes, and bit-identical to
//! the retained seed engine [`reference_run`].

use crate::exec::{run_balanced, BufferParams, ExecutionPlan, GridMode, MemBudget, PlanUnit};
use tailors_eddo::{Buffet, EddoError, Tailor, TailorConfig};
use tailors_tensor::ops::BlockedSpa;
use tailors_tensor::storage::{
    MmapStorage, PanelBuffers, PanelPayload, PoolHandle, PoolStats, ScratchPool, ShapeClass,
};
use tailors_tensor::{CooMatrix, CsrMatrix, TileColPtr};

/// A structurally invalid engine configuration, reported through the
/// `Err` channel instead of a panic so a long-lived server can answer a
/// bad request with a typed error and keep serving (the serving layer's
/// workers must never abort on caller input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `Z = A·Aᵀ` requires a square stationary operand.
    NonSquare {
        /// Rows of the supplied matrix.
        nrows: usize,
        /// Columns of the supplied matrix.
        ncols: usize,
    },
    /// The operand buffer has no capacity.
    ZeroCapacity,
    /// A tile dimension is zero.
    ZeroTileDims {
        /// Configured rows of `A` per tile.
        rows_a: usize,
        /// Configured columns of `B` per tile.
        cols_b: usize,
    },
    /// The worker-thread count is zero.
    ZeroThreads,
    /// A spilled run's `cols_b` does not match the tile width the spill
    /// file was written with (the file's per-tile segments *are* the
    /// streamed tiles, so the two must agree).
    SpillTileMismatch {
        /// Columns per tile in the spill file.
        file_cols: usize,
        /// Columns per tile in the run configuration.
        config_cols: usize,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::NonSquare { nrows, ncols } => {
                write!(f, "A·Aᵀ expects a square matrix, got {nrows}x{ncols}")
            }
            ConfigError::ZeroCapacity => write!(f, "capacity must be positive"),
            ConfigError::ZeroTileDims { rows_a, cols_b } => {
                write!(
                    f,
                    "tile dimensions must be positive, got rows_a={rows_a} cols_b={cols_b}"
                )
            }
            ConfigError::ZeroThreads => write!(f, "thread count must be positive"),
            ConfigError::SpillTileMismatch {
                file_cols,
                config_cols,
            } => write!(
                f,
                "spill file was tiled at cols_b={file_cols} but the run asks for {config_cols}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Everything a functional run can fail with: a rejected configuration or
/// a buffer-protocol error (the latter never occurs for well-formed
/// input — it indicates an engine bug).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The configuration was rejected before any work ran.
    Config(ConfigError),
    /// A buffer-protocol violation surfaced mid-run.
    Buffer(EddoError),
    /// The spill tier failed to page an operand in ([`run_spilled`]);
    /// carries the I/O error kind (the error itself is not `Copy`).
    Spill(std::io::ErrorKind),
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<EddoError> for EngineError {
    fn from(e: EddoError) -> Self {
        EngineError::Buffer(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Spill(e.kind())
    }
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "invalid configuration: {e}"),
            EngineError::Buffer(e) => write!(f, "buffer protocol error: {e}"),
            EngineError::Spill(kind) => write!(f, "spill-tier I/O error: {kind}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Shared request validation for every engine entry point (and
/// [`reference_run`], which must reject exactly what the rewritten engine
/// rejects so the oracle stays callable wherever the engine is).
fn validate(a: &CsrMatrix, config: &FunctionalConfig, threads: usize) -> Result<(), ConfigError> {
    if a.nrows() != a.ncols() {
        return Err(ConfigError::NonSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    if config.capacity == 0 {
        return Err(ConfigError::ZeroCapacity);
    }
    if config.rows_a == 0 || config.cols_b == 0 {
        return Err(ConfigError::ZeroTileDims {
            rows_a: config.rows_a,
            cols_b: config.cols_b,
        });
    }
    if threads == 0 {
        return Err(ConfigError::ZeroThreads);
    }
    Ok(())
}

/// Configuration of a functional run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalConfig {
    /// Operand-buffer capacity in nonzeros.
    pub capacity: usize,
    /// Tailors FIFO-region size (ignored when `overbooking` is false).
    pub fifo_region: usize,
    /// Rows of `A` per tile (`K`-spanning row panels).
    pub rows_a: usize,
    /// Columns of `B = Aᵀ` per tile.
    pub cols_b: usize,
    /// Whether the operand buffer is a Tailor (otherwise a plain buffet,
    /// which drops everything and refills when a tile does not fit).
    pub overbooking: bool,
    /// Per-thread dense-scratch budget; the [`ExecutionPlan`] derived from
    /// it groups streamed tiles into column blocks. Any budget yields
    /// bit-identical results; it only bounds memory.
    pub mem_budget: MemBudget,
    /// Parallel decomposition: row panels only, or the full 2-D
    /// (panel × block) grid with per-unit buffer drivers. Either mode
    /// yields bit-identical results; it only changes the available
    /// parallelism.
    pub grid: GridMode,
    /// Opt-in budget-aware auto-tiling: when set, `rows_a` is only the
    /// *baseline* candidate — the engine re-plans the panel height
    /// against `mem_budget` through the
    /// [`AutoPlanner`](crate::exec::AutoPlanner) (see
    /// [`auto_execution_plan`]) before running. The output matrix is
    /// bit-identical to [`reference_run`] either way (results never
    /// depend on the tiling); the DRAM counts are those of the chosen
    /// tiling.
    pub auto_plan: bool,
}

impl FunctionalConfig {
    /// The memory-governed execution plan this configuration induces on an
    /// `nrows × ncols` output **at the fixed `rows_a`** — what every run
    /// without [`FunctionalConfig::auto_plan`] executes. An auto-planned
    /// run derives its plan from the matrix instead; see
    /// [`auto_execution_plan`].
    pub fn execution_plan(&self, nrows: usize, ncols: usize) -> ExecutionPlan {
        ExecutionPlan::new(nrows, ncols, self.rows_a, self.cols_b, self.mem_budget)
    }

    /// The operand-buffer parameters the auto planner prices its refetch
    /// term against — exactly the buffer [`TileDriver`] drives.
    fn buffer_params(&self) -> BufferParams {
        BufferParams {
            capacity: self.capacity,
            fifo_region: self.fifo_region,
            overbooking: self.overbooking,
        }
    }
}

/// The execution plan an auto-planned run ([`FunctionalConfig::auto_plan`])
/// derives: the [`AutoPlanner`](crate::exec::AutoPlanner) over the
/// matrix's occupancy profile, with the config's buffer as the refetch
/// model and its `rows_a` as the baseline candidate. Exposed so callers
/// (smokes, tests, the serving layer) can see the tiling an auto run will
/// execute — a fixed run at `plan.rows_a()` is bit-identical to the auto
/// run in every reported field.
///
/// The planner's term weights come from the `TAILORS_CALIBRATE` knob
/// ([`cost_model_from_env`](crate::exec::cost_model_from_env)): unset
/// keeps the historical equal-weight model, so existing runs are
/// unaffected; `run_all --calibrate` switches every engine-internal auto
/// plan to measured weights. Either way the *results* of the run are
/// bit-identical — only the chosen tiling (and therefore the traffic
/// counters) can move.
pub fn auto_execution_plan(a: &CsrMatrix, config: &FunctionalConfig) -> ExecutionPlan {
    auto_execution_plan_costed(a, config, crate::exec::cost_model_from_env())
}

/// [`auto_execution_plan`] with an explicit planner
/// [`CostModel`](crate::exec::CostModel) instead of the environment's —
/// the entry point for the serving layer (which owns its model and
/// versions plan-cache keys with it) and for the arbitrary-weight
/// property tests.
pub fn auto_execution_plan_costed(
    a: &CsrMatrix,
    config: &FunctionalConfig,
    model: crate::exec::CostModel,
) -> ExecutionPlan {
    ExecutionPlan::auto_for_budget(
        &a.profile(),
        config.cols_b,
        config.mem_budget,
        Some(config.buffer_params()),
        Some(config.rows_a),
        model,
    )
}

/// Result of a functional run.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalResult {
    /// The computed output `Z = A·Aᵀ`.
    pub z: CsrMatrix,
    /// Elements fetched from DRAM for the stationary operand `A`
    /// (including overbooking restreams).
    pub dram_a_fetches: u64,
    /// Elements fetched from DRAM for the streamed operand `B`.
    pub dram_b_fetches: u64,
    /// Number of A tiles that overbooked the buffer.
    pub overbooked_a_tiles: usize,
}

/// One stored nonzero of the stationary operand as it moves through the
/// buffer.
type Elem = (u32, u32, f64);

/// Executes the tiled dataflow on `a`, returning the output and DRAM
/// traffic counts.
///
/// Uses every thread rayon currently advertises (honoring
/// `RAYON_NUM_THREADS` and any enclosing pool); see [`run_with_threads`]
/// to pin the count. The result does not depend on the thread count.
///
/// # Errors
///
/// Propagates buffer-protocol errors (none occur for well-formed input).
///
/// # Errors
///
/// [`EngineError::Config`] if `a` is not square or the configuration is
/// degenerate (`capacity == 0`, `rows_a == 0`, or `cols_b == 0`);
/// [`EngineError::Buffer`] for buffer-protocol errors, including an
/// invalid Tailor sizing (`fifo_region == 0` or `fifo_region >= capacity`
/// while overbooking). No caller input panics the engine.
pub fn run(a: &CsrMatrix, config: &FunctionalConfig) -> Result<FunctionalResult, EngineError> {
    run_with_threads(a, config, rayon::current_num_threads())
}

/// [`run`] with an explicit worker-thread count (`1` = fully serial,
/// deterministic-by-construction path; results are identical either way).
///
/// # Errors
///
/// As [`run`]; additionally rejects `threads == 0`
/// ([`ConfigError::ZeroThreads`]).
pub fn run_with_threads(
    a: &CsrMatrix,
    config: &FunctionalConfig,
    threads: usize,
) -> Result<FunctionalResult, EngineError> {
    match config.grid {
        GridMode::Panels => run_panels_mode(a, config, threads),
        GridMode::Grid2D => Ok(run_grid(a, config, threads)?.0),
    }
}

/// Validated common setup for both grid modes: the streamed operand, the
/// execution plan, and (when the memory guard allows) the tile
/// column-pointer view.
struct EngineSetup {
    b: CsrMatrix,
    plan: ExecutionPlan,
    b_tiles: Option<TileColPtr>,
}

fn engine_setup(
    a: &CsrMatrix,
    config: &FunctionalConfig,
    threads: usize,
) -> Result<EngineSetup, ConfigError> {
    validate(a, config, threads)?;
    let b = a.transpose();
    let n = a.nrows();
    let plan = if config.auto_plan {
        auto_execution_plan(a, config)
    } else {
        config.execution_plan(n, n)
    };
    // Column-pointer view of B at the tile grid: row k ∩ tile tj becomes an
    // O(1) slice instead of a per-element partition_point. The view costs
    // nrows × (n_tiles + 1) indices; when a degenerate tiling (tiny cols_b
    // on a wide B) would make that dwarf the matrix itself, skip it and let
    // panels fall back to per-element range searches.
    let n_b_tiles = plan.n_col_tiles();
    let view_cells = b.nrows() * (n_b_tiles + 1);
    let b_tiles = if view_cells <= 8 * b.nnz() + 4096 {
        let view = b.tile_col_ptr(config.cols_b);
        debug_assert_eq!(view.n_tiles(), n_b_tiles);
        Some(view)
    } else {
        None
    };
    Ok(EngineSetup { b, plan, b_tiles })
}

/// [`run_with_threads`] in [`GridMode::Panels`]: one work item per row
/// panel, all blocks of a panel sharing its buffer driver.
fn run_panels_mode(
    a: &CsrMatrix,
    config: &FunctionalConfig,
    threads: usize,
) -> Result<FunctionalResult, EngineError> {
    let EngineSetup { b, plan, b_tiles } = engine_setup(a, config, threads)?;
    let n = a.nrows();
    let n_a_tiles = plan.n_row_panels();

    // Streamed-operand traffic: every A tile streams all of B exactly once
    // (tile occupancies are row-pointer differences summing to nnz), so the
    // per-(ti, tj) row scans of the seed engine collapse to one constant.
    let dram_b_per_a_tile: u64 = a.nnz() as u64;

    // Panel cost ≈ occupancy (what both the traversals and the accumulate
    // work scale with); +1 keeps empty panels schedulable.
    let costs: Vec<u128> = (0..n_a_tiles)
        .map(|ti| {
            let r = plan.panel_rows(ti);
            a.row_range_nnz(r.start, r.end) as u128 + 1
        })
        .collect();
    let panel_results = run_balanced(n_a_tiles, &costs, threads, |ti| {
        run_panel(a, &b, b_tiles.as_ref(), config, &plan, ti)
    });

    // Stitch disjoint row panels, in panel order, into one CSR output.
    let mut row_ptr: Vec<usize> = Vec::with_capacity(n + 1);
    row_ptr.push(0);
    let mut cols: Vec<u32> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut dram_a = 0u64;
    let mut dram_b = 0u64;
    let mut overbooked = 0usize;
    for result in panel_results {
        let p = result?;
        for &len in &p.out.row_lens {
            row_ptr.push(row_ptr.last().expect("non-empty") + len);
        }
        cols.extend_from_slice(&p.out.cols);
        vals.extend_from_slice(&p.out.vals);
        dram_a += p.dram_a_fetches;
        dram_b += dram_b_per_a_tile;
        overbooked += usize::from(p.overbooked);
    }
    let z = CsrMatrix::from_parts(n, n, row_ptr, cols, vals)
        .expect("panel emission produces canonical CSR");
    Ok(FunctionalResult {
        z,
        dram_a_fetches: dram_a,
        dram_b_fetches: dram_b,
        overbooked_a_tiles: overbooked,
    })
}

/// Block-local traffic accounting of one (panel × block)
/// [`PlanUnit`](crate::exec::PlanUnit) executed with its own buffer
/// driver ([`GridMode::Grid2D`]).
///
/// `dram_a_fetches` applies the per-block reduction (see the
/// [module docs](self)): per panel, block 0 is charged its private
/// fetches and every later block `private − occ + steady_refetch`, which
/// sums *exactly* to the shared-driver total. `dram_a_private` is what
/// this unit's driver actually fetched (the cost of making blocks
/// independent: each non-first block cold-fills the panel once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitTraffic {
    /// Row-panel index of the unit.
    pub row_panel: usize,
    /// Column-block index of the unit.
    pub col_block: usize,
    /// Shared-driver-equivalent stationary-operand fetches charged to this
    /// unit; summing these over a panel's blocks reproduces the shared
    /// driver's count exactly.
    pub dram_a_fetches: u64,
    /// Stationary-operand fetches this unit's private driver actually
    /// performed.
    pub dram_a_private: u64,
    /// Streamed-operand nonzeros this unit owns (the B columns of its
    /// block); per-panel block sums equal one full pass over B.
    pub dram_b_fetches: u64,
    /// Whether the panel overbooks the operand buffer; reported on
    /// `col_block == 0` only so panel sums count each panel once.
    pub overbooked: bool,
}

/// [`run_with_threads`] in [`GridMode::Grid2D`], also returning the
/// per-unit traffic breakdown. The [`FunctionalResult`] is bit-identical
/// to the [`GridMode::Panels`] run (and to [`reference_run`]) in every
/// field; the breakdown additionally exposes what each unit's private
/// driver really did.
///
/// # Errors
///
/// As [`run_with_threads`].
pub fn run_grid(
    a: &CsrMatrix,
    config: &FunctionalConfig,
    threads: usize,
) -> Result<(FunctionalResult, Vec<UnitTraffic>), EngineError> {
    let EngineSetup { b, plan, b_tiles } = engine_setup(a, config, threads)?;
    let n = a.nrows();
    let units: Vec<PlanUnit> = plan.units().collect();

    // Unit cost ≈ panel occupancy × its share of the streamed operand
    // (the accumulate work) plus the traversal cost of the panel itself.
    let costs: Vec<u128> = units
        .iter()
        .map(|u| {
            let occ = a.row_range_nnz(u.rows.start, u.rows.end) as u128;
            let block = a.row_range_nnz(u.cols.start, u.cols.end) as u128;
            occ * block + occ + block + 1
        })
        .collect();
    let unit_results = run_balanced(units.len(), &costs, threads, |ui| {
        run_unit(a, &b, b_tiles.as_ref(), config, &units[ui])
    });
    let mut outputs: Vec<UnitOutput> = Vec::with_capacity(unit_results.len());
    let mut traffic: Vec<UnitTraffic> = Vec::with_capacity(unit_results.len());
    for r in unit_results {
        let (o, t) = r?;
        outputs.push(o);
        traffic.push(t);
    }

    // Stitch: units are in (panel, block) row-major order; per panel,
    // concatenate each output row's block segments in block order —
    // exactly the staged merge the shared-driver path performs. A
    // zero-dimensional input has no blocks at all (`outputs` is empty and
    // the chunk loop must simply not run); `max(1)` keeps `chunks` legal.
    let n_blocks = plan.n_col_blocks().max(1);
    let mut row_ptr: Vec<usize> = Vec::with_capacity(n + 1);
    row_ptr.push(0);
    let mut cols: Vec<u32> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    for (pi, panel_outputs) in outputs.chunks(n_blocks).enumerate() {
        let panel_rows = plan.panel_rows(pi).len();
        // Per-unit cursors advance monotonically because rows were
        // drained in order.
        let mut cursors = vec![0usize; panel_outputs.len()];
        for lr in 0..panel_rows {
            let before = cols.len();
            for (u, cursor) in panel_outputs.iter().zip(cursors.iter_mut()) {
                let len = u.out.row_lens[lr];
                cols.extend_from_slice(&u.out.cols[*cursor..*cursor + len]);
                vals.extend_from_slice(&u.out.vals[*cursor..*cursor + len]);
                *cursor += len;
            }
            row_ptr.push(row_ptr.last().expect("non-empty") + (cols.len() - before));
        }
    }
    let z = CsrMatrix::from_parts(n, n, row_ptr, cols, vals)
        .expect("unit emission produces canonical CSR");
    let result = FunctionalResult {
        z,
        dram_a_fetches: traffic.iter().map(|t| t.dram_a_fetches).sum(),
        dram_b_fetches: traffic.iter().map(|t| t.dram_b_fetches).sum(),
        overbooked_a_tiles: traffic.iter().filter(|t| t.overbooked).count(),
    };
    Ok((result, traffic))
}

/// Output of one stationary row panel.
///
/// The assembly buffers (`row_lens` per output row, sorted `cols`, and
/// `vals`, rows concatenated) travel as a pooled handle: the stitch reads
/// through it and the drop at end of stitching returns the buffers to the
/// worker's scratch slab for the next panel.
struct PanelOutput {
    out: PoolHandle<PanelBuffers>,
    dram_a_fetches: u64,
    overbooked: bool,
}

/// Output of one (panel × block) unit: the panel's rows restricted to the
/// block's columns, in the same pooled assembly buffers as
/// [`PanelOutput`].
struct UnitOutput {
    out: PoolHandle<PanelBuffers>,
}

/// The accumulator interface the per-unit kernel dispatch needs: the
/// bitmask-blocked scratch's masked mode and its dense mode
/// ([`DenseMode`]) both provide it with identical semantics
/// (bit-identical emission on the same write sequence — property-tested
/// in `crates/tensor/tests/proptests.rs`), so [`run_block`]
/// monomorphizes over the choice and the accumulate hot loop carries no
/// per-write dispatch branch. Both modes drive the *same* per-thread
/// [`BlockedSpa`] allocation, so dispatching never grows the scratch
/// beyond the planner's per-thread budget.
trait UnitSpa {
    fn reset_shape(&mut self, rows: usize, width: usize);
    fn accumulate(&mut self, row: usize, col: usize, v: f64);
    fn drain_row(&mut self, row: usize, base: u32, cols: &mut Vec<u32>, vals: &mut Vec<f64>);
    fn clear(&mut self);
}

impl UnitSpa for BlockedSpa {
    fn reset_shape(&mut self, rows: usize, width: usize) {
        BlockedSpa::reset_shape(self, rows, width)
    }
    #[inline]
    fn accumulate(&mut self, row: usize, col: usize, v: f64) {
        BlockedSpa::accumulate(self, row, col, v)
    }
    fn drain_row(&mut self, row: usize, base: u32, cols: &mut Vec<u32>, vals: &mut Vec<f64>) {
        BlockedSpa::drain_row(self, row, base, cols, vals)
    }
    fn clear(&mut self) {
        BlockedSpa::clear(self)
    }
}

/// The dense kernel: the same [`BlockedSpa`] driven in its unmasked mode
/// (no occupancy maintenance per accumulate, full-width scan-and-wipe
/// extraction) — the profitable trade for blocks predicted to fill.
struct DenseMode<'a>(&'a mut BlockedSpa);

impl UnitSpa for DenseMode<'_> {
    fn reset_shape(&mut self, rows: usize, width: usize) {
        BlockedSpa::reset_shape(self.0, rows, width)
    }
    #[inline]
    fn accumulate(&mut self, row: usize, col: usize, v: f64) {
        self.0.accumulate_dense(row, col, v)
    }
    fn drain_row(&mut self, row: usize, base: u32, cols: &mut Vec<u32>, vals: &mut Vec<f64>) {
        self.0.drain_row_dense(row, base, cols, vals)
    }
    fn clear(&mut self) {
        BlockedSpa::clear(self.0)
    }
}

/// Predicted-fill dispatch threshold: expected accumulate writes per
/// scratch slot at or above which a block runs on the plain dense kernel.
/// At half a write per slot most occupancy words are populated anyway, so
/// the mask OR + touched-word bookkeeping per accumulate buys nothing and
/// the dense kernel's full-width extraction wipe costs at most ~2 slots
/// per write. Correctness never depends on the value — the kernels are
/// bit-identical — so it only moves the crossover.
const DENSE_FILL_THRESHOLD: f64 = 0.5;

/// Whether `unit` should run on the dense kernel: predicted fill density
/// from the profile quantities already on hand. The expected effectual
/// multiplies landing in a (panel × block) unit are
/// `occ_panel × occ_block / nnz` for unstructured sparsity (each of the
/// panel's elements meets the streamed elements sharing its `k`
/// coordinate; `Σ_k panel_k × block_k` with both factors proportional to
/// their totals), and writes-per-slot is that over the unit's area.
fn dense_kernel_for(a: &CsrMatrix, unit: &PlanUnit) -> bool {
    let slots = unit.rows.len() as f64 * unit.cols.len() as f64;
    let nnz = a.nnz() as f64;
    if slots == 0.0 || nnz == 0.0 {
        return false;
    }
    let occ_panel = a.row_range_nnz(unit.rows.start, unit.rows.end) as f64;
    // The streamed block's occupancy: B columns [c0, c1) are A rows.
    let occ_block = a.row_range_nnz(unit.cols.start, unit.cols.end) as f64;
    occ_panel * occ_block >= DENSE_FILL_THRESHOLD * slots * nnz
}

/// Runs one column block on whichever kernel [`dense_kernel_for`] picks
/// for `unit` — the single dispatch point both grid modes go through.
#[allow(clippy::too_many_arguments)]
fn run_block_dispatch<S: TileSource>(
    a: &CsrMatrix,
    spa: &mut BlockedSpa,
    driver: &mut TileDriver<S>,
    b: &CsrMatrix,
    b_tiles: Option<&TileColPtr>,
    config: &FunctionalConfig,
    unit: &PlanUnit,
    n: usize,
    sink: BlockSink<'_>,
) -> Result<(), EddoError> {
    if dense_kernel_for(a, unit) {
        run_block(
            &mut DenseMode(spa),
            driver,
            b,
            b_tiles,
            config,
            unit,
            n,
            sink,
        )
    } else {
        run_block(spa, driver, b, b_tiles, config, unit, n, sink)
    }
}

/// Where [`run_block`] extracts its rows to: per-row staging (a panel
/// with several blocks, merged at the end) or straight into the flat
/// output (single-block panels and 2-D grid units).
enum BlockSink<'a> {
    Staged(&'a mut [(Vec<u32>, Vec<f64>)]),
    Direct {
        row_lens: &'a mut Vec<usize>,
        cols: &'a mut Vec<u32>,
        vals: &'a mut Vec<f64>,
    },
}

/// Executes one column block of a stationary panel: shapes `spa` to the
/// unit, runs all its tile traversals through `driver`, and drains every
/// row into `sink`. Generic over the accumulator kernel — the caller
/// picks the masked or dense mode per unit via [`dense_kernel_for`].
#[allow(clippy::too_many_arguments)]
fn run_block<S: TileSource, A: UnitSpa>(
    spa: &mut A,
    driver: &mut TileDriver<S>,
    b: &CsrMatrix,
    b_tiles: Option<&TileColPtr>,
    config: &FunctionalConfig,
    unit: &PlanUnit,
    n: usize,
    sink: BlockSink<'_>,
) -> Result<(), EddoError> {
    let (m0, c0) = (unit.rows.start, unit.cols.start);
    spa.reset_shape(unit.rows.len(), unit.cols.len());
    for tj in unit.tiles.clone() {
        if let Err(e) = traverse_tile(driver, b, b_tiles, config, tj, n, m0, c0, spa) {
            // Restore the all-zero invariant before propagating.
            spa.clear();
            return Err(e);
        }
    }
    // Extract in row order; blocks own disjoint column ranges and run
    // left to right, so per-row concatenation preserves sorted order.
    match sink {
        BlockSink::Staged(staged) => {
            for (lr, (row_cols, row_vals)) in staged.iter_mut().enumerate() {
                spa.drain_row(lr, c0 as u32, row_cols, row_vals);
            }
        }
        BlockSink::Direct {
            row_lens,
            cols,
            vals,
        } => {
            for lr in 0..unit.rows.len() {
                let before = cols.len();
                spa.drain_row(lr, c0 as u32, cols, vals);
                row_lens.push(cols.len() - before);
            }
        }
    }
    Ok(())
}

/// One in-order traversal of the stationary tile against streamed tile
/// `tj`, accumulating into `spa` (block-local columns, re-based at `c0`).
/// On error the caller must restore the scratch invariant via
/// [`UnitSpa::clear`].
#[allow(clippy::too_many_arguments)]
fn traverse_tile<S: TileSource, A: UnitSpa>(
    driver: &mut TileDriver<S>,
    b: &CsrMatrix,
    b_tiles: Option<&TileColPtr>,
    config: &FunctionalConfig,
    tj: usize,
    n: usize,
    m0: usize,
    c0: usize,
    spa: &mut A,
) -> Result<(), EddoError> {
    let b_row_ptr = b.row_ptr();
    let b_cols = b.col_indices();
    let b_vals = b.values();
    let n0 = (tj * config.cols_b) as u32;
    let n1 = ((tj + 1) * config.cols_b).min(n) as u32;
    driver.traverse(|&(m, k, va)| {
        let (lo, hi) = match b_tiles {
            Some(view) => view.row_tile_range(k as usize, tj),
            None => {
                let (rlo, rhi) = (b_row_ptr[k as usize], b_row_ptr[k as usize + 1]);
                let coords = &b_cols[rlo..rhi];
                let start = rlo + coords.partition_point(|&c| c < n0);
                let end = rlo + coords.partition_point(|&c| c < n1);
                (start, end)
            }
        };
        let local_row = m as usize - m0;
        for (&nn, &vb) in b_cols[lo..hi].iter().zip(&b_vals[lo..hi]) {
            spa.accumulate(local_row, nn as usize - c0, va * vb);
        }
    })
}

/// Executes all B-tile traversals for stationary panel `ti`, one plan
/// column block at a time (all blocks share the panel's buffer driver, so
/// traversal order — and therefore every DRAM fetch count — is identical
/// for every memory budget). Each block runs on the accumulator kernel
/// [`dense_kernel_for`] picks: the bitmask-blocked scratch in the sparse
/// regime, the plain dense one when the block is predicted to fill.
///
/// `b_tiles == None` is the memory-guarded fallback: B-row × tile ranges
/// are found by per-element binary search, as in the seed engine.
fn run_panel(
    a: &CsrMatrix,
    b: &CsrMatrix,
    b_tiles: Option<&TileColPtr>,
    config: &FunctionalConfig,
    plan: &ExecutionPlan,
    ti: usize,
) -> Result<PanelOutput, EddoError> {
    let n = a.nrows();
    let rows = plan.panel_rows(ti);
    let (m0, m1) = (rows.start, rows.end);
    let tile = PanelElems::new(a, m0, m1);
    let overbooked = tile.len() > config.capacity;

    // SPA scratch spanning the panel's output rows × one plan column
    // block, and the panel's assembly buffers — both checked out of the
    // worker's scratch pool by shape class, so steady-state runs on warm
    // threads allocate nothing here. Extraction restores the SPA's
    // all-zero invariant as it goes.
    let panel_rows = m1 - m0;
    let class = ShapeClass::of(panel_rows, plan.block_cols());
    SCRATCH_POOL.with(|pool| {
        pool.set_retention(config.mem_budget.limit_bytes());
        let mut spa = pool.checkout_spa(class);
        let mut out = pool.checkout_buffers(class);

        let mut driver = TileDriver::new(tile, config)?;
        // Per-row staging across blocks. A single-block plan (the
        // unbudgeted default) extracts rows directly into the flat output
        // instead, skipping the staging copy on the historical hot path.
        let multi_block = plan.n_col_blocks() > 1;
        if multi_block {
            out.ensure_staged_rows(panel_rows);
        }

        for unit in plan.panel_units(ti) {
            let sink = if multi_block {
                BlockSink::Staged(&mut out.staged[..panel_rows])
            } else {
                let PanelBuffers {
                    row_lens,
                    cols,
                    vals,
                    ..
                } = &mut *out;
                BlockSink::Direct {
                    row_lens,
                    cols,
                    vals,
                }
            };
            run_block_dispatch(a, &mut spa, &mut driver, b, b_tiles, config, &unit, n, sink)?;
        }

        if multi_block {
            merge_staged(&mut out, panel_rows);
        }

        Ok(PanelOutput {
            out,
            dram_a_fetches: driver.fetches(),
            overbooked,
        })
    })
}

/// Concatenates a panel's per-row staged block segments (in row order,
/// blocks already in column order within each row) into the flat assembly
/// buffers, draining each staging vector in place so its capacity is
/// recycled with the pooled buffer set.
fn merge_staged(out: &mut PanelBuffers, panel_rows: usize) {
    let PanelBuffers {
        row_lens,
        cols,
        vals,
        staged,
    } = out;
    for (row_cols, row_vals) in staged[..panel_rows].iter_mut() {
        row_lens.push(row_cols.len());
        cols.extend_from_slice(row_cols);
        vals.extend_from_slice(row_vals);
        row_cols.clear();
        row_vals.clear();
    }
}

/// Executes one (panel × block) unit with a private buffer driver,
/// returning the block-restricted output and its [`UnitTraffic`].
fn run_unit(
    a: &CsrMatrix,
    b: &CsrMatrix,
    b_tiles: Option<&TileColPtr>,
    config: &FunctionalConfig,
    unit: &PlanUnit,
) -> Result<(UnitOutput, UnitTraffic), EddoError> {
    let n = a.nrows();
    let (m0, m1) = (unit.rows.start, unit.rows.end);
    let tile = PanelElems::new(a, m0, m1);
    let occ = tile.len() as u64;
    let overbooked = tile.len() > config.capacity;
    // This unit's share of the streamed operand: the nonzeros of B columns
    // [c0, c1) are the nonzeros of A rows [c0, c1).
    let dram_b = a.row_range_nnz(unit.cols.start, unit.cols.end) as u64;

    let class = ShapeClass::of(unit.rows.len(), unit.cols.len());
    SCRATCH_POOL.with(|pool| {
        pool.set_retention(config.mem_budget.limit_bytes());
        let mut spa = pool.checkout_spa(class);
        let mut out = pool.checkout_buffers(class);
        let mut driver = TileDriver::new(tile, config)?;
        let PanelBuffers {
            row_lens,
            cols,
            vals,
            ..
        } = &mut *out;
        let sink = BlockSink::Direct {
            row_lens,
            cols,
            vals,
        };
        if dense_kernel_for(a, unit) {
            run_block(
                &mut DenseMode(&mut spa),
                &mut driver,
                b,
                b_tiles,
                config,
                unit,
                n,
                sink,
            )?;
        } else {
            run_block(&mut *spa, &mut driver, b, b_tiles, config, unit, n, sink)?;
        }

        // The per-block reduction (see the module docs): block 0 is the
        // shared driver's own prefix; later blocks replace their private
        // cold fill (occ) with one steady-state refetch.
        let private = driver.fetches();
        debug_assert!(private >= occ, "a traversal fetches the tile at least once");
        let dram_a = if unit.col_block == 0 {
            private
        } else {
            private - occ + driver.steady_refetch()
        };
        Ok((
            UnitOutput { out },
            UnitTraffic {
                row_panel: unit.row_panel,
                col_block: unit.col_block,
                dram_a_fetches: dram_a,
                dram_a_private: private,
                dram_b_fetches: dram_b,
                overbooked: overbooked && unit.col_block == 0,
            },
        ))
    })
}

thread_local! {
    /// Per-thread scratch pool for [`run_panel`] / [`run_unit`] /
    /// [`run_spilled`]: SPA accumulators (all-zero between panels by
    /// construction — extraction drains them) and panel assembly buffers,
    /// recycled by shape class across panels, runs, and served requests
    /// on the same thread. One SPA serves both dispatch kernels —
    /// [`DenseMode`] is a view over it — so the per-thread footprint
    /// stays within the planner's budget no matter how blocks dispatch;
    /// retention is re-capped from each run's `MemBudget`.
    static SCRATCH_POOL: ScratchPool = ScratchPool::new();
}

/// Counters of the **calling thread's** engine scratch pool (each worker
/// thread keeps its own; a serve runtime worker reports its own numbers).
/// `misses` staying flat across warmed runs is what "the kernel path
/// allocates nothing" looks like from the inside; the allocator-level
/// regression test in `tailors-serve` pins it from the outside.
pub fn scratch_pool_stats() -> PoolStats {
    SCRATCH_POOL.with(|pool| pool.stats())
}

/// Frees the calling thread's idle pooled scratch (outstanding handles
/// are unaffected). Useful for tests that want a cold pool.
pub fn clear_scratch_pool() {
    SCRATCH_POOL.with(|pool| pool.clear());
}

/// Executes the tiled dataflow against a file-backed operand
/// ([`MmapStorage`]) instead of an in-RAM [`CsrMatrix`], paging row
/// panels of `A` and column tiles of `B = Aᵀ` in on demand — so matrices
/// whose CSR payload exceeds the configured RAM budget stream through the
/// planner's row-panel × column-block working sets.
///
/// The traversal order, buffer-driver configuration, accumulation order,
/// and traffic accounting are identical to [`run_with_threads`] in
/// [`GridMode::Panels`] at the same plan, so the result — every field —
/// is **bit-identical** to the in-RAM run and to [`reference_run`] (the
/// property suite pins it). While a panel is traversed the engine
/// prefetches the next column tile in [`ExecutionPlan`] order, keeping
/// the tile cache's eviction aligned with the plan.
///
/// `config.grid` and `config.auto_plan` are ignored: a spilled run is
/// always panel-mode (a private driver per (panel, block) unit has no
/// residency advantage when tiles page in per checkout anyway), and
/// auto-planning needs the occupancy profile of a resident matrix —
/// callers that want an auto plan derive it where the profile lives and
/// pass the chosen `rows_a` in.
///
/// # Errors
///
/// As [`run_with_threads`], plus [`ConfigError::SpillTileMismatch`] when
/// `config.cols_b` differs from the tile width the spill file was written
/// with, and [`EngineError::Spill`] when paging fails mid-run.
pub fn run_spilled(
    store: &MmapStorage,
    config: &FunctionalConfig,
    threads: usize,
) -> Result<FunctionalResult, EngineError> {
    let n = store.nrows();
    if n != store.ncols() {
        return Err(ConfigError::NonSquare {
            nrows: n,
            ncols: store.ncols(),
        }
        .into());
    }
    if config.capacity == 0 {
        return Err(ConfigError::ZeroCapacity.into());
    }
    if config.rows_a == 0 || config.cols_b == 0 {
        return Err(ConfigError::ZeroTileDims {
            rows_a: config.rows_a,
            cols_b: config.cols_b,
        }
        .into());
    }
    if threads == 0 {
        return Err(ConfigError::ZeroThreads.into());
    }
    if config.cols_b != store.tile_cols() {
        return Err(ConfigError::SpillTileMismatch {
            file_cols: store.tile_cols(),
            config_cols: config.cols_b,
        }
        .into());
    }
    let plan = ExecutionPlan::new(n, n, config.rows_a, config.cols_b, config.mem_budget);
    let n_a_tiles = plan.n_row_panels();
    let dram_b_per_a_tile: u64 = store.nnz() as u64;

    // Panel costs from the resident row pointers — same formula as the
    // in-RAM path, no I/O.
    let costs: Vec<u128> = (0..n_a_tiles)
        .map(|ti| {
            let r = plan.panel_rows(ti);
            store.row_range_nnz(r.start, r.end) as u128 + 1
        })
        .collect();
    let panel_results = run_balanced(n_a_tiles, &costs, threads, |ti| {
        run_spilled_panel(store, config, &plan, ti)
    });

    let mut row_ptr: Vec<usize> = Vec::with_capacity(n + 1);
    row_ptr.push(0);
    let mut cols: Vec<u32> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut dram_a = 0u64;
    let mut dram_b = 0u64;
    let mut overbooked = 0usize;
    for result in panel_results {
        let p = result?;
        for &len in &p.out.row_lens {
            row_ptr.push(row_ptr.last().expect("non-empty") + len);
        }
        cols.extend_from_slice(&p.out.cols);
        vals.extend_from_slice(&p.out.vals);
        dram_a += p.dram_a_fetches;
        dram_b += dram_b_per_a_tile;
        overbooked += usize::from(p.overbooked);
    }
    let z = CsrMatrix::from_parts(n, n, row_ptr, cols, vals)
        .expect("panel emission produces canonical CSR");
    Ok(FunctionalResult {
        z,
        dram_a_fetches: dram_a,
        dram_b_fetches: dram_b,
        overbooked_a_tiles: overbooked,
    })
}

/// [`run_panel`] against the spill tier: pages the panel's `A` payload in
/// once, then runs the plan's blocks with each streamed `B` tile checked
/// out of (and the next one prefetched into) the store's residency cache.
fn run_spilled_panel(
    store: &MmapStorage,
    config: &FunctionalConfig,
    plan: &ExecutionPlan,
    ti: usize,
) -> Result<PanelOutput, EngineError> {
    let rows = plan.panel_rows(ti);
    let (m0, m1) = (rows.start, rows.end);
    let payload = store.load_panel(m0, m1)?;
    let tile = SpilledPanel::new(&payload, m0);
    let overbooked = tile.len() > config.capacity;
    let panel_rows = m1 - m0;
    let class = ShapeClass::of(panel_rows, plan.block_cols());
    SCRATCH_POOL.with(|pool| {
        pool.set_retention(config.mem_budget.limit_bytes());
        let mut spa = pool.checkout_spa(class);
        let mut out = pool.checkout_buffers(class);

        let mut driver = TileDriver::new(tile, config).map_err(EngineError::from)?;
        let multi_block = plan.n_col_blocks() > 1;
        if multi_block {
            out.ensure_staged_rows(panel_rows);
        }

        for unit in plan.panel_units(ti) {
            let sink = if multi_block {
                BlockSink::Staged(&mut out.staged[..panel_rows])
            } else {
                let PanelBuffers {
                    row_lens,
                    cols,
                    vals,
                    ..
                } = &mut *out;
                BlockSink::Direct {
                    row_lens,
                    cols,
                    vals,
                }
            };
            // Kernel dispatch parity with the in-RAM path: the same
            // predicted-fill inputs (panel occupancy, block occupancy,
            // nnz) read from the resident row pointers.
            if dense_kernel_for_spilled(store, &unit) {
                run_spill_block(&mut DenseMode(&mut spa), &mut driver, store, &unit, sink)?;
            } else {
                run_spill_block(&mut *spa, &mut driver, store, &unit, sink)?;
            }
        }

        if multi_block {
            merge_staged(&mut out, panel_rows);
        }

        Ok(PanelOutput {
            out,
            dram_a_fetches: driver.fetches(),
            overbooked,
        })
    })
}

/// [`dense_kernel_for`] with its inputs read from the spill store's
/// resident row pointers — identical arithmetic, so a spilled run makes
/// exactly the per-unit kernel choices the in-RAM run makes.
fn dense_kernel_for_spilled(store: &MmapStorage, unit: &PlanUnit) -> bool {
    let slots = unit.rows.len() as f64 * unit.cols.len() as f64;
    let nnz = store.nnz() as f64;
    if slots == 0.0 || nnz == 0.0 {
        return false;
    }
    let occ_panel = store.row_range_nnz(unit.rows.start, unit.rows.end) as f64;
    let occ_block = store.row_range_nnz(unit.cols.start, unit.cols.end) as f64;
    occ_panel * occ_block >= DENSE_FILL_THRESHOLD * slots * nnz
}

/// [`run_block`] against the spill tier: every streamed tile of the block
/// is checked out of the store's cache (its `Arc` keeps it alive across
/// eviction) and the *next* tile in plan order is prefetched before the
/// traversal starts. Tile payloads carry global column indices and
/// per-`B`-row slices, so the traversal body is the in-RAM one verbatim.
fn run_spill_block<A: UnitSpa>(
    spa: &mut A,
    driver: &mut TileDriver<SpilledPanel<'_>>,
    store: &MmapStorage,
    unit: &PlanUnit,
    sink: BlockSink<'_>,
) -> Result<(), EngineError> {
    let (m0, c0) = (unit.rows.start, unit.cols.start);
    spa.reset_shape(unit.rows.len(), unit.cols.len());
    for tj in unit.tiles.clone() {
        let tile_b = match store.checkout_tile(tj) {
            Ok(t) => t,
            Err(e) => {
                // Restore the all-zero invariant before propagating.
                spa.clear();
                return Err(e.into());
            }
        };
        if tj + 1 < store.n_tiles() {
            // Warm the cache for the next tile in plan order. A prefetch
            // failure is not fatal here: the demand checkout that
            // actually needs the tile reports it.
            let _ = store.prefetch(tj + 1);
        }
        let traversed = driver.traverse(|&(m, k, va)| {
            let (lo, hi) = (tile_b.row_ptr[k as usize], tile_b.row_ptr[k as usize + 1]);
            let local_row = m as usize - m0;
            for (&nn, &vb) in tile_b.cols[lo..hi].iter().zip(&tile_b.vals[lo..hi]) {
                spa.accumulate(local_row, nn as usize - c0, va * vb);
            }
        });
        if let Err(e) = traversed {
            spa.clear();
            return Err(e.into());
        }
    }
    match sink {
        BlockSink::Staged(staged) => {
            for (lr, (row_cols, row_vals)) in staged.iter_mut().enumerate() {
                spa.drain_row(lr, c0 as u32, row_cols, row_vals);
            }
        }
        BlockSink::Direct {
            row_lens,
            cols,
            vals,
        } => {
            for lr in 0..unit.rows.len() {
                let before = cols.len();
                spa.drain_row(lr, c0 as u32, cols, vals);
                row_lens.push(cols.len() - before);
            }
        }
    }
    Ok(())
}

/// A paged-in row panel of the spilled stationary operand, viewed as a
/// [`TileSource`]: the payload's row pointers are rebased to the panel,
/// so the flat element index *is* the payload index.
struct SpilledPanel<'a> {
    payload: &'a PanelPayload,
    /// Amortized-O(1) row lookup, exactly as in [`PanelElems`].
    cursor: core::cell::Cell<usize>,
    m0: usize,
}

impl<'a> SpilledPanel<'a> {
    fn new(payload: &'a PanelPayload, m0: usize) -> Self {
        SpilledPanel {
            payload,
            cursor: core::cell::Cell::new(0),
            m0,
        }
    }
}

impl TileSource for SpilledPanel<'_> {
    fn len(&self) -> usize {
        self.payload.cols.len()
    }

    fn get(&self, i: usize) -> Elem {
        debug_assert!(i < self.len());
        let rp = &self.payload.row_ptr;
        let mut lr = self.cursor.get();
        if i < rp[lr] {
            lr = 0;
        }
        while i >= rp[lr + 1] {
            lr += 1;
        }
        self.cursor.set(lr);
        (
            (self.m0 + lr) as u32,
            self.payload.cols[i],
            self.payload.vals[i],
        )
    }
}

/// Indexed access to a stationary tile's elements.
///
/// The parent's address generator walks the tile in stream (row-major)
/// order; implementations map a flat element index to `(m, k, value)`.
trait TileSource {
    /// Number of elements in the tile.
    fn len(&self) -> usize;
    /// The `i`-th element in stream order.
    fn get(&self, i: usize) -> Elem;
}

/// A row panel of a CSR matrix viewed in place — no materialization; flat
/// indices address the matrix's own nonzero arrays.
struct PanelElems<'a> {
    a: &'a CsrMatrix,
    /// Row pointers of rows `m0..=m1`, re-based at the panel.
    row_ptr: &'a [usize],
    /// Last resolved local row — buffer fetches walk the tile in stream
    /// order (monotone, wrapping cyclically under overbooking), so row
    /// lookup from the hint is amortized O(1).
    cursor: core::cell::Cell<usize>,
    m0: usize,
    base: usize,
    len: usize,
}

impl<'a> PanelElems<'a> {
    fn new(a: &'a CsrMatrix, m0: usize, m1: usize) -> Self {
        let rp = a.row_ptr();
        PanelElems {
            a,
            row_ptr: &rp[m0..=m1],
            cursor: core::cell::Cell::new(0),
            m0,
            base: rp[m0],
            len: a.row_range_nnz(m0, m1),
        }
    }
}

impl TileSource for PanelElems<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, i: usize) -> Elem {
        debug_assert!(i < self.len);
        let p = self.base + i;
        // Row containing flat index p, found by advancing the cursor from
        // its last position (rewinding to the panel start when the stream
        // wraps); `p < row_ptr[last]` bounds the walk.
        let mut lr = self.cursor.get();
        if p < self.row_ptr[lr] {
            lr = 0;
        }
        while p >= self.row_ptr[lr + 1] {
            lr += 1;
        }
        self.cursor.set(lr);
        (
            (self.m0 + lr) as u32,
            self.a.col_indices()[p],
            self.a.values()[p],
        )
    }
}

impl TileSource for &[Elem] {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn get(&self, i: usize) -> Elem {
        self[i]
    }
}

/// Drives sequential traversals of one stationary tile through either a
/// Tailor or a buffet, counting parent fetches.
enum TileDriver<S: TileSource> {
    Tailor {
        tile: S,
        buf: Tailor<Elem>,
        fetches: u64,
        steady: u64,
    },
    Buffet {
        tile: S,
        buf: Buffet<Elem>,
        window_start: usize,
        window_end: usize,
        fetches: u64,
        steady: u64,
    },
}

impl<S: TileSource> TileDriver<S> {
    fn new(tile: S, config: &FunctionalConfig) -> Result<Self, EddoError> {
        let occ = tile.len();
        if config.overbooking {
            let tc = TailorConfig::new(config.capacity, config.fifo_region)?;
            let mut buf = Tailor::new(tc);
            buf.set_tile_len(occ);
            // Every traversal after the first refetches exactly the bumped
            // remainder: the streaming period (occ − resident) strictly
            // exceeds the FIFO region whenever occ > capacity, so each
            // bumped index is evicted before its next read and streamed
            // around exactly once per traversal.
            let steady = if occ > config.capacity {
                (occ - tc.resident_region()) as u64
            } else {
                0
            };
            Ok(TileDriver::Tailor {
                tile,
                buf,
                fetches: 0,
                steady,
            })
        } else {
            // A sliding-window buffet cannot rewind: an overbooked tile is
            // dropped and refilled whole on every traversal (Fig. 3).
            let steady = if occ > config.capacity { occ as u64 } else { 0 };
            Ok(TileDriver::Buffet {
                tile,
                buf: Buffet::new(config.capacity),
                window_start: 0,
                window_end: 0,
                fetches: 0,
                steady,
            })
        }
    }

    fn fetches(&self) -> u64 {
        match self {
            TileDriver::Tailor { fetches, .. } => *fetches,
            TileDriver::Buffet { fetches, .. } => *fetches,
        }
    }

    /// Parent fetches every traversal after the first performs — the
    /// steady-state refetch volume the per-block accounting reduction is
    /// built on (zero when the tile fits its buffer). The first traversal
    /// always cold-fills the whole tile (`tile.len()` fetches).
    fn steady_refetch(&self) -> u64 {
        match self {
            TileDriver::Tailor { steady, .. } => *steady,
            TileDriver::Buffet { steady, .. } => *steady,
        }
    }

    /// One full in-order traversal of the tile, calling `visit` on every
    /// element exactly once.
    fn traverse<F: FnMut(&Elem)>(&mut self, mut visit: F) -> Result<(), EddoError> {
        match self {
            TileDriver::Tailor {
                tile, buf, fetches, ..
            } => {
                for i in 0..tile.len() {
                    loop {
                        match buf.read(i) {
                            Ok(e) => {
                                visit(&e);
                                break;
                            }
                            Err(EddoError::NotYetFilled { .. }) => {
                                match buf.fill(tile.get(buf.occupancy())) {
                                    Ok(()) => *fetches += 1,
                                    Err(EddoError::Full) => {
                                        let idx =
                                            buf.next_stream_index().unwrap_or(buf.occupancy());
                                        buf.ow_fill(tile.get(idx))?;
                                        *fetches += 1;
                                    }
                                    Err(e) => return Err(e),
                                }
                            }
                            Err(EddoError::Bumped { .. }) => {
                                let idx = buf.next_stream_index().expect("overbooked");
                                buf.ow_fill(tile.get(idx))?;
                                *fetches += 1;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                Ok(())
            }
            TileDriver::Buffet {
                tile,
                buf,
                window_start,
                window_end,
                fetches,
                ..
            } => {
                for i in 0..tile.len() {
                    if i < *window_start {
                        // Sliding window cannot rewind: drop and refill.
                        let occ = buf.occupancy();
                        buf.shrink(occ)?;
                        *window_start = i;
                        *window_end = i;
                    }
                    while i >= *window_end {
                        if buf.is_full() {
                            buf.shrink(1)?;
                            *window_start += 1;
                        }
                        buf.fill(tile.get(*window_end))?;
                        *window_end += 1;
                        *fetches += 1;
                    }
                    let e = buf.read(i - *window_start)?;
                    visit(&e);
                }
                Ok(())
            }
        }
    }
}

/// The seed engine, retained verbatim as the oracle for the rewritten
/// [`run`]: materializes each stationary tile as a coordinate list,
/// re-searches each B row per element, and accumulates into a hash map.
/// `mem_budget` is ignored — the oracle always uses the unpartitioned
/// global accumulator.
///
/// Property tests assert [`run`] is bit-identical to this on arbitrary
/// inputs and budgets; benchmarks measure the gap.
///
/// # Errors
///
/// As [`run`]: a typed [`ConfigError`] for a rejected configuration,
/// buffer-protocol errors otherwise (none occur for well-formed input).
pub fn reference_run(
    a: &CsrMatrix,
    config: &FunctionalConfig,
) -> Result<FunctionalResult, EngineError> {
    use std::collections::HashMap;

    // The oracle ignores the thread count; validate with the always-legal 1
    // so it rejects exactly the configurations the rewritten engine rejects.
    validate(a, config, 1)?;
    let b = a.transpose();
    let n = a.nrows();
    let n_a_tiles = n.div_ceil(config.rows_a.max(1));
    let n_b_tiles = n.div_ceil(config.cols_b.max(1));

    let mut acc: HashMap<(u32, u32), f64> = HashMap::new();
    let mut dram_a = 0u64;
    let mut dram_b = 0u64;
    let mut overbooked = 0usize;

    for ti in 0..n_a_tiles {
        let m0 = ti * config.rows_a;
        let m1 = ((ti + 1) * config.rows_a).min(n);
        // Materialize the tile's elements in stream (row-major) order.
        let tile: Vec<Elem> = (m0..m1)
            .flat_map(|m| {
                let row = a.row(m);
                row.coords()
                    .iter()
                    .zip(row.values())
                    .map(move |(&k, &v)| (m as u32, k, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        if tile.len() > config.capacity {
            overbooked += 1;
        }

        let mut driver = TileDriver::new(tile.as_slice(), config)?;
        for tj in 0..n_b_tiles {
            let n0 = (tj * config.cols_b) as u32;
            let n1 = (((tj + 1) * config.cols_b).min(n)) as u32;
            // Stream the B tile from DRAM: its occupancy is the nonzeros of
            // B columns [n0, n1), i.e. rows n0..n1 of A.
            for col in n0..n1 {
                dram_b += a.row_nnz(col as usize) as u64;
            }
            driver.traverse(|&(m, k, va)| {
                let row_b = b.row(k as usize);
                let coords = row_b.coords();
                let start = coords.partition_point(|&c| c < n0);
                for (idx, &nn) in coords[start..].iter().enumerate() {
                    if nn >= n1 {
                        break;
                    }
                    let vb = row_b.values()[start + idx];
                    *acc.entry((m, nn)).or_insert(0.0) += va * vb;
                }
            })?;
        }
        dram_a += driver.fetches();
    }

    let mut coo = CooMatrix::with_capacity(n, n, acc.len());
    for ((m, nn), v) in acc {
        if v != 0.0 {
            coo.push(m as usize, nn as usize, v)
                .expect("accumulator coordinates in bounds");
        }
    }
    Ok(FunctionalResult {
        z: CsrMatrix::from_coo(&coo),
        dram_a_fetches: dram_a,
        dram_b_fetches: dram_b,
        overbooked_a_tiles: overbooked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailors_tensor::gen::GenSpec;
    use tailors_tensor::ops::{approx_eq, spmspm_a_at};

    fn small() -> CsrMatrix {
        GenSpec::power_law(64, 64, 500).seed(13).generate()
    }

    #[test]
    fn output_matches_reference_with_overbooking() {
        let a = small();
        let config = FunctionalConfig {
            capacity: 40,
            fifo_region: 8,
            rows_a: 16,
            cols_b: 16,
            overbooking: true,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let result = run(&a, &config).unwrap();
        let reference = spmspm_a_at(&a);
        assert!(
            approx_eq(&result.z, &reference, 1e-9),
            "functional output must equal the reference product"
        );
        assert!(
            result.overbooked_a_tiles > 0,
            "test should exercise overbooking"
        );
    }

    #[test]
    fn output_matches_reference_without_overbooking() {
        let a = small();
        let config = FunctionalConfig {
            capacity: 4_096, // everything fits
            fifo_region: 8,
            rows_a: 16,
            cols_b: 16,
            overbooking: false,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let result = run(&a, &config).unwrap();
        assert!(approx_eq(&result.z, &spmspm_a_at(&a), 1e-9));
        assert_eq!(result.overbooked_a_tiles, 0);
        // Fitting tiles are fetched exactly once.
        assert_eq!(result.dram_a_fetches, a.nnz() as u64);
    }

    #[test]
    fn rewritten_engine_is_bit_identical_to_seed_engine() {
        let a = small();
        for overbooking in [false, true] {
            for (rows_a, cols_b) in [(16, 16), (7, 11), (64, 64), (1, 64)] {
                let config = FunctionalConfig {
                    capacity: 40,
                    fifo_region: 8,
                    rows_a,
                    cols_b,
                    overbooking,
                    mem_budget: MemBudget::Unbounded,
                    grid: GridMode::Panels,
                    auto_plan: false,
                };
                let new = run(&a, &config).unwrap();
                let old = reference_run(&a, &config).unwrap();
                assert_eq!(
                    new.z, old.z,
                    "rows_a={rows_a} cols_b={cols_b} ob={overbooking}"
                );
                assert_eq!(new.dram_a_fetches, old.dram_a_fetches);
                assert_eq!(new.dram_b_fetches, old.dram_b_fetches);
                assert_eq!(new.overbooked_a_tiles, old.overbooked_a_tiles);
            }
        }
    }

    #[test]
    fn memory_budget_is_bit_identical_to_unbudgeted() {
        let a = small();
        for overbooking in [false, true] {
            let base = FunctionalConfig {
                capacity: 40,
                fifo_region: 8,
                rows_a: 16,
                cols_b: 8,
                overbooking,
                mem_budget: MemBudget::Unbounded,
                grid: GridMode::Panels,
                auto_plan: false,
            };
            let unbudgeted = run_with_threads(&a, &base, 1).unwrap();
            // Budgets from "one tile per block" through "everything", plus
            // one smaller than a single 16 × 8 tile (clamps, still runs).
            for bytes in [1u64, 16 * 8 * 8, 16 * 24 * 8, 1 << 20] {
                let budgeted = FunctionalConfig {
                    mem_budget: MemBudget::bytes(bytes),
                    grid: GridMode::Panels,
                    auto_plan: false,
                    ..base
                };
                for threads in [1, 3] {
                    let r = run_with_threads(&a, &budgeted, threads).unwrap();
                    assert_eq!(r, unbudgeted, "bytes={bytes} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn budgeted_run_shrinks_the_scratch() {
        let a = small();
        let config = FunctionalConfig {
            capacity: 40,
            fifo_region: 8,
            rows_a: 16,
            cols_b: 8,
            overbooking: true,
            mem_budget: MemBudget::bytes(16 * 16 * 8),
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let plan = config.execution_plan(a.nrows(), a.ncols());
        assert_eq!(plan.block_cols(), 16, "two 8-column tiles per block");
        assert_eq!(plan.n_col_blocks(), 4);
        assert!(plan.fits_budget());
        let r = run_with_threads(&a, &config, 2).unwrap();
        assert!(approx_eq(&r.z, &spmspm_a_at(&a), 1e-9));
    }

    #[test]
    fn grid_2d_is_bit_identical_to_panels_mode() {
        let a = small();
        for overbooking in [false, true] {
            let base = FunctionalConfig {
                capacity: 40,
                fifo_region: 8,
                rows_a: 16,
                cols_b: 8,
                overbooking,
                mem_budget: MemBudget::Unbounded,
                grid: GridMode::Panels,
                auto_plan: false,
            };
            let shared = run_with_threads(&a, &base, 1).unwrap();
            for bytes in [1u64, 16 * 8 * 8, 16 * 24 * 8, 1 << 20] {
                let grid2d = FunctionalConfig {
                    mem_budget: MemBudget::bytes(bytes),
                    grid: GridMode::Grid2D,
                    auto_plan: false,
                    ..base
                };
                for threads in [1, 3] {
                    let r = run_with_threads(&a, &grid2d, threads).unwrap();
                    assert_eq!(
                        r, shared,
                        "ob={overbooking} bytes={bytes} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_unit_traffic_reduces_exactly_to_shared_driver_counts() {
        let a = small();
        for overbooking in [false, true] {
            // One streamed tile per block: the most private drivers (and
            // the most cold fills the reduction has to cancel out).
            let config = FunctionalConfig {
                capacity: 40,
                fifo_region: 8,
                rows_a: 16,
                cols_b: 8,
                overbooking,
                mem_budget: MemBudget::bytes(16 * 8 * 8),
                grid: GridMode::Grid2D,
                auto_plan: false,
            };
            let shared = run_with_threads(
                &a,
                &FunctionalConfig {
                    grid: GridMode::Panels,
                    auto_plan: false,
                    ..config
                },
                1,
            )
            .unwrap();
            let (result, traffic) = run_grid(&a, &config, 2).unwrap();
            assert_eq!(result, shared, "ob={overbooking}");
            let plan = config.execution_plan(a.nrows(), a.ncols());
            assert_eq!(traffic.len(), plan.parallel_units(GridMode::Grid2D));
            // Adjusted counts sum exactly; private counts only exceed them
            // (each non-first block pays its own cold fill).
            let adjusted: u64 = traffic.iter().map(|t| t.dram_a_fetches).sum();
            let private: u64 = traffic.iter().map(|t| t.dram_a_private).sum();
            assert_eq!(adjusted, shared.dram_a_fetches);
            assert!(private >= adjusted);
            assert_eq!(
                traffic.iter().map(|t| t.dram_b_fetches).sum::<u64>(),
                shared.dram_b_fetches
            );
            assert_eq!(
                traffic.iter().filter(|t| t.overbooked).count(),
                shared.overbooked_a_tiles
            );
            // Per panel, the streamed-operand shares partition one pass.
            for pi in 0..plan.n_row_panels() {
                let panel_b: u64 = traffic
                    .iter()
                    .filter(|t| t.row_panel == pi)
                    .map(|t| t.dram_b_fetches)
                    .sum();
                assert_eq!(panel_b, a.nnz() as u64, "panel {pi}");
            }
        }
    }

    #[test]
    fn auto_plan_runs_the_cost_model_tiling_bit_identically() {
        let a = small();
        for overbooking in [false, true] {
            for grid in [GridMode::Panels, GridMode::Grid2D] {
                let auto_config = FunctionalConfig {
                    capacity: 40,
                    fifo_region: 8,
                    rows_a: 32,
                    cols_b: 8,
                    overbooking,
                    mem_budget: MemBudget::bytes(16 * 8 * 8),
                    grid,
                    auto_plan: true,
                };
                let chosen = auto_execution_plan(&a, &auto_config);
                let fixed_config = FunctionalConfig {
                    rows_a: chosen.rows_a(),
                    auto_plan: false,
                    ..auto_config
                };
                let auto = run_with_threads(&a, &auto_config, 2).unwrap();
                let fixed = run_with_threads(&a, &fixed_config, 1).unwrap();
                assert_eq!(auto, fixed, "ob={overbooking} grid={grid}");
                // Tiling invariance of the output itself: still the
                // reference product, bitwise, at the baseline tiling.
                let oracle = reference_run(
                    &a,
                    &FunctionalConfig {
                        auto_plan: false,
                        ..auto_config
                    },
                )
                .unwrap();
                assert_eq!(auto.z, oracle.z);
            }
        }
    }

    #[test]
    fn dense_blocks_dispatch_to_the_dense_kernel() {
        // A deterministic ~69 %-dense matrix: the single (panel × block)
        // unit predicts `nnz / 1024` writes per slot, well beyond the
        // dispatch threshold.
        let triplets: Vec<(usize, usize, f64)> = (0..32usize)
            .flat_map(|r| {
                (0..32usize)
                    .filter(move |c| (r * 32 + c) % 16 < 11)
                    .map(move |c| (r, c, 0.5 + ((r * 7 + c) % 9) as f64 * 0.25))
            })
            .collect();
        let a = CsrMatrix::from_triplets(32, 32, &triplets).unwrap();
        assert!(a.nnz() > 512 + 100, "test needs a clearly dense matrix");
        let config = FunctionalConfig {
            capacity: 4_096,
            fifo_region: 8,
            rows_a: 32,
            cols_b: 32,
            overbooking: false,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let plan = config.execution_plan(a.nrows(), a.ncols());
        let unit = plan.unit(0, 0);
        assert!(
            dense_kernel_for(&a, &unit),
            "a 60%-dense unit must pick the dense kernel"
        );
        // And a sparse matrix must not.
        let sparse = small();
        let splan = config.execution_plan(sparse.nrows(), sparse.ncols());
        assert!(!dense_kernel_for(&sparse, &splan.unit(0, 0)));
        // The dispatched run stays bit-identical to the seed engine.
        let new = run_with_threads(&a, &config, 2).unwrap();
        let old = reference_run(&a, &config).unwrap();
        assert_eq!(new.z, old.z);
        assert_eq!(new.dram_a_fetches, old.dram_a_fetches);
        assert_eq!(new.dram_b_fetches, old.dram_b_fetches);
        // Multi-block + 2-D grid over the dense kernel too.
        let blocked = FunctionalConfig {
            mem_budget: MemBudget::bytes(32 * 8 * 8),
            grid: GridMode::Grid2D,
            ..config
        };
        let b = run_with_threads(&a, &blocked, 3).unwrap();
        assert_eq!(b, new);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let a = small();
        let config = FunctionalConfig {
            capacity: 40,
            fifo_region: 8,
            rows_a: 8,
            cols_b: 16,
            overbooking: true,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let serial = run_with_threads(&a, &config, 1).unwrap();
        for threads in [2, 3, 8] {
            let parallel = run_with_threads(&a, &config, threads).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn dram_a_matches_closed_form() {
        let a = small();
        let (capacity, fifo, rows_a, cols_b) = (40usize, 8usize, 16usize, 16usize);
        let config = FunctionalConfig {
            capacity,
            fifo_region: fifo,
            rows_a,
            cols_b,
            overbooking: true,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let result = run(&a, &config).unwrap();
        // Closed form: occ + (n_b - 1) × bumped per tile.
        let profile = a.profile();
        let n_b = a.nrows().div_ceil(cols_b) as u64;
        let resident = (capacity - fifo) as u64;
        let mut expected = 0u64;
        for t in 0..a.nrows().div_ceil(rows_a) {
            let lo = t * rows_a;
            let hi = ((t + 1) * rows_a).min(a.nrows());
            let occ = profile.row_range_nnz(lo, hi);
            let bumped = if occ > capacity as u64 {
                occ - resident
            } else {
                0
            };
            expected += occ + (n_b - 1) * bumped;
        }
        assert_eq!(result.dram_a_fetches, expected);
    }

    #[test]
    fn dram_b_is_one_pass_per_a_tile() {
        let a = small();
        let config = FunctionalConfig {
            capacity: 40,
            fifo_region: 8,
            rows_a: 16,
            cols_b: 16,
            overbooking: true,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let result = run(&a, &config).unwrap();
        let n_a = a.nrows().div_ceil(config.rows_a) as u64;
        assert_eq!(result.dram_b_fetches, n_a * a.nnz() as u64);
    }

    #[test]
    fn buffet_fallback_fetches_whole_tiles_per_pass() {
        let a = small();
        let overbooked = FunctionalConfig {
            capacity: 40,
            fifo_region: 8,
            rows_a: 64, // one big tile that cannot fit
            cols_b: 16,
            overbooking: true,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let buffet = FunctionalConfig {
            overbooking: false,
            ..overbooked
        };
        let t = run(&a, &overbooked).unwrap();
        let b = run(&a, &buffet).unwrap();
        assert!(approx_eq(&t.z, &b.z, 1e-9), "both must compute the same Z");
        assert!(
            b.dram_a_fetches > t.dram_a_fetches,
            "buffets refetch whole overbooked tiles (Fig. 3): {} vs {}",
            b.dram_a_fetches,
            t.dram_a_fetches
        );
        // Buffet: n_b full refetches of the tile.
        let n_b = a.nrows().div_ceil(16) as u64;
        assert_eq!(b.dram_a_fetches, n_b * a.nnz() as u64);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = CsrMatrix::new(8, 8);
        let config = FunctionalConfig {
            capacity: 4,
            fifo_region: 1,
            rows_a: 4,
            cols_b: 4,
            overbooking: true,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let r = run(&a, &config).unwrap();
        assert_eq!(r.z.nnz(), 0);
        assert_eq!(r.dram_a_fetches, 0);
        assert_eq!(r.dram_b_fetches, 0);
        // Zero-dimensional input: zero tiles on both axes, in both grid
        // modes (Grid2D has zero units and must not choke on it).
        for grid in [GridMode::Panels, GridMode::Grid2D] {
            let z = run(&CsrMatrix::new(0, 0), &FunctionalConfig { grid, ..config }).unwrap();
            assert_eq!(z.z.nrows(), 0);
            assert_eq!(z.dram_a_fetches, 0);
        }
        // And the empty-but-nonzero-dimensional case in 2-D mode.
        let g = run(
            &a,
            &FunctionalConfig {
                grid: GridMode::Grid2D,
                auto_plan: false,
                ..config
            },
        )
        .unwrap();
        assert_eq!(g, r);
    }

    #[test]
    fn degenerate_tiling_falls_back_without_the_column_view() {
        // cols_b = 1 on a 600-column B makes the column-pointer view cost
        // 600 × 601 cells against ~1k nonzeros — the memory guard skips it
        // and panels binary-search instead. Results must be unchanged.
        let a = GenSpec::uniform(600, 600, 1_000).seed(21).generate();
        let config = FunctionalConfig {
            capacity: 300,
            fifo_region: 32,
            rows_a: 200,
            cols_b: 1,
            overbooking: true,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let new = run_with_threads(&a, &config, 2).unwrap();
        let old = reference_run(&a, &config).unwrap();
        assert_eq!(new.z, old.z);
        assert_eq!(new.dram_a_fetches, old.dram_a_fetches);
        assert_eq!(new.dram_b_fetches, old.dram_b_fetches);
    }

    #[test]
    fn panel_elems_maps_flat_indices_through_empty_rows() {
        // Rows 1 and 2 are empty; flat indices must land in rows 0 and 3.
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (0, 2, 2.0), (3, 1, 3.0)]).unwrap();
        let panel = PanelElems::new(&a, 0, 4);
        assert_eq!(panel.len(), 3);
        assert_eq!(panel.get(0), (0, 0, 1.0));
        assert_eq!(panel.get(1), (0, 2, 2.0));
        assert_eq!(panel.get(2), (3, 1, 3.0));
        let tail = PanelElems::new(&a, 2, 4);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail.get(0), (3, 1, 3.0));
    }
}
