//! The overbooking tiling layer of the Tailors (MICRO 2023) reproduction.
//!
//! This crate implements the paper's *tiling* contribution (its §4, plus the
//! strategy taxonomy of §1-2):
//!
//! * [`swiftiles`] — the one-shot statistical tile sizer: an initial
//!   estimate from global sparsity, a bounded sample of tile occupancies,
//!   and a quantile-based scaling to hit a target overbooking rate `y`.
//! * [`strategy`] — the four tiling strategies of Table 1 (uniform shape,
//!   prescient uniform shape, uniform occupancy / position-space, and
//!   overbooking) with a common interface that reports the chosen tile
//!   size, the achieved buffer utilization, and the *tiling tax* each
//!   strategy pays.
//!
//! # Example
//!
//! ```
//! use tailors_core::swiftiles::{Swiftiles, SwiftilesConfig};
//! use tailors_tensor::gen::GenSpec;
//!
//! let a = GenSpec::power_law(20_000, 20_000, 200_000).seed(1).generate();
//! let profile = a.profile();
//! let est = Swiftiles::new(SwiftilesConfig::new(0.10, 10)?)
//!     .estimate(&profile, 4_096);
//! // ~10% of tiles should overbook a 4096-nonzero buffer.
//! assert!(est.rows_target >= 1);
//! # Ok::<(), tailors_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod swiftiles;

pub use strategy::{TileChoice, TilingStrategy, TilingTax};
pub use swiftiles::{Swiftiles, SwiftilesConfig, SwiftilesEstimate};

/// Errors produced by the tiling layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An invalid parameter was supplied.
    BadParameter(&'static str),
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}
