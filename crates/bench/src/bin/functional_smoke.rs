//! Wide-matrix smoke for the memory-governed functional engine: runs the
//! budgeted `Z = A·Aᵀ` dataflow on a matrix far wider than the unbudgeted
//! scratch could handle, and (optionally) proves the output bit-identical
//! to the retained seed engine.
//!
//! Usage: `cargo run --release -p tailors-bench --bin functional_smoke --
//! [--cols N] [--nnz N] [--rows-a N] [--cols-b N] [--auto-tile]
//! [--auto-plan] [--mem-budget SPEC] [--grid MODE] [--threads N]
//! [--spill] [--spill-residency SPEC] [--verify]`
//!
//! `--spill` stores the generated tensor to a panel-granular TSPILL file
//! and runs the engine out-of-core
//! ([`run_spilled`](tailors_sim::functional::run_spilled)): `A` row
//! panels and `B = Aᵀ` column tiles page in on demand under the
//! `--spill-residency` tile-cache cap (default 16 MiB — deliberately
//! smaller than the CI acceptance matrix, so the clock-LRU cache must
//! churn), and `--verify` proves the result bit-identical to the
//! fully-resident seed engine. Incompatible with `--auto-plan` (the
//! spill path executes the fixed panels-mode plan).
//!
//! `--auto-tile` replaces the explicit `--rows-a`/`--cols-b` tiling with
//! the one a Swiftiles-governed strategy picks for the paper architecture
//! (`ExecutionPlan::from_strategy` over `TilingStrategy::Overbooked`),
//! i.e. the same planning path the hardware variants use.
//!
//! `--auto-plan` (fallback: `TAILORS_AUTO_PLAN`, so `run_all --auto-plan`
//! reaches this binary) hands the panel height to the budget-aware
//! [`AutoPlanner`](tailors_sim::AutoPlanner) instead: `--rows-a` becomes
//! the baseline candidate and the engine runs whatever height minimizes
//! the closed-form traffic model under the budget. `--verify` then diffs
//! against the seed engine at the *chosen* tiling — the auto run must be
//! bit-identical to a fixed run there in every reported field.
//!
//! Defaults reproduce the CI acceptance point: a 50 000-column power-law
//! tensor under a 256 MiB per-thread scratch budget. Unbudgeted, one
//! 4096-row panel over 50 k columns would need ~1.6 GiB of scratch per
//! thread; the execution plan blocks it into 8192-column strips instead.
//! `--mem-budget` falls back to `TAILORS_MEM_BUDGET` (so `run_all
//! --mem-budget` reaches this binary too), then to 256 MiB. `--grid 2d`
//! (fallback: `TAILORS_GRID`, then panels) runs the full 2-D
//! (panel x block) grid decomposition — per-unit buffer drivers with
//! block-local traffic accounting — whose results, `--verify` proves,
//! are still bit-identical to the seed engine.

use std::time::Instant;

use tailors_bench::{grid_from_env, threads_from_env};
use tailors_core::swiftiles::SwiftilesConfig;
use tailors_core::TilingStrategy;
use tailors_sim::functional::{reference_run, run_spilled, run_with_threads, FunctionalConfig};
use tailors_sim::{ArchConfig, ExecutionPlan, GridMode, MemBudget};
use tailors_tensor::gen::GenSpec;
use tailors_tensor::storage::MmapStorage;

fn main() {
    let mut cols = 50_000usize;
    let mut nnz: Option<usize> = None;
    let mut rows_a = 4_096usize;
    let mut cols_b = 2_048usize;
    let mut auto_tile = false;
    let mut auto_plan = false;
    let mut budget: Option<MemBudget> = None;
    let mut grid: Option<GridMode> = None;
    let mut threads: Option<usize> = None;
    let mut spill = false;
    let mut spill_residency = MemBudget::mib(16);
    let mut verify = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--cols" => cols = next("--cols").parse().expect("--cols: positive integer"),
            "--nnz" => nnz = Some(next("--nnz").parse().expect("--nnz: positive integer")),
            "--rows-a" => {
                rows_a = next("--rows-a")
                    .parse()
                    .expect("--rows-a: positive integer")
            }
            "--cols-b" => {
                cols_b = next("--cols-b")
                    .parse()
                    .expect("--cols-b: positive integer")
            }
            "--auto-tile" => auto_tile = true,
            "--auto-plan" => auto_plan = true,
            "--mem-budget" => {
                budget = Some(MemBudget::parse(&next("--mem-budget")).expect("--mem-budget"))
            }
            "--grid" => grid = Some(GridMode::parse(&next("--grid")).expect("--grid")),
            "--threads" => {
                threads = Some(
                    next("--threads")
                        .parse()
                        .expect("--threads: positive integer"),
                )
            }
            "--spill" => spill = true,
            "--spill-residency" => {
                spill_residency =
                    MemBudget::parse(&next("--spill-residency")).expect("--spill-residency")
            }
            "--verify" => verify = true,
            other => panic!("unknown argument {other:?}; see the module docs"),
        }
    }
    let nnz = nnz.unwrap_or(cols.saturating_mul(6));
    let budget = budget.unwrap_or_else(|| match std::env::var("TAILORS_MEM_BUDGET") {
        Ok(s) => MemBudget::parse(&s).expect("TAILORS_MEM_BUDGET"),
        Err(_) => MemBudget::mib(256),
    });
    let grid = grid.unwrap_or_else(grid_from_env);
    let threads = threads.unwrap_or_else(threads_from_env);
    let auto_plan = auto_plan || tailors_bench::auto_plan_from_env();

    println!("generating {cols} x {cols} power-law tensor, target nnz {nnz} ...");
    let t0 = Instant::now();
    let a = GenSpec::power_law(cols, cols, nnz).seed(50).generate();
    println!("  generated nnz {} in {:.2?}", a.nnz(), t0.elapsed());

    if auto_tile {
        // Let the paper's Swiftiles-governed strategy pick the tile grid
        // against the ExTensor architecture, then keep the same budget.
        let strategy = TilingStrategy::Overbooked(
            SwiftilesConfig::new(0.10, 10).expect("paper operating point"),
        );
        let auto =
            ExecutionPlan::from_strategy(&a.profile(), &ArchConfig::extensor(), &strategy, budget);
        rows_a = auto.rows_a();
        cols_b = auto.cols_b();
        println!("auto-tile: strategy chose {rows_a}-row panels x {cols_b}-col tiles");
    }

    let config = FunctionalConfig {
        capacity: (a.nnz() / 8).max(8),
        fifo_region: (a.nnz() / 32).max(1),
        rows_a,
        cols_b,
        overbooking: true,
        mem_budget: budget,
        grid,
        auto_plan,
    };
    let plan = if auto_plan {
        // The plan the engine will derive internally: the budget-aware
        // planner with `--rows-a` as the baseline candidate.
        let auto = tailors_sim::functional::auto_execution_plan(&a, &config);
        println!(
            "auto-plan: cost model chose {}-row panels (baseline {rows_a}) -> {} col blocks",
            auto.rows_a(),
            auto.n_col_blocks(),
        );
        auto
    } else {
        config.execution_plan(a.nrows(), a.ncols())
    };
    let stats = plan.scratch_stats(grid);
    println!(
        "plan: {} row panels x {} col blocks = {} work units ({} tiles of {} cols per block); \
         grid mode {} -> {} parallel units",
        plan.n_row_panels(),
        stats.col_blocks,
        plan.units().count(),
        plan.block_tiles(),
        config.cols_b,
        stats.grid,
        stats.parallel_units,
    );
    // Streamed-operand balance across the plan's column blocks, each
    // block occupancy an O(1)-per-row span over the tile-pointer view.
    let b = a.transpose();
    let view = b.tile_col_ptr(config.cols_b);
    let block_occ: Vec<u64> = (0..plan.n_col_blocks())
        .map(|bi| {
            let (_, tiles) = plan.block_extent(bi);
            (0..b.nrows())
                .map(|r| {
                    let (lo, hi) = view.row_tile_span(r, tiles.start, tiles.end);
                    (hi - lo) as u64
                })
                .sum()
        })
        .collect();
    println!(
        "streamed occupancy per block: min {} / max {} (sum {})",
        block_occ.iter().min().unwrap_or(&0),
        block_occ.iter().max().unwrap_or(&0),
        block_occ.iter().sum::<u64>(),
    );
    assert_eq!(
        block_occ.iter().sum::<u64>(),
        a.nnz() as u64,
        "column blocks must partition the streamed operand"
    );
    println!(
        "scratch: {:.1} MiB/thread under budget {} (fits: {})",
        stats.bytes_per_thread as f64 / (1024.0 * 1024.0),
        budget,
        stats.fits_budget,
    );
    if auto_tile || auto_plan {
        // A strategy-chosen grid may have single tiles wider than the
        // budget; the planner clamps to one tile per block and says so.
        if !stats.fits_budget {
            println!(
                "note: single-tile blocks exceed the budget (plan clamped to the minimum unit)"
            );
        }
    } else {
        assert!(
            stats.fits_budget,
            "smoke point must honour its budget; widen --mem-budget or shrink --rows-a"
        );
    }

    let t1 = Instant::now();
    let result = if spill {
        assert!(
            !auto_plan,
            "--spill executes the fixed panels-mode plan; drop --auto-plan"
        );
        if grid != GridMode::Panels {
            println!("note: --spill runs panels mode (grid {grid} ignored)");
        }
        let path =
            std::env::temp_dir().join(format!("tailors_smoke_spill_{}.tspill", std::process::id()));
        let ts = Instant::now();
        MmapStorage::store(&a, config.cols_b, &path).expect("store spill corpus");
        let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let residency = spill_residency.limit_bytes();
        println!(
            "spill: stored {:.1} MiB TSPILL corpus in {:.2?}; tile residency cap {}",
            file_bytes as f64 / (1024.0 * 1024.0),
            ts.elapsed(),
            spill_residency,
        );
        let store = MmapStorage::open(&path, residency).expect("open spill corpus");
        let r = run_spilled(&store, &config, threads).expect("spilled functional run");
        let s = store.stats();
        println!(
            "spill stats: {} panel loads, {} tile loads / {} hits, {} evictions, \
             {:.1} MiB read, {:.1} MiB resident over {} tiles",
            s.panel_loads,
            s.tile_loads,
            s.tile_hits,
            s.evictions,
            s.bytes_read as f64 / (1024.0 * 1024.0),
            s.resident_bytes as f64 / (1024.0 * 1024.0),
            store.n_tiles(),
        );
        if let Some(cap) = residency {
            assert!(
                cap < file_bytes,
                "spill smoke must run with less tile residency than the corpus \
                 ({cap} vs {file_bytes} bytes); shrink --spill-residency"
            );
        }
        std::fs::remove_file(&path).ok();
        r
    } else {
        run_with_threads(&a, &config, threads).expect("budgeted functional run")
    };
    println!(
        "budgeted run ({threads} threads): {:.2?}, z nnz {}, dram A {} / B {}, overbooked tiles {}",
        t1.elapsed(),
        result.z.nnz(),
        result.dram_a_fetches,
        result.dram_b_fetches,
        result.overbooked_a_tiles,
    );

    if verify {
        // The oracle runs at the *effective* tiling: the config's fixed
        // one, or whatever the auto planner chose — the engine's contract
        // is bit-identity with the seed engine at the tiling it executed.
        let oracle_config = FunctionalConfig {
            rows_a: plan.rows_a(),
            auto_plan: false,
            ..config
        };
        let t2 = Instant::now();
        let oracle = reference_run(&a, &oracle_config).expect("seed engine run");
        println!("seed engine: {:.2?}", t2.elapsed());
        assert_eq!(result.z, oracle.z, "output must be bit-identical");
        assert_eq!(result.dram_a_fetches, oracle.dram_a_fetches);
        assert_eq!(result.dram_b_fetches, oracle.dram_b_fetches);
        assert_eq!(result.overbooked_a_tiles, oracle.overbooked_a_tiles);
        println!("verify: bit-identical to reference_run");
    }
    println!("OK");
}
