//! The memory-governed execution planner: 2-D (row-panel × column-block)
//! partitioning of the `Z = A·B` dataflow for the software engines.
//!
//! The hardware model sizes its tiles against on-chip buffer capacities
//! (see [`crate::plan::TilePlan`] and [`crate::variants::Variant`]); the
//! *software* functional engine has an analogous resource to govern — the
//! dense SPA scratch each worker thread accumulates a row panel into. An
//! unpartitioned panel scratch is `rows_a × ncols` doubles, which forbids
//! functional runs past a few thousand columns. [`ExecutionPlan`] applies
//! the paper's budget-governed discipline to that scratch: given a tiling
//! (`rows_a × cols_b` tiles, chosen by a [`TilingStrategy`] or a
//! [`Variant`](crate::variants::Variant) planner) and a [`MemBudget`], it
//! groups the `cols_b`-wide streamed tiles into *column blocks* such that
//! `rows_a × block_cols × 8` bytes fits the budget, and emits the
//! resulting 2-D grid of [`PlanUnit`]s.
//!
//! Column blocks never change results: a block is a run of whole streamed
//! tiles traversed in the same global order, every output coordinate is
//! owned by exactly one block, and blocks of a panel are emitted in column
//! order — so a budgeted run is bit-identical to the unbudgeted one (the
//! property tests in `crates/sim/tests/functional_equivalence.rs` prove
//! it), while the scratch shrinks from `rows_a × ncols` to
//! `rows_a × block_cols`.
//!
//! The minimum schedulable unit is one streamed tile: a budget smaller
//! than `rows_a × cols_b` doubles clamps to a single-tile block (reported
//! by [`ExecutionPlan::fits_budget`]) rather than splitting a tile, which
//! would change buffer-traversal counts.

use tailors_core::TilingStrategy;
use tailors_tensor::MatrixProfile;

use crate::arch::ArchConfig;
use crate::plan::TilePlan;

/// Size of one dense-scratch slot (an `f64` accumulator).
const SLOT_BYTES: u64 = core::mem::size_of::<f64>() as u64;

/// A per-thread scratch-memory budget in bytes.
///
/// `Unbounded` reproduces the historical behaviour (one block spanning all
/// columns). The bench layer parses this from `--mem-budget` /
/// `TAILORS_MEM_BUDGET` via [`MemBudget::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemBudget {
    /// No limit: the scratch spans every column of the output.
    #[default]
    Unbounded,
    /// At most this many bytes of dense scratch per worker thread.
    Bytes(u64),
}

impl MemBudget {
    /// A budget of `n` bytes.
    pub const fn bytes(n: u64) -> Self {
        MemBudget::Bytes(n)
    }

    /// A budget of `n` binary megabytes.
    pub const fn mib(n: u64) -> Self {
        MemBudget::Bytes(n * 1024 * 1024)
    }

    /// The byte limit, or `None` when unbounded.
    pub fn limit_bytes(&self) -> Option<u64> {
        match self {
            MemBudget::Unbounded => None,
            MemBudget::Bytes(b) => Some(*b),
        }
    }

    /// Parses a human-readable budget: `"unbounded"` / `"none"`, a plain
    /// byte count (`"1048576"`), or a binary-suffixed size (`"512K"`,
    /// `"256MiB"`, `"2G"`); suffixes are case-insensitive.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed input.
    pub fn parse(s: &str) -> Result<Self, String> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("unbounded") || t.eq_ignore_ascii_case("none") {
            return Ok(MemBudget::Unbounded);
        }
        let lower = t.to_ascii_lowercase();
        let (digits, multiplier) = if let Some(p) = lower
            .strip_suffix("kib")
            .or_else(|| lower.strip_suffix("kb"))
            .or_else(|| lower.strip_suffix("k"))
        {
            (p, 1u64 << 10)
        } else if let Some(p) = lower
            .strip_suffix("mib")
            .or_else(|| lower.strip_suffix("mb"))
            .or_else(|| lower.strip_suffix("m"))
        {
            (p, 1u64 << 20)
        } else if let Some(p) = lower
            .strip_suffix("gib")
            .or_else(|| lower.strip_suffix("gb"))
            .or_else(|| lower.strip_suffix("g"))
        {
            (p, 1u64 << 30)
        } else if let Some(p) = lower.strip_suffix("b") {
            (p, 1u64)
        } else {
            (lower.as_str(), 1u64)
        };
        let n: u64 = digits.trim().parse().map_err(|_| {
            format!("invalid memory budget {s:?} (try \"256MiB\" or \"unbounded\")")
        })?;
        n.checked_mul(multiplier)
            .map(MemBudget::Bytes)
            .ok_or_else(|| format!("memory budget {s:?} overflows u64 bytes"))
    }
}

impl core::fmt::Display for MemBudget {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemBudget::Unbounded => write!(f, "unbounded"),
            MemBudget::Bytes(b) if b % (1 << 20) == 0 && *b > 0 => {
                write!(f, "{}MiB", b >> 20)
            }
            MemBudget::Bytes(b) => write!(f, "{b}B"),
        }
    }
}

/// The per-thread scratch budget from the `TAILORS_MEM_BUDGET`
/// environment variable (`run_all --mem-budget` forwards it to every
/// child binary), or [`MemBudget::Unbounded`] when unset. The single
/// definition every binary layer (bench figures, serving sweeps) parses
/// this knob through.
///
/// # Panics
///
/// Panics if `TAILORS_MEM_BUDGET` is set but unparseable (see
/// [`MemBudget::parse`]).
pub fn mem_budget_from_env() -> MemBudget {
    match std::env::var("TAILORS_MEM_BUDGET") {
        Err(_) => MemBudget::Unbounded,
        Ok(s) => MemBudget::parse(&s).unwrap_or_else(|e| panic!("TAILORS_MEM_BUDGET: {e}")),
    }
}

/// Whether auto-tiling is requested via the `TAILORS_AUTO_PLAN`
/// environment variable (`run_all --auto-plan` forwards it to every child
/// binary): `1` / `true` / `yes` (case-insensitive) enable it, `0` /
/// `false` / `no` / unset leave every path on its fixed tiling.
///
/// # Panics
///
/// Panics if `TAILORS_AUTO_PLAN` is set to anything else.
pub fn auto_plan_from_env() -> bool {
    match std::env::var("TAILORS_AUTO_PLAN") {
        Err(_) => false,
        Ok(s) => parse_auto_plan(&s)
            .unwrap_or_else(|| panic!("TAILORS_AUTO_PLAN must be a boolean, got {s:?}")),
    }
}

/// The boolean grammar behind [`auto_plan_from_env`], split out so the
/// accepted spellings are testable without mutating the process
/// environment. `None` means unparseable.
fn parse_auto_plan(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" => Some(true),
        "" | "0" | "false" | "no" => Some(false),
        _ => None,
    }
}

/// The functional grid decomposition from the `TAILORS_GRID` environment
/// variable (`run_all --grid` forwards it the same way), or the panels
/// default when unset. Results never depend on this — it only changes
/// the parallel width a functional replay exposes.
///
/// # Panics
///
/// Panics if `TAILORS_GRID` is set but unparseable (see
/// [`GridMode::parse`]).
pub fn grid_from_env() -> GridMode {
    match std::env::var("TAILORS_GRID") {
        Err(_) => GridMode::default(),
        Ok(s) => GridMode::parse(&s).unwrap_or_else(|e| panic!("TAILORS_GRID: {e}")),
    }
}

/// How the functional engine decomposes an [`ExecutionPlan`] across worker
/// threads.
///
/// * [`GridMode::Panels`] — the historical 1-D fan-out: one work item per
///   stationary row panel; all column blocks of a panel run on the
///   panel's thread through one shared buffer driver, so every DRAM count
///   is the shared-driver count by construction.
/// * [`GridMode::Grid2D`] — full 2-D fan-out: one work item per
///   (row panel × column block) [`PlanUnit`], each with its **own**
///   buffer driver and block-local traffic accounting
///   (`functional::UnitTraffic`). Reported totals use the per-block
///   reduction (see [`crate::functional`]) and are bit-identical to the
///   shared-driver totals, so results do not depend on the mode — only
///   the available parallelism does (`panels × blocks` instead of
///   `panels`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GridMode {
    /// 1-D: fan out over row panels (column blocks share the panel's
    /// buffer driver).
    #[default]
    Panels,
    /// 2-D: fan out over (row panel × column block) units, one private
    /// buffer driver per unit.
    Grid2D,
}

impl GridMode {
    /// Parses a mode name: `"panels"` / `"1d"`, or `"2d"` / `"grid"` /
    /// `"grid2d"` (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed input.
    pub fn parse(s: &str) -> Result<Self, String> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("panels") || t.eq_ignore_ascii_case("1d") {
            Ok(GridMode::Panels)
        } else if t.eq_ignore_ascii_case("2d")
            || t.eq_ignore_ascii_case("grid")
            || t.eq_ignore_ascii_case("grid2d")
        {
            Ok(GridMode::Grid2D)
        } else {
            Err(format!(
                "invalid grid mode {s:?} (try \"panels\" or \"2d\")"
            ))
        }
    }
}

impl core::fmt::Display for GridMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GridMode::Panels => write!(f, "panels"),
            GridMode::Grid2D => write!(f, "2d"),
        }
    }
}

/// Partitions item indices `0..costs.len()` into at most `bins` groups
/// with approximately equal total cost (greedy LPT: heaviest item first,
/// into the currently lightest bin). Deterministic: ties break on the
/// lower bin index, equal costs on the lower item index.
///
/// The functional engine and the bench suite both fan work out as one
/// OS-thread chunk per bin (the vendored rayon splits contiguously and
/// never steals), so cost-shaped bins — not uniform splits — are what
/// actually balances skewed workloads. Callers must reassemble results in
/// item order; every partition of independent items yields bit-identical
/// results.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn balanced_partition(costs: &[u128], bins: usize) -> Vec<Vec<usize>> {
    assert!(bins > 0, "bin count must be positive");
    let bins = bins.min(costs.len()).max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    // Stable sort, descending cost: equal-cost items keep index order.
    order.sort_by(|&i, &j| costs[j].cmp(&costs[i]));
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); bins];
    let mut loads: Vec<u128> = vec![0; bins];
    for idx in order {
        let lightest = (0..bins)
            .min_by_key(|&b| loads[b])
            .expect("at least one bin");
        groups[lightest].push(idx);
        loads[lightest] += costs[idx].max(1);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Fans `n_items` work items out over `threads` cost-balanced
/// [`balanced_partition`] bins (one contiguous chunk per thread — the
/// vendored rayon never steals) and returns `job`'s results *in item
/// order*, so any partition yields bit-identical output. The functional
/// engine schedules panels and grid units through this, and the bench
/// suite its 22 workloads.
pub fn run_balanced<R: Send>(
    n_items: usize,
    costs: &[u128],
    threads: usize,
    job: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    if threads == 1 || n_items <= 1 {
        return (0..n_items).map(job).collect();
    }
    use rayon::prelude::*;
    let bins = balanced_partition(costs, threads);
    let per_bin: Vec<Vec<(usize, R)>> = crate::in_thread_pool(threads, || {
        bins.into_par_iter()
            .map(|bin| bin.into_iter().map(|i| (i, job(i))).collect())
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..n_items).map(|_| None).collect();
    for (i, r) in per_bin.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item lands in exactly one bin"))
        .collect()
}

/// One work unit of an [`ExecutionPlan`]: the intersection of a stationary
/// row panel with a column block of the streamed operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanUnit {
    /// Row-panel index (`0..n_row_panels`).
    pub row_panel: usize,
    /// Column-block index (`0..n_col_blocks`).
    pub col_block: usize,
    /// Output rows the unit accumulates into.
    pub rows: core::ops::Range<usize>,
    /// Output columns the unit owns.
    pub cols: core::ops::Range<usize>,
    /// Streamed-tile indices (`tj`) the unit traverses, in order.
    pub tiles: core::ops::Range<usize>,
}

/// Scratch accounting derived from an [`ExecutionPlan`], recorded in
/// [`RunMetrics`](crate::metrics::RunMetrics) so the bench layer can report
/// how a budget shaped the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Column blocks per row panel.
    pub col_blocks: usize,
    /// Columns per (non-ragged) block.
    pub block_cols: usize,
    /// Dense-scratch bytes one worker thread allocates.
    pub bytes_per_thread: u64,
    /// Whether the scratch honours the budget (false only when the budget
    /// is smaller than a single `rows × cols_b` tile, the minimum unit).
    pub fits_budget: bool,
    /// The grid decomposition a functional replay would fan out with.
    pub grid: GridMode,
    /// Independently schedulable work items under `grid`: row panels in
    /// [`GridMode::Panels`], `panels × blocks` in [`GridMode::Grid2D`].
    pub parallel_units: usize,
}

/// A memory-governed 2-D partitioning of one `Z = A·B` execution: row
/// panels of the stationary operand × column blocks of the streamed one.
///
/// See the [module docs](self) for semantics. Construct via
/// [`ExecutionPlan::new`] (explicit tiling),
/// [`ExecutionPlan::for_tile_plan`] (from a hardware variant's
/// [`TilePlan`]), or [`ExecutionPlan::from_strategy`] (let a Table-1
/// [`TilingStrategy`] choose the tile shape first).
///
/// # Example
///
/// ```
/// use tailors_sim::exec::{ExecutionPlan, MemBudget};
///
/// // 50k × 50k output, 4096-row panels, 2048-column streamed tiles,
/// // 256 MiB of scratch per thread.
/// let plan = ExecutionPlan::new(50_000, 50_000, 4_096, 2_048, MemBudget::mib(256));
/// assert_eq!(plan.block_cols(), 8_192); // 4 tiles of 2048 columns
/// assert!(plan.scratch_bytes() <= 256 << 20);
/// assert_eq!(plan.n_col_blocks(), 7); // ceil(25 tiles / 4 tiles per block)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionPlan {
    nrows: usize,
    ncols: usize,
    rows_a: usize,
    cols_b: usize,
    /// Streamed tiles per column block (≥ 1 whenever there are tiles).
    block_tiles: usize,
    budget: MemBudget,
}

impl ExecutionPlan {
    /// Plans an `nrows × ncols` output tiled into `rows_a`-row stationary
    /// panels and `cols_b`-column streamed tiles, grouping tiles into
    /// column blocks so one panel's dense scratch fits `budget`.
    ///
    /// # Panics
    ///
    /// Panics if `rows_a == 0` or `cols_b == 0`.
    pub fn new(
        nrows: usize,
        ncols: usize,
        rows_a: usize,
        cols_b: usize,
        budget: MemBudget,
    ) -> ExecutionPlan {
        assert!(rows_a > 0 && cols_b > 0, "tile dimensions must be positive");
        let n_tiles = ncols.div_ceil(cols_b);
        let block_tiles = match budget.limit_bytes() {
            None => n_tiles.max(1),
            Some(bytes) => {
                let panel_rows = rows_a.min(nrows).max(1) as u64;
                let scratch_cols = bytes / SLOT_BYTES / panel_rows;
                let tiles = (scratch_cols / cols_b as u64).min(n_tiles.max(1) as u64) as usize;
                tiles.max(1)
            }
        };
        ExecutionPlan {
            nrows,
            ncols,
            rows_a,
            cols_b,
            block_tiles,
            budget,
        }
    }

    /// Plans from a hardware [`TilePlan`]'s global-buffer tiling: `gb_rows_a`
    /// stationary panels × `gb_cols_b` streamed tiles under `budget`.
    pub fn for_tile_plan(
        nrows: usize,
        ncols: usize,
        tile: &TilePlan,
        budget: MemBudget,
    ) -> ExecutionPlan {
        ExecutionPlan::new(
            nrows,
            ncols,
            tile.gb_rows_a.max(1),
            tile.gb_cols_b.max(1),
            budget,
        )
    }

    /// Lets a Table-1 [`TilingStrategy`] choose the tile shape against the
    /// architecture's working-tile capacity (as the hardware variants do),
    /// then governs the scratch with `budget`.
    ///
    /// # Panics
    ///
    /// As [`TilingStrategy::choose`] (empty profile, zero capacity).
    pub fn from_strategy(
        profile: &MatrixProfile,
        arch: &ArchConfig,
        strategy: &TilingStrategy,
        budget: MemBudget,
    ) -> ExecutionPlan {
        let choice = strategy.choose(profile, arch.tile_capacity());
        let rows = choice.rows_per_tile.max(1);
        ExecutionPlan::new(profile.nrows(), profile.ncols(), rows, rows, budget)
    }

    /// Rows of the stationary operand per panel.
    pub fn rows_a(&self) -> usize {
        self.rows_a
    }

    /// Columns of the streamed operand per tile.
    pub fn cols_b(&self) -> usize {
        self.cols_b
    }

    /// The governing budget.
    pub fn budget(&self) -> MemBudget {
        self.budget
    }

    /// Streamed tiles per column block.
    pub fn block_tiles(&self) -> usize {
        self.block_tiles
    }

    /// Number of stationary row panels.
    pub fn n_row_panels(&self) -> usize {
        self.nrows.div_ceil(self.rows_a)
    }

    /// Number of streamed column tiles.
    pub fn n_col_tiles(&self) -> usize {
        self.ncols.div_ceil(self.cols_b)
    }

    /// Number of column blocks per panel.
    pub fn n_col_blocks(&self) -> usize {
        self.n_col_tiles().div_ceil(self.block_tiles.max(1))
    }

    /// Columns spanned by the widest block (the last block may be ragged
    /// and cover fewer).
    pub fn block_cols(&self) -> usize {
        (self.block_tiles * self.cols_b).min(self.ncols)
    }

    /// Dense-scratch slots one worker thread needs: full-panel rows × the
    /// widest block.
    pub fn scratch_elems(&self) -> u64 {
        let panel_rows = self.rows_a.min(self.nrows).max(1) as u64;
        panel_rows * self.block_cols() as u64
    }

    /// Dense-scratch bytes one worker thread needs.
    pub fn scratch_bytes(&self) -> u64 {
        self.scratch_elems() * SLOT_BYTES
    }

    /// Whether the scratch honours the budget. `false` only when the budget
    /// is smaller than one `rows_a × cols_b` tile — the minimum schedulable
    /// unit — and the plan clamped to it.
    pub fn fits_budget(&self) -> bool {
        match self.budget.limit_bytes() {
            None => true,
            Some(bytes) => self.scratch_bytes() <= bytes,
        }
    }

    /// Independently schedulable work items under `grid`.
    pub fn parallel_units(&self, grid: GridMode) -> usize {
        match grid {
            GridMode::Panels => self.n_row_panels(),
            GridMode::Grid2D => self.n_row_panels() * self.n_col_blocks(),
        }
    }

    /// The scratch accounting summary recorded in run metrics.
    pub fn scratch_stats(&self, grid: GridMode) -> ScratchStats {
        ScratchStats {
            col_blocks: self.n_col_blocks(),
            block_cols: self.block_cols(),
            bytes_per_thread: self.scratch_bytes(),
            fits_budget: self.fits_budget(),
            grid,
            parallel_units: self.parallel_units(grid),
        }
    }

    /// Row range of stationary panel `pi`.
    ///
    /// # Panics
    ///
    /// Panics if `pi >= self.n_row_panels()`.
    pub fn panel_rows(&self, pi: usize) -> core::ops::Range<usize> {
        assert!(pi < self.n_row_panels(), "row-panel index out of range");
        let lo = pi * self.rows_a;
        lo..(lo + self.rows_a).min(self.nrows)
    }

    /// Column and streamed-tile ranges of column block `bi`.
    ///
    /// # Panics
    ///
    /// Panics if `bi >= self.n_col_blocks()`.
    pub fn block_extent(&self, bi: usize) -> (core::ops::Range<usize>, core::ops::Range<usize>) {
        assert!(bi < self.n_col_blocks(), "column-block index out of range");
        let t0 = bi * self.block_tiles;
        let t1 = (t0 + self.block_tiles).min(self.n_col_tiles());
        let c0 = t0 * self.cols_b;
        let c1 = (t1 * self.cols_b).min(self.ncols);
        (c0..c1, t0..t1)
    }

    /// The [`PlanUnit`] at (`pi`, `bi`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn unit(&self, pi: usize, bi: usize) -> PlanUnit {
        let (cols, tiles) = self.block_extent(bi);
        PlanUnit {
            row_panel: pi,
            col_block: bi,
            rows: self.panel_rows(pi),
            cols,
            tiles,
        }
    }

    /// Iterates the column blocks of one panel, in column order.
    pub fn panel_units(&self, pi: usize) -> impl Iterator<Item = PlanUnit> + '_ {
        (0..self.n_col_blocks()).map(move |bi| self.unit(pi, bi))
    }

    /// Iterates the whole 2-D grid in (panel, block) row-major order.
    pub fn units(&self) -> impl Iterator<Item = PlanUnit> + '_ {
        (0..self.n_row_panels()).flat_map(move |pi| self.panel_units(pi))
    }

    /// The budget-aware auto-tiling planner: picks the panel height
    /// (`rows_a`) that minimizes [`AutoPlanner`]'s closed-form traffic
    /// model for this `budget`, instead of accepting a caller-fixed
    /// height and paying whatever column-block count falls out. The
    /// streamed tile width `cols_b` is kept as given (it fixes the
    /// buffer-traversal counts); the column-*block* width co-moves with
    /// the chosen height through the budget. See [`AutoPlanner`] for the
    /// model and [`AutoPlanner::with_buffer`] /
    /// [`AutoPlanner::with_baseline`] for the optional refinements this
    /// convenience constructor forwards.
    ///
    /// # Panics
    ///
    /// Panics if `cols_b == 0`.
    pub fn auto_for_budget(
        profile: &MatrixProfile,
        cols_b: usize,
        budget: MemBudget,
        buffer: Option<BufferParams>,
        baseline_rows_a: Option<usize>,
        model: CostModel,
    ) -> ExecutionPlan {
        let mut planner = AutoPlanner::new(profile, cols_b, budget).with_cost_model(model);
        if let Some(b) = buffer {
            planner = planner.with_buffer(b);
        }
        if let Some(r) = baseline_rows_a {
            planner = planner.with_baseline(r);
        }
        planner.plan()
    }
}

/// Operand-buffer parameters the auto planner's A-side refetch term
/// mirrors from the functional engine's [`TileDriver`]: a stationary
/// panel whose occupancy exceeds `capacity` refetches its steady-state
/// volume on every traversal after the first — the bumped remainder
/// (`occ − (capacity − fifo_region)`) through a Tailor, the whole panel
/// through a plain buffet.
///
/// [`TileDriver`]: crate::functional
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferParams {
    /// Operand-buffer capacity in nonzeros.
    pub capacity: usize,
    /// Tailors FIFO-region size (ignored when `overbooking` is false).
    pub fifo_region: usize,
    /// Tailor (stream the bumped remainder) vs plain buffet (drop and
    /// refill the whole tile).
    pub overbooking: bool,
}

impl BufferParams {
    /// Per-traversal steady-state refetch volume of a panel of `occ`
    /// nonzeros — exactly the quantity `TileDriver::steady_refetch`
    /// reports: zero when the panel fits, the bumped remainder through a
    /// Tailor, the whole panel through a buffet. Deliberately **unlike**
    /// the analytical dataflow model's refetch term, there is no
    /// single-row exemption here: the hardware model assumes the address
    /// generator K-splits an over-capacity single-row fiber, but the
    /// software engine this planner prices has no such split and really
    /// does restream an overbooked one-row panel every traversal.
    pub fn steady_refetch(&self, occ: u64) -> u64 {
        if occ <= self.capacity as u64 {
            0
        } else if self.overbooking {
            let resident = self.capacity.saturating_sub(self.fifo_region).max(1) as u64;
            occ - resident.min(occ)
        } else {
            occ
        }
    }
}

/// Per-term weights for the auto planner's three traffic terms, in
/// integer picoseconds per unit of the term ([`PlanCost::scratch_fills`]
/// and [`PlanCost::b_refetch`] are element-touches;
/// [`PlanCost::extraction_passes`] is row-drain passes).
///
/// [`CostModel::UNIFORM`] — every weight 1 — reproduces the historical
/// equal-weight model exactly: the weighted total is then the raw
/// element-touch total, so plan choices are unchanged (and any all-equal
/// model scales the total uniformly, which cannot reorder candidates —
/// the degenerate-calibration unit test pins this). A *measured* model
/// from [`CostModel::calibrate`] makes the planner minimize estimated
/// nanoseconds instead of abstract touches: a row-drain pass costs
/// orders of magnitude more than streaming one B element past the
/// intersect, and the measured weights say so.
///
/// Weights never change results — only which plan wins. Every chosen
/// tiling stays bit-identical to `reference_run` (the arbitrary-weight
/// property test in `functional_equivalence.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Picoseconds per A-side scratch-fill element-touch.
    pub w_fill: u64,
    /// Picoseconds per B-side stream element-touch.
    pub w_refetch: u64,
    /// Picoseconds per output row-drain (extraction) pass.
    pub w_extract: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::UNIFORM
    }
}

impl CostModel {
    /// The historical equal-weight model: weighted totals equal raw
    /// element-touch totals, so plan choices match the pre-calibration
    /// planner exactly.
    pub const UNIFORM: CostModel = CostModel {
        w_fill: 1,
        w_refetch: 1,
        w_extract: 1,
    };

    /// Whether all three weights are equal. An all-equal model scales
    /// every candidate's total by the same constant, which cannot
    /// reorder them — the planner treats it exactly like
    /// [`CostModel::UNIFORM`] (including skipping the calibrated-model
    /// neighborhood sweep, so degenerate calibrations reproduce the
    /// historical plan choices bit-for-bit).
    pub fn is_uniform(&self) -> bool {
        self.w_fill == self.w_refetch && self.w_refetch == self.w_extract
    }

    /// The weighted total of a candidate's three traffic terms.
    pub fn weighted(&self, scratch_fills: u128, b_refetch: u128, extraction_passes: u128) -> u128 {
        self.w_fill as u128 * scratch_fills
            + self.w_refetch as u128 * b_refetch
            + self.w_extract as u128 * extraction_passes
    }

    /// A stable 64-bit fingerprint of the weights (FNV-1a), used by the
    /// serving layer to version plan-cache keys: auto plans chosen under
    /// different models must not collide in the plan tier.
    pub fn key(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in [self.w_fill, self.w_refetch, self.w_extract] {
            for byte in w.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Measures the three per-term weights on this machine with
    /// fixed-iteration microkernels (each run a fixed number of passes,
    /// best-of-3 timed repetitions, so the *loop structure* is
    /// deterministic even though the measured picoseconds are not):
    ///
    /// * `w_fill` — scatter-accumulates into a [`BlockedSpa`]-shaped
    ///   scratch, the A-side fill element-touch;
    /// * `w_refetch` — streams a synthetic coordinate/value fiber and
    ///   folds it, the B-side per-element touch;
    /// * `w_extract` — populates sparse rows and row-drains them, the
    ///   per-pass extraction cost (the 8 accumulates per measured pass
    ///   are deducted at the measured `w_fill` rate).
    ///
    /// Prefer [`CostModel::calibrated`], which runs this once per
    /// process; the serving layer additionally caches the resulting
    /// plans per model key.
    ///
    /// [`BlockedSpa`]: tailors_tensor::ops::BlockedSpa
    pub fn calibrate() -> CostModel {
        use tailors_tensor::ops::BlockedSpa;
        const ROWS: usize = 64;
        const WIDTH: usize = 1024;
        const PASSES: usize = 16;
        const ROW_SEEDS: usize = 8;

        // A-side fill: one full scatter pass over the scratch per call.
        // Passes stack without draining (values grow, occupancy bits
        // stay set) — the all-zero invariant only matters to `drain_row`,
        // which never runs on this instance.
        let mut fill_spa = BlockedSpa::new();
        fill_spa.reset_shape(ROWS, WIDTH);
        let w_fill = measure_ps(ROWS * WIDTH, PASSES, || {
            for r in 0..ROWS {
                let mut c = (r * 37) % WIDTH;
                for _ in 0..WIDTH {
                    fill_spa.accumulate(r, c, 1.0);
                    c += 1;
                    if c == WIDTH {
                        c = 0;
                    }
                }
            }
        });

        // B-side stream: walk a synthetic fiber and fold it, like the
        // engine streaming an operand tile past the intersect.
        let coords: Vec<u32> = (0..(ROWS * WIDTH) as u32).map(|i| i * 3).collect();
        let vals: Vec<f64> = (0..ROWS * WIDTH).map(|i| (i % 7) as f64).collect();
        let mut folded = 0.0f64;
        let w_refetch = measure_ps(ROWS * WIDTH, PASSES, || {
            let mut acc = 0.0f64;
            for (&c, &v) in coords.iter().zip(&vals) {
                acc += v * f64::from(c & 1);
            }
            folded += acc;
        });
        std::hint::black_box(folded);

        // Extraction: populate 8 entries per row, then drain every row.
        // One measured "element" is one drain pass; the 8 accumulates it
        // took to repopulate are deducted at the measured fill rate.
        let mut drain_spa = BlockedSpa::new();
        drain_spa.reset_shape(ROWS, WIDTH);
        let (mut out_cols, mut out_vals) = (Vec::new(), Vec::new());
        let w_drain_gross = measure_ps(ROWS, PASSES, || {
            for r in 0..ROWS {
                for k in 0..ROW_SEEDS {
                    drain_spa.accumulate(r, (k * 131) % WIDTH, 1.0);
                }
            }
            for r in 0..ROWS {
                out_cols.clear();
                out_vals.clear();
                drain_spa.drain_row(r, 0, &mut out_cols, &mut out_vals);
            }
        });
        let w_extract = w_drain_gross
            .saturating_sub(ROW_SEEDS as u64 * w_fill)
            .max(1);

        CostModel {
            w_fill,
            w_refetch,
            w_extract,
        }
    }

    /// [`CostModel::calibrate`], run once and cached for the process
    /// lifetime.
    pub fn calibrated() -> CostModel {
        static CALIBRATED: std::sync::OnceLock<CostModel> = std::sync::OnceLock::new();
        *CALIBRATED.get_or_init(CostModel::calibrate)
    }
}

/// Best-of-3 timing of `passes` calls to `f`, in integer picoseconds per
/// element (at least 1), after one untimed warmup call. The iteration
/// counts are fixed constants — wall-clock is only ever *read*, never
/// used to decide how much work runs — so the kernels themselves are
/// deterministic.
fn measure_ps(elems_per_pass: usize, passes: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut best = u64::MAX;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        for _ in 0..passes {
            f();
        }
        let total_ps = (start.elapsed().as_nanos() as u64).saturating_mul(1000);
        best = best.min(total_ps / (elems_per_pass * passes) as u64);
    }
    best.max(1)
}

/// The planner cost model from the `TAILORS_CALIBRATE` environment
/// variable (`run_all --calibrate` and `serve --calibrate` forward it):
/// `1` / `true` / `yes` run [`CostModel::calibrated`] once and plan in
/// measured picoseconds; `0` / `false` / `no` / unset keep the
/// historical [`CostModel::UNIFORM`] element-touch model.
///
/// # Panics
///
/// Panics if `TAILORS_CALIBRATE` is set to anything else.
pub fn cost_model_from_env() -> CostModel {
    match std::env::var("TAILORS_CALIBRATE") {
        Err(_) => CostModel::UNIFORM,
        Ok(s) => {
            if parse_auto_plan(&s)
                .unwrap_or_else(|| panic!("TAILORS_CALIBRATE must be a boolean, got {s:?}"))
            {
                CostModel::calibrated()
            } else {
                CostModel::UNIFORM
            }
        }
    }
}

/// The closed-form traffic of one auto-planner candidate, in
/// element-touches (see [`AutoPlanner`] for the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCost {
    /// Candidate panel height.
    pub rows_a: usize,
    /// Column blocks the budget induces at this height.
    pub col_blocks: usize,
    /// Whether the induced scratch honours the budget (single streamed
    /// tiles wider than the budget clamp and violate it).
    pub fits_budget: bool,
    /// A-side DRAM volume: one cold fill of every panel (`nnz`) plus the
    /// steady-state refetch volume of every traversal after the first.
    pub scratch_fills: u128,
    /// B-side DRAM volume: every panel streams the whole operand once
    /// (`n_row_panels × nnz`).
    pub b_refetch: u128,
    /// Total extraction row-drain passes: every output row is drained
    /// once per column block (`nrows × col_blocks`) — the term narrow
    /// blocks blow up.
    pub extraction_passes: u128,
    /// `scratch_fills + b_refetch + extraction_passes` — the raw
    /// equal-weight element-touch total (kept for reporting and for the
    /// historical tests' assertions; the spill term is deliberately
    /// excluded so in-RAM totals are unchanged).
    pub total: u128,
    /// Spill-tier page-in volume when the streamed operand is
    /// file-backed: every panel demands one pass over the spilled tiles
    /// (`n_row_panels × nnz`). Zero unless the planner was given a spill
    /// weight ([`AutoPlanner::with_spill`]).
    pub spill_traffic: u128,
    /// The planner's objective: the three terms weighted by its
    /// [`CostModel`] (equal to `total` under [`CostModel::UNIFORM`],
    /// estimated picoseconds under a calibrated model), plus the
    /// spill-weighted `spill_traffic` for file-backed plans.
    pub weighted_total: u128,
}

/// The occupancy-profile-driven auto-tiling planner (the paper's thesis
/// applied to the *software* scratch): given a [`MemBudget`], co-optimize
/// the stationary panel height against the column-block width it induces,
/// using a closed-form traffic model over the profile's prefix sums.
///
/// The budget fixes the trade surface: a block spans
/// `budget / (8 × rows_a)` scratch columns, so **shorter panels mean
/// wider blocks**. The model prices each candidate height in
/// element-touches:
///
/// * **scratch fills** — A-side DRAM: `nnz` compulsory cold fills plus
///   `(n_col_tiles − 1) × Σ_p steady_p` steady-state refetch
///   ([`BufferParams::steady_refetch`] per panel; taller panels overbook
///   the operand buffer and restream more);
/// * **B-refetch** — `n_row_panels × nnz`: every panel streams the whole
///   operand once, so ever-shorter panels are not free;
/// * **extraction passes** — `nrows × n_col_blocks` row-drains: every
///   output row is extracted once per block, the cost a fixed tall panel
///   under a tight budget degenerates into (many narrow blocks).
///
/// All three are the quantities the variants and the functional engine
/// already account — the planner just minimizes their sum instead of
/// accepting a fixed height. Candidates are the powers of two up to
/// `nrows`, `nrows` itself, and the caller's baseline height (so the
/// model never scores worse than the fixed plan it replaces); plans that
/// honour the budget are strictly preferred over clamped ones, then lower
/// total, then fewer blocks, then the shorter panel — a deterministic
/// order with no ties.
///
/// Results never depend on the choice: every tiling is bit-identical to
/// [`reference_run`](crate::functional::reference_run) (the invariant the
/// property suites enforce for arbitrary tilings) — the planner only
/// moves traffic and scratch shape.
#[derive(Debug, Clone, Copy)]
pub struct AutoPlanner<'a> {
    profile: &'a MatrixProfile,
    cols_b: usize,
    budget: MemBudget,
    buffer: Option<BufferParams>,
    baseline_rows_a: Option<usize>,
    model: CostModel,
    /// Weight (cost units per element) of paging one streamed element in
    /// from the spill tier; `None` for in-RAM operands.
    spill: Option<u64>,
}

impl<'a> AutoPlanner<'a> {
    /// A planner over `profile` with streamed tiles `cols_b` wide under
    /// `budget`, with no buffer model (refetch term zero) and no baseline.
    ///
    /// # Panics
    ///
    /// Panics if `cols_b == 0`.
    pub fn new(profile: &'a MatrixProfile, cols_b: usize, budget: MemBudget) -> Self {
        assert!(cols_b > 0, "tile dimensions must be positive");
        AutoPlanner {
            profile,
            cols_b,
            budget,
            buffer: None,
            baseline_rows_a: None,
            model: CostModel::UNIFORM,
            spill: None,
        }
    }

    /// Prices the three traffic terms with `model` instead of the
    /// equal-weight default (see [`CostModel`]). A non-uniform model
    /// also widens the candidate set beyond powers of two with a ±25%
    /// neighborhood sweep around the incumbent optimum.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Prices the A-side refetch term against a concrete operand buffer
    /// (the functional engine's, or the architecture's working-tile
    /// capacity).
    pub fn with_buffer(mut self, buffer: BufferParams) -> Self {
        self.buffer = Some(buffer);
        self
    }

    /// Adds the fixed panel height being replaced to the candidate set,
    /// so the chosen plan never scores worse than it under the model.
    ///
    /// # Panics
    ///
    /// Panics if `rows_a == 0`.
    pub fn with_baseline(mut self, rows_a: usize) -> Self {
        assert!(rows_a > 0, "tile dimensions must be positive");
        self.baseline_rows_a = Some(rows_a);
        self
    }

    /// Prices spill-tier traffic for a file-backed streamed operand:
    /// every panel pages the whole spilled operand in once, so the term
    /// is `n_row_panels × nnz × w_spill`. Disk touches cost orders of
    /// magnitude more than the in-RAM B-refetch the equal-weight model
    /// charges for the same volume, so any realistic `w_spill` pushes
    /// the choice toward **taller panels** (fewer passes over the file)
    /// — exactly the preference the paper's buffer model has for
    /// stationary reuse, applied one tier down. The in-RAM `total` field
    /// is unchanged; only the weighted objective (and the choice) move,
    /// and the neighborhood sweep runs even under a uniform model since
    /// the objective is no longer a uniform scaling of `total`.
    pub fn with_spill(mut self, w_spill: u64) -> Self {
        self.spill = Some(w_spill);
        self
    }

    /// The closed-form cost of one candidate height. O(`nrows / rows_a`)
    /// over the profile's prefix sums when a buffer model is set, O(1)
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `rows_a == 0`.
    pub fn cost_of(&self, rows_a: usize) -> PlanCost {
        let (nrows, ncols) = (self.profile.nrows(), self.profile.ncols());
        let plan = ExecutionPlan::new(nrows, ncols, rows_a, self.cols_b, self.budget);
        let nnz = self.profile.nnz() as u128;
        let n_panels = plan.n_row_panels() as u128;
        let n_blocks = plan.n_col_blocks() as u128;
        let traversals = plan.n_col_tiles() as u128;
        let steady: u128 = match &self.buffer {
            None => 0,
            Some(bp) => self
                .profile
                .panel_occupancies(rows_a)
                .map(|occ| bp.steady_refetch(occ) as u128)
                .sum(),
        };
        let scratch_fills = nnz + traversals.saturating_sub(1) * steady;
        let b_refetch = n_panels * nnz;
        let extraction_passes = nrows as u128 * n_blocks;
        let spill_traffic = match self.spill {
            Some(_) => n_panels * nnz,
            None => 0,
        };
        let spill_cost = spill_traffic * self.spill.unwrap_or(0) as u128;
        PlanCost {
            rows_a,
            col_blocks: plan.n_col_blocks(),
            fits_budget: plan.fits_budget(),
            scratch_fills,
            b_refetch,
            extraction_passes,
            total: scratch_fills + b_refetch + extraction_passes,
            spill_traffic,
            weighted_total: self
                .model
                .weighted(scratch_fills, b_refetch, extraction_passes)
                + spill_cost,
        }
    }

    /// Evaluates every candidate height and returns the winner's cost
    /// breakdown (see the type docs for the candidate set and the
    /// deterministic preference order).
    pub fn choose(&self) -> PlanCost {
        let nrows = self.profile.nrows().max(1);
        let mut candidates: Vec<usize> = Vec::with_capacity(nrows.ilog2() as usize + 4);
        let mut r = 1usize;
        while r < nrows {
            candidates.push(r);
            r *= 2;
        }
        candidates.push(nrows);
        if let Some(b) = self.baseline_rows_a {
            candidates.push(b.min(nrows));
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut best: Option<PlanCost> = None;
        for &rows_a in &candidates {
            self.consider(rows_a, &mut best);
        }
        let mut best = best.expect("candidate set is never empty");
        // A calibrated (non-uniform) model can place the true optimum
        // between powers of two, so sweep a ±25% neighborhood around
        // the incumbent in steps of a quarter radius. All-equal models
        // skip this: their weighted total is a uniform scaling of the
        // element-touch total, so the historical candidate set already
        // contains their optimum and the historical choices are
        // reproduced exactly.
        if !self.model.is_uniform() || self.spill.is_some() {
            let incumbent = best.rows_a as i128;
            let radius = (incumbent / 4).max(1);
            let step = (radius / 4).max(1);
            let mut sweep = Some(best);
            for k in -4i128..=4 {
                let r = incumbent + k * step;
                if r >= 1 && r <= nrows as i128 {
                    self.consider(r as usize, &mut sweep);
                }
            }
            best = sweep.expect("sweep starts from the incumbent");
        }
        best
    }

    /// Evaluates one candidate height against the running best under the
    /// deterministic preference order: budget-honouring first, then the
    /// lowest weighted total, then the widest blocks, then the shortest
    /// panel.
    fn consider(&self, rows_a: usize, best: &mut Option<PlanCost>) {
        let cost = self.cost_of(rows_a);
        let better = match best {
            None => true,
            Some(b) => {
                (
                    !cost.fits_budget,
                    cost.weighted_total,
                    cost.col_blocks,
                    cost.rows_a,
                ) < (!b.fits_budget, b.weighted_total, b.col_blocks, b.rows_a)
            }
        };
        if better {
            *best = Some(cost);
        }
    }

    /// The chosen execution plan: [`ExecutionPlan::new`] at the winning
    /// height, so it is exactly the plan a fixed run at that height would
    /// derive (the bit-identity the tests lean on).
    pub fn plan(&self) -> ExecutionPlan {
        let choice = self.choose();
        ExecutionPlan::new(
            self.profile.nrows(),
            self.profile.ncols(),
            choice.rows_a,
            self.cols_b,
            self.budget,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_common_spellings() {
        assert_eq!(MemBudget::parse("unbounded"), Ok(MemBudget::Unbounded));
        assert_eq!(MemBudget::parse("NONE"), Ok(MemBudget::Unbounded));
        assert_eq!(MemBudget::parse("1024"), Ok(MemBudget::Bytes(1024)));
        assert_eq!(MemBudget::parse("512b"), Ok(MemBudget::Bytes(512)));
        assert_eq!(MemBudget::parse("4K"), Ok(MemBudget::Bytes(4096)));
        assert_eq!(MemBudget::parse("256MiB"), Ok(MemBudget::mib(256)));
        assert_eq!(MemBudget::parse(" 2g "), Ok(MemBudget::Bytes(2 << 30)));
        assert!(MemBudget::parse("lots").is_err());
        assert!(MemBudget::parse("12.5M").is_err());
    }

    #[test]
    fn display_round_trips_the_common_cases() {
        assert_eq!(MemBudget::Unbounded.to_string(), "unbounded");
        assert_eq!(MemBudget::mib(256).to_string(), "256MiB");
        assert_eq!(MemBudget::bytes(100).to_string(), "100B");
    }

    #[test]
    fn unbounded_plan_is_one_block_spanning_all_columns() {
        let p = ExecutionPlan::new(1_000, 7_777, 128, 64, MemBudget::Unbounded);
        assert_eq!(p.n_col_blocks(), 1);
        let (cols, tiles) = p.block_extent(0);
        assert_eq!(cols, 0..7_777);
        assert_eq!(tiles, 0..p.n_col_tiles());
        assert!(p.fits_budget());
    }

    #[test]
    fn budget_shrinks_blocks_and_is_honoured() {
        // 128-row panels, 64-col tiles, 64 KiB budget: 65536/8/128 = 64
        // scratch columns = exactly one tile per block.
        let p = ExecutionPlan::new(1_000, 1_000, 128, 64, MemBudget::bytes(64 << 10));
        assert_eq!(p.block_tiles(), 1);
        assert_eq!(p.block_cols(), 64);
        assert!(p.fits_budget());
        assert_eq!(p.scratch_bytes(), 128 * 64 * 8);
        // Double the budget: two tiles per block.
        let p2 = ExecutionPlan::new(1_000, 1_000, 128, 64, MemBudget::bytes(128 << 10));
        assert_eq!(p2.block_tiles(), 2);
        assert!(p2.fits_budget());
    }

    #[test]
    fn sub_tile_budget_clamps_to_one_tile_and_reports_it() {
        let p = ExecutionPlan::new(1_000, 1_000, 128, 64, MemBudget::bytes(1));
        assert_eq!(p.block_tiles(), 1);
        assert!(!p.fits_budget());
        assert!(!p.scratch_stats(GridMode::Panels).fits_budget);
    }

    #[test]
    fn grid_mode_parses_and_displays() {
        assert_eq!(GridMode::parse("panels"), Ok(GridMode::Panels));
        assert_eq!(GridMode::parse("1D"), Ok(GridMode::Panels));
        assert_eq!(GridMode::parse(" 2d "), Ok(GridMode::Grid2D));
        assert_eq!(GridMode::parse("Grid2D"), Ok(GridMode::Grid2D));
        assert!(GridMode::parse("3d").is_err());
        assert_eq!(GridMode::Panels.to_string(), "panels");
        assert_eq!(GridMode::Grid2D.to_string(), "2d");
        assert_eq!(GridMode::default(), GridMode::Panels);
    }

    #[test]
    fn parallel_units_multiply_under_the_2d_grid() {
        let p = ExecutionPlan::new(100, 90, 32, 16, MemBudget::bytes(32 * 16 * 2 * 8));
        assert_eq!(p.parallel_units(GridMode::Panels), 4);
        assert_eq!(p.parallel_units(GridMode::Grid2D), 12);
        let s = p.scratch_stats(GridMode::Grid2D);
        assert_eq!(s.grid, GridMode::Grid2D);
        assert_eq!(s.parallel_units, 12);
    }

    #[test]
    fn balanced_partition_covers_all_items_exactly_once() {
        let costs: Vec<u128> = vec![100, 1, 1, 1, 50, 50, 1, 1];
        let bins = balanced_partition(&costs, 3);
        assert_eq!(bins.len(), 3);
        let mut seen: Vec<usize> = bins.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..costs.len()).collect::<Vec<_>>());
        // LPT: the heaviest item sits alone-ish; the two 50s share a bin
        // or split, but no bin exceeds ~half the total.
        let loads: Vec<u128> = bins
            .iter()
            .map(|g| g.iter().map(|&i| costs[i]).sum())
            .collect();
        assert!(loads.iter().all(|&l| l <= 103), "loads {loads:?}");
    }

    #[test]
    fn balanced_partition_handles_degenerate_shapes() {
        assert_eq!(balanced_partition(&[], 4), Vec::<Vec<usize>>::new());
        let one = balanced_partition(&[7], 4);
        assert_eq!(one, vec![vec![0]]);
        // More bins than items: empty bins are dropped.
        let few = balanced_partition(&[1, 2], 8);
        assert_eq!(few.iter().flatten().count(), 2);
        // Zero costs still place every item.
        let zeros = balanced_partition(&[0, 0, 0], 2);
        assert_eq!(zeros.iter().flatten().count(), 3);
    }

    #[test]
    fn units_tile_the_grid_exactly() {
        let p = ExecutionPlan::new(100, 90, 32, 16, MemBudget::bytes(32 * 16 * 2 * 8));
        assert_eq!(p.block_tiles(), 2);
        assert_eq!(p.n_row_panels(), 4);
        assert_eq!(p.n_col_tiles(), 6);
        assert_eq!(p.n_col_blocks(), 3);
        let units: Vec<_> = p.units().collect();
        assert_eq!(units.len(), 12);
        // Rows partition [0, 100), columns partition [0, 90) per panel.
        for pi in 0..4 {
            let row_units: Vec<_> = units.iter().filter(|u| u.row_panel == pi).collect();
            assert_eq!(row_units.first().unwrap().cols.start, 0);
            assert_eq!(row_units.last().unwrap().cols.end, 90);
            for w in row_units.windows(2) {
                assert_eq!(w[0].cols.end, w[1].cols.start);
                assert_eq!(w[0].tiles.end, w[1].tiles.start);
            }
        }
        assert_eq!(units[11].rows, 96..100);
        assert_eq!(units[11].cols, 64..90);
        assert_eq!(units[11].tiles, 4..6);
    }

    #[test]
    fn ragged_edges_are_clamped() {
        let p = ExecutionPlan::new(10, 10, 64, 64, MemBudget::Unbounded);
        assert_eq!(p.n_row_panels(), 1);
        assert_eq!(p.n_col_blocks(), 1);
        assert_eq!(p.panel_rows(0), 0..10);
        assert_eq!(p.block_extent(0).0, 0..10);
        // Scratch accounts the clamped extents, not the nominal tile.
        assert_eq!(p.scratch_elems(), 100);
    }

    #[test]
    fn zero_width_output_has_no_blocks() {
        let p = ExecutionPlan::new(0, 0, 4, 4, MemBudget::mib(1));
        assert_eq!(p.n_row_panels(), 0);
        assert_eq!(p.n_col_tiles(), 0);
        assert_eq!(p.n_col_blocks(), 0);
        assert_eq!(p.units().count(), 0);
    }

    /// A uniform 2000 × 2000 profile with 10 nonzeros per row/column —
    /// the auto-planner tests' analog of the 2 k benchmark point.
    fn uniform_profile() -> MatrixProfile {
        MatrixProfile::new(2_000, 2_000, vec![10; 2_000], vec![10; 2_000])
    }

    #[test]
    fn auto_planner_widens_blocks_under_a_tight_budget() {
        let p = uniform_profile();
        // The bench operating point: 32-column streamed tiles, a 64 KiB
        // budget, the engine's overbooked 2048-slot buffer, and a fixed
        // 256-row baseline (whose panels overbook and whose blocks are
        // single tiles).
        let planner = AutoPlanner::new(&p, 32, MemBudget::bytes(64 << 10))
            .with_buffer(BufferParams {
                capacity: 2_048,
                fifo_region: 256,
                overbooking: true,
            })
            .with_baseline(256);
        let fixed = planner.cost_of(256);
        assert_eq!(fixed.col_blocks, 63, "baseline: single-tile blocks");
        assert!(fixed.fits_budget);
        let auto = planner.choose();
        assert_eq!(auto.rows_a, 128, "half-height panels, double-width blocks");
        assert_eq!(auto.col_blocks, 32);
        assert!(auto.fits_budget);
        // The acceptance ordering: strictly fewer extraction passes and
        // strictly lower modeled traffic than the fixed plan.
        assert!(auto.extraction_passes < fixed.extraction_passes);
        assert!(auto.total < fixed.total);
        // The shorter panels stopped overbooking the operand buffer.
        assert_eq!(auto.scratch_fills, p.nnz() as u128);
        assert!(fixed.scratch_fills > p.nnz() as u128);
        // And the emitted plan is exactly the fixed plan at that height.
        assert_eq!(
            planner.plan(),
            ExecutionPlan::new(2_000, 2_000, 128, 32, MemBudget::bytes(64 << 10))
        );
    }

    #[test]
    fn spill_weight_prefers_taller_panels() {
        let p = uniform_profile();
        let base = AutoPlanner::new(&p, 32, MemBudget::bytes(64 << 10))
            .with_buffer(BufferParams {
                capacity: 2_048,
                fifo_region: 256,
                overbooking: true,
            })
            .with_baseline(256);
        let in_ram = base.choose();
        // Disk touches dwarf every in-RAM term: the planner must trade
        // extraction passes and scratch refetch for fewer passes over the
        // spilled operand, i.e. panels at least as tall as the in-RAM
        // choice (strictly taller at this operating point).
        let spilled = base.with_spill(1_000_000).choose();
        assert!(
            spilled.rows_a > in_ram.rows_a,
            "spill-aware choice {} not taller than in-RAM {}",
            spilled.rows_a,
            in_ram.rows_a
        );
        // The term is the page-in volume at the chosen height, and the
        // equal-weight element-touch total is untouched by the weight.
        let n_panels = p.nrows().div_ceil(spilled.rows_a) as u128;
        assert_eq!(spilled.spill_traffic, n_panels * p.nnz() as u128);
        assert_eq!(in_ram.spill_traffic, 0);
        assert_eq!(base.cost_of(spilled.rows_a).total, spilled.total);
    }

    #[test]
    fn degenerate_calibration_reproduces_uniform_plan_choices() {
        // A calibration that measures all three terms equally expensive
        // (whatever the shared magnitude) must reproduce the historical
        // uniform planner's choices bit-for-bit: an all-equal model
        // scales every candidate's total by the same constant, and the
        // planner skips the neighborhood sweep for it. This pins the PR 5
        // operating point (128-row panels, 32 double-width blocks).
        let p = uniform_profile();
        for shared in [1u64, 7, 1_000, u64::MAX / (1 << 40)] {
            let degenerate = CostModel {
                w_fill: shared,
                w_refetch: shared,
                w_extract: shared,
            };
            assert!(degenerate.is_uniform());
            let planner = AutoPlanner::new(&p, 32, MemBudget::bytes(64 << 10))
                .with_buffer(BufferParams {
                    capacity: 2_048,
                    fifo_region: 256,
                    overbooking: true,
                })
                .with_baseline(256)
                .with_cost_model(degenerate);
            let auto = planner.choose();
            assert_eq!(auto.rows_a, 128, "weights {shared}: choice drifted");
            assert_eq!(auto.col_blocks, 32);
            assert_eq!(
                planner.plan(),
                ExecutionPlan::new(2_000, 2_000, 128, 32, MemBudget::bytes(64 << 10))
            );
        }
    }

    #[test]
    fn cost_model_keys_are_distinct_and_stable() {
        // The serving layer versions plan-cache keys with this
        // fingerprint: distinct models must not collide, and the same
        // model must fingerprint identically across processes (FNV-1a is
        // deterministic, no per-process hash seeding).
        let uniform = CostModel::UNIFORM.key();
        let scaled = CostModel {
            w_fill: 7,
            w_refetch: 7,
            w_extract: 7,
        }
        .key();
        let skewed = CostModel {
            w_fill: 1,
            w_refetch: 1,
            w_extract: 100,
        }
        .key();
        assert_ne!(uniform, scaled, "all-equal models are still distinct keys");
        assert_ne!(uniform, skewed);
        assert_ne!(scaled, skewed);
        assert_eq!(uniform, CostModel::UNIFORM.key(), "stable across calls");
        // Permuting weights across terms must change the key (the
        // fingerprint is order-sensitive by construction).
        let permuted = CostModel {
            w_fill: 100,
            w_refetch: 1,
            w_extract: 1,
        }
        .key();
        assert_ne!(skewed, permuted);
    }

    #[test]
    fn skewed_cost_models_engage_the_neighborhood_sweep() {
        // A non-uniform model widens the candidate set beyond the
        // power-of-two ladder (±25 % around the incumbent): whatever it
        // picks must still be a legal, budget-honouring plan, and no
        // power-of-two candidate may beat it under its own metric.
        let p = uniform_profile();
        let model = CostModel {
            w_fill: 37,
            w_refetch: 3,
            w_extract: 9_000,
        };
        let planner = AutoPlanner::new(&p, 32, MemBudget::bytes(64 << 10))
            .with_buffer(BufferParams {
                capacity: 2_048,
                fifo_region: 256,
                overbooking: true,
            })
            .with_baseline(256)
            .with_cost_model(model);
        let choice = planner.choose();
        assert!(choice.rows_a >= 1 && choice.rows_a <= p.nrows());
        assert!(choice.fits_budget);
        let mut h = 1;
        while h <= p.nrows() {
            let cand = planner.cost_of(h);
            if cand.fits_budget {
                assert!(
                    choice.weighted_total <= cand.weighted_total,
                    "power-of-two candidate {h} beats the sweep choice"
                );
            }
            h *= 2;
        }
    }

    #[test]
    fn auto_planner_prefers_budget_honouring_plans() {
        let p = uniform_profile();
        // A budget smaller than any multi-row single tile: only 1-row
        // panels fit (1 × 32 × 8 = 256 bytes).
        let planner = AutoPlanner::new(&p, 32, MemBudget::bytes(256)).with_baseline(512);
        let choice = planner.choose();
        assert_eq!(choice.rows_a, 1);
        assert!(choice.fits_budget);
        assert!(!planner.cost_of(512).fits_budget);
    }

    #[test]
    fn auto_planner_unbounded_budget_keeps_one_block() {
        let p = uniform_profile();
        // Without a budget every height yields one block; B-refetch then
        // dominates and the planner grows the panel to the whole tensor.
        let choice = AutoPlanner::new(&p, 32, MemBudget::Unbounded).choose();
        assert_eq!(choice.rows_a, 2_000);
        assert_eq!(choice.col_blocks, 1);
        assert_eq!(choice.b_refetch, p.nnz() as u128);
    }

    #[test]
    fn auto_planner_handles_degenerate_profiles() {
        let empty = MatrixProfile::new(0, 0, vec![], vec![]);
        let plan = ExecutionPlan::auto_for_budget(
            &empty,
            8,
            MemBudget::mib(1),
            None,
            None,
            CostModel::UNIFORM,
        );
        assert_eq!(plan.n_row_panels(), 0);
        assert_eq!(plan.units().count(), 0);
        let tiny = MatrixProfile::new(1, 1, vec![1], vec![1]);
        let plan = ExecutionPlan::auto_for_budget(
            &tiny,
            8,
            MemBudget::bytes(8),
            None,
            Some(4),
            CostModel::UNIFORM,
        );
        assert_eq!(plan.rows_a(), 1);
    }

    #[test]
    fn buffer_params_mirror_the_tile_driver() {
        let tailor = BufferParams {
            capacity: 40,
            fifo_region: 8,
            overbooking: true,
        };
        assert_eq!(tailor.steady_refetch(40), 0, "fitting tile");
        assert_eq!(tailor.steady_refetch(100), 100 - 32, "bumped remainder");
        let buffet = BufferParams {
            overbooking: false,
            ..tailor
        };
        assert_eq!(buffet.steady_refetch(100), 100, "whole-tile refill");
    }

    #[test]
    fn auto_plan_env_parses_booleans() {
        // Unset: off (the environment is not mutated here — the harness
        // runs tests concurrently — so the variable itself only gets the
        // unset-default probe; the grammar is tested directly).
        assert!(!auto_plan_from_env());
        for on in ["1", "true", "YES", " True "] {
            assert_eq!(parse_auto_plan(on), Some(true), "{on:?}");
        }
        for off in ["0", "false", "No", "", "  "] {
            assert_eq!(parse_auto_plan(off), Some(false), "{off:?}");
        }
        assert_eq!(parse_auto_plan("always"), None);
        assert_eq!(parse_auto_plan("2"), None);
    }

    #[test]
    fn wide_smoke_shape_matches_issue_arithmetic() {
        // The CI wide-matrix smoke: 50k columns, 4096-row panels, 2048-col
        // tiles, 256 MiB → 4 tiles (8192 columns) per block, 7 blocks.
        let p = ExecutionPlan::new(50_000, 50_000, 4_096, 2_048, MemBudget::mib(256));
        assert_eq!(p.block_tiles(), 4);
        assert_eq!(p.block_cols(), 8_192);
        assert_eq!(p.n_col_blocks(), 7);
        assert_eq!(p.scratch_bytes(), 256 << 20);
        assert!(p.fits_budget());
    }
}
