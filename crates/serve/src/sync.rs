//! Poison-recovering lock primitives for the serving layer.
//!
//! The service's cache tiers and the runtime's mailboxes are shared
//! across worker threads that execute *caller-supplied* requests under
//! panic isolation (`catch_unwind`). A panicking holder poisons a
//! `std::sync::Mutex`, and the default `lock().unwrap()` idiom then turns
//! one isolated panic into a permanently wedged cache — every later
//! request dies on the poisoned lock. These wrappers recover the guard
//! from the `PoisonError` instead.
//!
//! Recovery is sound here because no critical section in this crate runs
//! caller code while holding a lock (cache `make()` closures and request
//! execution all happen *outside* the guard), and every mutation the
//! guarded structures perform (`HashMap`/`Lru`/`VecDeque` insert, remove,
//! pop) either completes or leaves the structure unchanged — there is no
//! multi-step invariant a mid-operation unwind could tear.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};
use std::time::Duration;

/// A `std::sync::Mutex` whose `lock` recovers from poisoning instead of
/// propagating it (`parking_lot`-style non-poisoning semantics, without
/// the dependency).
#[derive(Debug, Default)]
pub struct PoisonFreeMutex<T> {
    inner: Mutex<T>,
}

impl<T> PoisonFreeMutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        PoisonFreeMutex {
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering the guard if a previous holder
    /// panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A `std::sync::RwLock` whose `read`/`write` recover from poisoning
/// instead of propagating it, for the same reason as
/// [`PoisonFreeMutex`]: the router's fleet view is read on every request
/// and written only by membership operations, and no critical section
/// runs caller code while holding the lock.
#[derive(Debug, Default)]
pub struct PoisonFreeRwLock<T> {
    inner: RwLock<T>,
}

impl<T> PoisonFreeRwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        PoisonFreeRwLock {
            inner: RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, recovering it if a previous writer
    /// panicked.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write guard, recovering it if a previous
    /// writer panicked.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`PoisonFreeMutex`]: waits recover
/// their guard from poisoning the same way `lock` does.
#[derive(Debug, Default)]
pub struct PoisonFreeCondvar {
    inner: Condvar,
}

impl PoisonFreeCondvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until notified, re-acquiring (and if necessary un-poisoning)
    /// the guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(PoisonFreeMutex::new(7u32));
        let m2 = Arc::clone(&m);
        let result = catch_unwind(AssertUnwindSafe(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        }));
        assert!(result.is_err());
        // A std Mutex would now be poisoned; this one hands the value back.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn rwlock_survives_a_panicking_writer() {
        let l = Arc::new(PoisonFreeRwLock::new(vec![1u32, 2]));
        let l2 = Arc::clone(&l);
        let result = catch_unwind(AssertUnwindSafe(move || {
            let _guard = l2.write();
            panic!("writer dies");
        }));
        assert!(result.is_err());
        assert_eq!(*l.read(), vec![1, 2]);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_after_poisoning() {
        let pair = Arc::new((PoisonFreeMutex::new(false), PoisonFreeCondvar::new()));
        // Poison the mutex first.
        let p = Arc::clone(&pair);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _guard = p.0.lock();
            panic!("poison");
        }));
        let p = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *p.0.lock() = true;
            p.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            done = cv.wait(done);
        }
        t.join().expect("setter thread");
    }
}
