//! Determinism over the wire: the PR 4 concurrent-clients suite
//! (`tests/determinism.rs`) replayed through the full service runtime —
//! line-delimited JSON over TCP, the bounded priority mailbox, and the
//! worker pool — must still hand every client payloads bit-identical to
//! a fully serial execution on a cold in-process service. Transport,
//! queueing order, worker count, and codec round-tripping must all be
//! invisible in the payload.

use std::sync::Arc;

use tailors_serve::wire::WireTcpServer;
use tailors_serve::{
    FunctionalRequest, RuntimeConfig, ServiceRuntime, SimRequest, SimResponse, SimService,
    WireClient,
};
use tailors_sim::{ArchConfig, GridMode, MemBudget, Variant};

const SCALE: f64 = 1.0 / 256.0;
const CLIENTS: usize = 4;

/// Same shared request stream as the in-process suite: 8 workloads × 3
/// variants with budgets and grids cycled deterministically.
fn batch() -> Vec<SimRequest> {
    let names = [
        "cant",
        "email-Enron",
        "pdb1HYS",
        "rma10",
        "soc-Epinions1",
        "p2p-Gnutella31",
        "webbase-1M",
        "roadNet-CA",
    ];
    let variants = [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ];
    names
        .iter()
        .enumerate()
        .flat_map(|(i, name)| {
            variants.into_iter().enumerate().map(move |(j, variant)| {
                let mut req = SimRequest::suite(name, SCALE, variant).expect("suite workload");
                if (i + j) % 2 == 0 {
                    req.budget = MemBudget::bytes(64 << 10);
                }
                if j % 2 == 1 {
                    req.grid = GridMode::Grid2D;
                }
                req
            })
        })
        .collect()
}

fn assert_same_payload(a: &SimResponse, b: &SimResponse, context: &str) {
    assert_eq!(a.name, b.name, "{context}");
    assert_eq!(a.metrics, b.metrics, "{context}: {}", a.name);
    assert_eq!(
        a.metrics.cycles.to_bits(),
        b.metrics.cycles.to_bits(),
        "{context}: {} cycles bits",
        a.name
    );
    assert_eq!(
        a.metrics.energy_pj.to_bits(),
        b.metrics.energy_pj.to_bits(),
        "{context}: {} energy bits",
        a.name
    );
}

#[test]
fn concurrent_wire_clients_match_serial_execution_at_every_worker_width() {
    let reqs = batch();
    // Ground truth: a cold service, fully serial, no transport.
    let serial = SimService::new().submit_batch(&reqs, 1);

    for workers in [1usize, 4] {
        let runtime = Arc::new(ServiceRuntime::new(RuntimeConfig {
            workers,
            // Roomy enough that 4 clients never see backpressure; the
            // overload path has its own suite (fault_tolerance.rs).
            mailbox_capacity: 4 * reqs.len(),
            ..RuntimeConfig::default()
        }));
        let mut server =
            WireTcpServer::spawn(Arc::clone(&runtime), "127.0.0.1:0").expect("bind wire server");
        let addr = server.addr();

        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let reqs = reqs.clone();
                std::thread::spawn(move || {
                    let mut wire = WireClient::connect(addr).expect("connect");
                    // Each client rotates the stream so clients race on
                    // *different* requests at any instant while every
                    // request is still served by every client.
                    let start = client * 7 % reqs.len();
                    let responses: Vec<SimResponse> = reqs[start..]
                        .iter()
                        .chain(&reqs[..start])
                        .map(|req| {
                            wire.sim(req)
                                .expect("wire protocol")
                                .expect("request served")
                        })
                        .collect();
                    (start, responses)
                })
            })
            .collect();
        for handle in handles {
            let (start, responses) = handle.join().expect("client thread");
            assert_eq!(responses.len(), serial.len());
            for (i, resp) in responses.iter().enumerate() {
                let serial_idx = (start + i) % serial.len();
                assert_same_payload(
                    resp,
                    &serial[serial_idx],
                    &format!("workers={workers} client-rotation={start}"),
                );
            }
        }
        server.stop();
        let report = runtime.shutdown();
        assert_eq!(report.unserved, 0, "workers={workers}");

        // Overlap really happened, and nothing was lost on the way:
        // every request crossed the wire, the mailbox, and a worker.
        let stats = runtime.stats();
        assert_eq!(stats.submitted, (CLIENTS * reqs.len()) as u64);
        assert_eq!(stats.completed, stats.submitted, "workers={workers}");
        assert_eq!(stats.accounted(), stats.submitted);
        let service = runtime.service().stats();
        assert_eq!(service.requests, (CLIENTS * reqs.len()) as u64);
        assert!(
            service.plan_hits > 0,
            "overlapping clients must share cached plans"
        );
    }
}

#[test]
fn functional_results_are_bit_identical_across_the_wire() {
    let wl = tailors_workloads::by_name("email-Enron")
        .expect("suite workload")
        .scaled(1.0 / 512.0);
    let req = FunctionalRequest {
        workload: wl,
        variant: Variant::default_ob(),
        arch: ArchConfig::extensor().scaled(1.0 / 512.0),
        budget: MemBudget::mib(4),
        grid: GridMode::Grid2D,
        auto_plan: true,
        threads: 2,
    };
    // Cold in-process ground truth.
    let baseline = SimService::new().run_functional(&req).expect("baseline");

    let runtime = Arc::new(ServiceRuntime::new(RuntimeConfig::default()));
    let mut server =
        WireTcpServer::spawn(Arc::clone(&runtime), "127.0.0.1:0").expect("bind wire server");
    let mut wire = WireClient::connect(server.addr()).expect("connect");
    for pass in 0..2 {
        let served = wire
            .functional(&req)
            .expect("wire protocol")
            .expect("request served");
        assert_eq!(served.config, baseline.config, "pass={pass}");
        assert_eq!(served.result, baseline.result, "pass={pass}");
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(served.result.z.values()),
            bits(baseline.result.z.values()),
            "pass={pass}: value bits"
        );
    }
    // `wire` is deliberately still connected here: stop() must not be
    // held hostage by an idle-but-open client connection (regression
    // test — the session loop wakes on a read tick to honor the stop).
    server.stop();
    let report = runtime.shutdown();
    assert_eq!(report.unserved, 0);
    assert_eq!(runtime.stats().completed, 2);
    drop(wire);
}
