//! Consistent-hash ring properties, on arbitrary `MatrixId` sets:
//! assignment is deterministic and stable (two independently-built rings
//! agree on every key, and a rebuilt ring agrees with itself), and
//! excluding one of N shards remaps only that shard's keys — bounded
//! churn is the property the whole sharding design leans on, so it gets
//! pinned here rather than assumed.

use proptest::prelude::*;
use tailors_serve::{HashRing, MatrixId};

/// An arbitrary identity from drawn raw parts. The ring must behave for
/// *any* identity, not just ones the suite workloads produce.
fn id_of(parts: (u64, usize, usize, usize)) -> MatrixId {
    MatrixId {
        hash: parts.0,
        nrows: parts.1,
        ncols: parts.2,
        nnz: parts.3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn assignment_is_deterministic_and_stable(
        shards in 1usize..9,
        vnodes in 1usize..100,
        keys in proptest::collection::vec(
            (0u64..u64::MAX, 1usize..1_000_000, 1usize..1_000_000, 0usize..10_000_000),
            1..200,
        ),
    ) {
        let a = HashRing::new(shards, vnodes);
        let b = HashRing::new(shards, vnodes);
        for parts in keys {
            let id = id_of(parts);
            let s = a.assign(&id);
            prop_assert!(s < shards);
            // Stable: an independently built ring with the same
            // parameters places every key identically (routers on
            // different hosts agree), and re-asking is idempotent.
            prop_assert_eq!(s, b.assign(&id));
            prop_assert_eq!(s, a.assign(&id));
            // The failover order starts at the primary and enumerates
            // every shard exactly once.
            let order: Vec<usize> = a.candidates(&id).collect();
            prop_assert_eq!(order[0], s);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..shards).collect::<Vec<_>>());
        }
    }

    #[test]
    fn removing_one_shard_remaps_only_its_keys(
        shards in 2usize..9,
        vnodes in 1usize..100,
        removed_sel in 0u64..u64::MAX,
        keys in proptest::collection::vec(
            (0u64..u64::MAX, 1usize..1_000_000, 1usize..1_000_000, 0usize..10_000_000),
            1..200,
        ),
    ) {
        let ring = HashRing::new(shards, vnodes);
        let removed = (removed_sel % shards as u64) as usize;
        let mut down = vec![false; shards];
        down[removed] = true;
        for parts in keys {
            let id = id_of(parts);
            let primary = ring.assign(&id);
            let reassigned = ring.assign_excluding(&id, &down).unwrap();
            prop_assert!(!down[reassigned]);
            if primary != removed {
                // Bounded churn: a key whose shard survived must not
                // move — only the removed shard's ~K/N keys re-home.
                prop_assert_eq!(reassigned, primary);
            }
        }
    }

    #[test]
    fn exclusion_composes_with_the_failover_order(
        shards in 2usize..7,
        vnodes in 1usize..64,
        down_mask in proptest::collection::vec(proptest::bool::ANY, 2..7),
        key in (0u64..u64::MAX, 1usize..1_000_000, 1usize..1_000_000, 0usize..10_000_000),
    ) {
        let ring = HashRing::new(shards, vnodes);
        let mut down = vec![false; shards];
        for (i, &d) in down_mask.iter().take(shards).enumerate() {
            down[i] = d;
        }
        let id = id_of(key);
        // assign_excluding is exactly "first live candidate": the single
        // definition both the router's failover walk and the tests use.
        let walked = ring.candidates(&id).find(|&s| !down[s]);
        prop_assert_eq!(ring.assign_excluding(&id, &down), walked);
        if down.iter().all(|&d| d) {
            prop_assert_eq!(walked, None);
        }
    }
}
