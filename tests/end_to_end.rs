//! Cross-crate integration tests: the functional engine (real eddo
//! buffers) against the reference kernels and the analytical model, across
//! the workload suite.

use tailors::sim::functional::{run, FunctionalConfig};
use tailors::sim::{ArchConfig, GridMode, MemBudget, Variant};
use tailors::tensor::ops::{approx_eq, spmspm_a_at};
use tailors::tensor::tiling::RowPanels;

const TINY: f64 = 1.0 / 512.0;

/// The functional engine computes the exact `A·Aᵀ` product through Tailors
/// buffers for every structural family in the suite.
#[test]
fn functional_engine_is_correct_on_every_workload_family() {
    for name in ["rma10", "amazon0312", "roadNet-CA", "web-Google"] {
        let wl = tailors::workloads::by_name(name).expect("suite tensor");
        let a = wl.scaled(TINY).generate();
        let config = FunctionalConfig {
            capacity: (a.nnz() / 6).max(8),
            fifo_region: (a.nnz() / 24).max(1),
            rows_a: (a.nrows() / 5).max(1),
            cols_b: (a.nrows() / 7).max(1),
            overbooking: true,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let result = run(&a, &config).expect("functional run");
        let reference = spmspm_a_at(&a);
        assert!(
            approx_eq(&result.z, &reference, 1e-9),
            "{name}: functional output diverged from reference"
        );
    }
}

/// The functional engine's measured DRAM traffic matches the analytical
/// model's closed form for the stationary operand, including overbooking
/// restreams.
#[test]
fn functional_traffic_matches_analytical_closed_form() {
    let wl = tailors::workloads::by_name("email-Enron").expect("suite tensor");
    let a = wl.scaled(TINY).generate();
    let profile = a.profile();
    let (capacity, fifo) = ((a.nnz() / 5).max(8), (a.nnz() / 20).max(1));
    let (rows_a, cols_b) = ((a.nrows() / 6).max(2), (a.nrows() / 6).max(1));
    let config = FunctionalConfig {
        capacity,
        fifo_region: fifo,
        rows_a,
        cols_b,
        overbooking: true,
        mem_budget: MemBudget::Unbounded,
        grid: GridMode::Panels,
        auto_plan: false,
    };
    let result = run(&a, &config).expect("functional run");
    // The 2-D grid's per-block accounting must reduce to the same closed
    // form (a sub-tile budget maximizes the number of private drivers).
    let gridded = run(
        &a,
        &FunctionalConfig {
            mem_budget: MemBudget::bytes(1),
            grid: GridMode::Grid2D,
            auto_plan: false,
            ..config
        },
    )
    .expect("2-D grid run");
    assert_eq!(gridded, result);

    // Closed form, as computed by the analytical dataflow model.
    let n_b = a.nrows().div_ceil(cols_b) as u64;
    let resident = (capacity - fifo) as u64;
    let panels = RowPanels::new(&profile, rows_a);
    let mut expected_a = 0u64;
    for occ in panels.occupancies() {
        let bumped = if occ > capacity as u64 && rows_a > 1 {
            occ - resident.min(occ)
        } else {
            0
        };
        expected_a += occ + (n_b - 1) * bumped;
    }
    assert_eq!(result.dram_a_fetches, expected_a);

    let n_a = a.nrows().div_ceil(rows_a) as u64;
    assert_eq!(result.dram_b_fetches, n_a * a.nnz() as u64);
}

/// All three variants produce finite, ordered metrics on the whole suite,
/// and prescient never overbooks.
#[test]
fn suite_smoke_all_variants() {
    let arch = ArchConfig::extensor().scaled(TINY);
    for wl in tailors::workloads::suite() {
        let profile = wl.scaled(TINY).generate().profile();
        let n = Variant::ExTensorN.run(&profile, &arch);
        let p = Variant::ExTensorP.run(&profile, &arch);
        let ob = Variant::default_ob().run(&profile, &arch);
        for m in [&n, &p, &ob] {
            assert!(m.cycles.is_finite() && m.cycles > 0.0, "{}", wl.name);
            assert!(m.energy_pj.is_finite() && m.energy_pj > 0.0, "{}", wl.name);
            assert!(m.dram.total >= m.dram.overbook_extra, "{}", wl.name);
        }
        assert_eq!(
            p.reuse.overbooked_a_tiles, 0,
            "{}: P must never overbook",
            wl.name
        );
        // MACs are a property of the workload, not the tiling.
        assert_eq!(n.activity.macs, p.activity.macs, "{}", wl.name);
        assert_eq!(p.activity.macs, ob.activity.macs, "{}", wl.name);
    }
}

/// A memory-budgeted functional run — column-blocked scratch — is
/// bit-identical to the unbudgeted path on real workload families, down to
/// budgets smaller than one column block.
#[test]
fn budgeted_functional_runs_match_unbudgeted_on_workloads() {
    for name in ["rma10", "webbase-1M"] {
        let wl = tailors::workloads::by_name(name).expect("suite tensor");
        let a = wl.scaled(TINY).generate();
        let base = FunctionalConfig {
            capacity: (a.nnz() / 6).max(8),
            fifo_region: (a.nnz() / 24).max(1),
            rows_a: (a.nrows() / 5).max(1),
            cols_b: (a.nrows() / 7).max(1),
            overbooking: true,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let unbudgeted = run(&a, &base).expect("unbudgeted run");
        let one_tile_bytes = 8 * (base.rows_a as u64) * (base.cols_b as u64);
        for budget in [
            MemBudget::bytes(1), // clamps to a single streamed tile
            MemBudget::bytes(one_tile_bytes),
            MemBudget::bytes(3 * one_tile_bytes),
        ] {
            for grid in [GridMode::Panels, GridMode::Grid2D] {
                let budgeted = run(
                    &a,
                    &FunctionalConfig {
                        mem_budget: budget,
                        grid,
                        auto_plan: false,
                        ..base
                    },
                )
                .expect("budgeted run");
                assert_eq!(budgeted, unbudgeted, "{name}: budget {budget} grid {grid}");
            }
        }
    }
}

/// Simulation is fully deterministic end to end.
#[test]
fn end_to_end_determinism() {
    let arch = ArchConfig::extensor().scaled(TINY);
    let wl = tailors::workloads::by_name("soc-Epinions1").expect("suite tensor");
    let run_once = || {
        let profile = wl.scaled(TINY).generate().profile();
        Variant::default_ob().run(&profile, &arch)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.activity, b.activity);
}

/// Tailors never fetch more than buffets would for the same plan, and both
/// compute the same result (the Fig. 3 guarantee, end to end).
#[test]
fn tailors_never_worse_than_buffets() {
    let wl = tailors::workloads::by_name("pdb1HYS").expect("suite tensor");
    let a = wl.scaled(TINY).generate();
    for rows_a in [a.nrows() / 3, a.nrows() / 8] {
        let base = FunctionalConfig {
            capacity: (a.nnz() / 8).max(8),
            fifo_region: (a.nnz() / 32).max(1),
            rows_a: rows_a.max(2),
            cols_b: (a.nrows() / 4).max(1),
            overbooking: true,
            mem_budget: MemBudget::Unbounded,
            grid: GridMode::Panels,
            auto_plan: false,
        };
        let tailors = run(&a, &base).expect("tailors run");
        let buffets = run(
            &a,
            &FunctionalConfig {
                overbooking: false,
                ..base
            },
        )
        .expect("buffet run");
        assert!(approx_eq(&tailors.z, &buffets.z, 1e-9));
        assert!(tailors.dram_a_fetches <= buffets.dram_a_fetches);
    }
}
