//! Runs every figure/table reproduction in sequence (the full evaluation).
//!
//! Usage: `cargo run --release -p tailors-bench --bin run_all [scale] [--threads N]`
//!
//! At `scale = 1.0` (default) the workloads are generated at the paper's
//! full dimensions; expect a few minutes, dominated by tensor generation.
//! `--threads N` pins the suite's worker threads in every child binary
//! (`--threads 1` is the fully serial, deterministic path); without it the
//! children use all available cores.

use std::process::Command;

fn main() {
    let mut scale: Option<String> = None;
    let mut threads: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let n = args.next().expect("--threads requires a value");
            assert!(
                n.parse::<usize>().map(|v| v > 0).unwrap_or(false),
                "--threads must be a positive integer, got {n:?}"
            );
            threads = Some(n);
        } else if arg.starts_with('-') {
            panic!("unknown flag {arg:?}; usage: run_all [scale] [--threads N]");
        } else if scale.is_none() {
            scale = Some(arg);
        } else {
            panic!("unexpected extra argument {arg:?}; usage: run_all [scale] [--threads N]");
        }
    }
    let scale = scale.unwrap_or_else(|| "1.0".to_string());
    let bins = [
        "table2", "fig1", "table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    ];
    for bin in bins {
        println!();
        println!("==================== {bin} ====================");
        let mut cmd = Command::new(
            std::env::current_exe()
                .expect("self path")
                .parent()
                .expect("bin dir")
                .join(bin),
        );
        cmd.arg(&scale);
        if let Some(t) = &threads {
            cmd.env("TAILORS_THREADS", t);
        }
        let status = cmd.status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("failed to launch {bin}: {e}"),
        }
    }
}
