//! Consistent-hash ring properties, on arbitrary `MatrixId` sets:
//! assignment is deterministic and stable (two independently-built rings
//! agree on every key, and a rebuilt ring agrees with itself), and
//! excluding one of N shards remaps only that shard's keys — bounded
//! churn is the property the whole sharding design leans on, so it gets
//! pinned here rather than assumed.

use proptest::prelude::*;
use tailors_serve::{HashRing, MatrixId};

/// An arbitrary identity from drawn raw parts. The ring must behave for
/// *any* identity, not just ones the suite workloads produce.
fn id_of(parts: (u64, usize, usize, usize)) -> MatrixId {
    MatrixId {
        hash: parts.0,
        nrows: parts.1,
        ncols: parts.2,
        nnz: parts.3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn assignment_is_deterministic_and_stable(
        shards in 1usize..9,
        vnodes in 1usize..100,
        keys in proptest::collection::vec(
            (0u64..u64::MAX, 1usize..1_000_000, 1usize..1_000_000, 0usize..10_000_000),
            1..200,
        ),
    ) {
        let a = HashRing::new(shards, vnodes);
        let b = HashRing::new(shards, vnodes);
        for parts in keys {
            let id = id_of(parts);
            let s = a.assign(&id);
            prop_assert!(s < shards);
            // Stable: an independently built ring with the same
            // parameters places every key identically (routers on
            // different hosts agree), and re-asking is idempotent.
            prop_assert_eq!(s, b.assign(&id));
            prop_assert_eq!(s, a.assign(&id));
            // The failover order starts at the primary and enumerates
            // every shard exactly once.
            let order: Vec<usize> = a.candidates(&id).collect();
            prop_assert_eq!(order[0], s);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..shards).collect::<Vec<_>>());
        }
    }

    #[test]
    fn removing_one_shard_remaps_only_its_keys(
        shards in 2usize..9,
        vnodes in 1usize..100,
        removed_sel in 0u64..u64::MAX,
        keys in proptest::collection::vec(
            (0u64..u64::MAX, 1usize..1_000_000, 1usize..1_000_000, 0usize..10_000_000),
            1..200,
        ),
    ) {
        let ring = HashRing::new(shards, vnodes);
        let removed = (removed_sel % shards as u64) as usize;
        let mut down = vec![false; shards];
        down[removed] = true;
        for parts in keys {
            let id = id_of(parts);
            let primary = ring.assign(&id);
            let reassigned = ring.assign_excluding(&id, &down).unwrap();
            prop_assert!(!down[reassigned]);
            if primary != removed {
                // Bounded churn: a key whose shard survived must not
                // move — only the removed shard's ~K/N keys re-home.
                prop_assert_eq!(reassigned, primary);
            }
        }
    }

    #[test]
    fn exclusion_composes_with_the_failover_order(
        shards in 2usize..7,
        vnodes in 1usize..64,
        down_mask in proptest::collection::vec(proptest::bool::ANY, 2..7),
        key in (0u64..u64::MAX, 1usize..1_000_000, 1usize..1_000_000, 0usize..10_000_000),
    ) {
        let ring = HashRing::new(shards, vnodes);
        let mut down = vec![false; shards];
        for (i, &d) in down_mask.iter().take(shards).enumerate() {
            down[i] = d;
        }
        let id = id_of(key);
        // assign_excluding is exactly "first live candidate": the single
        // definition both the router's failover walk and the tests use.
        let walked = ring.candidates(&id).find(|&s| !down[s]);
        prop_assert_eq!(ring.assign_excluding(&id, &down), walked);
        if down.iter().all(|&d| d) {
            prop_assert_eq!(walked, None);
        }
    }

    #[test]
    fn joining_a_member_moves_only_keys_it_now_owns(
        shards in 1usize..8,
        vnodes in 1usize..100,
        keys in proptest::collection::vec(
            (0u64..u64::MAX, 1usize..1_000_000, 1usize..1_000_000, 0usize..10_000_000),
            1..200,
        ),
    ) {
        // `ShardRouter::join` rebuilds the ring over `members + [new]`;
        // the churn bound it leans on is that every key either keeps its
        // owner or moves to the *joiner* — never to a third member.
        let before = HashRing::new(shards, vnodes);
        let grown: Vec<usize> = (0..=shards).collect();
        let after = HashRing::over(&grown, vnodes);
        prop_assert_eq!(after.shards(), shards + 1);
        for parts in keys {
            let id = id_of(parts);
            let old = before.assign(&id);
            let new = after.assign(&id);
            prop_assert!(new == old || new == shards);
        }
    }

    #[test]
    fn leaving_a_member_moves_only_its_keys(
        shards in 2usize..9,
        vnodes in 1usize..100,
        leaver_sel in 0u64..u64::MAX,
        keys in proptest::collection::vec(
            (0u64..u64::MAX, 1usize..1_000_000, 1usize..1_000_000, 0usize..10_000_000),
            1..200,
        ),
    ) {
        // `ShardRouter::leave` rebuilds over the surviving member ids
        // (slot indices unchanged — tombstones). The rebuilt ring must
        // agree with the failover view of the full ring: keys the leaver
        // didn't own stay put, and the leaver's keys land exactly where
        // `assign_excluding` would have sent them.
        let full = HashRing::new(shards, vnodes);
        let leaver = (leaver_sel % shards as u64) as usize;
        let survivors: Vec<usize> = (0..shards).filter(|&m| m != leaver).collect();
        let rebuilt = HashRing::over(&survivors, vnodes);
        prop_assert_eq!(rebuilt.shards(), shards - 1);
        prop_assert_eq!(rebuilt.members(), survivors.as_slice());
        let mut down = vec![false; shards];
        down[leaver] = true;
        for parts in keys {
            let id = id_of(parts);
            let before = full.assign(&id);
            let after = rebuilt.assign(&id);
            if before != leaver {
                prop_assert_eq!(after, before);
            } else {
                prop_assert_eq!(Some(after), full.assign_excluding(&id, &down));
            }
        }
    }

    #[test]
    fn replica_sets_are_distinct_prefix_stable_and_clamped(
        shards in 1usize..8,
        vnodes in 1usize..64,
        r in 0usize..10,
        keys in proptest::collection::vec(
            (0u64..u64::MAX, 1usize..1_000_000, 1usize..1_000_000, 0usize..10_000_000),
            1..100,
        ),
    ) {
        let ring = HashRing::new(shards, vnodes);
        for parts in keys {
            let id = id_of(parts);
            let reps = ring.replicas(&id, r);
            // R live distinct members, clamped to the fleet when r is
            // degenerate (0 acts as 1; r >= N acts as N).
            prop_assert_eq!(reps.len(), r.clamp(1, shards));
            prop_assert_eq!(reps[0], ring.assign(&id));
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), reps.len());
            // Prefix stability: the replica set is the candidate-order
            // prefix, so widening R never reshuffles existing replicas.
            let wider = ring.replicas(&id, r + 1);
            prop_assert_eq!(&wider[..reps.len()], reps.as_slice());
        }
    }
}
