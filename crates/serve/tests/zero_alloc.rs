//! Zero-alloc steady-state regression pin, behind `--features alloc-count`.
//!
//! A counting `#[global_allocator]` wraps the system allocator and tallies
//! every `alloc`/`realloc`/`alloc_zeroed` call in the process. With the
//! profile and plan tiers warm and the generation cache pinned, serving
//! the full suite batch again must perform **zero** heap allocations —
//! the entire hot path (cache lookups, `run_planned` replay, response
//! construction) runs on plain data and pre-resolved `Arc`s.
//!
//! The functional path cannot be literally zero-alloc (each response
//! carries a freshly assembled result matrix the caller keeps), so its
//! pin is relative: with the scratch pool on, a steady-state request
//! allocates strictly less than the same request with pooling disabled —
//! the kernel + output-assembly scratch comes from recycled pool
//! inventory instead of the allocator.
//!
//! Tests in this binary serialize on a mutex: the counters are global, so
//! a concurrently running test would pollute a measurement window.

#![cfg(feature = "alloc-count")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tailors_serve::{FunctionalRequest, SimRequest, SimService};
use tailors_sim::{ArchConfig, GridMode, MemBudget, Variant};
use tailors_tensor::storage::{pooling_enabled, set_pooling};

/// Tallies allocator calls; frees are deliberately not counted (dropping
/// a warmed response between windows must not perturb the measurement).
struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the only addition is a relaxed counter bump,
// which cannot itself allocate or violate layout requirements.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System` in `alloc`/`realloc`
        // above with this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` come from a prior `System` allocation;
        // `new_size` obeys the caller's `GlobalAlloc` obligations.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Serializes the measurement windows (counters are process-global).
static WINDOW: Mutex<()> = Mutex::new(());

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::SeqCst)
}

fn suite_requests(scale: f64) -> Vec<SimRequest> {
    let arch = ArchConfig::extensor().scaled(scale);
    tailors_workloads::suite()
        .iter()
        .flat_map(|wl| {
            [
                Variant::ExTensorN,
                Variant::ExTensorP,
                Variant::default_ob(),
            ]
            .map(|variant| SimRequest {
                workload: wl.scaled(scale),
                variant,
                arch,
                budget: MemBudget::Unbounded,
                grid: GridMode::Panels,
                auto_plan: false,
            })
        })
        .collect()
}

/// The acceptance pin: with every cache tier warm, re-serving the whole
/// suite batch performs exactly zero heap allocations.
#[test]
fn hot_served_suite_batch_allocates_nothing() {
    let _window = WINDOW.lock().unwrap_or_else(|e| e.into_inner());
    let reqs = suite_requests(1.0 / 64.0);
    // Pin the tensors so the generation cache cannot evict and force a
    // regeneration mid-window.
    let pinned: Vec<_> = reqs
        .iter()
        .map(|r| tailors_workloads::generate_cached(&r.workload))
        .collect();
    let service = SimService::new();
    // Two warm passes: the first fills the profile/plan tiers, the
    // second flushes any one-time lazy work so the window sees only the
    // steady state.
    for req in &reqs {
        black_box(service.submit(req));
    }
    for req in &reqs {
        black_box(service.submit(req));
    }

    let before = allocs();
    for req in &reqs {
        black_box(service.submit(req));
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "hot suite batch must not touch the allocator ({} requests)",
        reqs.len()
    );
    drop(pinned);
}

/// The functional steady state: pooled scratch makes a warm request
/// allocate strictly less than the identical request with pooling off.
/// (The residual pooled allocations are the response's own result
/// buffers, which the caller keeps — those can never come from a pool.)
#[test]
fn pooled_functional_request_allocates_less_than_fresh() {
    let _window = WINDOW.lock().unwrap_or_else(|e| e.into_inner());
    let scale = 1.0 / 64.0;
    let wl = tailors_workloads::suite()[0].scaled(scale);
    let req = FunctionalRequest {
        workload: wl,
        variant: Variant::default_ob(),
        arch: ArchConfig::extensor().scaled(scale),
        budget: MemBudget::bytes(1 << 20),
        grid: GridMode::Panels,
        auto_plan: false,
        threads: 1,
    };
    let pinned = tailors_workloads::generate_cached(&req.workload);
    let service = SimService::new();

    let was_pooling = pooling_enabled();
    set_pooling(true);
    for _ in 0..2 {
        service.run_functional(&req).expect("warm pooled serve");
    }
    let before = allocs();
    black_box(service.run_functional(&req).expect("pooled serve"));
    let pooled = allocs() - before;

    set_pooling(false);
    service.run_functional(&req).expect("settle fresh serve");
    let before = allocs();
    black_box(service.run_functional(&req).expect("fresh serve"));
    let fresh = allocs() - before;
    set_pooling(was_pooling);

    assert!(
        pooled < fresh,
        "pooled steady state must allocate less than fresh-alloc \
         (pooled {pooled} vs fresh {fresh})"
    );
    drop(pinned);
}
