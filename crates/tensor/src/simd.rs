//! SIMD-accelerated fiber intersection — the workspace's one audited
//! `unsafe` island.
//!
//! Every other crate (and every other module of this crate) keeps the
//! workspace-wide no-`unsafe` stance. Here the crate root relaxes
//! `#![forbid(unsafe_code)]` to `#![deny(unsafe_code)]` so that this
//! module — and only this module — can carry scoped
//! `#[allow(unsafe_code)]` attributes on the three functions that need
//! them. The deal in exchange:
//!
//! * every `unsafe` block is minimal and carries a `// SAFETY:` comment
//!   stating the invariant that discharges it;
//! * `unsafe_op_in_unsafe_fn` is denied crate-wide, so even inside a
//!   `#[target_feature]` function each unsafe operation sits in its own
//!   audited block;
//! * the kernels are pure match-*counting* functions over immutable
//!   `&[u32]` slices — no pointers escape, nothing is written through,
//!   and the worst a bug could produce is a wrong count, which the
//!   parity property tests (SIMD vs scalar vs two-finger, both operand
//!   orders) would catch.
//!
//! # Dispatch table
//!
//! [`Fiber::intersect_counted_blocked`](crate::fiber::Fiber::intersect_counted_blocked)
//! consults [`active_level`] once per process and then dispatches:
//!
//! | `TAILORS_SIMD` | CPU features               | kernel                            |
//! |----------------|----------------------------|-----------------------------------|
//! | `off`/`0`/`no` | (ignored)                  | scalar superblock walk            |
//! | unset / `auto` | AVX2 **and** AVX-512F+CD   | raced once, faster kernel wins    |
//! | unset / `auto` | `avx512f`+`avx512cd` only  | `matches_avx512` (VPCONFLICTD)    |
//! | unset / `auto` | `avx2` only                | `matches_avx2` (rotation merge)   |
//! | unset / `auto` | neither / non-x86_64       | scalar superblock walk            |
//! | `avx2`         | `avx2` present             | `matches_avx2` forced             |
//! | `avx512`       | `avx512f` + `avx512cd`     | `matches_avx512` forced           |
//!
//! The `Auto` race exists because feature bits don't order the kernels:
//! `vpconflictd` is native-fast on some micro-architectures and
//! microcoded on others, where the AVX2 rotation merge beats it. The
//! race measures once per process (deterministic inputs, best-of-5);
//! results are identical either way, only throughput differs.
//!
//! Forcing a level the CPU lacks falls back to the scalar walk (never a
//! crash): the `#[target_feature]` kernels are only ever *called* behind
//! an `is_x86_feature_detected!` check, which is exactly the invariant
//! their `// SAFETY:` comments cite.
//!
//! Dispatch is bit-invisible: all kernels return the exact match count,
//! and the caller reconstructs `scanned` through the same
//! `merge_endpoints` rank query the scalar paths use, so
//! `(matches, scanned)` never depends on which kernel ran.
//!
//! # Kernel shapes
//!
//! **AVX2 rotation-compare merge** ([`matches_avx2`]): load 8
//! coordinates from each stream; compare the `a` vector against all 8
//! lane-rotations of the `b` vector (`vpermd` by 8 precomputed,
//! mutually independent index vectors — not a chained rotate, which
//! would serialize on the permute latency); OR the 8 compare masks and
//! subtract from a per-lane accumulator (`0 - (-1) = +1` per hit).
//! Because fiber coordinates are strictly increasing, all 8 lanes of a
//! window are distinct, so each (a-lane, b-lane) pair can match under at
//! most one rotation and the OR never collapses two hits into one.
//! Window advance follows the classic block-merge rule: advance
//! whichever side's max is smaller, both on a tie — re-counting is
//! impossible because after a counted window the advanced side's next
//! window is strictly past every coordinate the other window holds.
//!
//! **AVX-512CD conflict kernel** ([`matches_avx512`]): pack the 8-wide
//! `a` window into lanes 0–7 and the 8-wide `b` window into lanes 8–15
//! of one `zmm`; `vpconflictd` reports, per lane, a bitmask of earlier
//! equal lanes, so a `b` lane equals some `a` lane iff its conflict
//! word intersects `0xFF`. One test-against-0xFF mask op and a popcount
//! of the high 8 mask bits counts the window's matches. (A 16-lane
//! rotation variant loses on AVX-512: compares return k-masks and both
//! `vpermd` and `vpcmpd` fight over port 5, so the conflict form does
//! the same work in ~a third of the µops.)
//!
//! Both kernels finish with the same scalar tail (< 8 leftovers per
//! side) via `partition_point` — small enough that it never dominates.

use std::sync::OnceLock;

/// Which intersect kernel the process dispatches to (resolved once from
/// `TAILORS_SIMD` + CPU feature detection; see [`active_level`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar superblock walk (the PR 3/5 path) — also the
    /// forced fallback under `TAILORS_SIMD=off` or on non-x86_64.
    Scalar,
    /// 8-lane AVX2 rotation-compare merge.
    Avx2,
    /// 16-lane AVX-512CD conflict-detect kernel.
    Avx512,
}

impl core::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        })
    }
}

/// What the `TAILORS_SIMD` environment variable asked for, before CPU
/// capability is consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Force the scalar walk regardless of CPU features.
    Off,
    /// Pick the widest kernel the CPU supports (the unset default).
    Auto,
    /// Use the AVX2 kernel if present, else scalar (bench/test aid).
    ForceAvx2,
    /// Use the AVX-512 kernel if present, else scalar (bench/test aid).
    ForceAvx512,
}

/// The grammar behind the `TAILORS_SIMD` knob, split out so the accepted
/// spellings are testable without mutating the process environment
/// (matching `parse_auto_plan` in `tailors_sim::exec`). `None` means
/// unparseable.
pub fn parse_simd_mode(s: &str) -> Option<SimdMode> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" | "no" | "scalar" => Some(SimdMode::Off),
        "" | "on" | "1" | "true" | "yes" | "auto" => Some(SimdMode::Auto),
        "avx2" => Some(SimdMode::ForceAvx2),
        "avx512" => Some(SimdMode::ForceAvx512),
        _ => None,
    }
}

/// The requested mode from `TAILORS_SIMD` (`run_all --no-simd` and
/// `serve --no-simd` forward `off` to every child binary), or
/// [`SimdMode::Auto`] when unset.
///
/// # Panics
///
/// Panics if `TAILORS_SIMD` is set to anything outside the grammar of
/// [`parse_simd_mode`].
pub fn simd_mode_from_env() -> SimdMode {
    match std::env::var("TAILORS_SIMD") {
        Err(_) => SimdMode::Auto,
        Ok(s) => parse_simd_mode(&s).unwrap_or_else(|| {
            panic!("TAILORS_SIMD must be off/auto/avx2/avx512 (or a boolean), got {s:?}")
        }),
    }
}

/// The kernel level this process dispatches to, resolved once (env knob
/// + `is_x86_feature_detected!`) and cached for the process lifetime.
pub fn active_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| resolve_level(simd_mode_from_env()))
}

/// Maps a requested mode onto what this CPU can actually run. Forced
/// levels degrade to [`SimdLevel::Scalar`] (never a crash) when the
/// features are absent.
fn resolve_level(mode: SimdMode) -> SimdLevel {
    match mode {
        SimdMode::Off => SimdLevel::Scalar,
        SimdMode::Auto => match (have_avx2(), have_avx512()) {
            (false, false) => SimdLevel::Scalar,
            (true, false) => SimdLevel::Avx2,
            (false, true) => SimdLevel::Avx512,
            (true, true) => race_kernels(),
        },
        SimdMode::ForceAvx2 => {
            if have_avx2() {
                SimdLevel::Avx2
            } else {
                SimdLevel::Scalar
            }
        }
        SimdMode::ForceAvx512 => {
            if have_avx512() {
                SimdLevel::Avx512
            } else {
                SimdLevel::Scalar
            }
        }
    }
}

/// When a CPU advertises both kernels' features, feature bits alone
/// don't say which kernel is faster: `vpconflictd` is a fast native
/// instruction on some parts and microcoded (slower than the whole AVX2
/// rotation merge) on others. So `Auto` doesn't trust the bits — it
/// races the two kernels once per process on a deterministic synthetic
/// fiber pair (best of 5 passes each, ~tens of µs total, cached behind
/// [`active_level`]'s `OnceLock`) and dispatches to the winner. Results
/// never depend on the outcome; only the cycle count does.
fn race_kernels() -> SimdLevel {
    // Interleaved strides with ~20% matches — roughly the balanced-regime
    // shape the blocked path sees — long enough (4096 each) that the
    // window loop dominates the tail.
    let a: Vec<u32> = (0..4096u32).map(|i| i * 5).collect();
    let b: Vec<u32> = (0..4096u32).map(|i| i * 4).collect();
    let mut winner = (u128::MAX, SimdLevel::Avx2);
    for level in [SimdLevel::Avx2, SimdLevel::Avx512] {
        let mut best = u128::MAX;
        for _ in 0..5 {
            let start = std::time::Instant::now();
            let m = intersect_matches_at(level, &a, &b);
            std::hint::black_box(m);
            best = best.min(start.elapsed().as_nanos());
        }
        if best < winner.0 {
            winner = (best, level);
        }
    }
    winner.1
}

#[cfg(target_arch = "x86_64")]
fn have_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(target_arch = "x86_64")]
fn have_avx512() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512cd")
}

#[cfg(not(target_arch = "x86_64"))]
fn have_avx2() -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
fn have_avx512() -> bool {
    false
}

/// Counts coordinates common to `a` and `b` (both strictly increasing)
/// with the process-wide active kernel. Returns `None` when the active
/// level is [`SimdLevel::Scalar`] — the caller then runs its portable
/// superblock walk, keeping this module free of any duplicate scalar
/// logic.
pub fn intersect_matches(a: &[u32], b: &[u32]) -> Option<usize> {
    intersect_matches_at(active_level(), a, b)
}

/// [`intersect_matches`] at an explicit level, ignoring the env knob
/// (parity tests and benches use this to pin each kernel). Returns
/// `None` when `level` is scalar **or** the CPU lacks the features —
/// the `#[target_feature]` kernels are never called undetected.
pub fn intersect_matches_at(level: SimdLevel, a: &[u32], b: &[u32]) -> Option<usize> {
    match level {
        SimdLevel::Scalar => None,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if have_avx2() => {
            // SAFETY: `matches_avx2` requires AVX2, checked on the line
            // above via `is_x86_feature_detected!`.
            #[allow(unsafe_code)]
            Some(unsafe { x86::matches_avx2(a, b) })
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 if have_avx512() => {
            // SAFETY: `matches_avx512` requires AVX-512F + AVX-512CD,
            // checked on the line above via `is_x86_feature_detected!`.
            #[allow(unsafe_code)]
            Some(unsafe { x86::matches_avx512(a, b) })
        }
        _ => None,
    }
}

/// Scalar remainder shared by both kernels: the main loops exit once
/// *either* stream has fewer than one SIMD window left, so the shorter
/// remainder (at most 7 coordinates) probes the longer one by
/// `partition_point` — never hot.
fn tail_matches(a: &[u32], b: &[u32]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut matches = 0usize;
    let mut pos = 0usize;
    for &c in short {
        if pos >= long.len() {
            break;
        }
        pos += long[pos..].partition_point(|&x| x < c);
        if long.get(pos) == Some(&c) {
            matches += 1;
            pos += 1;
        }
    }
    matches
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The two `#[target_feature]` kernels. All `unsafe` in the crate
    //! lives in this submodule (plus the two detected call sites in the
    //! parent); every block carries its discharging `// SAFETY:`.

    use super::tail_matches;
    use core::arch::x86_64::*;

    /// Match count of two strictly increasing `u32` streams, 8 lanes at
    /// a time (see the module docs for the rotation-compare shape).
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2
    /// (`is_x86_feature_detected!("avx2")`).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matches_avx2(a: &[u32], b: &[u32]) -> usize {
        // The 8 lane-rotation index vectors for vpermd. Independent
        // constants (rotation r maps lane l to source lane (l + r) & 7)
        // so the 8 permutes have no chain dependency. Over r = 0..8
        // every (a-lane, b-lane) pair is compared exactly once.
        // (Register-only intrinsics are safe inside a `#[target_feature]`
        // body; only the raw-pointer loads/stores below need `unsafe`.)
        let rot: [__m256i; 7] = [
            _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0),
            _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1),
            _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2),
            _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3),
            _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4),
            _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5),
            _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6),
        ];
        let mut acc = _mm256_setzero_si256();
        let (mut i, mut j) = (0usize, 0usize);
        while i + 8 <= a.len() && j + 8 <= b.len() {
            // Window maxima for the advance rule. In-bounds: the loop
            // condition guarantees i+7 < a.len() and j+7 < b.len().
            let a_hi = a[i + 7];
            let b_hi = b[j + 7];
            // SAFETY: unaligned 32-byte load of a[i..i+8]; i+8 <= a.len()
            // by the loop condition, and `u32` slices are valid for
            // byte-wise reads of their full length.
            let va = unsafe { _mm256_loadu_si256(a.as_ptr().add(i).cast()) };
            // SAFETY: unaligned 32-byte load of b[j..j+8]; j+8 <= b.len()
            // by the loop condition.
            let vb = unsafe { _mm256_loadu_si256(b.as_ptr().add(j).cast()) };
            let e0 = _mm256_cmpeq_epi32(va, vb);
            let e1 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[0]));
            let e2 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[1]));
            let e3 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[2]));
            let e4 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[3]));
            let e5 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[4]));
            let e6 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[5]));
            let e7 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot[6]));
            // Tree-OR: distinct coordinates within each window mean
            // each a-lane hits under at most one rotation, so OR-ing
            // masks loses nothing; a hit lane is all-ones (-1) and
            // subtracting adds +1 to that lane's running count.
            let hit = _mm256_or_si256(
                _mm256_or_si256(_mm256_or_si256(e0, e1), _mm256_or_si256(e2, e3)),
                _mm256_or_si256(_mm256_or_si256(e4, e5), _mm256_or_si256(e6, e7)),
            );
            acc = _mm256_sub_epi32(acc, hit);
            // Advance whichever window's max is smaller; both on a tie.
            // No match is dropped (the kept window still covers every
            // not-yet-passed coordinate) and none is double counted
            // (the advanced side moves strictly past the kept window's
            // compared range). Branchless on purpose: which side
            // advances is data-dependent and would mispredict roughly
            // every other window.
            i += 8 * usize::from(a_hi <= b_hi);
            j += 8 * usize::from(b_hi <= a_hi);
        }
        // Per-lane hit counts can't overflow u32: each loop iteration
        // adds at most 1 per lane and fiber length is bounded by the
        // u32 coordinate space.
        let mut lanes = [0u32; 8];
        // SAFETY: storing 32 bytes into a [u32; 8], which is exactly 32
        // bytes and validly writable.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc) };
        let vector: usize = lanes.iter().map(|&x| x as usize).sum();
        vector + tail_matches(&a[i..], &b[j..])
    }

    /// Match count of two strictly increasing `u32` streams via
    /// AVX-512CD conflict detection: an 8+8 window packed into one
    /// `zmm`, where `vpconflictd` marks each `b` lane that equals any
    /// `a` lane (see the module docs).
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX-512F and AVX-512CD
    /// (`is_x86_feature_detected!`).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f,avx512cd")]
    pub(super) unsafe fn matches_avx512(a: &[u32], b: &[u32]) -> usize {
        let low_byte = _mm512_set1_epi32(0xFF);
        let mut matches = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i + 8 <= a.len() && j + 8 <= b.len() {
            // Window maxima for the advance rule. In-bounds: loop
            // condition guarantees i+7 < a.len(), j+7 < b.len().
            let a_hi = a[i + 7];
            let b_hi = b[j + 7];
            // SAFETY: unaligned 32-byte loads of a[i..i+8] / b[j..j+8],
            // in bounds by the loop condition (AVX — subsumed by this
            // function's AVX-512F contract).
            let va = unsafe { _mm256_loadu_si256(a.as_ptr().add(i).cast()) };
            // SAFETY: as above for b.
            let vb = unsafe { _mm256_loadu_si256(b.as_ptr().add(j).cast()) };
            // a window in lanes 0-7, b window in lanes 8-15.
            let w = _mm512_inserti64x4(_mm512_castsi256_si512(va), vb, 1);
            // conflict[l] = bitmask of earlier lanes equal to lane l.
            // For b lanes (8-15), bits 0-7 flag equality with an a
            // lane; bits 8..l are always clear because coordinates
            // within a window are strictly increasing (distinct).
            // For a lanes the whole low byte is clear for the same
            // reason, but the >> 8 below discards them anyway.
            let conflict = _mm512_conflict_epi32(w);
            let against_a = _mm512_test_epi32_mask(conflict, low_byte);
            matches += ((against_a >> 8) as u32).count_ones() as usize;
            // Branchless advance (see `matches_avx2` for the argument).
            i += 8 * usize::from(a_hi <= b_hi);
            j += 8 * usize::from(b_hi <= a_hi);
        }
        matches + tail_matches(&a[i..], &b[j..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_matches(a: &[u32], b: &[u32]) -> usize {
        let (mut i, mut j, mut m) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                core::cmp::Ordering::Equal => {
                    m += 1;
                    i += 1;
                    j += 1;
                }
                core::cmp::Ordering::Less => i += 1,
                core::cmp::Ordering::Greater => j += 1,
            }
        }
        m
    }

    fn check_all_levels(a: &[u32], b: &[u32]) {
        let want = linear_matches(a, b);
        for level in [SimdLevel::Avx2, SimdLevel::Avx512] {
            if let Some(got) = intersect_matches_at(level, a, b) {
                assert_eq!(got, want, "{level} a={a:?} b={b:?}");
            }
            if let Some(got) = intersect_matches_at(level, b, a) {
                assert_eq!(got, want, "{level} swapped a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn env_grammar() {
        for off in ["off", "0", "false", "NO", " Scalar "] {
            assert_eq!(parse_simd_mode(off), Some(SimdMode::Off), "{off:?}");
        }
        for auto in ["", "on", "1", "auto", "TRUE", "yes"] {
            assert_eq!(parse_simd_mode(auto), Some(SimdMode::Auto), "{auto:?}");
        }
        assert_eq!(parse_simd_mode("AVX2"), Some(SimdMode::ForceAvx2));
        assert_eq!(parse_simd_mode("avx512"), Some(SimdMode::ForceAvx512));
        assert_eq!(parse_simd_mode("mmx"), None);
        assert_eq!(parse_simd_mode("2"), None);
    }

    #[test]
    fn off_mode_always_resolves_scalar() {
        assert_eq!(resolve_level(SimdMode::Off), SimdLevel::Scalar);
        assert_eq!(intersect_matches_at(SimdLevel::Scalar, &[1, 2], &[2]), None);
    }

    #[test]
    fn kernel_corner_cases() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![]),
            (vec![], (0..40).collect()),
            (vec![7], (0..40).collect()),
            // Sub-width operands: everything lands in the scalar tail.
            ((0..7).collect(), (3..10).collect()),
            ((0..3).collect(), (0..3).collect()),
            // Exactly one window each, identical.
            ((0..8).collect(), (0..8).collect()),
            // One window vs shifted window (partial overlap).
            ((0..8).collect(), (4..12).collect()),
            // Tie on window maxima (both advance).
            ((0..8).collect(), vec![0, 1, 2, 3, 4, 5, 6, 7]),
            // Disjoint-window fast paths in both directions.
            ((0..16).collect(), (100..116).collect()),
            ((100..116).collect(), (0..16).collect()),
            // Fully dense long runs (every lane matches, every window).
            ((0..256).collect(), (0..256).collect()),
            // Dense vs strided.
            ((0..256).collect(), (0..128).map(|i| i * 2).collect()),
            // Ragged tails below one SIMD width after whole windows.
            ((0..19).collect(), (5..21).collect()),
            ((0..8).collect(), (0..9).collect()),
            // Wide coordinate range incl. the top of u32 space.
            (
                vec![0, 255, 256, 1 << 20, u32::MAX - 1, u32::MAX],
                vec![255, 1 << 20, u32::MAX],
            ),
            // Repeated near-misses (off-by-one everywhere).
            (
                (0..32).map(|i| i * 2).collect(),
                (0..32).map(|i| i * 2 + 1).collect(),
            ),
        ];
        for (a, b) in &cases {
            check_all_levels(a, b);
        }
    }

    #[test]
    fn active_level_is_consistent_with_dispatch() {
        let a: Vec<u32> = (0..64).collect();
        let b: Vec<u32> = (0..64).map(|i| i * 3).collect();
        match active_level() {
            SimdLevel::Scalar => assert_eq!(intersect_matches(&a, &b), None),
            level => assert_eq!(
                intersect_matches(&a, &b),
                intersect_matches_at(level, &a, &b)
            ),
        }
    }
}
