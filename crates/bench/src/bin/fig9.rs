//! Fig. 9: the cost side of overbooking at y = 10 %.
//!
//! (a) per-workload fraction of DRAM traffic spent streaming bumped data
//!     through Tailors (paper average: 26 %);
//! (b) data reused vs bumped-data percentage, with their correlation
//!     (paper: strongly inversely correlated).
//!
//! Usage: `cargo run --release -p tailors-bench --bin fig9 [scale]`

use tailors_bench::{bar, rule, scale_from_args, simulate_suite};
use tailors_tensor::stats::pearson;

fn main() {
    let scale = scale_from_args();
    let runs = simulate_suite(scale);

    println!("Fig. 9a — DRAM traffic share of overbooking streaming (scale = {scale})");
    rule(70);
    println!(
        "{:<20} {:>10} {:>10}  overhead bar",
        "workload", "baseline%", "overhead%"
    );
    rule(70);
    let mut overheads = Vec::new();
    for r in &runs {
        let ovh = r.ob.dram.overhead_fraction();
        overheads.push(ovh);
        println!(
            "{:<20} {:>9.1}% {:>9.1}%  {}",
            r.workload.name,
            100.0 * (1.0 - ovh),
            100.0 * ovh,
            bar(ovh, 24)
        );
    }
    rule(70);
    let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!("average overhead: {:.1}%   (paper: 26%)", 100.0 * avg);

    println!();
    println!("Fig. 9b — data reused vs bumped data (y = 10%)");
    rule(56);
    println!("{:<20} {:>12} {:>12}", "workload", "bumped %", "reused %");
    rule(56);
    let mut bumped = Vec::new();
    let mut reused = Vec::new();
    for r in &runs {
        let b = 100.0 * r.ob.reuse.bumped_fraction;
        let u = 100.0 * r.ob.reuse.reused_fraction;
        bumped.push(b);
        reused.push(u);
        println!("{:<20} {:>11.1}% {:>11.1}%", r.workload.name, b, u);
    }
    rule(56);
    match pearson(&bumped, &reused) {
        Some(rho) => {
            println!("correlation(bumped, reused) = {rho:.3}   (paper: strong inverse correlation)")
        }
        None => println!("correlation undefined (degenerate data)"),
    }
}
