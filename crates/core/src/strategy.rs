//! The tiling-strategy taxonomy of Table 1, with measurable adaptability
//! (buffer utilization) and efficiency (tiling tax).
//!
//! | Strategy | Buffer utilization | Tiling tax |
//! |---|---|---|
//! | Uniform shape | very low | none |
//! | Prescient uniform shape | low | high (preprocessing) |
//! | Uniform occupancy (PST) | high | very high (operand matching) |
//! | Overbooking (this paper) | high | low (sampling only) |

use tailors_tensor::tiling::RowPanels;
use tailors_tensor::MatrixProfile;

use crate::swiftiles::{rows_for_size, Swiftiles, SwiftilesConfig};

/// A tiling strategy from the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TilingStrategy {
    /// Uniform-shape CST sized for the worst case (dense tiles): the tile's
    /// coordinate-space *size* may not exceed the buffer capacity. Zero
    /// tiling tax, abysmal utilization on sparse data. (ExTensor-N.)
    UniformShape,
    /// Uniform-shape CST sized with prescient knowledge of the maximum tile
    /// occupancy: the largest uniform shape whose fullest tile still fits.
    /// High preprocessing tax. (ExTensor-P.)
    PrescientUniformShape,
    /// Overbooked CST: Swiftiles picks a size where `y%` of tiles overbook.
    /// (ExTensor-OB.)
    Overbooked(SwiftilesConfig),
    /// Uniform-occupancy position-space tiling: tiles hold exactly the
    /// buffer capacity in nonzeros (emulated; real hardware pays a large
    /// runtime operand-matching tax, §2.2.2).
    UniformOccupancy,
}

/// The tiling tax a strategy pays (Table 1's "efficiency" axis), split into
/// its two sources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TilingTax {
    /// Nonzeros inspected before execution to choose the tile size
    /// (prescient traversals, Swiftiles sampling).
    pub preprocessing_nnz: u64,
    /// Runtime operand-matching work in element-traversals (PST's search
    /// for matching operand ranges).
    pub matching_ops: u64,
}

impl TilingTax {
    /// Total tax in element-touches.
    pub fn total(&self) -> u64 {
        self.preprocessing_nnz + self.matching_ops
    }
}

/// The outcome of applying a tiling strategy to one tensor and buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct TileChoice {
    /// Rows per coordinate-space tile (row panels spanning `K`). For
    /// [`TilingStrategy::UniformOccupancy`] this is a *nominal* average
    /// (PST tiles have no uniform shape).
    pub rows_per_tile: usize,
    /// Number of tiles the tensor partitions into.
    pub n_tiles: usize,
    /// Mean buffer utilization across tiles (Table 1's adaptability).
    pub mean_utilization: f64,
    /// Fraction of tiles that overbook the buffer.
    pub overbooking_rate: f64,
    /// The tax paid to arrive at this tiling.
    pub tax: TilingTax,
}

impl TilingStrategy {
    /// Applies the strategy to `profile` for an operand buffer of
    /// `capacity` nonzeros.
    ///
    /// For strategies that must reason about the *other* operand at runtime
    /// (PST), the matching tax is computed against `profile` itself, which
    /// matches the paper's `A·Aᵀ` workload where both operands share one
    /// occupancy structure.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `profile` has no nonzeros.
    pub fn choose(&self, profile: &MatrixProfile, capacity: u64) -> TileChoice {
        assert!(capacity > 0, "buffer capacity must be positive");
        assert!(profile.nnz() > 0, "cannot tile an empty tensor");
        match self {
            TilingStrategy::UniformShape => {
                // Dense worst case: size (zeros included) bounded by the
                // buffer; at least one row.
                let rows = rows_for_size(profile, capacity);
                finish(profile, capacity, rows, TilingTax::default())
            }
            TilingStrategy::PrescientUniformShape => {
                let (rows, candidates) = prescient_rows(profile, capacity);
                let tax = TilingTax {
                    // Each candidate shape requires a full-tensor occupancy
                    // traversal (§2.2.1).
                    preprocessing_nnz: candidates * profile.nnz(),
                    matching_ops: 0,
                };
                finish(profile, capacity, rows, tax)
            }
            TilingStrategy::Overbooked(config) => {
                let est = Swiftiles::new(*config).estimate(profile, capacity);
                let tax = TilingTax {
                    preprocessing_nnz: est.sampling_nnz_touched,
                    matching_ops: 0,
                };
                finish(profile, capacity, est.rows_target, tax)
            }
            TilingStrategy::UniformOccupancy => {
                // PST: every tile holds exactly `capacity` nonzeros (the
                // last may be ragged). Utilization is perfect by
                // construction; the cost is a full traversal of the other
                // operand per tile for operand matching (§2.2.2).
                let n_tiles = profile.nnz().div_ceil(capacity).max(1) as usize;
                let nominal_rows = (profile.nrows() / n_tiles).max(1);
                let last = profile.nnz() - (n_tiles as u64 - 1) * capacity;
                let mean_utilization =
                    ((n_tiles as u64 - 1) as f64 + last as f64 / capacity as f64) / n_tiles as f64;
                TileChoice {
                    rows_per_tile: nominal_rows,
                    n_tiles,
                    mean_utilization,
                    overbooking_rate: 0.0,
                    tax: TilingTax {
                        preprocessing_nnz: 0,
                        // Matching walks both coordinate streams per tile:
                        // the full other operand *and* its own coordinates
                        // against it (§2.2.2's runtime two-finger traversal
                        // over tiles of varying shapes, paid on every
                        // execution rather than once in preprocessing).
                        matching_ops: n_tiles as u64 * 2 * profile.nnz(),
                    },
                }
            }
        }
    }
}

fn finish(profile: &MatrixProfile, capacity: u64, rows: usize, tax: TilingTax) -> TileChoice {
    let panels = RowPanels::new(profile, rows);
    // One fused pass over the tiling for both Table-1 statistics — the
    // prescient planner lands on near-per-row tilings for small buffers,
    // where separate utilization and overbooking walks dominated the
    // whole `choose` call.
    let summary = panels.capacity_summary(capacity);
    TileChoice {
        rows_per_tile: rows,
        n_tiles: panels.n_tiles(),
        mean_utilization: summary.mean_utilization,
        overbooking_rate: summary.overbooking_rate,
        tax,
    }
}

/// Finds the largest `rows_per_tile` whose maximum panel occupancy fits in
/// `capacity`, by doubling then binary search. Returns `(rows,
/// candidates_checked)`; `rows` is at least 1 even if a single row
/// overflows (a single row is the smallest possible uniform shape along a
/// `K`-spanning panel).
fn prescient_rows(profile: &MatrixProfile, capacity: u64) -> (usize, u64) {
    let nrows = profile.nrows();
    // Short-circuit at the first overflowing panel: most candidates in the
    // bracketing phase fail, and failing candidates fail early on skewed
    // tensors, so this is far cheaper than materializing max_occupancy.
    let fits = |rows: usize| RowPanels::new(profile, rows).fits_within(capacity);
    let mut candidates = 1u64;
    if !fits(1) {
        return (1, candidates);
    }
    // Exponential growth to bracket the boundary.
    let mut lo = 1usize;
    let mut hi = 1usize;
    while hi < nrows {
        hi = (hi * 2).min(nrows);
        candidates += 1;
        if fits(hi) {
            lo = hi;
            if hi == nrows {
                return (nrows, candidates);
            }
        } else {
            break;
        }
    }
    // Binary search in (lo, hi): lo fits, hi does not (or hi == nrows).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        candidates += 1;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailors_tensor::gen::GenSpec;

    fn profile() -> MatrixProfile {
        GenSpec::power_law(10_000, 10_000, 100_000)
            .seed(11)
            .generate()
            .profile()
    }

    #[test]
    fn uniform_shape_pays_no_tax_and_wastes_buffer() {
        let p = profile();
        let choice = TilingStrategy::UniformShape.choose(&p, 4_096);
        assert_eq!(choice.tax.total(), 0);
        assert_eq!(choice.overbooking_rate, 0.0);
        // Dense sizing on a 99.9% sparse tensor: utilization is dreadful.
        assert!(
            choice.mean_utilization < 0.05,
            "got {}",
            choice.mean_utilization
        );
    }

    #[test]
    fn prescient_fits_worst_tile_exactly() {
        let p = profile();
        let cap = 4_096;
        let choice = TilingStrategy::PrescientUniformShape.choose(&p, cap);
        assert_eq!(
            choice.overbooking_rate, 0.0,
            "prescient must never overbook"
        );
        let panels = RowPanels::new(&p, choice.rows_per_tile);
        assert!(panels.max_occupancy() <= cap);
        // One more row per tile would overflow somewhere (maximality),
        // unless the whole tensor already fits.
        if choice.rows_per_tile < p.nrows() {
            let bigger = RowPanels::new(&p, choice.rows_per_tile + 1);
            // Binary search guarantees the bracketing candidate failed; the
            // +1 point may still fit in rare non-monotonic cases, so only
            // check that we beat the uniform-shape baseline instead of
            // strict maximality.
            let _ = bigger;
        }
        assert!(choice.tax.preprocessing_nnz >= p.nnz());
    }

    #[test]
    fn prescient_beats_uniform_utilization() {
        let p = profile();
        let cap = 4_096;
        let uniform = TilingStrategy::UniformShape.choose(&p, cap);
        let prescient = TilingStrategy::PrescientUniformShape.choose(&p, cap);
        assert!(prescient.mean_utilization >= uniform.mean_utilization);
        assert!(prescient.rows_per_tile >= uniform.rows_per_tile);
    }

    #[test]
    fn overbooking_beats_prescient_utilization_cheaply() {
        // A banded tensor (no single-row outliers) makes prescient tiling
        // perform a genuine multi-candidate search, and a small capacity
        // gives many tiles so Swiftiles' k/y budget is a real subsample.
        let p = GenSpec::banded(10_000, 10_000, 100_000)
            .seed(11)
            .generate()
            .profile();
        let cap = 512;
        let prescient = TilingStrategy::PrescientUniformShape.choose(&p, cap);
        let config = SwiftilesConfig::new(0.10, 10).unwrap();
        let ob = TilingStrategy::Overbooked(config).choose(&p, cap);
        assert!(
            ob.mean_utilization > prescient.mean_utilization,
            "ob {} vs prescient {}",
            ob.mean_utilization,
            prescient.mean_utilization
        );
        // Table 1: overbooking's tax (sampling) is far below prescient's
        // (full traversals per candidate).
        assert!(ob.tax.total() < prescient.tax.total() / 10);
        // And it does overbook a controlled fraction of tiles.
        assert!(ob.overbooking_rate > 0.0);
    }

    #[test]
    fn uniform_occupancy_is_perfectly_utilized_but_taxed() {
        let p = profile();
        let cap = 4_096;
        let pst = TilingStrategy::UniformOccupancy.choose(&p, cap);
        assert!(pst.mean_utilization > 0.95);
        assert_eq!(pst.overbooking_rate, 0.0);
        // Matching tax dominates everything else (n_tiles × nnz).
        assert!(pst.tax.matching_ops > p.nnz());
        assert_eq!(pst.n_tiles as u64, p.nnz().div_ceil(cap));
    }

    #[test]
    fn table1_ordering_holds() {
        // The qualitative Table 1: utilization U(uniform) << U(prescient)
        // < U(overbooked) <= U(pst); tax T(uniform)=0 < T(overbooked) <<
        // T(prescient) and T(pst) is the largest.
        let p = profile();
        let cap = 4_096;
        let uni = TilingStrategy::UniformShape.choose(&p, cap);
        let pre = TilingStrategy::PrescientUniformShape.choose(&p, cap);
        let ob =
            TilingStrategy::Overbooked(SwiftilesConfig::new(0.10, 10).unwrap()).choose(&p, cap);
        let pst = TilingStrategy::UniformOccupancy.choose(&p, cap);
        assert!(uni.mean_utilization < pre.mean_utilization);
        assert!(pre.mean_utilization < ob.mean_utilization);
        assert!(ob.mean_utilization <= pst.mean_utilization + 1e-9);
        assert_eq!(uni.tax.total(), 0);
        assert!(ob.tax.total() > 0);
        assert!(ob.tax.total() < pre.tax.total());
        // PST's matching tax recurs on every execution (prescient's is
        // one-time preprocessing) and must dwarf overbooking's sampling.
        assert!(pst.tax.matching_ops > 0);
        assert!(pst.tax.total() > ob.tax.total());
    }

    #[test]
    fn prescient_on_tiny_capacity_degenerates_to_single_rows() {
        let p = profile();
        let choice = TilingStrategy::PrescientUniformShape.choose(&p, 1);
        assert_eq!(choice.rows_per_tile, 1);
    }

    #[test]
    fn whole_tensor_fits_one_tile() {
        let p = GenSpec::uniform(100, 100, 500).seed(1).generate().profile();
        let choice = TilingStrategy::PrescientUniformShape.choose(&p, 10_000);
        assert_eq!(choice.rows_per_tile, 100);
        assert_eq!(choice.n_tiles, 1);
    }
}
