//! Criterion benchmarks for the compute substrate: fiber intersection
//! (ExTensor's core primitive), the reference SpMSpM, the analytical
//! simulator itself, and the functional engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tailors_sim::functional::{run, FunctionalConfig};
use tailors_sim::{ArchConfig, Variant};
use tailors_tensor::gen::GenSpec;
use tailors_tensor::ops::spmspm_a_at;

fn bench_intersection(c: &mut Criterion) {
    let a = GenSpec::uniform(1, 100_000, 10_000).seed(1).generate();
    let b = GenSpec::uniform(1, 100_000, 10_000).seed(2).generate();
    let (fa, fb) = (a.row(0), b.row(0));

    let mut g = c.benchmark_group("fiber_intersection");
    g.throughput(Throughput::Elements((fa.len() + fb.len()) as u64));
    g.bench_function("two_finger_10k_x_10k", |bch| {
        bch.iter(|| black_box(fa.intersect_counted(&fb)))
    });
    g.bench_function("dot_product_10k_x_10k", |bch| {
        bch.iter(|| black_box(fa.dot(&fb)))
    });
    g.finish();
}

fn bench_spmspm(c: &mut Criterion) {
    let a = GenSpec::power_law(2_000, 2_000, 20_000).seed(3).generate();
    let mut g = c.benchmark_group("spmspm");
    g.sample_size(10);
    g.bench_function("reference_a_at_2k", |bch| {
        bch.iter(|| black_box(spmspm_a_at(&a)))
    });
    g.bench_function("functional_engine_a_at_2k", |bch| {
        let config = FunctionalConfig {
            capacity: 2_048,
            fifo_region: 256,
            rows_a: 256,
            cols_b: 256,
            overbooking: true,
        };
        bch.iter(|| black_box(run(&a, &config).unwrap()))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let profile = GenSpec::power_law(200_000, 200_000, 2_000_000)
        .seed(4)
        .generate()
        .profile();
    let arch = ArchConfig::extensor();
    let mut g = c.benchmark_group("analytical_simulator");
    g.sample_size(20);
    for v in [Variant::ExTensorN, Variant::ExTensorP, Variant::default_ob()] {
        g.bench_function(v.name(), |bch| {
            bch.iter(|| black_box(v.run(&profile, &arch)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_intersection, bench_spmspm, bench_simulator);
criterion_main!(benches);
