//! Property tests: the rewritten functional engine (CSR-slice walking,
//! tile column-pointer slicing, dense panel scratch, rayon row panels) is
//! bit-identical to the retained seed engine on arbitrary inputs and
//! configurations — output matrix, DRAM traffic counts and overbooked-tile
//! counts alike.

use proptest::prelude::*;
use tailors_sim::functional::{reference_run, run_with_threads, FunctionalConfig};
use tailors_tensor::gen::GenSpec;
use tailors_tensor::ops::{approx_eq, spmspm_a_at};
use tailors_tensor::CsrMatrix;

fn check_equivalent(a: &CsrMatrix, config: &FunctionalConfig, threads: usize) {
    let new = run_with_threads(a, config, threads).expect("rewritten engine");
    let old = reference_run(a, config).expect("seed engine");
    assert_eq!(
        new.z, old.z,
        "output mismatch: {config:?} threads={threads}"
    );
    assert_eq!(new.dram_a_fetches, old.dram_a_fetches, "{config:?}");
    assert_eq!(new.dram_b_fetches, old.dram_b_fetches, "{config:?}");
    assert_eq!(new.overbooked_a_tiles, old.overbooked_a_tiles, "{config:?}");
    // And both equal the untiled kernel numerically.
    assert!(approx_eq(&new.z, &spmspm_a_at(a), 1e-9));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random structure × random tiling × random buffer sizing × random
    /// thread count: everything the two engines report must agree.
    #[test]
    fn engines_agree_on_random_inputs(
        seed in 0u64..40,
        heavy in proptest::bool::ANY,
        capacity in 8usize..120,
        fifo_frac in 1usize..90,
        rows_a in 1usize..70,
        cols_b in 1usize..70,
        overbooking in proptest::bool::ANY,
        threads in 1usize..5,
    ) {
        let spec = if heavy {
            GenSpec::power_law(48, 48, 400)
        } else {
            GenSpec::uniform(48, 48, 300)
        };
        let a = spec.seed(seed).generate();
        let config = FunctionalConfig {
            capacity,
            fifo_region: (capacity * fifo_frac / 100).clamp(1, capacity - 1),
            rows_a,
            cols_b,
            overbooking,
        };
        check_equivalent(&a, &config, threads);
    }
}

#[test]
fn engines_agree_on_empty_matrix() {
    let a = CsrMatrix::new(12, 12);
    for overbooking in [false, true] {
        let config = FunctionalConfig {
            capacity: 8,
            fifo_region: 2,
            rows_a: 4,
            cols_b: 4,
            overbooking,
        };
        check_equivalent(&a, &config, 3);
    }
}

#[test]
fn engines_agree_on_single_row_panels() {
    // rows_a = 1: one panel per row, including empty panels.
    let a = CsrMatrix::from_triplets(6, 6, &[(0, 1, 1.0), (0, 5, -2.0), (3, 0, 4.0), (5, 5, 0.5)])
        .unwrap();
    let config = FunctionalConfig {
        capacity: 3,
        fifo_region: 1,
        rows_a: 1,
        cols_b: 2,
        overbooking: true,
    };
    check_equivalent(&a, &config, 4);
}

#[test]
fn engines_agree_on_heavily_overbooked_tiles() {
    // Capacity far below every panel occupancy: every tile overbooks and
    // the Tailors restream path dominates.
    let a = GenSpec::power_law(64, 64, 700).seed(99).generate();
    let config = FunctionalConfig {
        capacity: 10,
        fifo_region: 4,
        rows_a: 32,
        cols_b: 8,
        overbooking: true,
    };
    let result = run_with_threads(&a, &config, 2).unwrap();
    assert_eq!(result.overbooked_a_tiles, 2, "both tiles must overbook");
    check_equivalent(&a, &config, 2);
}

#[test]
fn engines_agree_on_one_by_one_matrix() {
    let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 2.5)]).unwrap();
    let config = FunctionalConfig {
        capacity: 1,
        fifo_region: 1,
        rows_a: 1,
        cols_b: 1,
        overbooking: false,
    };
    check_equivalent(&a, &config, 1);
}
