//! A small, deterministic, capacity-bounded LRU map.
//!
//! The serving layer's profile and plan tiers need an eviction policy
//! whose behaviour is reproducible run-to-run (the cache-correctness
//! property tests drive arbitrary hit/eviction interleavings and compare
//! against cold runs), so this is a plain `HashMap` plus a monotone use
//! clock with an O(capacity) eviction scan — capacities are tens to
//! hundreds of entries, and values are an `Arc` or a pair of plan structs,
//! so the scan is noise next to the profile/plan construction a hit
//! saves. Ties cannot occur: every access gets a fresh clock stamp.

use std::collections::HashMap;
use std::hash::Hash;

/// A least-recently-used map holding at most `capacity` entries.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: usize,
    clock: u64,
    map: HashMap<K, Entry<V>>,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_use: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a zero-capacity tier would silently
    /// turn every request into a miss; disable caching by not consulting
    /// the tier instead.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Lru {
            capacity,
            clock: 0,
            map: HashMap::with_capacity(capacity),
        }
    }

    /// The bound this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.last_use = clock;
            &e.value
        })
    }

    /// Looks up `key` mutably, marking it most recently used on a hit.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.last_use = clock;
            &mut e.value
        })
    }

    /// Visits every resident entry in unspecified order, without
    /// touching recency (a bookkeeping scan, not an access).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, e)| (k, &e.value))
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the cache is full. Returns the evicted `(key, value)`
    /// pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.clock += 1;
        if let Some(e) = self.map.get_mut(&key) {
            e.value = value;
            e.last_use = self.clock;
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone())
                .expect("full cache has a least-recent entry");
            self.map.remove_entry(&victim).map(|(k, e)| (k, e.value))
        } else {
            None
        };
        self.map.insert(
            key,
            Entry {
                value,
                last_use: self.clock,
            },
        );
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_refresh_recency() {
        let mut c = Lru::new(2);
        assert!(c.is_empty());
        assert!(c.insert("a", 1).is_none());
        assert!(c.insert("b", 2).is_none());
        // Touch "a" so "b" is the LRU victim.
        assert_eq!(c.get(&"a"), Some(&1));
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut c = Lru::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert!(c.insert("a", 10).is_none());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn eviction_order_is_strict_lru() {
        let mut c = Lru::new(3);
        for (i, k) in ["a", "b", "c"].into_iter().enumerate() {
            c.insert(k, i);
        }
        // Recency now a < b < c; each insert evicts the oldest untouched.
        assert_eq!(c.insert("d", 9), Some(("a", 0)));
        assert_eq!(c.insert("e", 9), Some(("b", 1)));
        assert_eq!(c.insert("f", 9), Some(("c", 2)));
        assert_eq!(c.capacity(), 3);
    }

    #[test]
    fn get_mut_refreshes_and_iter_does_not() {
        let mut c = Lru::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Mutating "a" through get_mut refreshes it, so "b" evicts next.
        *c.get_mut(&"a").expect("present") = 10;
        // An iter scan must not perturb recency.
        let sum: i32 = c.iter().map(|(_, v)| *v).sum();
        assert_eq!(sum, 12);
        assert_eq!(c.insert("c", 3), Some(("b", 2)));
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = Lru::<u8, u8>::new(0);
    }
}
