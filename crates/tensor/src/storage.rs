//! Storage handles: where tensor and scratch bytes live.
//!
//! Everything hot in the engine used to assume one answer — a freshly
//! heap-allocated `Vec` per run. This module makes the answer a policy by
//! splitting *what* a buffer is from *where its bytes come from*:
//!
//! * [`HeapStorage`] — today's behaviour, the default: every checkout is a
//!   fresh allocation, every return frees it. Bit-identical to the
//!   pre-storage engine by construction.
//! * [`SlabStorage`] — a keyed arena that recycles allocations by
//!   [`ShapeClass`] (power-of-two buckets of a plan unit's rows × width).
//!   Checkout pops a warm buffer and [`PoolItem::prepare`]s it; dropping
//!   the [`PoolHandle`] returns the buffer to its slab. Retained bytes are
//!   capped by [`SlabStorage::set_retention`], so pooled scratch counts
//!   against the same memory budget the planner already honors.
//! * [`MmapStorage`] — read-only file-backed CSR payloads with
//!   panel-granular residency: the operand's row pointers stay resident,
//!   row-panel payloads and column-tile segments of `B = Aᵀ` are paged in
//!   on demand through a clock-LRU tile cache bounded by a byte budget.
//!   This is the spill tier that lets matrices larger than RAM stream
//!   through the planner's existing row-panel × column-block working sets.
//!
//! The engine-facing composition is [`ScratchPool`]: one slab per scratch
//! family (SPA accumulators, panel triplet buffers), kept per worker
//! thread by `tailors_sim::functional` so steady-state serving performs no
//! heap allocation in the kernel + assembly path. Pooling can be disabled
//! globally ([`set_pooling`], `TAILORS_POOL=off`) — results are
//! bit-identical either way, only allocation behaviour differs.

use crate::ops::BlockedSpa;
use crate::CsrMatrix;
use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// A source of buffers: checkout by key, release by dropping the handle.
///
/// The three backends share this surface so engine code can be written
/// against "a place buffers come from" without naming the policy:
/// [`HeapStorage`] and [`SlabStorage`] are keyed by [`ShapeClass`] and
/// hand out owned [`PoolHandle`]s; [`MmapStorage`] is keyed by column-tile
/// index and hands out shared [`SpillTile`]s.
pub trait Storage<T: ?Sized> {
    /// What selects a buffer: a shape class for scratch arenas, a tile
    /// index for the spill tier.
    type Key: Copy;
    /// The checked-out buffer; dropping it releases the checkout.
    type Handle: core::ops::Deref<Target = T>;

    /// Checks a buffer out. Heap and slab backends cannot fail; the spill
    /// tier surfaces I/O errors.
    fn checkout(&self, key: Self::Key) -> io::Result<Self::Handle>;

    /// Bytes this backend currently holds resident on behalf of *idle*
    /// buffers (slab inventory, cached spill tiles). Checked-out handles
    /// are the caller's to account.
    fn resident_bytes(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Shape classes
// ---------------------------------------------------------------------------

/// A power-of-two bucket of plan-unit scratch shapes.
///
/// Pool keys must collide across *similar* shapes or a pool serving mixed
/// workloads retains one buffer per exact shape and recycles nothing.
/// Bucketing rows and width up to the next power of two bounds internal
/// waste at 4× slots while collapsing the long tail of near-identical
/// plan units onto shared slabs. [`PoolItem::prepare`] sizes a buffer for
/// the *class* bounds, so every later in-shape resize is allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeClass {
    /// Bucketed row count (power of two, at least 1).
    pub rows: u32,
    /// Bucketed width (power of two, at least 1).
    pub width: u32,
}

impl ShapeClass {
    /// Buckets an actual `rows × width` scratch shape.
    pub fn of(rows: usize, width: usize) -> Self {
        fn bucket(v: usize) -> u32 {
            v.max(1)
                .next_power_of_two()
                .min(u32::MAX as usize)
                .try_into()
                .expect("bucket bounded by u32::MAX")
        }
        Self {
            rows: bucket(rows),
            width: bucket(width),
        }
    }
}

/// A buffer a [`SlabStorage`] can recycle.
pub trait PoolItem: Default + Send + 'static {
    /// Readies the buffer for a checkout of shape class `class`: clear
    /// logical contents (keeping capacity) and grow backing storage to the
    /// class bounds, so subsequent in-shape use allocates nothing.
    fn prepare(&mut self, class: ShapeClass);
    /// Heap bytes currently backing the buffer (capacities, not lengths) —
    /// the coin of slab retention accounting.
    fn heap_bytes(&self) -> u64;
}

impl PoolItem for BlockedSpa {
    fn prepare(&mut self, class: ShapeClass) {
        // Pre-grow to the class bounds; the engine's own `reset_shape`
        // calls (always ≤ the class by construction) then never allocate.
        self.reset_shape(class.rows as usize, class.width as usize);
    }

    fn heap_bytes(&self) -> u64 {
        self.heap_bytes()
    }
}

/// The per-panel output-assembly buffers the engine used to allocate
/// fresh each panel: per-row lengths, the panel's concatenated
/// column/value triplets, and the per-row staging vectors multi-block
/// units drain into before the in-order merge.
///
/// Pooled as one unit because they live and die together: a panel checks
/// the whole set out, fills it, and the stitch releases it back to the
/// slab when the output has been spliced into the result CSR.
#[derive(Debug, Clone, Default)]
pub struct PanelBuffers {
    /// Per-row output lengths (one entry per panel row).
    pub row_lens: Vec<usize>,
    /// Concatenated output column indices for the panel.
    pub cols: Vec<u32>,
    /// Concatenated output values for the panel.
    pub vals: Vec<f64>,
    /// Per-row staging (cols, vals) pairs for multi-block merges. Grown by
    /// [`PanelBuffers::ensure_staged_rows`], never shrunk, so inner
    /// capacities survive recycling.
    pub staged: Vec<(Vec<u32>, Vec<f64>)>,
}

impl PanelBuffers {
    /// Ensures at least `n` staging rows exist (growing, never shrinking,
    /// so recycled inner capacities are preserved).
    pub fn ensure_staged_rows(&mut self, n: usize) {
        if self.staged.len() < n {
            self.staged.resize_with(n, Default::default);
        }
    }
}

impl PoolItem for PanelBuffers {
    fn prepare(&mut self, class: ShapeClass) {
        self.row_lens.clear();
        self.cols.clear();
        self.vals.clear();
        for (c, v) in &mut self.staged {
            c.clear();
            v.clear();
        }
        self.row_lens.reserve(class.rows as usize);
    }

    fn heap_bytes(&self) -> u64 {
        let staged: usize = self
            .staged
            .iter()
            .map(|(c, v)| c.capacity() * 4 + v.capacity() * 8)
            .sum();
        (self.row_lens.capacity() * core::mem::size_of::<usize>()
            + self.cols.capacity() * 4
            + self.vals.capacity() * 8
            + self.staged.capacity() * core::mem::size_of::<(Vec<u32>, Vec<f64>)>()
            + staged) as u64
    }
}

// ---------------------------------------------------------------------------
// Global pooling switch
// ---------------------------------------------------------------------------

static POOLING: OnceLock<AtomicBool> = OnceLock::new();

fn pooling_cell() -> &'static AtomicBool {
    POOLING.get_or_init(|| {
        let on = match std::env::var("TAILORS_POOL") {
            Ok(v) => !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "no"
            ),
            Err(_) => true,
        };
        AtomicBool::new(on)
    })
}

/// Whether scratch pooling is enabled (default on; `TAILORS_POOL=off`
/// disables it at startup, [`set_pooling`] toggles it in-process).
pub fn pooling_enabled() -> bool {
    pooling_cell().load(Ordering::Relaxed)
}

/// Enables or disables scratch pooling process-wide. With pooling off,
/// [`ScratchPool`] checkouts are plain heap allocations freed on drop —
/// results are bit-identical either way (the property suite pins it);
/// only allocation behaviour and pool statistics differ.
pub fn set_pooling(on: bool) {
    pooling_cell().store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Slab storage
// ---------------------------------------------------------------------------

/// Counters describing a slab (or merged [`ScratchPool`]) history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out.
    pub checkouts: u64,
    /// Checkouts served from slab inventory (no allocation).
    pub hits: u64,
    /// Checkouts that fell back to a fresh allocation.
    pub misses: u64,
    /// Handles returned to the slab.
    pub returns: u64,
    /// Idle buffers freed to respect the retention cap.
    pub evictions: u64,
    /// Bytes currently held by idle slab inventory.
    pub resident_bytes: u64,
}

impl PoolStats {
    /// Combines two counter snapshots field-by-field — e.g. the two slab
    /// families of a [`ScratchPool`], or one pool per worker thread
    /// rolled up into a service-wide view.
    pub fn merge(self, other: PoolStats) -> PoolStats {
        PoolStats {
            checkouts: self.checkouts + other.checkouts,
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            returns: self.returns + other.returns,
            evictions: self.evictions + other.evictions,
            resident_bytes: self.resident_bytes + other.resident_bytes,
        }
    }
}

#[derive(Debug)]
struct SlabState<T> {
    /// Idle inventory by shape class. Invariant: no empty buckets.
    /// `BTreeMap` so eviction order (largest class first) is deterministic.
    by_class: BTreeMap<ShapeClass, Vec<T>>,
    resident_bytes: u64,
    retain: Option<u64>,
    stats: PoolStats,
}

impl<T> Default for SlabState<T> {
    fn default() -> Self {
        Self {
            by_class: BTreeMap::new(),
            resident_bytes: 0,
            retain: None,
            stats: PoolStats::default(),
        }
    }
}

fn lock_state<T>(state: &Mutex<SlabState<T>>) -> MutexGuard<'_, SlabState<T>> {
    // A panicking holder leaves the inventory structurally intact (every
    // mutation is a single push/pop), so poisoning is not a correctness
    // signal here — recover the guard.
    state.lock().unwrap_or_else(|e| e.into_inner())
}

/// A keyed arena recycling buffers by [`ShapeClass`].
///
/// Cloning shares the underlying slab (handles may outlive the clone they
/// were checked out from). Thread-safe; the engine keeps one per worker
/// thread so the lock is uncontended on the hot path.
#[derive(Debug, Clone, Default)]
pub struct SlabStorage<T: PoolItem> {
    state: Arc<Mutex<SlabState<T>>>,
}

impl<T: PoolItem> SlabStorage<T> {
    /// Creates an empty slab with unbounded retention.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a buffer of class `class` out of the slab (recycling idle
    /// inventory when available), prepared per [`PoolItem::prepare`].
    pub fn checkout(&self, class: ShapeClass) -> PoolHandle<T> {
        let mut item = {
            let mut st = lock_state(&self.state);
            st.stats.checkouts += 1;
            match st.by_class.get_mut(&class).and_then(Vec::pop) {
                Some(item) => {
                    if st.by_class.get(&class).is_some_and(Vec::is_empty) {
                        st.by_class.remove(&class);
                    }
                    st.stats.hits += 1;
                    st.resident_bytes -= item.heap_bytes();
                    st.stats.resident_bytes = st.resident_bytes;
                    item
                }
                None => {
                    st.stats.misses += 1;
                    T::default()
                }
            }
        };
        item.prepare(class);
        PoolHandle {
            item: Some(item),
            class,
            home: Some(Arc::clone(&self.state)),
        }
    }

    /// Caps the bytes idle inventory may hold; `None` is unbounded.
    /// Enforced at return time, evicting largest-class buffers first.
    pub fn set_retention(&self, cap: Option<u64>) {
        let mut st = lock_state(&self.state);
        st.retain = cap;
        evict_over_cap(&mut st);
    }

    /// Slab counters since construction.
    pub fn stats(&self) -> PoolStats {
        lock_state(&self.state).stats
    }

    /// Frees all idle inventory (outstanding handles are unaffected and
    /// still return to the slab on drop).
    pub fn clear(&self) {
        let mut st = lock_state(&self.state);
        st.by_class.clear();
        st.resident_bytes = 0;
        st.stats.resident_bytes = 0;
    }
}

fn evict_over_cap<T: PoolItem>(st: &mut SlabState<T>) {
    st.stats.resident_bytes = st.resident_bytes;
    let cap = match st.retain {
        Some(cap) => cap,
        None => return,
    };
    while st.resident_bytes > cap {
        let class = match st.by_class.iter().next_back() {
            Some((&class, _)) => class,
            None => break,
        };
        match st.by_class.get_mut(&class).and_then(Vec::pop) {
            Some(victim) => {
                st.resident_bytes -= victim.heap_bytes();
                st.stats.evictions += 1;
                if st.by_class.get(&class).is_some_and(Vec::is_empty) {
                    st.by_class.remove(&class);
                }
            }
            None => {
                st.by_class.remove(&class);
            }
        }
    }
    st.stats.resident_bytes = st.resident_bytes;
}

impl<T: PoolItem> Storage<T> for SlabStorage<T> {
    type Key = ShapeClass;
    type Handle = PoolHandle<T>;

    fn checkout(&self, key: ShapeClass) -> io::Result<PoolHandle<T>> {
        Ok(SlabStorage::checkout(self, key))
    }

    fn resident_bytes(&self) -> u64 {
        lock_state(&self.state).resident_bytes
    }
}

/// An owned, prepared buffer checked out of a [`SlabStorage`] (or
/// detached, for the heap-backed default). Dropping it returns the buffer
/// to its slab — or frees it, if detached.
#[derive(Debug)]
pub struct PoolHandle<T: PoolItem> {
    /// `Some` until drop; taken exactly once by `Drop`.
    item: Option<T>,
    class: ShapeClass,
    home: Option<Arc<Mutex<SlabState<T>>>>,
}

impl<T: PoolItem> PoolHandle<T> {
    /// A slab-less handle: a fresh prepared buffer, freed on drop. This is
    /// [`HeapStorage`]'s checkout and the pooling-disabled fallback.
    pub fn detached(class: ShapeClass) -> Self {
        let mut item = T::default();
        item.prepare(class);
        Self {
            item: Some(item),
            class,
            home: None,
        }
    }

    /// The shape class this handle was checked out with.
    pub fn class(&self) -> ShapeClass {
        self.class
    }
}

impl<T: PoolItem> core::ops::Deref for PoolHandle<T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.item.as_ref().expect("pool handle accessed after drop")
    }
}

impl<T: PoolItem> core::ops::DerefMut for PoolHandle<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("pool handle accessed after drop")
    }
}

impl<T: PoolItem> Drop for PoolHandle<T> {
    fn drop(&mut self) {
        let (item, home) = (self.item.take(), self.home.take());
        if let (Some(item), Some(home)) = (item, home) {
            let mut st = lock_state(&home);
            st.stats.returns += 1;
            st.resident_bytes += item.heap_bytes();
            st.by_class.entry(self.class).or_default().push(item);
            evict_over_cap(&mut st);
        }
        // Detached: the item (if any) drops here, freeing its heap.
    }
}

/// The default backend: every checkout is a fresh allocation, freed when
/// the handle drops. Exactly the engine's pre-storage behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapStorage;

impl<T: PoolItem> Storage<T> for HeapStorage {
    type Key = ShapeClass;
    type Handle = PoolHandle<T>;

    fn checkout(&self, key: ShapeClass) -> io::Result<PoolHandle<T>> {
        Ok(PoolHandle::detached(key))
    }

    fn resident_bytes(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// The engine-facing scratch pool
// ---------------------------------------------------------------------------

/// One slab per scratch family the engine checks out: the per-unit
/// [`BlockedSpa`] accumulator and the per-panel [`PanelBuffers`] output
/// set. `tailors_sim::functional` keeps one per worker thread; a serve
/// runtime worker therefore reuses the same warm buffers request after
/// request, which is what makes the steady-state hot path allocation-free.
///
/// Checkouts respect the global pooling switch: with pooling disabled
/// (`TAILORS_POOL=off` / [`set_pooling`]) they degrade to detached heap
/// handles and the slabs stay untouched.
#[derive(Debug, Clone, Default)]
pub struct ScratchPool {
    spa: SlabStorage<BlockedSpa>,
    bufs: SlabStorage<PanelBuffers>,
}

impl ScratchPool {
    /// Creates an empty pool with unbounded retention.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a SPA accumulator for a `class`-shaped plan unit.
    pub fn checkout_spa(&self, class: ShapeClass) -> PoolHandle<BlockedSpa> {
        if pooling_enabled() {
            self.spa.checkout(class)
        } else {
            PoolHandle::detached(class)
        }
    }

    /// Checks out the panel output-assembly buffer set.
    pub fn checkout_buffers(&self, class: ShapeClass) -> PoolHandle<PanelBuffers> {
        if pooling_enabled() {
            self.bufs.checkout(class)
        } else {
            PoolHandle::detached(class)
        }
    }

    /// Caps idle bytes retained *per family* (`None` is unbounded). The
    /// engine passes its `MemBudget` limit through here, so pooled scratch
    /// answers to the same budget the planner sized the working sets for.
    pub fn set_retention(&self, cap: Option<u64>) {
        self.spa.set_retention(cap);
        self.bufs.set_retention(cap);
    }

    /// Merged counters across both families.
    pub fn stats(&self) -> PoolStats {
        self.spa.stats().merge(self.bufs.stats())
    }

    /// Frees all idle inventory in both families.
    pub fn clear(&self) {
        self.spa.clear();
        self.bufs.clear();
    }
}

// ---------------------------------------------------------------------------
// Spill tier: file-backed CSR payloads with panel-granular residency
// ---------------------------------------------------------------------------

/// Magic prefix of the spill file format.
const SPILL_MAGIC: &[u8; 8] = b"TSPILL01";
/// Header words after the magic: nrows, ncols, nnz, tile_cols, n_tiles.
const SPILL_HEADER_WORDS: usize = 5;

/// Counters describing spill-tier I/O since [`MmapStorage::open`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Column-tile segments read from disk.
    pub tile_loads: u64,
    /// Tile checkouts served from the residency cache.
    pub tile_hits: u64,
    /// Tiles dropped from the cache to respect the residency budget.
    pub evictions: u64,
    /// Payload bytes read from disk (tiles + panels).
    pub bytes_read: u64,
    /// Row-panel payloads of `A` read from disk.
    pub panel_loads: u64,
    /// Bytes of tile payload currently cache-resident.
    pub resident_bytes: u64,
}

/// One column tile of the stationary operand `B = Aᵀ`, paged in from the
/// spill file: a rebased CSR over all `B` rows restricted to the tile's
/// columns. Column indices are **global** (exactly what the traversal
/// compares against), so a resident tile is a drop-in for the in-RAM
/// `TileColPtr` view.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillTile {
    /// Rebased row pointers, length `b_rows + 1`, `row_ptr[0] == 0`.
    pub row_ptr: Vec<usize>,
    /// Global column indices of the tile's nonzeros.
    pub cols: Vec<u32>,
    /// Values of the tile's nonzeros.
    pub vals: Vec<f64>,
}

impl SpillTile {
    fn payload_bytes(&self) -> u64 {
        (self.row_ptr.len() * core::mem::size_of::<usize>()
            + self.cols.len() * 4
            + self.vals.len() * 8) as u64
    }
}

/// One row panel of the streamed operand `A`, paged in from the spill
/// file: rebased row pointers plus the panel's column/value payload.
#[derive(Debug, Clone, PartialEq)]
pub struct PanelPayload {
    /// Rebased row pointers, length `panel_rows + 1`, `row_ptr[0] == 0`.
    pub row_ptr: Vec<usize>,
    /// Column indices of the panel's nonzeros.
    pub cols: Vec<u32>,
    /// Values of the panel's nonzeros.
    pub vals: Vec<f64>,
}

#[derive(Debug)]
struct SpillState {
    file: File,
    /// Tile cache: tile index → (payload, last-use stamp).
    tiles: HashMap<usize, (Arc<SpillTile>, u64)>,
    clock: u64,
    resident: u64,
    stats: SpillStats,
}

/// Read-only file-backed storage for one `Z = A·Aᵀ` operand pair, with
/// panel-granular residency.
///
/// Layout (all integers little-endian):
///
/// ```text
/// magic "TSPILL01"
/// header u64×5: nrows ncols nnz tile_cols n_tiles
/// a_row_ptr    u64×(nrows+1)            — resident after open
/// tile_offsets u64×(n_tiles+1)          — absolute byte offsets, resident
/// a_cols       u32×nnz                  — paged per row panel
/// a_vals       f64×nnz                  — paged per row panel
/// per tile t:  row_ptr u64×(ncols+1), cols u32×tnnz, vals f64×tnnz
/// ```
///
/// `B = Aᵀ` is stored **tile-major** (one self-contained CSR segment per
/// column tile) precisely because the engine's traversal touches B rows
/// scattered across the whole matrix but always *within one column tile
/// at a time* — so the working set per (panel, tile) step is one `A`
/// panel plus one `B` tile, and a byte-budgeted tile cache bounds
/// residency regardless of matrix size. No `mmap(2)` involved despite the
/// name the roadmap gave the tier: plain seek + read keeps the crate free
/// of `unsafe` and OS-specific paging.
#[derive(Debug)]
pub struct MmapStorage {
    path: PathBuf,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    tile_cols: usize,
    n_tiles: usize,
    /// Resident `A` row pointers (absolute, length `nrows + 1`).
    a_row_ptr: Vec<u64>,
    /// Absolute byte offsets of tile segments (length `n_tiles + 1`).
    tile_offsets: Vec<u64>,
    /// Byte offset where `a_cols` begins.
    a_cols_off: u64,
    /// Byte offset where `a_vals` begins.
    a_vals_off: u64,
    /// Tile-cache residency budget; `None` is unbounded.
    residency: Option<u64>,
    state: Mutex<SpillState>,
}

fn bad(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u64s(file: &mut File, n: usize) -> io::Result<Vec<u64>> {
    let mut buf = vec![0u8; n * 8];
    file.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

fn parse_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

fn parse_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
        .collect()
}

fn parse_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

fn monotonic(ptr: &[u64]) -> bool {
    ptr.windows(2).all(|w| w[0] <= w[1])
}

impl MmapStorage {
    /// Writes matrix `a` (and its transpose, tile-major at `tile_cols`
    /// columns per tile) to `path` in the spill format. Writes to a
    /// sibling temp file and renames into place, so a crash never leaves
    /// a half-written spill file at `path`.
    pub fn store(a: &CsrMatrix, tile_cols: usize, path: &Path) -> io::Result<()> {
        assert!(tile_cols > 0, "tile width must be positive");
        let b = a.transpose();
        let tcp = b.tile_col_ptr(tile_cols);
        let n_tiles = tcp.n_tiles();
        let b_rows = b.nrows();

        // Per-tile nnz, then absolute segment offsets.
        let mut tile_nnz = vec![0u64; n_tiles];
        for (t, nnz) in tile_nnz.iter_mut().enumerate() {
            for row in 0..b_rows {
                let (s, e) = tcp.row_tile_range(row, t);
                *nnz += (e - s) as u64;
            }
        }
        let header_bytes = 8 + (SPILL_HEADER_WORDS * 8) as u64;
        let a_row_ptr_bytes = ((a.nrows() + 1) * 8) as u64;
        let tile_offsets_bytes = ((n_tiles + 1) * 8) as u64;
        let a_cols_off = header_bytes + a_row_ptr_bytes + tile_offsets_bytes;
        let a_vals_off = a_cols_off + (a.nnz() * 4) as u64;
        let tiles_off = a_vals_off + (a.nnz() * 8) as u64;
        let mut tile_offsets = Vec::with_capacity(n_tiles + 1);
        let mut off = tiles_off;
        tile_offsets.push(off);
        for &nnz in &tile_nnz {
            off += ((b_rows + 1) * 8) as u64 + nnz * 12;
            tile_offsets.push(off);
        }

        let tmp = path.with_extension("tmp");
        let mut w = io::BufWriter::new(File::create(&tmp)?);
        w.write_all(SPILL_MAGIC)?;
        for v in [
            a.nrows() as u64,
            a.ncols() as u64,
            a.nnz() as u64,
            tile_cols as u64,
            n_tiles as u64,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        for &p in a.row_ptr() {
            w.write_all(&(p as u64).to_le_bytes())?;
        }
        for &o in &tile_offsets {
            w.write_all(&o.to_le_bytes())?;
        }
        for &c in a.col_indices() {
            w.write_all(&c.to_le_bytes())?;
        }
        for &v in a.values() {
            w.write_all(&v.to_le_bytes())?;
        }
        for t in 0..n_tiles {
            let mut acc = 0u64;
            w.write_all(&acc.to_le_bytes())?;
            for row in 0..b_rows {
                let (s, e) = tcp.row_tile_range(row, t);
                acc += (e - s) as u64;
                w.write_all(&acc.to_le_bytes())?;
            }
            for row in 0..b_rows {
                let (s, e) = tcp.row_tile_range(row, t);
                for &c in &b.col_indices()[s..e] {
                    w.write_all(&c.to_le_bytes())?;
                }
            }
            for row in 0..b_rows {
                let (s, e) = tcp.row_tile_range(row, t);
                for &v in &b.values()[s..e] {
                    w.write_all(&v.to_le_bytes())?;
                }
            }
        }
        w.flush()?;
        drop(w);
        std::fs::rename(&tmp, path)
    }

    /// Opens a spill file, validating magic, header consistency, and the
    /// total file size *before* allocating anything payload-sized.
    /// `residency` caps the bytes of `B` tiles kept cache-resident
    /// (`None` is unbounded).
    pub fn open(path: &Path, residency: Option<u64>) -> io::Result<MmapStorage> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != SPILL_MAGIC {
            return Err(bad("bad spill magic"));
        }
        let header = read_u64s(&mut file, SPILL_HEADER_WORDS)?;
        let (nrows, ncols, nnz, tile_cols, n_tiles) = (
            header[0] as usize,
            header[1] as usize,
            header[2] as usize,
            header[3] as usize,
            header[4] as usize,
        );
        if tile_cols == 0 || n_tiles != ncols.div_ceil(tile_cols) {
            return Err(bad("inconsistent spill tiling header"));
        }
        // Size cross-check before any payload-sized allocation: the fixed
        // sections alone must fit, and the declared payload cannot exceed
        // the file. Every tile segment adds at least its row_ptr bytes.
        let fixed =
            8 + (SPILL_HEADER_WORDS as u64) * 8 + (nrows as u64 + 1) * 8 + (n_tiles as u64 + 1) * 8;
        let payload = (nnz as u64) * 12 + (n_tiles as u64) * (ncols as u64 + 1) * 8;
        let expected = fixed + payload + (nnz as u64) * 12;
        if file_len != expected {
            return Err(bad("spill file size does not match header"));
        }
        let a_row_ptr = read_u64s(&mut file, nrows + 1)?;
        let tile_offsets = read_u64s(&mut file, n_tiles + 1)?;
        if a_row_ptr.first() != Some(&0)
            || a_row_ptr.last() != Some(&(nnz as u64))
            || !monotonic(&a_row_ptr)
        {
            return Err(bad("corrupt spill row pointers"));
        }
        let a_cols_off = fixed;
        let a_vals_off = a_cols_off + (nnz as u64) * 4;
        let tiles_off = a_vals_off + (nnz as u64) * 8;
        if tile_offsets.first() != Some(&tiles_off)
            || tile_offsets.last() != Some(&file_len)
            || !monotonic(&tile_offsets)
        {
            return Err(bad("corrupt spill tile offsets"));
        }
        Ok(MmapStorage {
            path: path.to_path_buf(),
            nrows,
            ncols,
            nnz,
            tile_cols,
            n_tiles,
            a_row_ptr,
            tile_offsets,
            a_cols_off,
            a_vals_off,
            residency,
            state: Mutex::new(SpillState {
                file,
                tiles: HashMap::new(),
                clock: 0,
                resident: 0,
                stats: SpillStats::default(),
            }),
        })
    }

    /// Rows of the streamed operand `A`.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of `A` (also the row count of `B = Aᵀ`).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Nonzeros of `A` (and of `B`).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Columns per `B` tile the file was written with. Runs against this
    /// store must use the same `cols_b`, or the per-tile segments would
    /// not match the plan's column blocks.
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// Number of `B` column tiles in the file.
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Path the store was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Nonzeros of `A` in rows `[m0, m1)` — from the resident row
    /// pointers, no I/O.
    pub fn row_range_nnz(&self, m0: usize, m1: usize) -> usize {
        (self.a_row_ptr[m1] - self.a_row_ptr[m0]) as usize
    }

    /// Nonzeros of a single `A` row, from the resident row pointers.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.row_range_nnz(row, row + 1)
    }

    /// I/O counters since open.
    pub fn stats(&self) -> SpillStats {
        lock_spill(&self.state).stats
    }

    /// Reads the `A` payload for rows `[m0, m1)`: rebased row pointers
    /// plus the panel's column/value slices.
    pub fn load_panel(&self, m0: usize, m1: usize) -> io::Result<PanelPayload> {
        assert!(m0 <= m1 && m1 <= self.nrows, "panel range out of bounds");
        let (s, e) = (self.a_row_ptr[m0], self.a_row_ptr[m1]);
        let row_ptr: Vec<usize> = self.a_row_ptr[m0..=m1]
            .iter()
            .map(|&p| (p - s) as usize)
            .collect();
        let n = (e - s) as usize;
        let mut cols_bytes = vec![0u8; n * 4];
        let mut vals_bytes = vec![0u8; n * 8];
        {
            let mut st = lock_spill(&self.state);
            st.file.seek(SeekFrom::Start(self.a_cols_off + s * 4))?;
            st.file.read_exact(&mut cols_bytes)?;
            st.file.seek(SeekFrom::Start(self.a_vals_off + s * 8))?;
            st.file.read_exact(&mut vals_bytes)?;
            st.stats.panel_loads += 1;
            st.stats.bytes_read += (n * 12) as u64;
        }
        Ok(PanelPayload {
            row_ptr,
            cols: parse_u32s(&cols_bytes),
            vals: parse_f64s(&vals_bytes),
        })
    }

    /// Checks out `B` column tile `tile`, reading it from disk unless it
    /// is cache-resident. The returned `Arc` keeps the tile alive even if
    /// the cache evicts it while the caller still traverses it.
    pub fn checkout_tile(&self, tile: usize) -> io::Result<Arc<SpillTile>> {
        assert!(tile < self.n_tiles, "tile index out of range");
        let mut st = lock_spill(&self.state);
        st.clock += 1;
        let stamp = st.clock;
        if let Some((arc, last)) = st.tiles.get_mut(&tile) {
            *last = stamp;
            let arc = Arc::clone(arc);
            st.stats.tile_hits += 1;
            return Ok(arc);
        }
        let (seg_s, seg_e) = (self.tile_offsets[tile], self.tile_offsets[tile + 1]);
        let seg_len = (seg_e - seg_s) as usize;
        let rp_bytes = (self.ncols + 1) * 8;
        if seg_len < rp_bytes || !(seg_len - rp_bytes).is_multiple_of(12) {
            return Err(bad("corrupt spill tile segment"));
        }
        let tnnz = (seg_len - rp_bytes) / 12;
        let mut seg = vec![0u8; seg_len];
        st.file.seek(SeekFrom::Start(seg_s))?;
        st.file.read_exact(&mut seg)?;
        let row_ptr_u64 = parse_u64s(&seg[..rp_bytes]);
        if row_ptr_u64.first() != Some(&0)
            || row_ptr_u64.last() != Some(&(tnnz as u64))
            || !monotonic(&row_ptr_u64)
        {
            return Err(bad("corrupt spill tile row pointers"));
        }
        let arc = Arc::new(SpillTile {
            row_ptr: row_ptr_u64.into_iter().map(|p| p as usize).collect(),
            cols: parse_u32s(&seg[rp_bytes..rp_bytes + tnnz * 4]),
            vals: parse_f64s(&seg[rp_bytes + tnnz * 4..]),
        });
        let bytes = arc.payload_bytes();
        st.stats.tile_loads += 1;
        st.stats.bytes_read += seg_len as u64;
        st.resident += bytes;
        st.tiles.insert(tile, (Arc::clone(&arc), stamp));
        if let Some(cap) = self.residency {
            // Clock-LRU: evict the least-recently-stamped tile, never the
            // one just inserted (the caller is about to traverse it).
            while st.resident > cap && st.tiles.len() > 1 {
                let victim = st
                    .tiles
                    .iter()
                    .filter(|(&t, _)| t != tile)
                    .min_by_key(|(_, (_, last))| *last)
                    .map(|(&t, _)| t);
                match victim {
                    Some(t) => {
                        if let Some((gone, _)) = st.tiles.remove(&t) {
                            st.resident -= gone.payload_bytes();
                            st.stats.evictions += 1;
                        }
                    }
                    None => break,
                }
            }
        }
        st.stats.resident_bytes = st.resident;
        Ok(arc)
    }

    /// Warms the cache for `tile` (checkout, result discarded). The
    /// engine calls this for the *next* tile in plan order while the
    /// current one is being traversed.
    pub fn prefetch(&self, tile: usize) -> io::Result<()> {
        self.checkout_tile(tile).map(|_| ())
    }
}

fn lock_spill(state: &Mutex<SpillState>) -> MutexGuard<'_, SpillState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

impl Storage<SpillTile> for MmapStorage {
    type Key = usize;
    type Handle = Arc<SpillTile>;

    fn checkout(&self, key: usize) -> io::Result<Arc<SpillTile>> {
        self.checkout_tile(key)
    }

    fn resident_bytes(&self) -> u64 {
        lock_spill(&self.state).resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenSpec;

    #[test]
    fn shape_class_buckets_to_powers_of_two() {
        assert_eq!(ShapeClass::of(0, 0), ShapeClass { rows: 1, width: 1 });
        assert_eq!(ShapeClass::of(1, 64), ShapeClass { rows: 1, width: 64 });
        assert_eq!(
            ShapeClass::of(33, 100),
            ShapeClass {
                rows: 64,
                width: 128
            }
        );
        // Same bucket → same slab key.
        assert_eq!(ShapeClass::of(33, 100), ShapeClass::of(64, 65));
    }

    #[test]
    fn slab_recycles_by_class() {
        let slab: SlabStorage<BlockedSpa> = SlabStorage::new();
        let class = ShapeClass::of(16, 200);
        {
            let mut spa = slab.checkout(class);
            spa.accumulate(3, 17, 1.0);
            let (mut c, mut v) = (Vec::new(), Vec::new());
            spa.drain_row(3, 0, &mut c, &mut v);
        }
        let stats = slab.stats();
        assert_eq!((stats.checkouts, stats.misses, stats.returns), (1, 1, 1));
        assert!(stats.resident_bytes > 0);
        {
            let spa = slab.checkout(class);
            // Recycled: already grown to the class bounds.
            assert!(spa.capacity_slots() >= 16 * 200);
        }
        let stats = slab.stats();
        assert_eq!((stats.checkouts, stats.hits), (2, 1));
    }

    #[test]
    fn returned_spa_is_prepared_clear_on_next_checkout() {
        let slab: SlabStorage<BlockedSpa> = SlabStorage::new();
        let class = ShapeClass::of(4, 64);
        {
            let mut spa = slab.checkout(class);
            spa.accumulate(0, 1, 2.0);
            let (mut c, mut v) = (Vec::new(), Vec::new());
            spa.drain_row(0, 0, &mut c, &mut v);
            assert_eq!((c, v), (vec![1], vec![2.0]));
        }
        let mut spa = slab.checkout(class);
        assert!(spa.is_clear());
        spa.accumulate(0, 1, 5.0);
        let (mut c, mut v) = (Vec::new(), Vec::new());
        spa.drain_row(0, 0, &mut c, &mut v);
        assert_eq!((c, v), (vec![1], vec![5.0]));
    }

    #[test]
    fn retention_cap_evicts_idle_inventory() {
        let slab: SlabStorage<BlockedSpa> = SlabStorage::new();
        slab.set_retention(Some(0));
        {
            let _spa = slab.checkout(ShapeClass::of(8, 512));
        }
        let stats = slab.stats();
        assert_eq!(stats.returns, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident_bytes, 0);
        // Next checkout misses again: nothing was retained.
        let _spa = slab.checkout(ShapeClass::of(8, 512));
        assert_eq!(slab.stats().misses, 2);
    }

    #[test]
    fn panel_buffers_recycle_staged_capacity() {
        let slab: SlabStorage<PanelBuffers> = SlabStorage::new();
        let class = ShapeClass::of(8, 64);
        let caps: Vec<usize> = {
            let mut bufs = slab.checkout(class);
            bufs.ensure_staged_rows(8);
            for (c, v) in &mut bufs.staged {
                c.extend_from_slice(&[1, 2, 3]);
                v.extend_from_slice(&[1.0, 2.0, 3.0]);
            }
            bufs.staged.iter().map(|(c, _)| c.capacity()).collect()
        };
        let bufs = slab.checkout(class);
        assert_eq!(bufs.staged.len(), 8);
        for ((c, v), cap) in bufs.staged.iter().zip(&caps) {
            assert!(c.is_empty() && v.is_empty());
            assert!(c.capacity() >= *cap);
        }
    }

    #[test]
    fn detached_handles_skip_the_slab() {
        let mut h: PoolHandle<BlockedSpa> = PoolHandle::detached(ShapeClass::of(2, 64));
        h.accumulate(0, 0, 1.0);
        drop(h); // frees, nothing to assert beyond "no panic"
    }

    fn spill_fixture(n: usize, nnz: usize, tile_cols: usize) -> (CsrMatrix, PathBuf) {
        let a = GenSpec::power_law(n, n, nnz).seed(11).generate();
        let path = std::env::temp_dir().join(format!(
            "tailors_storage_test_{}_{}_{}_{}.tspill",
            std::process::id(),
            n,
            nnz,
            tile_cols
        ));
        MmapStorage::store(&a, tile_cols, &path).expect("store spill file");
        (a, path)
    }

    #[test]
    fn spill_roundtrips_panels_and_tiles() {
        let (a, path) = spill_fixture(64, 600, 16);
        let store = MmapStorage::open(&path, None).expect("open spill file");
        assert_eq!(store.nrows(), 64);
        assert_eq!(store.tile_cols(), 16);
        assert_eq!(store.n_tiles(), 4);
        assert_eq!(store.nnz(), a.nnz());

        // Panels reproduce A exactly.
        let p = store.load_panel(10, 30).expect("load panel");
        let (s, e) = (a.row_ptr()[10], a.row_ptr()[30]);
        assert_eq!(p.cols, a.col_indices()[s..e]);
        assert_eq!(p.vals, a.values()[s..e]);
        assert_eq!(p.row_ptr[0], 0);
        assert_eq!(*p.row_ptr.last().unwrap(), e - s);

        // Tiles reproduce B = Aᵀ restricted to each column tile.
        let b = a.transpose();
        let tcp = b.tile_col_ptr(16);
        for t in 0..store.n_tiles() {
            let tile = store.checkout_tile(t).expect("checkout tile");
            assert_eq!(tile.row_ptr.len(), b.nrows() + 1);
            for row in 0..b.nrows() {
                let (bs, be) = tcp.row_tile_range(row, t);
                let (ts, te) = (tile.row_ptr[row], tile.row_ptr[row + 1]);
                assert_eq!(&tile.cols[ts..te], &b.col_indices()[bs..be]);
                assert_eq!(&tile.vals[ts..te], &b.values()[bs..be]);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spill_residency_evicts_lru_tiles() {
        let (_a, path) = spill_fixture(64, 600, 16);
        // Budget of one tile (generously: half the file) forces eviction.
        let one_tile = MmapStorage::open(&path, None)
            .expect("open")
            .checkout_tile(0)
            .expect("tile")
            .payload_bytes();
        let store = MmapStorage::open(&path, Some(one_tile)).expect("open budgeted");
        store.checkout_tile(0).expect("tile 0");
        store.checkout_tile(1).expect("tile 1"); // evicts 0
        let stats = store.stats();
        assert_eq!(stats.tile_loads, 2);
        assert!(stats.evictions >= 1);
        // Tile 1 is still resident → hit.
        store.checkout_tile(1).expect("tile 1 again");
        assert_eq!(store.stats().tile_hits, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spill_open_rejects_corruption() {
        let (_a, path) = spill_fixture(32, 200, 8);
        let bytes = std::fs::read(&path).expect("read spill file");

        let bad_magic = std::env::temp_dir().join(format!(
            "tailors_storage_test_badmagic_{}.tspill",
            std::process::id()
        ));
        let mut m = bytes.clone();
        m[0] ^= 0xff;
        std::fs::write(&bad_magic, &m).unwrap();
        assert!(MmapStorage::open(&bad_magic, None).is_err());

        let truncated = std::env::temp_dir().join(format!(
            "tailors_storage_test_trunc_{}.tspill",
            std::process::id()
        ));
        std::fs::write(&truncated, &bytes[..bytes.len() - 4]).unwrap();
        assert!(MmapStorage::open(&truncated, None).is_err());

        for p in [&path, &bad_magic, &truncated] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn pooling_toggle_controls_scratch_pool() {
        // Serialized via the env-independent in-process switch; restore on
        // exit so parallel tests observing the flag are unaffected (tests
        // that assert on stats use their own slabs directly).
        let pool = ScratchPool::new();
        let was = pooling_enabled();
        set_pooling(false);
        {
            let _spa = pool.checkout_spa(ShapeClass::of(2, 64));
        }
        assert_eq!(pool.stats().checkouts, 0);
        set_pooling(true);
        {
            let _spa = pool.checkout_spa(ShapeClass::of(2, 64));
        }
        assert_eq!(pool.stats().checkouts, 1);
        set_pooling(was);
    }
}
