//! Shape-level assertions of the paper's headline claims, at reduced scale.
//!
//! These do not check absolute numbers (our substrate is a model, not the
//! authors' testbed); they check *who wins and roughly how* — the
//! reproduction's success criteria from DESIGN.md.

use tailors::core::swiftiles::{achieved_overbooking_rate, Swiftiles, SwiftilesConfig};
use tailors::core::TilingStrategy;
use tailors::sim::{ArchConfig, Variant};
use tailors::tensor::stats::{geomean, mae_to_target};

const SCALE: f64 = 1.0 / 64.0;

fn arch() -> ArchConfig {
    ArchConfig::extensor().scaled(SCALE)
}

/// Fig. 7 / Fig. 8 shape: sparsity-aware tiling beats fixed tiling across
/// the suite, in both speed and energy, on geomean.
#[test]
fn fig7_fig8_shape_p_and_ob_beat_n() {
    let arch = arch();
    let mut sp = Vec::new();
    let mut sob = Vec::new();
    let mut eob = Vec::new();
    for wl in tailors::workloads::suite() {
        let profile = wl.scaled(SCALE).generate().profile();
        let n = Variant::ExTensorN.run(&profile, &arch);
        let p = Variant::ExTensorP.run(&profile, &arch);
        let ob = Variant::default_ob().run(&profile, &arch);
        sp.push(p.speedup_over(&n));
        sob.push(ob.speedup_over(&n));
        eob.push(ob.energy_gain_over(&n));
    }
    assert!(geomean(&sp).unwrap() > 1.5, "P must beat N on geomean");
    assert!(geomean(&sob).unwrap() > 1.5, "OB must beat N on geomean");
    assert!(geomean(&eob).unwrap() > 1.5, "OB must beat N on energy");
}

/// Fig. 7 shape: overbooking wins most on the high-variability tensors the
/// paper singles out (roadNet-CA, webbase-1M).
#[test]
fn fig7_shape_ob_wins_on_high_variability_tensors() {
    let arch = arch();
    for name in ["roadNet-CA", "webbase-1M"] {
        let wl = tailors::workloads::by_name(name).expect("suite tensor");
        let profile = wl.scaled(SCALE).generate().profile();
        let p = Variant::ExTensorP.run(&profile, &arch);
        let ob = Variant::default_ob().run(&profile, &arch);
        assert!(
            ob.speedup_over(&p) > 1.2,
            "{name}: overbooking should clearly beat prescient, got {:.2}x",
            ob.speedup_over(&p)
        );
    }
}

/// Fig. 10 shape: extreme overbooking targets are worse than moderate
/// ones — the curve has an interior region above its endpoints.
#[test]
fn fig10_shape_moderate_y_beats_extremes() {
    let arch = arch();
    let profile = tailors::workloads::by_name("webbase-1M")
        .expect("suite tensor")
        .scaled(SCALE)
        .generate()
        .profile();
    let cycles_at = |y: f64| Variant::ExTensorOB { y, k: 10 }.run(&profile, &arch).cycles;
    let moderate = cycles_at(0.10).min(cycles_at(0.22));
    assert!(
        moderate <= cycles_at(1.0),
        "y=100% must not beat moderate overbooking"
    );
}

/// Fig. 11 shape: distribution scaling pulls the achieved overbooking rate
/// toward the target, reducing MAE versus the raw initial estimate.
#[test]
fn fig11_shape_scaling_reduces_error() {
    let arch = arch();
    let capacity = arch.tile_capacity();
    let y = 0.10;
    let config = SwiftilesConfig::new(y, 10).expect("valid y").sample_all();
    let mut initial = Vec::new();
    let mut scaled = Vec::new();
    for wl in tailors::workloads::suite() {
        let profile = wl.scaled(SCALE).generate().profile();
        let est = Swiftiles::new(config).estimate(&profile, capacity);
        initial.push(100.0 * achieved_overbooking_rate(&profile, est.rows_initial, capacity));
        scaled.push(100.0 * achieved_overbooking_rate(&profile, est.rows_target, capacity));
    }
    let mae_initial = mae_to_target(&initial, 100.0 * y);
    let mae_scaled = mae_to_target(&scaled, 100.0 * y);
    assert!(
        mae_scaled < mae_initial,
        "scaling must reduce MAE: initial {mae_initial:.1}% vs scaled {mae_scaled:.1}%"
    );
}

/// Fig. 12 shape: sampling (k > 0) beats the unsampled initial estimate on
/// average, and more samples never catastrophically hurt.
#[test]
fn fig12_shape_sampling_helps() {
    let arch = arch();
    let capacity = arch.tile_capacity();
    let y = 0.10;
    let mae_at_k = |k: usize| {
        let mut rates = Vec::new();
        for wl in tailors::workloads::suite() {
            let profile = wl.scaled(SCALE).generate().profile();
            let config = SwiftilesConfig::new(y, k).expect("valid y");
            let est = Swiftiles::new(config).estimate(&profile, capacity);
            rates.push(100.0 * achieved_overbooking_rate(&profile, est.rows_target, capacity));
        }
        mae_to_target(&rates, 100.0 * y)
    };
    let no_sampling = mae_at_k(0);
    let k10 = mae_at_k(10);
    assert!(
        k10 < no_sampling,
        "k=10 ({k10:.1}%) must beat the raw initial estimate ({no_sampling:.1}%)"
    );
}

/// Table 1 shape: the strategy taxonomy's ordering of utilization and tax.
#[test]
fn table1_shape_strategy_taxonomy() {
    let arch = arch();
    let capacity = arch.tile_capacity();
    let profile = tailors::workloads::by_name("amazon0312")
        .expect("suite tensor")
        .scaled(SCALE)
        .generate()
        .profile();
    let uni = TilingStrategy::UniformShape.choose(&profile, capacity);
    let pre = TilingStrategy::PrescientUniformShape.choose(&profile, capacity);
    let ob = TilingStrategy::Overbooked(SwiftilesConfig::new(0.10, 10).expect("valid y"))
        .choose(&profile, capacity);
    let pst = TilingStrategy::UniformOccupancy.choose(&profile, capacity);
    assert!(uni.mean_utilization < pre.mean_utilization);
    assert!(pre.mean_utilization <= ob.mean_utilization + 1e-9);
    assert!(ob.mean_utilization <= pst.mean_utilization + 1e-9);
    assert_eq!(uni.tax.total(), 0);
    assert!(ob.tax.total() < pre.tax.total());
    // PST's tax is runtime operand matching, paid again on every execution
    // (prescient's traversals amortize as one-time preprocessing); it must
    // dwarf overbooking's sampling cost.
    assert!(pst.tax.matching_ops > 0);
    assert!(pst.tax.total() > ob.tax.total());
}
