//! The sharded router end to end, against three in-process wire shards:
//! a full suite batch routed through the ring must be bit-identical to a
//! single cold in-process service, and killing a shard mid-stream must
//! fail its keys over to the survivors with the fleet accounting ledger
//! (`completed + rejected + timed_out + faulted == submitted`) intact.

use std::sync::Arc;

use tailors_serve::wire::WireTcpServer;
use tailors_serve::{
    Reply, RouterConfig, RuntimeConfig, ServiceRuntime, ShardRouter, SimRequest, SimResponse,
    SimService, Work,
};
use tailors_sim::{GridMode, MemBudget, Variant};

const SCALE: f64 = 1.0 / 256.0;
const SHARDS: usize = 3;

/// The shared 24-request stream the wire determinism suite uses: 8
/// workloads × 3 variants with budgets and grids cycled.
fn batch() -> Vec<SimRequest> {
    let names = [
        "cant",
        "email-Enron",
        "pdb1HYS",
        "rma10",
        "soc-Epinions1",
        "p2p-Gnutella31",
        "webbase-1M",
        "roadNet-CA",
    ];
    let variants = [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ];
    names
        .iter()
        .enumerate()
        .flat_map(|(i, name)| {
            variants.into_iter().enumerate().map(move |(j, variant)| {
                let mut req = SimRequest::suite(name, SCALE, variant).expect("suite workload");
                if (i + j) % 2 == 0 {
                    req.budget = MemBudget::bytes(64 << 10);
                }
                if j % 2 == 1 {
                    req.grid = GridMode::Grid2D;
                }
                req
            })
        })
        .collect()
}

struct Fleet {
    runtimes: Vec<Arc<ServiceRuntime>>,
    servers: Vec<WireTcpServer>,
}

impl Fleet {
    fn spawn(n: usize) -> Fleet {
        let mut runtimes = Vec::new();
        let mut servers = Vec::new();
        for _ in 0..n {
            let runtime = Arc::new(ServiceRuntime::new(RuntimeConfig {
                workers: 2,
                ..RuntimeConfig::default()
            }));
            servers.push(
                WireTcpServer::spawn(Arc::clone(&runtime), "127.0.0.1:0").expect("bind shard"),
            );
            runtimes.push(runtime);
        }
        Fleet { runtimes, servers }
    }

    fn endpoints(&self) -> Vec<String> {
        self.servers.iter().map(|s| s.addr().to_string()).collect()
    }

    /// Takes shard `i` down completely: accept loop joined, sessions
    /// closed, workers drained, port freed.
    fn kill(&mut self, i: usize) {
        self.servers[i].stop();
        self.runtimes[i].shutdown();
    }

    fn shutdown(mut self) {
        for server in &mut self.servers {
            server.stop();
        }
        for runtime in &self.runtimes {
            runtime.shutdown();
        }
    }
}

fn sim_replies(outcomes: Vec<Result<Reply, tailors_serve::ServeError>>) -> Vec<SimResponse> {
    outcomes
        .into_iter()
        .map(|o| o.expect("served").into_sim().expect("sim reply"))
        .collect()
}

fn assert_bit_identical(served: &[SimResponse], baseline: &[SimResponse], context: &str) {
    assert_eq!(served.len(), baseline.len(), "{context}");
    for (s, b) in served.iter().zip(baseline) {
        assert_eq!(s.name, b.name, "{context}");
        assert_eq!(s.metrics, b.metrics, "{context}: {}", s.name);
        assert_eq!(
            s.metrics.cycles.to_bits(),
            b.metrics.cycles.to_bits(),
            "{context}: {} cycles bits",
            s.name
        );
        assert_eq!(
            s.metrics.energy_pj.to_bits(),
            b.metrics.energy_pj.to_bits(),
            "{context}: {} energy bits",
            s.name
        );
    }
}

#[test]
fn routed_batches_are_bit_identical_to_a_single_process() {
    let reqs = batch();
    let baseline = SimService::new().submit_batch(&reqs, 1);

    let fleet = Fleet::spawn(SHARDS);
    let router =
        ShardRouter::connect(&fleet.endpoints(), RouterConfig::default()).expect("router dials");
    let works: Vec<Work> = reqs.iter().cloned().map(Work::Sim).collect();

    // Placement really shards: with 8 distinct matrices on a 3-shard
    // ring, more than one shard must own keys.
    let mut owners: Vec<usize> = works.iter().map(|w| router.primary(w)).collect();
    owners.sort_unstable();
    owners.dedup();
    assert!(owners.len() > 1, "ring must spread the corpus");

    for pass in 0..2 {
        let served = sim_replies(router.submit_batch(&works));
        assert_bit_identical(&served, &baseline, &format!("pass={pass}"));
    }

    let stats = router.stats();
    assert_eq!(stats.submitted, 2 * works.len() as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.accounted(), stats.submitted);
    assert_eq!(stats.failovers, 0);
    assert_eq!(stats.shards_down, 0);
    // Every owning shard saw its own calls.
    let per_shard = router.shard_stats();
    assert_eq!(
        per_shard.iter().map(|s| s.replies).sum::<u64>(),
        stats.completed
    );
    for (i, s) in per_shard.iter().enumerate() {
        assert!(!s.down, "shard {i} must stay up");
    }
    fleet.shutdown();
}

#[test]
fn killing_a_shard_mid_stream_fails_over_with_the_ledger_intact() {
    let reqs = batch();
    let baseline = SimService::new().submit_batch(&reqs, 1);
    let works: Vec<Work> = reqs.iter().cloned().map(Work::Sim).collect();

    let mut fleet = Fleet::spawn(SHARDS);
    let router =
        ShardRouter::connect(&fleet.endpoints(), RouterConfig::default()).expect("router dials");

    // Warm the routing memo and pick a victim that owns keys, so the
    // second leg provably sends requests at a dead shard.
    let owners: Vec<usize> = works.iter().map(|w| router.primary(w)).collect();
    let victim = owners[0];
    let victim_keys = owners.iter().filter(|&&o| o == victim).count();
    assert!(victim_keys > 0);

    // Leg one: everything healthy.
    let first = sim_replies(router.submit_batch(&works));
    assert_bit_identical(&first, &baseline, "healthy leg");

    // Kill the victim, then replay the whole batch: its keys must fail
    // over to survivors and still produce bit-identical payloads.
    fleet.kill(victim);
    let second = sim_replies(router.submit_batch(&works));
    assert_bit_identical(&second, &baseline, "failover leg");

    let stats = router.stats();
    assert_eq!(stats.submitted, 2 * works.len() as u64);
    assert_eq!(stats.completed, stats.submitted, "no request lost");
    assert_eq!(
        stats.accounted(),
        stats.submitted,
        "ledger must hold across shards"
    );
    // The down mark is sticky, so only the first victim-bound request
    // pays the discovery hop; the exact count depends on which bin hit
    // the dead shard first, but at least one failover happened and the
    // victim is marked.
    assert!(stats.failovers >= 1, "stats: {stats:?}");
    assert_eq!(stats.shards_down, 1);
    assert!(router.down_shards()[victim]);

    // Survivors absorbed the victim's keys: their reply counts cover
    // every completion.
    let per_shard = router.shard_stats();
    assert_eq!(
        per_shard.iter().map(|s| s.replies).sum::<u64>(),
        stats.completed
    );
    assert!(per_shard[victim].transport_errors >= 1);

    // A fresh single submit while degraded still serves.
    let extra = router
        .submit(&works[0])
        .expect("degraded fleet still serves")
        .into_sim()
        .expect("sim reply");
    assert_eq!(extra.metrics, baseline[0].metrics);
    let stats = router.stats();
    assert_eq!(stats.accounted(), stats.submitted);

    fleet.shutdown();
}
