//! Sparse tensor substrate for the Tailors (MICRO 2023) reproduction.
//!
//! This crate provides everything the rest of the workspace needs to talk
//! about sparse matrices the way the paper does:
//!
//! * [`CooMatrix`] / [`CsrMatrix`] — concrete sparse formats; CSR doubles as
//!   a compressed-sparse-fiber view (each row is a fiber of
//!   (coordinate, value) pairs, see [`fiber`]).
//! * [`MatrixProfile`] — the per-row / per-column nonzero-count summary that
//!   the analytical accelerator model consumes. Panel (tile) occupancies are
//!   O(1) prefix-sum lookups.
//! * [`tiling`] — coordinate-space tiling (row panels spanning the shared
//!   dimension, and 2-D grid tiles for Fig. 1-style studies) together with
//!   tile-occupancy extraction.
//! * [`stats`] — occupancy histograms, quantiles, geometric means and the
//!   error metrics used throughout the paper's evaluation.
//! * [`gen`] — deterministic synthetic matrix generators standing in for the
//!   SuiteSparse collection (banded linear-system matrices, power-law
//!   graphs, clustered road networks, uniform scatter).
//! * [`ops`] — reference sparse kernels (`A·Aᵀ`, `A·B`) used to validate the
//!   functional accelerator engine, plus exact effectual-multiply counts.
//!
//! # Example
//!
//! ```
//! use tailors_tensor::{gen, tiling::RowPanels};
//!
//! // A small banded "linear system" matrix, deterministic for a given seed.
//! let a = gen::GenSpec::banded(1_000, 1_000, 20_000).seed(7).generate();
//! let profile = a.profile();
//!
//! // Tile it into row panels of 100 rows and look at occupancy variability.
//! let panels = RowPanels::new(&profile, 100);
//! let occ: Vec<u64> = panels.occupancies().collect();
//! assert_eq!(occ.iter().sum::<u64>(), a.nnz() as u64);
//! ```

// The workspace stance is `forbid(unsafe_code)` everywhere. This crate
// alone steps down to `deny` — which, unlike `forbid`, can be overridden
// by a scoped `#[allow]` — so that the audited [`simd`] module can hold
// the workspace's only `unsafe` blocks (runtime-dispatched AVX2/AVX-512
// intersect kernels). Every such block carries a `// SAFETY:` comment,
// and `unsafe_op_in_unsafe_fn` is denied so `#[target_feature]` bodies
// get no implicit unsafety either. See `simd`'s module docs for the
// full audit argument.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod coo;
mod csr;
mod profile;

pub mod fiber;
pub mod gen;
pub mod ops;
pub mod simd;
pub mod stats;
pub mod storage;
pub mod tiling;

pub use coo::CooMatrix;
pub use csr::{CsrMatrix, TileColPtr};
pub use profile::MatrixProfile;

/// Errors produced when constructing or manipulating sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// A coordinate lies outside the matrix shape.
    CoordOutOfBounds {
        /// Row coordinate of the offending entry.
        row: usize,
        /// Column coordinate of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// Two matrices have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: (usize, usize),
        /// Shape of the right-hand operand.
        right: (usize, usize),
    },
    /// A structurally invalid CSR buffer was supplied.
    InvalidCsr(&'static str),
}

impl core::fmt::Display for TensorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TensorError::CoordOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "coordinate ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            TensorError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} is incompatible with {}x{}",
                left.0, left.1, right.0, right.1
            ),
            TensorError::InvalidCsr(msg) => write!(f, "invalid CSR structure: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
