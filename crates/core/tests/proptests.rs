//! Property-based tests for Swiftiles and the tiling strategies.

use proptest::prelude::*;
use tailors_core::swiftiles::{rows_for_size, Swiftiles, SwiftilesConfig};
use tailors_core::TilingStrategy;
use tailors_tensor::gen::GenSpec;
use tailors_tensor::tiling::RowPanels;
use tailors_tensor::MatrixProfile;

fn random_profile(seed: u64, heavy: bool) -> MatrixProfile {
    let spec = if heavy {
        GenSpec::power_law(3_000, 3_000, 30_000)
    } else {
        GenSpec::uniform(3_000, 3_000, 30_000)
    };
    spec.seed(seed).generate().profile()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Swiftiles always returns a usable plan: rows within bounds, target
    /// size positive, sampling within budget.
    #[test]
    fn swiftiles_output_is_well_formed(
        seed in 0u64..50,
        capacity in 64u64..20_000,
        y in 0.0f64..1.0,
        k in 0usize..30,
        heavy in proptest::bool::ANY,
    ) {
        let profile = random_profile(seed, heavy);
        let config = SwiftilesConfig::new(y, k).unwrap().seed(seed);
        let est = Swiftiles::new(config).estimate(&profile, capacity);
        prop_assert!(est.rows_initial >= 1 && est.rows_initial <= profile.nrows());
        prop_assert!(est.rows_target >= 1 && est.rows_target <= profile.nrows());
        prop_assert!(est.t_target >= 1);
        let n_tiles = RowPanels::new(&profile, est.rows_initial).n_tiles();
        prop_assert!(est.samples.len() <= n_tiles.max(config.sample_budget(n_tiles)));
        if k == 0 {
            prop_assert_eq!(est.t_target, est.t_initial);
        }
    }

    /// The target tile size scales monotonically with buffer capacity.
    #[test]
    fn swiftiles_monotone_in_capacity(seed in 0u64..20) {
        let profile = random_profile(seed, true);
        let config = SwiftilesConfig::new(0.10, 10).unwrap().sample_all();
        let mut last = 0u64;
        for capacity in [128u64, 512, 2_048, 8_192, 32_768] {
            let est = Swiftiles::new(config).estimate(&profile, capacity);
            prop_assert!(
                est.t_target >= last,
                "t_target must grow with capacity"
            );
            last = est.t_target;
        }
    }

    /// Prescient tiling never overbooks, for any capacity, on any profile.
    #[test]
    fn prescient_never_overbooks(
        seed in 0u64..30,
        capacity in 16u64..50_000,
        heavy in proptest::bool::ANY,
    ) {
        let profile = random_profile(seed, heavy);
        let choice = TilingStrategy::PrescientUniformShape.choose(&profile, capacity);
        let panels = RowPanels::new(&profile, choice.rows_per_tile);
        // Either every tile fits, or the minimum granularity (single rows)
        // is itself too large — in which case rows_per_tile must be 1.
        if panels.max_occupancy() > capacity {
            prop_assert_eq!(choice.rows_per_tile, 1);
        } else {
            prop_assert_eq!(choice.overbooking_rate, 0.0);
        }
    }

    /// Utilization and overbooking rate are valid fractions for every
    /// strategy.
    #[test]
    fn strategy_outputs_are_fractions(
        seed in 0u64..20,
        capacity in 64u64..20_000,
    ) {
        let profile = random_profile(seed, true);
        for strategy in [
            TilingStrategy::UniformShape,
            TilingStrategy::PrescientUniformShape,
            TilingStrategy::UniformOccupancy,
            TilingStrategy::Overbooked(SwiftilesConfig::new(0.10, 5).unwrap()),
        ] {
            let c = strategy.choose(&profile, capacity);
            prop_assert!((0.0..=1.0).contains(&c.mean_utilization), "{strategy:?}");
            prop_assert!((0.0..=1.0).contains(&c.overbooking_rate), "{strategy:?}");
            prop_assert!(c.n_tiles >= 1);
            prop_assert!(c.rows_per_tile >= 1);
        }
    }

    /// rows_for_size is monotone and clamped.
    #[test]
    fn rows_for_size_properties(size_a in 1u64..1_000_000, size_b in 1u64..1_000_000) {
        let profile = random_profile(1, false);
        let (lo, hi) = if size_a <= size_b { (size_a, size_b) } else { (size_b, size_a) };
        let ra = rows_for_size(&profile, lo);
        let rb = rows_for_size(&profile, hi);
        prop_assert!(ra <= rb);
        prop_assert!(ra >= 1 && rb <= profile.nrows());
    }
}
