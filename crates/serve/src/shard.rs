//! Sharded multi-worker routing: a consistent-hash ring over N
//! `serve --wire` shard processes, with LPT-balanced batch fan-out and
//! typed failover.
//!
//! A single wire runtime serves one process as fast as the hardware
//! allows; the ROADMAP north star needs more than one worker. The
//! [`ShardRouter`] here is the thin layer in front of a fleet of shard
//! processes:
//!
//! * **Placement** — every request's workload spec resolves to its
//!   [`MatrixId`] (content hash + shape; memoized per spec exactly as
//!   [`SimService`](crate::SimService) memoizes it), and a
//!   consistent-hash [`HashRing`] maps that identity to a *primary*
//!   shard. Each shard therefore sees a stable slice of the corpus and
//!   its cache tiers (and PR 8 TSPILL corpus) stay hot for that slice;
//!   adding or removing a shard moves only ~K/N keys instead of
//!   reshuffling everything.
//! * **Balance** — [`ShardRouter::submit_batch`] groups a batch by
//!   primary shard, then splits each shard's group across that shard's
//!   connection pool in cost-balanced LPT bins using the *same* cost
//!   currency [`SimService::submit_batch`](crate::SimService::submit_batch)
//!   uses for its thread bins. Replies reassemble in request order, so
//!   batch payloads keep the bit-exact determinism contract: every shard
//!   computes the same bytes for the same request, and order is restored
//!   by index.
//! * **Failover** — shards fail in typed ways. A transport failure
//!   (connection refused/reset after the wire client's own
//!   reconnect-and-retry is exhausted) or a [`ServeError::Shutdown`]
//!   reply marks the shard **down** (sticky for the router's lifetime)
//!   and the request moves clockwise to the next live shard on the ring.
//!   An exhausted *retryable* overload ([`ServeError::retryable`])
//!   spills to the next shard too, but does **not** mark the shard down
//!   — it is busy, not gone. Deterministic outcomes (`Faulted`,
//!   `BadRequest`, `Timeout`) return to the caller unchanged: every
//!   shard would answer the same, so failing over would only repeat the
//!   answer slower.
//!
//! The router keeps the runtime's accounting invariant across the fleet:
//! [`RouterStats::accounted`]` == submitted` whenever no submission is in
//! flight, no matter how many shards died or how many times a request
//! moved. One router submission is one ledger entry — internal retries,
//! reconnects, and failover hops are observability counters, never extra
//! ledger rows.

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tailors_sim::balanced_partition;

use crate::runtime::{Reply, RetryPolicy, ServeError, Work};
use crate::service::{request_cost, MatrixId, SpecKey};
use crate::sync::PoisonFreeMutex;
use crate::wire::{WireClient, WireError};

// FNV-1a, the same hash family `CsrMatrix::content_hash` uses — tiny,
// dependency-free, and well-mixed enough for ring placement.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A consistent-hash ring: each shard owns `vnodes` pseudo-random
/// positions on the `u64` circle, and a key belongs to the shard owning
/// the first position at or clockwise-after the key's own position.
///
/// Virtual nodes smooth the per-shard share toward K/N, and consistency
/// bounds churn: removing a shard only reassigns keys whose first live
/// position belonged to it — every other key's walk is unchanged. The
/// ring is deterministic in (shard count, vnodes): two routers built
/// with the same parameters agree on every assignment.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(position, shard)` pairs.
    vnodes: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// A ring over `shards` shards with `vnodes` positions each.
    ///
    /// # Panics
    ///
    /// If `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one vnode per shard");
        let mut positions = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                let mut bytes = [0u8; 16];
                bytes[..8].copy_from_slice(&(shard as u64).to_le_bytes());
                bytes[8..].copy_from_slice(&(v as u64).to_le_bytes());
                positions.push((fnv1a(FNV_OFFSET, &bytes), shard));
            }
        }
        // Sort by (position, shard) so equal positions tie-break
        // deterministically.
        positions.sort_unstable();
        HashRing {
            vnodes: positions,
            shards,
        }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The key position of a matrix identity: all four identity fields
    /// feed the hash so shape-differing matrices with colliding content
    /// hashes still spread.
    fn position(id: &MatrixId) -> u64 {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&id.hash.to_le_bytes());
        bytes[8..16].copy_from_slice(&(id.nrows as u64).to_le_bytes());
        bytes[16..24].copy_from_slice(&(id.ncols as u64).to_le_bytes());
        bytes[24..].copy_from_slice(&(id.nnz as u64).to_le_bytes());
        fnv1a(FNV_OFFSET, &bytes)
    }

    /// Index of the first vnode at or clockwise-after `id`'s position.
    fn first_vnode(&self, id: &MatrixId) -> usize {
        let pos = Self::position(id);
        match self.vnodes.binary_search(&(pos, 0)) {
            Ok(i) => i,
            Err(i) if i == self.vnodes.len() => 0, // wrap
            Err(i) => i,
        }
    }

    /// The shard owning `id` when every shard is live.
    pub fn assign(&self, id: &MatrixId) -> usize {
        self.vnodes[self.first_vnode(id)].1
    }

    /// The shard owning `id` when the shards flagged in `down` are
    /// excluded: the first clockwise position belonging to a live shard.
    /// `None` when every shard is down.
    ///
    /// Consistency guarantee: if [`HashRing::assign`]`(id)` is live in
    /// `down`, this returns exactly that shard — taking shards down never
    /// moves keys the downed shards did not own.
    ///
    /// # Panics
    ///
    /// If `down.len()` differs from the shard count.
    pub fn assign_excluding(&self, id: &MatrixId, down: &[bool]) -> Option<usize> {
        assert_eq!(down.len(), self.shards, "down mask must cover every shard");
        self.candidates(id).find(|&s| !down[s])
    }

    /// All shards in clockwise ring order from `id`'s position, each
    /// once: the failover order. The first element is
    /// [`HashRing::assign`]`(id)`.
    pub fn candidates(&self, id: &MatrixId) -> impl Iterator<Item = usize> + '_ {
        let start = self.first_vnode(id);
        let mut seen = vec![false; self.shards];
        let n = self.vnodes.len();
        (0..n).filter_map(move |step| {
            let shard = self.vnodes[(start + step) % n].1;
            if seen[shard] {
                None
            } else {
                seen[shard] = true;
                Some(shard)
            }
        })
    }
}

/// Sizing knobs for a [`ShardRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Wire connections dialed per shard up front. Batch fan-out splits a
    /// shard's sub-batch across its connections in LPT bins; the pool
    /// grows past this high-water mark only if checkout finds it empty.
    pub connections: usize,
    /// Virtual nodes per shard on the [`HashRing`].
    pub vnodes: usize,
    /// Per-call retry policy handed to
    /// [`WireClient::call_with_retry`] — governs in-place reconnects and
    /// retryable-overload backoff *within* one shard, before the router
    /// considers moving the request.
    pub retry: RetryPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            connections: 2,
            vnodes: 64,
            retry: RetryPolicy::default(),
        }
    }
}

/// Per-shard observability counters (snapshot; see
/// [`ShardRouter::shard_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Wire calls attempted against this shard (each may retry
    /// internally per the router's [`RetryPolicy`]).
    pub calls: u64,
    /// Calls that returned a successful [`Reply`].
    pub replies: u64,
    /// Calls that returned a typed [`ServeError`].
    pub typed_errors: u64,
    /// Calls lost to transport failure after reconnect-retry exhaustion.
    pub transport_errors: u64,
    /// In-place stream reconnects performed by this shard's clients.
    pub reconnects: u64,
    /// Whether the router has marked the shard down (sticky).
    pub down: bool,
}

#[derive(Debug, Default)]
struct ShardCounters {
    calls: AtomicU64,
    replies: AtomicU64,
    typed_errors: AtomicU64,
    transport_errors: AtomicU64,
    reconnects: AtomicU64,
}

/// The router's fleet-wide accounting ledger — the multi-shard rollup of
/// [`RuntimeStats`](crate::RuntimeStats): one row per router submission,
/// regardless of how many shards the request visited on the way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Requests submitted to the router.
    pub submitted: u64,
    /// Requests that returned a [`Reply`].
    pub completed: u64,
    /// Typed rejections (overload on every live shard, bad request,
    /// shutdown / all shards down).
    pub rejected: u64,
    /// Requests whose per-shard deadline elapsed.
    pub timed_out: u64,
    /// Structured `Faulted` outcomes (isolated panics, engine errors,
    /// unretried protocol errors).
    pub faulted: u64,
    /// Requests that moved to another shard after a transport failure or
    /// shutdown reply (counted once per hop).
    pub failovers: u64,
    /// Requests that spilled to another shard after exhausting retryable
    /// overload on one (the busy shard stays up; counted once per hop).
    pub spills: u64,
    /// Stream reconnects across every shard's clients.
    pub reconnects: u64,
    /// Shards currently marked down.
    pub shards_down: u64,
}

impl RouterStats {
    /// Requests accounted for by a terminal outcome. The router-level
    /// invariant matches the single-runtime one:
    /// `accounted() == submitted` whenever no submission is in flight —
    /// failover never loses or double-counts a request.
    pub fn accounted(&self) -> u64 {
        self.completed + self.rejected + self.timed_out + self.faulted
    }
}

#[derive(Debug, Default)]
struct RouterCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    faulted: AtomicU64,
    failovers: AtomicU64,
    spills: AtomicU64,
}

/// One shard endpoint: its address, a checkout/checkin pool of wire
/// clients, its sticky down flag, and its counters.
#[derive(Debug)]
struct Shard {
    addr: SocketAddr,
    pool: PoisonFreeMutex<Vec<WireClient>>,
    down: AtomicBool,
    counters: ShardCounters,
}

/// What one shard said about one request — the router's failover
/// decision input.
enum ShardOutcome {
    Reply(Box<Reply>),
    Typed(ServeError),
    Transport(String),
}

/// A consistent-hash router over N wire shard endpoints. See the
/// [module docs](self) for placement, balance, and failover semantics.
#[derive(Debug)]
pub struct ShardRouter {
    shards: Vec<Shard>,
    ring: HashRing,
    config: RouterConfig,
    counters: RouterCounters,
    /// Spec → identity memo, mirroring `SimService`'s: the first request
    /// for a spec generates (or disk-loads) the tensor once to learn its
    /// content hash; every later request routes without touching tensor
    /// bytes.
    ids: PoisonFreeMutex<HashMap<SpecKey, MatrixId>>,
}

impl ShardRouter {
    /// Dials every endpoint ([`RouterConfig::connections`] streams each)
    /// and builds the ring. Construction is strict: a shard that cannot
    /// be dialed at all is an error, because a fleet that starts degraded
    /// should fail loudly at deploy time rather than quietly at the first
    /// unlucky request.
    ///
    /// # Errors
    ///
    /// Connection failures, or an empty endpoint list.
    pub fn connect<A: ToSocketAddrs>(
        endpoints: &[A],
        config: RouterConfig,
    ) -> std::io::Result<ShardRouter> {
        if endpoints.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a shard router needs at least one endpoint",
            ));
        }
        let connections = config.connections.max(1);
        let mut shards = Vec::with_capacity(endpoints.len());
        for endpoint in endpoints {
            let mut pool = Vec::with_capacity(connections);
            for _ in 0..connections {
                pool.push(WireClient::connect(endpoint)?);
            }
            let addr = pool[0].addr();
            shards.push(Shard {
                addr,
                pool: PoisonFreeMutex::new(pool),
                down: AtomicBool::new(false),
                counters: ShardCounters::default(),
            });
        }
        let ring = HashRing::new(shards.len(), config.vnodes.max(1));
        Ok(ShardRouter {
            shards,
            ring,
            config,
            counters: RouterCounters::default(),
            ids: PoisonFreeMutex::new(HashMap::new()),
        })
    }

    /// The ring this router places requests with.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The shard addresses, in shard-index order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.shards.iter().map(|s| s.addr).collect()
    }

    /// The primary shard for `work`'s matrix identity (ignoring down
    /// flags) — where the request goes when its shard is healthy.
    pub fn primary(&self, work: &Work) -> usize {
        self.ring.assign(&self.identify(work))
    }

    /// Serves one request with failover. The outcome is terminal: a
    /// reply, or the typed error of the last shard consulted
    /// ([`ServeError::Shutdown`] when every shard is down).
    ///
    /// # Errors
    ///
    /// The typed [`ServeError`] for this request. Transport failures are
    /// absorbed into failover; only when no live shard remains do they
    /// surface, as `Shutdown`.
    pub fn submit(&self, work: &Work) -> Result<Reply, ServeError> {
        self.counters.submitted.fetch_add(1, Ordering::SeqCst);
        let outcome = self.route(work);
        match &outcome {
            Ok(_) => &self.counters.completed,
            Err(ServeError::Timeout { .. }) => &self.counters.timed_out,
            Err(ServeError::Faulted { .. }) => &self.counters.faulted,
            Err(_) => &self.counters.rejected,
        }
        .fetch_add(1, Ordering::SeqCst);
        outcome
    }

    /// Serves a whole batch across the fleet: requests group by primary
    /// shard, each group splits over its shard's connection pool in LPT
    /// bins priced by the same cost formula
    /// [`SimService::submit_batch`](crate::SimService::submit_batch)
    /// uses, every (shard, connection) bin runs on its own thread, and
    /// outcomes reassemble in request order — so the reply sequence is
    /// bit-identical to a single process serving the same batch.
    pub fn submit_batch(&self, works: &[Work]) -> Vec<Result<Reply, ServeError>> {
        let primaries: Vec<usize> = works.iter().map(|w| self.primary(w)).collect();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &p) in primaries.iter().enumerate() {
            groups[p].push(i);
        }
        let mut slots: Vec<Option<Result<Reply, ServeError>>> = Vec::new();
        slots.resize_with(works.len(), || None);
        let outcomes = PoisonFreeMutex::new(slots);
        std::thread::scope(|scope| {
            for group in &groups {
                if group.is_empty() {
                    continue;
                }
                let costs: Vec<u128> = group
                    .iter()
                    .map(|&i| match &works[i] {
                        Work::Sim(r) => request_cost(&r.workload, r.variant),
                        // A functional request executes the dataflow, not
                        // just its analytics — weight it like a cold
                        // overbooked planning pass on top of its size.
                        Work::Functional(r) => request_cost(&r.workload, r.variant) * 4,
                    })
                    .collect();
                let bins = self.config.connections.max(1).min(group.len());
                for bin in balanced_partition(&costs, bins) {
                    let group = group.as_slice();
                    let outcomes = &outcomes;
                    scope.spawn(move || {
                        for local in bin {
                            let i = group[local];
                            let outcome = self.submit(&works[i]);
                            outcomes.lock()[i] = Some(outcome);
                        }
                    });
                }
            }
        });
        let results: Vec<Result<Reply, ServeError>> = outcomes
            .lock()
            .drain(..)
            .map(|slot| slot.expect("every batch index is owned by exactly one bin"))
            .collect();
        results
    }

    /// Walks the failover order for `work`: primary first, then clockwise
    /// ring successors, skipping shards already marked down.
    fn route(&self, work: &Work) -> Result<Reply, ServeError> {
        let id = self.identify(work);
        let mut last_refusal: Option<ServeError> = None;
        for shard in self.ring.candidates(&id) {
            if self.shards[shard].down.load(Ordering::SeqCst) {
                continue;
            }
            match self.call_shard(shard, work) {
                ShardOutcome::Reply(reply) => return Ok(*reply),
                ShardOutcome::Typed(e) if e.retryable() => {
                    // Busy, not gone: spill clockwise without condemning
                    // the shard.
                    self.counters.spills.fetch_add(1, Ordering::SeqCst);
                    last_refusal = Some(e);
                }
                ShardOutcome::Typed(ServeError::Shutdown) => {
                    self.mark_down(shard);
                    self.counters.failovers.fetch_add(1, Ordering::SeqCst);
                    last_refusal = Some(ServeError::Shutdown);
                }
                // Deterministic outcomes: every shard computes the same
                // answer for the same request, so moving on would only
                // repeat it.
                ShardOutcome::Typed(e) => return Err(e),
                ShardOutcome::Transport(m) => {
                    eprintln!(
                        "router: shard {shard} ({}) lost: {m} — failing over",
                        self.shards[shard].addr
                    );
                    self.mark_down(shard);
                    self.counters.failovers.fetch_add(1, Ordering::SeqCst);
                    last_refusal = Some(ServeError::Shutdown);
                }
            }
        }
        Err(last_refusal.unwrap_or(ServeError::Shutdown))
    }

    /// One request against one shard, through a checked-out pool client.
    /// A client that saw a transport or protocol failure is dropped, not
    /// returned — its stream state is unknown and the pool re-dials on
    /// demand.
    fn call_shard(&self, shard: usize, work: &Work) -> ShardOutcome {
        let s = &self.shards[shard];
        s.counters.calls.fetch_add(1, Ordering::SeqCst);
        let mut client = match self.checkout(shard) {
            Ok(c) => c,
            Err(e) => {
                s.counters.transport_errors.fetch_add(1, Ordering::SeqCst);
                return ShardOutcome::Transport(e.to_string());
            }
        };
        let before = client.reconnects();
        let result = client.call_with_retry(work, &self.config.retry);
        s.counters
            .reconnects
            .fetch_add(client.reconnects() - before, Ordering::SeqCst);
        match result {
            Ok(outcome) => {
                s.pool.lock().push(client);
                match outcome {
                    Ok(reply) => {
                        s.counters.replies.fetch_add(1, Ordering::SeqCst);
                        ShardOutcome::Reply(Box::new(reply))
                    }
                    Err(e) => {
                        s.counters.typed_errors.fetch_add(1, Ordering::SeqCst);
                        ShardOutcome::Typed(e)
                    }
                }
            }
            Err(WireError::Io(m)) => {
                s.counters.transport_errors.fetch_add(1, Ordering::SeqCst);
                ShardOutcome::Transport(m)
            }
            Err(WireError::Malformed(m)) => {
                // A codec disagreement is deterministic — surface it as a
                // fault instead of hammering other shards with it.
                s.counters.typed_errors.fetch_add(1, Ordering::SeqCst);
                ShardOutcome::Typed(ServeError::Faulted {
                    panic: false,
                    message: format!("wire protocol error: {m}"),
                })
            }
        }
    }

    /// Pops a pooled client for `shard`, dialing a fresh stream when the
    /// pool is momentarily empty (every client checked out, or dropped
    /// after failures).
    fn checkout(&self, shard: usize) -> std::io::Result<WireClient> {
        if let Some(client) = self.shards[shard].pool.lock().pop() {
            return Ok(client);
        }
        WireClient::connect(self.shards[shard].addr)
    }

    fn mark_down(&self, shard: usize) {
        self.shards[shard].down.store(true, Ordering::SeqCst);
    }

    /// Shards currently marked down (sticky; index order).
    pub fn down_shards(&self) -> Vec<bool> {
        self.shards
            .iter()
            .map(|s| s.down.load(Ordering::SeqCst))
            .collect()
    }

    /// Snapshot of the fleet ledger.
    pub fn stats(&self) -> RouterStats {
        let c = &self.counters;
        RouterStats {
            submitted: c.submitted.load(Ordering::SeqCst),
            completed: c.completed.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            timed_out: c.timed_out.load(Ordering::SeqCst),
            faulted: c.faulted.load(Ordering::SeqCst),
            failovers: c.failovers.load(Ordering::SeqCst),
            spills: c.spills.load(Ordering::SeqCst),
            reconnects: self
                .shards
                .iter()
                .map(|s| s.counters.reconnects.load(Ordering::SeqCst))
                .sum(),
            shards_down: self
                .shards
                .iter()
                .filter(|s| s.down.load(Ordering::SeqCst))
                .count() as u64,
        }
    }

    /// Per-shard counter snapshots, in shard-index order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                calls: s.counters.calls.load(Ordering::SeqCst),
                replies: s.counters.replies.load(Ordering::SeqCst),
                typed_errors: s.counters.typed_errors.load(Ordering::SeqCst),
                transport_errors: s.counters.transport_errors.load(Ordering::SeqCst),
                reconnects: s.counters.reconnects.load(Ordering::SeqCst),
                down: s.down.load(Ordering::SeqCst),
            })
            .collect()
    }

    /// Resolves `work`'s routing identity, generating the tensor only on
    /// first sight of its spec (see the `ids` field).
    fn identify(&self, work: &Work) -> MatrixId {
        let wl = work.workload();
        let spec = SpecKey::of(wl);
        if let Some(id) = self.ids.lock().get(&spec) {
            return *id;
        }
        let tensor = tailors_workloads::generate_cached(wl);
        let id = MatrixId::of(&tensor);
        self.ids.lock().insert(spec, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<MatrixId> {
        (0..n)
            .map(|i| MatrixId {
                hash: fnv1a(FNV_OFFSET, &i.to_le_bytes()),
                nrows: 64 + (i as usize % 7),
                ncols: 64,
                nnz: 100 + i as usize,
            })
            .collect()
    }

    #[test]
    fn ring_assignment_is_deterministic_and_covers_all_shards() {
        let a = HashRing::new(5, 64);
        let b = HashRing::new(5, 64);
        let mut hit = [false; 5];
        for id in ids(500) {
            let s = a.assign(&id);
            assert_eq!(s, b.assign(&id));
            assert!(s < 5);
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "500 keys must touch all 5 shards");
    }

    #[test]
    fn excluding_a_shard_moves_only_its_keys() {
        let ring = HashRing::new(4, 64);
        let mut down = [false; 4];
        down[2] = true;
        for id in ids(400) {
            let primary = ring.assign(&id);
            let fallback = ring.assign_excluding(&id, &down).unwrap();
            if primary != 2 {
                assert_eq!(fallback, primary, "live shards must keep their keys");
            } else {
                assert_ne!(fallback, 2);
            }
        }
    }

    #[test]
    fn candidates_enumerate_every_shard_once_starting_at_primary() {
        let ring = HashRing::new(6, 32);
        for id in ids(50) {
            let order: Vec<usize> = ring.candidates(&id).collect();
            assert_eq!(order[0], ring.assign(&id));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn all_shards_down_yields_no_assignment() {
        let ring = HashRing::new(3, 8);
        let id = ids(1)[0];
        assert_eq!(ring.assign_excluding(&id, &[true, true, true]), None);
    }
}
