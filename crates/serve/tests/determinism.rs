//! Determinism under concurrency: N clients hammering one shared
//! [`SimService`] with overlapping batches — at batch widths 1, 4, and 8
//! worker threads — receive response payloads bit-identical to a fully
//! serial execution on a cold service. Cache state, eviction history,
//! client interleaving, and fan-out width must all be invisible in the
//! payload (the `hits` observability flags are explicitly *not* part of
//! the contract; see `CacheHits`).

use std::sync::Arc;

use tailors_serve::{SimRequest, SimResponse, SimService};
use tailors_sim::{GridMode, MemBudget, Variant};

const SCALE: f64 = 1.0 / 256.0;
const CLIENTS: usize = 4;

/// The shared request stream: 8 workloads × 3 variants with budgets and
/// grids cycled deterministically, so tight-budget and 2-D-grid requests
/// are part of the overlap.
fn batch() -> Vec<SimRequest> {
    let names = [
        "cant",
        "email-Enron",
        "pdb1HYS",
        "rma10",
        "soc-Epinions1",
        "p2p-Gnutella31",
        "webbase-1M",
        "roadNet-CA",
    ];
    let variants = [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ];
    names
        .iter()
        .enumerate()
        .flat_map(|(i, name)| {
            variants.into_iter().enumerate().map(move |(j, variant)| {
                let mut req = SimRequest::suite(name, SCALE, variant).expect("suite workload");
                if (i + j) % 2 == 0 {
                    req.budget = MemBudget::bytes(64 << 10);
                }
                if j % 2 == 1 {
                    req.grid = GridMode::Grid2D;
                }
                req
            })
        })
        .collect()
}

fn assert_same_payload(a: &SimResponse, b: &SimResponse, context: &str) {
    assert_eq!(a.name, b.name, "{context}");
    assert_eq!(a.metrics, b.metrics, "{context}: {}", a.name);
    assert_eq!(
        a.metrics.cycles.to_bits(),
        b.metrics.cycles.to_bits(),
        "{context}: {} cycles bits",
        a.name
    );
    assert_eq!(
        a.metrics.energy_pj.to_bits(),
        b.metrics.energy_pj.to_bits(),
        "{context}: {} energy bits",
        a.name
    );
}

#[test]
fn concurrent_clients_match_serial_execution_at_every_width() {
    let reqs = batch();
    // Ground truth: a cold service, fully serial submission.
    let serial = SimService::new().submit_batch(&reqs, 1);

    for threads in [1usize, 4, 8] {
        let service = Arc::new(SimService::new());
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let service = Arc::clone(&service);
                let reqs = reqs.clone();
                std::thread::spawn(move || {
                    // Each client rotates the stream so clients race on
                    // *different* requests at any instant while every
                    // request is still served by every client.
                    let start = client * 7 % reqs.len();
                    let rotated: Vec<SimRequest> = reqs[start..]
                        .iter()
                        .chain(&reqs[..start])
                        .cloned()
                        .collect();
                    (start, service.submit_batch(&rotated, threads))
                })
            })
            .collect();
        for handle in handles {
            let (start, responses) = handle.join().expect("client thread");
            assert_eq!(responses.len(), serial.len());
            for (i, resp) in responses.iter().enumerate() {
                let serial_idx = (start + i) % serial.len();
                assert_same_payload(
                    resp,
                    &serial[serial_idx],
                    &format!("threads={threads} client-rotation={start}"),
                );
            }
        }
        // Overlap really happened: every request was served by every
        // client against one shared cache.
        let stats = service.stats();
        assert_eq!(stats.requests, (CLIENTS * reqs.len()) as u64);
        assert!(
            stats.plan_hits > 0,
            "overlapping clients must share cached plans"
        );
    }
}
