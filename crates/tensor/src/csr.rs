//! Compressed sparse row (CSR) matrix format.

use crate::fiber::Fiber;
use crate::{CooMatrix, MatrixProfile, TensorError};

/// A sparse matrix in compressed sparse row format.
///
/// Within each row, column indices are strictly increasing. This is the
/// workhorse format of the reproduction: each row is a *fiber* in the
/// paper's terminology (a sorted stream of (coordinate, value) pairs), so a
/// CSR matrix doubles as a two-level compressed-sparse-fiber tensor, the
/// format ExTensor stores operands in.
///
/// # Example
///
/// ```
/// use tailors_tensor::CsrMatrix;
///
/// let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0)]).unwrap();
/// assert_eq!(a.nnz(), 3);
/// assert_eq!(a.row(0).coords(), &[0, 2]);
/// assert_eq!(a.get(2, 1), Some(3.0));
/// assert_eq!(a.get(1, 1), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// Row pointer array, length `nrows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<u32>,
    /// Nonzero values, parallel to `col_idx`.
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds a CSR matrix from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidCsr`] if the row-pointer array has the
    /// wrong length, is non-monotonic, disagrees with the index array length,
    /// or if any row's column indices are out of bounds or not strictly
    /// increasing.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Result<Self, TensorError> {
        if row_ptr.len() != nrows + 1 {
            return Err(TensorError::InvalidCsr("row_ptr length must be nrows + 1"));
        }
        if row_ptr[0] != 0 || *row_ptr.last().expect("non-empty") != col_idx.len() {
            return Err(TensorError::InvalidCsr(
                "row_ptr must start at 0 and end at nnz",
            ));
        }
        if col_idx.len() != vals.len() {
            return Err(TensorError::InvalidCsr(
                "col_idx and vals must have equal length",
            ));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(TensorError::InvalidCsr("row_ptr must be non-decreasing"));
            }
        }
        for r in 0..nrows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(TensorError::InvalidCsr(
                        "column indices must be strictly increasing within a row",
                    ));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= ncols {
                    return Err(TensorError::InvalidCsr("column index out of bounds"));
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Builds a CSR matrix from buffers already in canonical form (sorted,
    /// strictly increasing columns per row, consistent row pointers).
    ///
    /// Used by kernels whose construction guarantees canonical output (the
    /// SPA multiply emits sorted, deduplicated rows); invariants are checked
    /// in debug builds only.
    pub(crate) fn from_sorted_parts_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(col_idx.len(), vals.len());
        debug_assert_eq!(*row_ptr.last().expect("non-empty"), col_idx.len());
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..nrows).all(|r| {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            row.windows(2).all(|w| w[0] < w[1]) && row.last().is_none_or(|&c| (c as usize) < ncols)
        }));
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Builds a CSR matrix from a COO matrix, sorting entries and summing
    /// duplicates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        // Counting sort by row, then sort each row's slice by column.
        let mut counts = vec![0usize; nrows + 1];
        for (r, _, _) in coo.iter() {
            counts[r + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let total = counts[nrows];
        let mut cols = vec![0u32; total];
        let mut vals = vec![0f64; total];
        let mut cursor = counts.clone();
        for (r, c, v) in coo.iter() {
            let at = cursor[r];
            cols[at] = c as u32;
            vals[at] = v;
            cursor[r] += 1;
        }
        // Sort within each row and merge duplicates.
        let mut out_cols = Vec::with_capacity(total);
        let mut out_vals = Vec::with_capacity(total);
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..nrows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            scratch.clear();
            scratch.extend(
                cols[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = scratch.iter().copied().peekable();
            while let Some((c, mut v)) = iter.next() {
                while let Some(&(c2, v2)) = iter.peek() {
                    if c2 == c {
                        v += v2;
                        iter.next();
                    } else {
                        break;
                    }
                }
                out_cols.push(c);
                out_vals.push(v);
            }
            row_ptr.push(out_cols.len());
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx: out_cols,
            vals: out_vals,
        }
    }

    /// Builds a CSR matrix directly from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::CoordOutOfBounds`] if any triplet lies outside
    /// the shape.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, TensorError> {
        let mut coo = CooMatrix::with_capacity(nrows, ncols, triplets.len());
        for &(r, c, v) in triplets {
            coo.push(r, c, v)?;
        }
        Ok(Self::from_coo(&coo))
    }

    /// Builds a dense-layout CSR matrix from a row-major 2-D array of values,
    /// skipping zeros.
    pub fn from_dense(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut coo = CooMatrix::new(nrows, ncols);
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    coo.push(r, c, v).expect("in bounds by construction");
                }
            }
        }
        Self::from_coo(&coo)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of structurally stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of the coordinate space that is *zero*, as in the paper's
    /// Table 2 (e.g. `0.9999` for a 99.99 %-sparse tensor).
    pub fn sparsity(&self) -> f64 {
        let size = self.nrows as f64 * self.ncols as f64;
        if size == 0.0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / size
        }
    }

    /// Density (`1 - sparsity`).
    pub fn density(&self) -> f64 {
        1.0 - self.sparsity()
    }

    /// The fiber (sorted coordinate/value stream) for row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.nrows()`.
    pub fn row(&self, r: usize) -> Fiber<'_> {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        Fiber::new(&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Number of nonzeros in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.nrows()`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Number of nonzeros in the row panel `r0..r1` — an O(1) slice of the
    /// stationary operand (adjacent row-pointer difference), matching
    /// [`crate::MatrixProfile::row_range_nnz`] without building a profile.
    ///
    /// # Panics
    ///
    /// Panics if `r0 > r1` or `r1 > self.nrows()`.
    pub fn row_range_nnz(&self, r0: usize, r1: usize) -> usize {
        assert!(r0 <= r1 && r1 <= self.nrows, "row range out of bounds");
        self.row_ptr[r1] - self.row_ptr[r0]
    }

    /// Looks up the value at `(r, c)`, or `None` if structurally zero or out
    /// of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r >= self.nrows || c >= self.ncols {
            return None;
        }
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        let slice = &self.col_idx[lo..hi];
        slice
            .binary_search(&(c as u32))
            .ok()
            .map(|i| self.vals[lo + i])
    }

    /// Iterates over all `(row, col, value)` entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            self.col_idx[lo..hi]
                .iter()
                .zip(&self.vals[lo..hi])
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Returns the transpose as a new CSR matrix.
    ///
    /// The paper's SpMSpM workload is `Z = A·Aᵀ`; the functional engine uses
    /// this to materialize `B = Aᵀ`.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut cursor = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0f64; self.nnz()];
        for (r, c, v) in self.iter() {
            let at = cursor[c];
            col_idx[at] = r as u32;
            vals[at] = v;
            cursor[c] += 1;
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr: counts,
            col_idx,
            vals,
        }
    }

    /// Extracts the per-row / per-column occupancy profile used by the
    /// analytical accelerator model.
    pub fn profile(&self) -> MatrixProfile {
        let mut col_nnz = vec![0u32; self.ncols];
        for &c in &self.col_idx {
            col_nnz[c as usize] += 1;
        }
        // Row counts fall directly out of adjacent row-pointer differences.
        let row_nnz: Vec<u32> = self
            .row_ptr
            .windows(2)
            .map(|w| (w[1] - w[0]) as u32)
            .collect();
        MatrixProfile::new(self.nrows, self.ncols, row_nnz, col_nnz)
    }

    /// Precomputes, for a uniform grid of column tiles of width
    /// `tile_cols`, where each row's nonzeros cross every tile boundary —
    /// a CSC-flavored column-pointer view over the CSR layout.
    ///
    /// A tiled traversal then slices row `r` restricted to tile `t` in O(1)
    /// via [`TileColPtr::row_tile_range`] instead of binary-searching the
    /// row per element. Construction is one pass over the nonzeros.
    ///
    /// The view stores `nrows × (n_tiles + 1)` indices — callers choosing
    /// very narrow tiles on very wide matrices should weigh that against
    /// the matrix's own footprint (the functional engine falls back to
    /// per-element range searches when the view would dominate).
    ///
    /// # Panics
    ///
    /// Panics if `tile_cols == 0`.
    pub fn tile_col_ptr(&self, tile_cols: usize) -> TileColPtr {
        assert!(tile_cols > 0, "tile width must be positive");
        let n_tiles = self.ncols.div_ceil(tile_cols);
        let stride = n_tiles + 1;
        let mut ptr = vec![0usize; self.nrows * stride];
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let base = r * stride;
            ptr[base] = lo;
            let mut tile = 0usize;
            for (i, &c) in self.col_idx[lo..hi].iter().enumerate() {
                let t = c as usize / tile_cols;
                while tile < t {
                    tile += 1;
                    ptr[base + tile] = lo + i;
                }
            }
            while tile < n_tiles {
                tile += 1;
                ptr[base + tile] = hi;
            }
        }
        TileColPtr {
            n_tiles,
            stride,
            ptr,
        }
    }

    /// A stable 64-bit content hash of the matrix: shape, structure, and
    /// exact value bit patterns.
    ///
    /// Two matrices hash equal iff they are `==` (up to the usual 64-bit
    /// collision caveat), and the hash is *stable*: it depends only on the
    /// matrix contents (FNV-1a over a fixed little-endian serialization),
    /// never on allocation addresses, hasher seeds, process, or platform —
    /// so it can key long-lived caches (the serving layer keys its profile
    /// and execution-plan tiers by it) and be compared across runs.
    ///
    /// Cost is one linear pass over the stored structure; callers that
    /// look up the same matrix repeatedly should hash once and reuse the
    /// key (see `tailors-serve`'s `MatrixId`).
    pub fn content_hash(&self) -> u64 {
        // FNV-1a, 64-bit. Explicit constants rather than `DefaultHasher`:
        // the std hasher is seeded per-process and its algorithm is not
        // stability-guaranteed, either of which would silently break
        // cross-run cache keys.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.nrows as u64).to_le_bytes());
        eat(&(self.ncols as u64).to_le_bytes());
        eat(&(self.nnz() as u64).to_le_bytes());
        for &p in &self.row_ptr {
            eat(&(p as u64).to_le_bytes());
        }
        for &c in &self.col_idx {
            eat(&c.to_le_bytes());
        }
        for &v in &self.vals {
            eat(&v.to_bits().to_le_bytes());
        }
        h
    }

    /// Raw row-pointer array (length `nrows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column-index array.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// Raw value array, parallel to [`CsrMatrix::col_indices`].
    pub fn values(&self) -> &[f64] {
        &self.vals
    }
}

/// Column-tile pointers for one matrix at one tile width; see
/// [`CsrMatrix::tile_col_ptr`].
///
/// # Example
///
/// ```
/// use tailors_tensor::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(
///     2,
///     8,
///     &[(0, 1, 1.0), (0, 4, 2.0), (0, 6, 3.0), (1, 3, 4.0)],
/// )
/// .unwrap();
/// let view = m.tile_col_ptr(4); // tiles: columns [0,4) and [4,8)
/// let (lo, hi) = view.row_tile_range(0, 1);
/// assert_eq!(&m.col_indices()[lo..hi], &[4, 6]);
/// assert_eq!(view.row_tile_range(1, 1), (4, 4)); // empty slice
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileColPtr {
    n_tiles: usize,
    stride: usize,
    /// Row-major `[row][tile_boundary]` indices into the matrix's
    /// `col_idx` / `vals` arrays, length `nrows * (n_tiles + 1)`.
    ptr: Vec<usize>,
}

impl TileColPtr {
    /// Number of column tiles the view was built for.
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Absolute `(start, end)` range into the matrix's nonzero arrays for
    /// row `row` restricted to column tile `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `tile` is out of range.
    #[inline]
    pub fn row_tile_range(&self, row: usize, tile: usize) -> (usize, usize) {
        assert!(tile < self.n_tiles, "tile index out of range");
        let base = row * self.stride;
        (self.ptr[base + tile], self.ptr[base + tile + 1])
    }

    /// Absolute `(start, end)` range for row `row` restricted to the run of
    /// column tiles `t0..t1` — an O(1) slice of a whole execution-plan
    /// column block of the streamed operand (tile boundaries are
    /// precomputed, so a multi-tile span costs the same two loads as a
    /// single tile). An empty run (`t0 == t1`) yields an empty range.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range, `t0 > t1`, or `t1 > self.n_tiles()`.
    #[inline]
    pub fn row_tile_span(&self, row: usize, t0: usize, t1: usize) -> (usize, usize) {
        assert!(t0 <= t1 && t1 <= self.n_tiles, "tile span out of range");
        let base = row * self.stride;
        (self.ptr[base + t0], self.ptr[base + t1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 1, 1.0),
                (0, 3, 2.0),
                (1, 0, 3.0),
                (2, 2, 4.0),
                (2, 3, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_triplets_sorts_rows() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (0, 0, 2.0)]).unwrap();
        assert_eq!(m.row(0).coords(), &[0, 2]);
        assert_eq!(m.row(0).values(), &[2.0, 1.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 1.0), (0, 1, 2.5)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), Some(3.5));
    }

    #[test]
    fn get_and_iter_agree() {
        let m = small();
        for (r, c, v) in m.iter() {
            assert_eq!(m.get(r, c), Some(v));
        }
        assert_eq!(m.iter().count(), m.nnz());
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.get(99, 0), None);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.nrows(), m.ncols());
        assert_eq!(t.ncols(), m.nrows());
        assert_eq!(t.nnz(), m.nnz());
        for (r, c, v) in m.iter() {
            assert_eq!(t.get(c, r), Some(v));
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn sparsity_matches_definition() {
        let m = small();
        let expected = 1.0 - 5.0 / 12.0;
        assert!((m.sparsity() - expected).abs() < 1e-12);
        assert!((m.density() - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn profile_counts_rows_and_cols() {
        let m = small();
        let p = m.profile();
        assert_eq!(p.row_nnz(), &[2, 1, 2]);
        assert_eq!(p.col_nnz(), &[1, 1, 1, 2]);
        assert_eq!(p.nnz(), 5);
    }

    #[test]
    fn from_parts_validates() {
        // Bad row_ptr length.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Non-monotonic row_ptr.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Unsorted columns.
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // Column out of bounds.
        assert!(CsrMatrix::from_parts(1, 1, vec![0, 1], vec![5], vec![1.0]).is_err());
        // A valid one.
        let ok = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 2.0]);
        assert!(ok.is_ok());
    }

    #[test]
    fn from_dense_skips_zeros() {
        let m = CsrMatrix::from_dense(&[vec![0.0, 1.0], vec![2.0, 0.0]]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 0), Some(2.0));
    }

    #[test]
    fn tile_col_ptr_matches_partition_point() {
        let m = crate::gen::GenSpec::uniform(40, 64, 400)
            .seed(11)
            .generate();
        for tile_cols in [1usize, 3, 16, 64, 100] {
            let view = m.tile_col_ptr(tile_cols);
            let n_tiles = 64usize.div_ceil(tile_cols);
            assert_eq!(view.n_tiles(), n_tiles);
            for r in 0..m.nrows() {
                let (lo, hi) = (m.row_ptr()[r], m.row_ptr()[r + 1]);
                let coords = &m.col_indices()[lo..hi];
                for t in 0..n_tiles {
                    let n0 = (t * tile_cols) as u32;
                    let n1 = ((t + 1) * tile_cols).min(64) as u32;
                    let expect_lo = lo + coords.partition_point(|&c| c < n0);
                    let expect_hi = lo + coords.partition_point(|&c| c < n1);
                    assert_eq!(
                        view.row_tile_range(r, t),
                        (expect_lo, expect_hi),
                        "row {r} tile {t} width {tile_cols}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_range_nnz_matches_row_sums() {
        let m = small();
        for r0 in 0..=m.nrows() {
            for r1 in r0..=m.nrows() {
                let expect: usize = (r0..r1).map(|r| m.row_nnz(r)).sum();
                assert_eq!(m.row_range_nnz(r0, r1), expect, "rows {r0}..{r1}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "row range")]
    fn row_range_nnz_rejects_out_of_bounds() {
        let _ = small().row_range_nnz(0, 99);
    }

    #[test]
    fn row_tile_span_concatenates_tile_ranges() {
        let m = crate::gen::GenSpec::uniform(30, 64, 300).seed(9).generate();
        let view = m.tile_col_ptr(10);
        let n_tiles = view.n_tiles();
        for r in 0..m.nrows() {
            for t0 in 0..=n_tiles {
                for t1 in t0..=n_tiles {
                    let (lo, hi) = view.row_tile_span(r, t0, t1);
                    assert!(lo <= hi);
                    // The span equals the union of its per-tile ranges.
                    if t0 < t1 {
                        assert_eq!(lo, view.row_tile_range(r, t0).0);
                        assert_eq!(hi, view.row_tile_range(r, t1 - 1).1);
                    } else {
                        assert_eq!(lo, hi);
                    }
                }
            }
        }
    }

    #[test]
    fn tile_col_ptr_handles_empty_matrix() {
        let m = CsrMatrix::new(3, 10);
        let view = m.tile_col_ptr(4);
        assert_eq!(view.n_tiles(), 3);
        for r in 0..3 {
            for t in 0..3 {
                assert_eq!(view.row_tile_range(r, t), (0, 0));
            }
        }
        // Zero columns ⇒ zero tiles, matching `ncols.div_ceil(w)`.
        assert_eq!(CsrMatrix::new(4, 0).tile_col_ptr(8).n_tiles(), 0);
        assert_eq!(CsrMatrix::new(0, 0).tile_col_ptr(1).n_tiles(), 0);
    }

    #[test]
    fn profile_row_counts_come_from_row_ptr() {
        let m = small();
        // One-pass derivation must agree with per-row queries.
        let p = m.profile();
        let per_row: Vec<u32> = (0..m.nrows()).map(|r| m.row_nnz(r) as u32).collect();
        assert_eq!(p.row_nnz(), per_row.as_slice());
    }

    #[test]
    fn content_hash_tracks_equality_and_is_pinned() {
        let m = small();
        assert_eq!(m.content_hash(), m.clone().content_hash());
        // Structure-only change.
        let moved = CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 1, 1.0),
                (0, 3, 2.0),
                (1, 0, 3.0),
                (2, 1, 4.0), // was (2, 2, 4.0)
                (2, 3, 5.0),
            ],
        )
        .unwrap();
        assert_ne!(m.content_hash(), moved.content_hash());
        // Value-only change (same structure).
        let revalued = CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 1, 1.0),
                (0, 3, 2.0),
                (1, 0, 3.0),
                (2, 2, 4.5),
                (2, 3, 5.0),
            ],
        )
        .unwrap();
        assert_ne!(m.content_hash(), revalued.content_hash());
        // Shape-only change (same triplets, wider matrix).
        let wider = CsrMatrix::from_triplets(3, 5, &m.iter().collect::<Vec<_>>()).unwrap();
        assert_ne!(m.content_hash(), wider.content_hash());
        // Pinned literal: this hash keys on-disk and cross-run caches, so a
        // change here is a cache-format break and must be deliberate.
        assert_eq!(small().content_hash(), 0x05fc_2914_4165_d3d1);
    }

    #[test]
    fn empty_matrix_is_consistent() {
        let m = CsrMatrix::new(4, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.sparsity(), 1.0);
        assert_eq!(m.transpose().nnz(), 0);
        assert_eq!(m.row(3).len(), 0);
    }
}
