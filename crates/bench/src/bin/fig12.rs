//! Fig. 12: MAE of Swiftiles' achieved-vs-target overbooking rate as the
//! sample parameter k sweeps from 0 (no sampling: the initial estimate) to
//! full sampling, at y = 10 %.
//!
//! The paper: error drops steeply from k = 0, reaches ~5.8 % at k = 10,
//! and plateaus near 5.5 % at full sampling (the residual is the one-shot
//! scaling assumption, not sampling noise).
//!
//! Usage: `cargo run --release -p tailors-bench --bin fig12 [scale]`

use tailors_bench::{arch_at, bar, profile_at, rule, scale_from_args};
use tailors_core::swiftiles::{achieved_overbooking_rate, Swiftiles, SwiftilesConfig};
use tailors_tensor::stats::mae_to_target;

fn main() {
    let scale = scale_from_args();
    let arch = arch_at(scale);
    let capacity = arch.tile_capacity();
    let y = 0.10;
    let seeds = [1u64, 2, 3];

    let suite: Vec<_> = tailors_workloads::suite()
        .iter()
        .map(|wl| profile_at(wl, scale))
        .collect();

    println!("Fig. 12 — Swiftiles MAE vs sample parameter k (y = 10%, scale = {scale})");
    rule(60);
    for k in [0usize, 1, 2, 5, 10, 20, 30, 50] {
        let mut rates = Vec::new();
        for (_, profile) in &suite {
            for &seed in &seeds {
                let config = SwiftilesConfig::new(y, k).expect("valid y").seed(seed);
                let est = Swiftiles::new(config).estimate(profile, capacity);
                rates.push(100.0 * achieved_overbooking_rate(profile, est.rows_target, capacity));
            }
        }
        let mae = mae_to_target(&rates, 100.0 * y);
        println!("k = {k:>3} : MAE {:>5.1}%  {}", mae, bar(mae / 25.0, 32));
    }
    // Full sampling limit.
    let mut rates = Vec::new();
    for (_, profile) in &suite {
        let config = SwiftilesConfig::new(y, 10).expect("valid y").sample_all();
        let est = Swiftiles::new(config).estimate(profile, capacity);
        rates.push(100.0 * achieved_overbooking_rate(profile, est.rows_target, capacity));
    }
    let mae = mae_to_target(&rates, 100.0 * y);
    println!("k = all : MAE {:>5.1}%  {}", mae, bar(mae / 25.0, 32));
    rule(60);
    println!("paper: MAE 5.8% at k = 10; 5.5% fully sampled (one-shot scaling residual)");
}
