//! Fig. 11: achieved overbooking rate when tiling with the raw initial
//! estimate T_initial vs with the Swiftiles-scaled prediction T_target
//! (y = 10 %, all tiles sampled).
//!
//! The paper: the initial estimate averages 19.9 % overbooking with an MAE
//! of 15.6 %; after scaling the average is 10.6 % with an MAE of 5.8 %.
//!
//! Usage: `cargo run --release -p tailors-bench --bin fig11 [scale]`

use tailors_bench::{arch_at, profile_at, rule, scale_from_args};
use tailors_core::swiftiles::{achieved_overbooking_rate, Swiftiles, SwiftilesConfig};
use tailors_tensor::stats::mae_to_target;

fn main() {
    let scale = scale_from_args();
    let arch = arch_at(scale);
    let capacity = arch.tile_capacity();
    let y = 0.10;
    let config = SwiftilesConfig::new(y, 10).expect("valid y").sample_all();

    println!("Fig. 11 — overbooking rate: initial estimate vs Swiftiles (scale = {scale})");
    rule(62);
    println!(
        "{:<20} {:>16} {:>16}",
        "workload", "initial rate", "scaled rate"
    );
    rule(62);
    let mut initial = Vec::new();
    let mut scaled = Vec::new();
    for wl in tailors_workloads::suite() {
        let (_, profile) = profile_at(&wl, scale);
        let est = Swiftiles::new(config).estimate(&profile, capacity);
        let r0 = achieved_overbooking_rate(&profile, est.rows_initial, capacity);
        let r1 = achieved_overbooking_rate(&profile, est.rows_target, capacity);
        initial.push(100.0 * r0);
        scaled.push(100.0 * r1);
        println!(
            "{:<20} {:>15.1}% {:>15.1}%",
            wl.name,
            100.0 * r0,
            100.0 * r1
        );
    }
    rule(62);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "initial estimate: mean {:.1}%, MAE {:.1}%   (paper: 19.9%, 15.6%)",
        mean(&initial),
        mae_to_target(&initial, 100.0 * y)
    );
    println!(
        "after scaling   : mean {:.1}%, MAE {:.1}%   (paper: 10.6%,  5.8%)",
        mean(&scaled),
        mae_to_target(&scaled, 100.0 * y)
    );
}
