//! Long-lived serving layer for the Tailors reproduction: accepts
//! simulation requests — singly or as batches — and answers from hot
//! caches instead of re-deriving everything per run.
//!
//! Every sweep binary in `tailors-bench` re-profiles its matrices and
//! re-derives tile/execution plans from scratch on each run. In a serving
//! setting (the ROADMAP's "heavy traffic" north star) those derivations
//! are the steady-state cost: the paper's planning stage — Swiftiles
//! occupancy sampling feeding the overbooked tile planner — is exactly
//! the work worth computing once per (matrix, variant, architecture,
//! budget) and replaying thereafter. [`SimService`] keeps three cache
//! tiers hot across requests:
//!
//! 1. **Tensors** — resolved through the generation cache
//!    (`tailors_workloads::generate_cached`: in-process weak map plus the
//!    optional `TAILORS_GEN_CACHE` disk layer). The service additionally
//!    memoizes each workload spec's [`MatrixId`] so analytical requests
//!    for a known spec skip the tensor entirely while their profile
//!    stays tiered.
//! 2. **Profiles** — `MatrixId` → [`MatrixProfile`](tailors_tensor::MatrixProfile)
//!    in a bounded LRU. The service builds profiles itself (never through
//!    the unbounded strong `profile_cached` map), so
//!    [`ServeConfig::profile_capacity`] is a real bound on resident
//!    profile memory; an evicted profile costs one re-resolution +
//!    O(nnz) re-profiling on next use.
//! 3. **Plans** — (`MatrixId`,
//!    [`Variant::cache_key`](tailors_sim::Variant::cache_key),
//!    [`ArchConfig::cache_key`](tailors_sim::ArchConfig::cache_key),
//!    [`MemBudget`](tailors_sim::MemBudget), auto-plan flag) → the
//!    variant's [`TilePlan`](tailors_sim::TilePlan) and induced
//!    [`ExecutionPlan`](tailors_sim::ExecutionPlan) — fixed-height, or
//!    from the budget-aware auto planner when the request opts in — in
//!    a bounded LRU; hot requests replay them through
//!    [`Variant::run_planned`](tailors_sim::Variant::run_planned) and
//!    perform no planning.
//!
//! Matrix identity is the *content* hash
//! ([`CsrMatrix::content_hash`](tailors_tensor::CsrMatrix::content_hash)),
//! not an allocation or spec identity, so two requests naming the same
//! bytes share cached artifacts no matter how the matrix arrived.
//!
//! **Determinism contract:** every response payload (metrics, functional
//! results) is bit-identical to the corresponding cold
//! `Variant::run_gridded` / `functional::run_with_threads` call — for any
//! cache state, any eviction history, any batch composition, and any
//! thread count (batches fan out over cost-balanced LPT bins and
//! reassemble in request order). The regression suite in
//! `crates/serve/tests/` locks this down: golden metrics snapshots,
//! cache-vs-cold bit-parity under arbitrary interleavings/evictions, and
//! concurrent-client determinism at 1/4/8 threads.
//!
//! # Example
//!
//! ```
//! use tailors_serve::{SimRequest, SimService};
//! use tailors_sim::Variant;
//!
//! let service = SimService::new();
//! let batch: Vec<SimRequest> = ["cant", "email-Enron"]
//!     .iter()
//!     .flat_map(|name| {
//!         [Variant::ExTensorP, Variant::default_ob()]
//!             .into_iter()
//!             .map(|v| SimRequest::suite(name, 1.0 / 256.0, v).unwrap())
//!     })
//!     .collect();
//! let cold = service.submit_batch(&batch, 2);
//! let hot = service.submit_batch(&batch, 2);
//! for (c, h) in cold.iter().zip(&hot) {
//!     assert_eq!(c.metrics, h.metrics); // hot == cold, bit-identical
//!     assert!(h.hits.plan && h.hits.profile);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lru;
pub mod mailbox;
pub mod runtime;
mod service;
pub mod shard;
pub mod sync;
pub mod wire;

pub use lru::Lru;
pub use mailbox::{Mailbox, MailboxStats, Priority, PushError};
pub use runtime::{
    FaultPlan, FaultSpecError, OverloadReason, Reply, RetryPolicy, RuntimeConfig, RuntimeStats,
    ServeError, ServiceRuntime, ShutdownReport, Work,
};
pub use service::{
    CacheHits, FunctionalRequest, FunctionalResponse, MatrixId, ServeConfig, ServeStats,
    SimRequest, SimResponse, SimService,
};
pub use shard::{
    HashRing, MembershipError, Placement, PoolError, RouterConfig, RouterStats, ShardRouter,
    ShardStats,
};
pub use wire::{
    WireClient, WireError, WireRequest, WireServeReport, WireStopReport, WireTcpServer,
};

#[cfg(test)]
mod tests {
    use super::*;
    use tailors_sim::{ArchConfig, GridMode, MemBudget, Variant};
    use tailors_tensor::gen::GenSpec;

    #[test]
    fn hot_requests_hit_every_tier_and_match_cold_payloads() {
        let service = SimService::new();
        let req = SimRequest::suite("email-Enron", 1.0 / 256.0, Variant::default_ob()).unwrap();
        let cold = service.submit(&req);
        assert!(!cold.hits.tensor && !cold.hits.plan);
        let hot = service.submit(&req);
        assert!(hot.hits.tensor && hot.hits.profile && hot.hits.plan);
        assert_eq!(cold.metrics, hot.metrics);
        assert_eq!(cold.name, "email-Enron");
        let s = service.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.plan_hits, 1);
        assert_eq!(s.plan_misses, 1);
        assert!(s.plan_hit_rate() > 0.49 && s.plan_hit_rate() < 0.51);
    }

    #[test]
    fn batch_payloads_are_thread_count_invariant() {
        let service = SimService::new();
        let batch: Vec<SimRequest> = tailors_workloads::suite()
            .iter()
            .take(6)
            .filter_map(|w| SimRequest::suite(w.name, 1.0 / 256.0, Variant::ExTensorP))
            .collect();
        assert_eq!(batch.len(), 6);
        let serial = service.submit_batch(&batch, 1);
        for threads in [2, 4] {
            let parallel = service.submit_batch(&batch, threads);
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.name, p.name);
                assert_eq!(s.metrics, p.metrics, "threads={threads}");
            }
        }
    }

    #[test]
    fn matrix_identity_is_content_based() {
        let a = GenSpec::uniform(64, 64, 300).seed(1).generate();
        let b = a.clone();
        let c = GenSpec::uniform(64, 64, 300).seed(2).generate();
        assert_eq!(MatrixId::of(&a), MatrixId::of(&b));
        assert_ne!(MatrixId::of(&a), MatrixId::of(&c));
        // Two services agree on identities; one service reuses plans for
        // equal content arriving as distinct allocations.
        let service = SimService::new();
        let arch = ArchConfig::tiny(200, 40);
        let (m1, h1) = service.run_matrix(
            &a,
            Variant::ExTensorP,
            &arch,
            MemBudget::Unbounded,
            GridMode::Panels,
        );
        let (m2, h2) = service.run_matrix(
            &b,
            Variant::ExTensorP,
            &arch,
            MemBudget::Unbounded,
            GridMode::Panels,
        );
        assert!(!h1.plan && h2.plan && h2.profile);
        assert_eq!(m1, m2);
    }

    #[test]
    fn functional_response_matches_direct_engine_call() {
        let service = SimService::new();
        let wl = tailors_workloads::by_name("email-Enron")
            .unwrap()
            .scaled(1.0 / 512.0);
        let req = FunctionalRequest {
            workload: wl.clone(),
            variant: Variant::default_ob(),
            arch: ArchConfig::extensor().scaled(1.0 / 512.0),
            budget: MemBudget::mib(4),
            grid: GridMode::Grid2D,
            auto_plan: false,
            threads: 2,
        };
        let served = service.run_functional(&req).unwrap();
        let a = wl.generate();
        for threads in [1, 3] {
            let direct =
                tailors_sim::functional::run_with_threads(&a, &served.config, threads).unwrap();
            assert_eq!(served.result, direct, "threads={threads}");
        }
        // Second submission: every tier hot, same payload.
        let again = service.run_functional(&req).unwrap();
        assert!(again.hits.tensor && again.hits.profile && again.hits.plan);
        assert_eq!(again.result, served.result);
        assert_eq!(service.stats().functional_requests, 2);
    }

    #[test]
    fn auto_planned_requests_resolve_and_cache_their_own_plans() {
        let service = SimService::new();
        let wl = tailors_workloads::by_name("email-Enron")
            .unwrap()
            .scaled(1.0 / 512.0);
        let arch = ArchConfig::extensor().scaled(1.0 / 512.0);
        let budget = MemBudget::bytes(64 << 10);
        let fixed = FunctionalRequest {
            workload: wl.clone(),
            variant: Variant::default_ob(),
            arch,
            budget,
            grid: GridMode::Panels,
            auto_plan: false,
            threads: 2,
        };
        let auto = FunctionalRequest {
            auto_plan: true,
            ..fixed.clone()
        };
        let served_fixed = service.run_functional(&fixed).unwrap();
        let served_auto = service.run_functional(&auto).unwrap();
        // The served auto config is resolved (self-contained): a direct
        // engine run at it reproduces the payload bitwise, and the output
        // matrix is tiling-invariant.
        assert!(!served_auto.config.auto_plan);
        let a = wl.generate();
        let direct = tailors_sim::functional::run_with_threads(&a, &served_auto.config, 1).unwrap();
        assert_eq!(served_auto.result, direct);
        assert_eq!(served_auto.result.z, served_fixed.result.z);
        // Auto and fixed plans occupy distinct cache slots: the auto
        // request was a plan miss despite the fixed one having populated
        // the tier, and its resubmission hits.
        assert_eq!(service.stats().plan_misses, 2);
        let again = service.run_functional(&auto).unwrap();
        assert!(again.hits.plan);
        assert_eq!(again.result, served_auto.result);
        // The analytical path shares the keying: an auto SimRequest for
        // the same inputs is served from the same plan tier.
        let sim_req = SimRequest {
            workload: wl.clone(),
            variant: Variant::default_ob(),
            arch,
            budget,
            grid: GridMode::Panels,
            auto_plan: true,
        };
        let resp = service.submit(&sim_req);
        assert!(resp.hits.plan, "functional warm-up must serve the sim path");
        let profile = a.profile();
        let cold = Variant::default_ob().run_auto(&profile, &arch, budget, GridMode::Panels);
        assert_eq!(resp.metrics, cold);
    }
}
