//! Property tests for the storage-handle layer: pooled-scratch runs are
//! bit-identical to fresh-alloc runs across arbitrary interleavings of
//! request shapes through one shared per-thread pool (shape-class
//! collisions, pool eviction under tight `MemBudget`, 1/4/8 threads),
//! and spilled runs ([`run_spilled`] over a file-backed operand paged in
//! panel-by-panel and tile-by-tile) diff clean against `reference_run`
//! in every reported field.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tailors_sim::functional::{
    clear_scratch_pool, reference_run, run_spilled, run_with_threads, scratch_pool_stats,
    FunctionalConfig,
};
use tailors_sim::{GridMode, MemBudget};
use tailors_tensor::gen::GenSpec;
use tailors_tensor::storage::{pooling_enabled, set_pooling, MmapStorage};

/// Serializes tests that toggle the process-wide pooling switch, so a
/// concurrently running test never observes a half-finished toggle.
static POOL_TOGGLE: Mutex<()> = Mutex::new(());

/// Restores the pooling switch when a test scope ends, panic or not.
struct PoolingGuard(bool);

impl PoolingGuard {
    fn hold() -> (std::sync::MutexGuard<'static, ()>, PoolingGuard) {
        let lock = POOL_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        (lock, PoolingGuard(pooling_enabled()))
    }
}

impl Drop for PoolingGuard {
    fn drop(&mut self) {
        set_pooling(self.0);
    }
}

fn config(
    capacity: usize,
    fifo_frac: usize,
    rows_a: usize,
    cols_b: usize,
    overbooking: bool,
    budget: MemBudget,
) -> FunctionalConfig {
    FunctionalConfig {
        capacity,
        fifo_region: (capacity * fifo_frac / 100).clamp(1, capacity.saturating_sub(1).max(1)),
        rows_a,
        cols_b,
        overbooking,
        mem_budget: budget,
        grid: GridMode::Panels,
        auto_plan: false,
    }
}

fn unique_spill_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "tailors_pooltest_{}_{}_{}.tspill",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An arbitrary interleaving of differently-shaped requests through
    /// one shared pool — shape-class collisions, recycled buffers, and
    /// eviction under arbitrary (including tiny) retention budgets —
    /// produces bit-identical results to the same sequence with pooling
    /// disabled (every buffer freshly allocated), at 1, 4, and 8 threads.
    #[test]
    fn pooled_interleavings_match_fresh_alloc_runs(
        seed in 0u64..30,
        heavy in proptest::bool::ANY,
        capacity in 8usize..120,
        fifo_frac in 1usize..90,
        shapes in proptest::collection::vec((1usize..70, 1usize..70, 0u64..40_000), 1..6),
        threads_sel in 0usize..3,
    ) {
        let threads = [1usize, 4, 8][threads_sel];
        let spec = if heavy {
            GenSpec::power_law(48, 48, 400)
        } else {
            GenSpec::uniform(48, 48, 300)
        };
        let a = spec.seed(seed).generate();
        let configs: Vec<FunctionalConfig> = shapes
            .iter()
            .map(|&(rows_a, cols_b, budget)| {
                config(capacity, fifo_frac, rows_a, cols_b, true, MemBudget::bytes(budget))
            })
            .collect();

        let (_lock, _restore) = PoolingGuard::hold();
        set_pooling(true);
        let pooled: Vec<_> = configs
            .iter()
            .map(|c| run_with_threads(&a, c, threads).expect("pooled run"))
            .collect();
        // Same sequence again through the now-warm pool: recycled
        // buffers must change nothing.
        let warm: Vec<_> = configs
            .iter()
            .map(|c| run_with_threads(&a, c, threads).expect("warm pooled run"))
            .collect();
        set_pooling(false);
        let fresh: Vec<_> = configs
            .iter()
            .map(|c| run_with_threads(&a, c, threads).expect("fresh-alloc run"))
            .collect();
        prop_assert_eq!(&pooled, &fresh);
        prop_assert_eq!(&warm, &fresh);
        for (c, r) in configs.iter().zip(&fresh) {
            let oracle = reference_run(&a, c).expect("seed engine");
            prop_assert_eq!(&r.z, &oracle.z);
            prop_assert_eq!(r.dram_a_fetches, oracle.dram_a_fetches);
            prop_assert_eq!(r.dram_b_fetches, oracle.dram_b_fetches);
            prop_assert_eq!(r.overbooked_a_tiles, oracle.overbooked_a_tiles);
        }
    }

    /// A spilled run — `A` panels and `B = Aᵀ` tiles paged in from the
    /// spill file under an arbitrary (often single-tile) residency
    /// budget — is bit-identical to `reference_run` and to the in-RAM
    /// engine in every reported field, at every thread count.
    #[test]
    fn spilled_runs_diff_clean_vs_reference(
        seed in 0u64..30,
        heavy in proptest::bool::ANY,
        capacity in 8usize..120,
        fifo_frac in 1usize..90,
        rows_a in 1usize..70,
        tile_exp in 0u32..7,
        budget_bytes in 0u64..40_000,
        residency_sel in 0usize..4,
        threads_sel in 0usize..3,
    ) {
        let residency = [None, Some(1u64), Some(4_096), Some(1 << 20)][residency_sel];
        let threads = [1usize, 2, 4][threads_sel];
        let spec = if heavy {
            GenSpec::power_law(48, 48, 400)
        } else {
            GenSpec::uniform(48, 48, 300)
        };
        let a = spec.seed(seed).generate();
        let cols_b = 1usize << tile_exp; // 1..=64
        let cfg = config(capacity, fifo_frac, rows_a, cols_b, true, MemBudget::bytes(budget_bytes));

        let path = unique_spill_path("prop");
        MmapStorage::store(&a, cols_b, &path).expect("store spill file");
        let store = MmapStorage::open(&path, residency).expect("open spill file");
        let spilled = run_spilled(&store, &cfg, threads).expect("spilled run");
        std::fs::remove_file(&path).ok();

        let in_ram = run_with_threads(&a, &cfg, 1).expect("in-RAM run");
        prop_assert_eq!(&spilled, &in_ram);
        let oracle = reference_run(&a, &cfg).expect("seed engine");
        prop_assert_eq!(&spilled.z, &oracle.z);
        prop_assert_eq!(spilled.dram_a_fetches, oracle.dram_a_fetches);
        prop_assert_eq!(spilled.dram_b_fetches, oracle.dram_b_fetches);
        prop_assert_eq!(spilled.overbooked_a_tiles, oracle.overbooked_a_tiles);
    }
}

/// The steady-state contract behind the serve-side zero-alloc pin, seen
/// from the pool's own counters: once a shape class has been through the
/// per-thread pool, repeating the same request is all hits — the kernel
/// path allocates no new scratch.
#[test]
fn warm_pool_serves_repeat_runs_without_misses() {
    let a = GenSpec::power_law(64, 64, 700).seed(5).generate();
    // Roomy budget: retention must exceed the scratch working set, or the
    // pool (correctly) evicts between runs and every repeat re-allocates.
    let cfg = config(64, 25, 16, 16, true, MemBudget::bytes(1 << 20));

    let (_lock, _restore) = PoolingGuard::hold();
    set_pooling(true);
    clear_scratch_pool();
    run_with_threads(&a, &cfg, 1).expect("warmup run");
    let warm = scratch_pool_stats();
    for _ in 0..3 {
        run_with_threads(&a, &cfg, 1).expect("steady-state run");
    }
    let steady = scratch_pool_stats();
    assert_eq!(
        steady.misses, warm.misses,
        "steady-state repeats must not allocate new pool inventory"
    );
    assert!(steady.checkouts > warm.checkouts);
    assert_eq!(steady.checkouts, steady.hits + steady.misses);
}

/// A retention cap smaller than any scratch buffer forces the pool to
/// evict everything at return time — and results still match the seed
/// engine exactly (eviction only frees memory, never changes behaviour).
#[test]
fn tight_budget_evicts_pool_inventory_without_changing_results() {
    let a = GenSpec::uniform(48, 48, 300).seed(9).generate();
    // A 1-byte scratch budget: the plan degenerates to single-tile blocks
    // and the pool can retain nothing.
    let cfg = config(32, 50, 8, 8, true, MemBudget::bytes(1));

    let (_lock, _restore) = PoolingGuard::hold();
    set_pooling(true);
    clear_scratch_pool();
    let before = scratch_pool_stats();
    let run = run_with_threads(&a, &cfg, 1).expect("tight-budget run");
    let after = scratch_pool_stats();
    assert!(after.evictions > before.evictions, "nothing was evicted");
    assert_eq!(after.resident_bytes, 0, "cap must hold after the run");

    let oracle = reference_run(&a, &cfg).expect("seed engine");
    assert_eq!(run.z, oracle.z);
    assert_eq!(run.dram_a_fetches, oracle.dram_a_fetches);
    assert_eq!(run.dram_b_fetches, oracle.dram_b_fetches);
}

/// Mismatched `cols_b` is a typed config error, not a wrong answer.
#[test]
fn spill_tile_mismatch_is_rejected() {
    use tailors_sim::functional::{ConfigError, EngineError};
    let a = GenSpec::uniform(32, 32, 150).seed(3).generate();
    let path = unique_spill_path("mismatch");
    MmapStorage::store(&a, 8, &path).expect("store spill file");
    let store = MmapStorage::open(&path, None).expect("open spill file");
    let cfg = config(32, 50, 8, 16, true, MemBudget::Unbounded);
    let err = run_spilled(&store, &cfg, 1).expect_err("cols_b mismatch must be rejected");
    assert_eq!(
        err,
        EngineError::Config(ConfigError::SpillTileMismatch {
            file_cols: 8,
            config_cols: 16
        })
    );
    std::fs::remove_file(&path).ok();
}
