//! Graph analytics scenario: co-citation counting on a social graph.
//!
//! `Z = A·Aᵀ` over an adjacency matrix counts, for every pair of users,
//! how many neighbours they share — the workload class the paper's intro
//! motivates (graph computing / data analytics). This example runs the
//! *functional* engine, so the output matrix is actually computed through
//! real Tailors buffers and validated against a reference multiply, while
//! the buffers count the DRAM traffic overbooking saves.
//!
//! Run with: `cargo run --release --example graph_analytics`

use tailors::eddo::TailorConfig;
use tailors::sim::functional::{run, FunctionalConfig};
use tailors::sim::{GridMode, MemBudget};
use tailors::tensor::gen::GenSpec;
use tailors::tensor::ops::{approx_eq, spmspm_a_at};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small social graph: 3000 users, heavy-tailed follower counts.
    let graph = GenSpec::power_law(3_000, 3_000, 24_000).seed(42).generate();
    println!(
        "social graph: {} users, {} edges",
        graph.nrows(),
        graph.nnz()
    );

    // A buffer too small for the busiest tiles — the overbooking regime.
    let capacity = 1_500;
    let fifo = TailorConfig::for_latency(capacity, 100, 1)?.fifo_region();
    let overbooked = FunctionalConfig {
        capacity,
        fifo_region: fifo,
        rows_a: 400,
        cols_b: 400,
        overbooking: true,
        mem_budget: MemBudget::Unbounded,
        grid: GridMode::Grid2D,
        auto_plan: false,
    };
    let buffet_only = FunctionalConfig {
        overbooking: false,
        ..overbooked
    };

    let with_tailors = run(&graph, &overbooked)?;
    let without = run(&graph, &buffet_only)?;

    // Both must compute the same co-citation matrix…
    let reference = spmspm_a_at(&graph);
    assert!(approx_eq(&with_tailors.z, &reference, 1e-9));
    assert!(approx_eq(&without.z, &reference, 1e-9));
    println!(
        "co-citation matrix: {} nonzero pairs (verified against reference)",
        with_tailors.z.nnz()
    );

    // …but Tailors fetch far less when tiles overbook.
    println!(
        "overbooked tiles: {} of {}",
        with_tailors.overbooked_a_tiles,
        graph.nrows().div_ceil(overbooked.rows_a)
    );
    println!(
        "DRAM fetches (stationary operand): tailors {}, buffets {} ({:.2}x saved)",
        with_tailors.dram_a_fetches,
        without.dram_a_fetches,
        without.dram_a_fetches as f64 / with_tailors.dram_a_fetches.max(1) as f64
    );

    // Top co-citation pair (excluding self-pairs), for flavour.
    let best = with_tailors
        .z
        .iter()
        .filter(|&(r, c, _)| r != c)
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    if let Some((u, v, w)) = best {
        println!("most-aligned users: {u} and {v} (shared-neighbour weight {w:.1})");
    }
    Ok(())
}
