//! Quickstart: size tiles with Swiftiles, simulate overbooking on ExTensor,
//! and compare against the prescient baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use tailors::core::swiftiles::{Swiftiles, SwiftilesConfig};
use tailors::sim::{ArchConfig, Variant};
use tailors::tensor::gen::GenSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A sparse tensor: a 200k x 200k power-law graph with 2M nonzeros
    //    (large enough that tiling actually matters against a 30 MB chip).
    let a = GenSpec::power_law(200_000, 200_000, 2_000_000)
        .seed(7)
        .generate();
    let profile = a.profile();
    println!(
        "tensor: {}x{}, {} nonzeros ({:.4}% sparse)",
        profile.nrows(),
        profile.ncols(),
        profile.nnz(),
        100.0 * profile.sparsity()
    );

    // 2. Size tiles so ~10% of them overbook the accelerator's working-tile
    //    capacity (the paper's operating point).
    let arch = ArchConfig::extensor();
    let capacity = arch.tile_capacity();
    let est = Swiftiles::new(SwiftilesConfig::new(0.10, 10)?).estimate(&profile, capacity);
    println!(
        "swiftiles: T_initial = {} ({} rows), T_target = {} ({} rows), \
         sampled {} tiles ({} nonzeros touched)",
        est.t_initial,
        est.rows_initial,
        est.t_target,
        est.rows_target,
        est.samples.len(),
        est.sampling_nnz_touched
    );

    // 3. Simulate Z = A·Aᵀ on the three accelerator variants.
    let n = Variant::ExTensorN.run(&profile, &arch);
    let p = Variant::ExTensorP.run(&profile, &arch);
    let ob = Variant::default_ob().run(&profile, &arch);
    println!(
        "ExTensor-N : {:>12.0} cycles, {:>8.2} uJ",
        n.cycles,
        n.energy_pj / 1e6
    );
    println!(
        "ExTensor-P : {:>12.0} cycles, {:>8.2} uJ ({:.1}x over N)",
        p.cycles,
        p.energy_pj / 1e6,
        p.speedup_over(&n)
    );
    println!(
        "ExTensor-OB: {:>12.0} cycles, {:>8.2} uJ ({:.1}x over N, {:.2}x over P)",
        ob.cycles,
        ob.energy_pj / 1e6,
        ob.speedup_over(&n),
        ob.speedup_over(&p)
    );
    println!(
        "overbooked tiles: {}/{} ({:.1}%), DRAM streaming overhead {:.1}%",
        ob.reuse.overbooked_a_tiles,
        ob.reuse.total_a_tiles,
        100.0 * ob.reuse.overbooking_rate_a(),
        100.0 * ob.dram.overhead_fraction()
    );
    Ok(())
}
