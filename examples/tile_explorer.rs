//! Tile-size explorer: inspect how Swiftiles sizes tiles for any suite
//! workload at any overbooking target.
//!
//! Run with:
//! `cargo run --release --example tile_explorer -- [workload] [y%] [scale]`
//! e.g. `cargo run --release --example tile_explorer -- roadNet-CA 25 0.125`

use tailors::core::swiftiles::{achieved_overbooking_rate, Swiftiles, SwiftilesConfig};
use tailors::sim::{ArchConfig, Variant};
use tailors::tensor::stats::summarize;
use tailors::tensor::tiling::RowPanels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "amazon0312".to_string());
    let y: f64 = args.next().map_or(10.0, |s| s.parse().expect("y%")) / 100.0;
    let scale: f64 = args.next().map_or(0.125, |s| s.parse().expect("scale"));

    let workload = tailors::workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name:?}; see `table2` for the suite"));
    let scaled = workload.scaled(scale);
    println!(
        "{} at scale {scale}: {}x{}, targeting {} nonzeros",
        scaled.name, scaled.nrows, scaled.ncols, scaled.target_nnz
    );
    let profile = scaled.generate().profile();
    let arch = ArchConfig::extensor().scaled(scale);
    let capacity = arch.tile_capacity();

    let est = Swiftiles::new(SwiftilesConfig::new(y, 10)?).estimate(&profile, capacity);
    println!(
        "buffer capacity: {capacity} nonzeros; target y = {:.0}%",
        100.0 * y
    );
    println!(
        "T_initial = {} elements ({} rows/tile)",
        est.t_initial, est.rows_initial
    );
    println!(
        "T_target  = {} elements ({} rows/tile), Q_y = {:?}",
        est.t_target, est.rows_target, est.q_y
    );
    let achieved = achieved_overbooking_rate(&profile, est.rows_target, capacity);
    println!("achieved overbooking rate: {:.1}%", 100.0 * achieved);

    let occ: Vec<u64> = RowPanels::new(&profile, est.rows_target)
        .occupancies()
        .collect();
    if let Some(s) = summarize(&occ) {
        println!(
            "occupancy at T_target: {} tiles, median {}, p90 {}, p99 {}, max {}",
            s.count, s.median, s.p90, s.p99, s.max
        );
    }

    let p = Variant::ExTensorP.run(&profile, &arch);
    let ob = Variant::ExTensorOB { y, k: 10 }.run(&profile, &arch);
    println!(
        "simulated at this y: {:.2}x speedup over prescient tiling \
         ({:.1}% DRAM streaming overhead)",
        ob.speedup_over(&p),
        100.0 * ob.dram.overhead_fraction()
    );
    Ok(())
}
