//! Transport recovery: a server restart between calls must be
//! survivable by an existing `WireClient`. The regression this pins: a
//! client that retried on the same dead `TcpStream` could only fail
//! again, so `call_with_retry` must tear the stream down and redial
//! before its next attempt.

use std::sync::Arc;

use tailors_serve::wire::WireTcpServer;
use tailors_serve::{
    RetryPolicy, RuntimeConfig, ServeError, ServiceRuntime, SimRequest, WireClient, WireError, Work,
};
use tailors_sim::Variant;

fn request() -> SimRequest {
    SimRequest::suite("email-Enron", 1.0 / 512.0, Variant::ExTensorP).expect("suite workload")
}

fn runtime() -> Arc<ServiceRuntime> {
    Arc::new(ServiceRuntime::new(RuntimeConfig {
        workers: 2,
        ..RuntimeConfig::default()
    }))
}

#[test]
fn call_with_retry_survives_a_server_restart_on_the_same_port() {
    let req = request();
    let work = Work::Sim(req.clone());

    let first_runtime = runtime();
    let mut server =
        WireTcpServer::spawn(Arc::clone(&first_runtime), "127.0.0.1:0").expect("bind server");
    let addr = server.addr();
    let mut client = WireClient::connect(addr).expect("connect");

    let first = client
        .call(&work)
        .expect("wire protocol")
        .expect("request served");

    // Take the server down completely: stop() joins the accept loop and
    // every session (their sockets close), shutdown drains the workers,
    // and dropping the pieces frees the port.
    let report = server.stop();
    assert!(report.woke, "loopback wake must reach a live accept loop");
    first_runtime.shutdown();
    drop(server);

    // A plain call on the old stream is a transport error — and leaves
    // the client still broken (no hidden reconnect outside the retry
    // path).
    let err = client.call(&work).expect_err("dead stream must error");
    assert!(matches!(err, WireError::Io(_)), "got {err:?}");
    assert_eq!(client.reconnects(), 0);

    // Restart on the very same port (std listeners set SO_REUSEADDR, so
    // the rebind is immediate).
    let second_runtime = runtime();
    let mut server2 = WireTcpServer::spawn(Arc::clone(&second_runtime), &addr.to_string())
        .expect("rebind same port");
    assert_eq!(server2.addr(), addr);

    // The regression: the retrying call must reconnect before retrying,
    // and the served payload is bit-identical to the pre-restart one
    // (same request, deterministic service).
    let second = client
        .call_with_retry(&work, &RetryPolicy::default())
        .expect("transport recovered")
        .expect("request served");
    assert_eq!(client.reconnects(), 1, "exactly one redial");
    let (a, b) = (
        first.into_sim().expect("sim reply"),
        second.into_sim().expect("sim reply"),
    );
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.metrics.cycles.to_bits(), b.metrics.cycles.to_bits());

    // The recovered stream is an ordinary one: plain calls work again.
    let third = client.call(&work).expect("wire protocol");
    assert!(third.is_ok());
    assert_eq!(client.reconnects(), 1);

    server2.stop();
    let report = second_runtime.shutdown();
    assert_eq!(report.unserved, 0);
}

#[test]
fn typed_errors_still_pass_through_untouched() {
    // Reconnect handling must not swallow the server's typed outcomes:
    // a structurally bad request is a `BadRequest`, not a transport
    // problem, and costs no reconnects.
    let rt = runtime();
    let mut server = WireTcpServer::spawn(Arc::clone(&rt), "127.0.0.1:0").expect("bind server");
    let mut client = WireClient::connect(server.addr()).expect("connect");
    let mut bad = request();
    bad.workload.nrows += 1; // non-square: rejected before queueing
    let outcome = client
        .call_with_retry(&Work::Sim(bad), &RetryPolicy::default())
        .expect("wire protocol");
    assert!(matches!(outcome, Err(ServeError::BadRequest(_))));
    assert_eq!(client.reconnects(), 0);
    server.stop();
    rt.shutdown();
}

#[test]
fn stop_reports_a_successful_wake_and_stays_idempotent() {
    let rt = runtime();
    let mut server = WireTcpServer::spawn(Arc::clone(&rt), "127.0.0.1:0").expect("bind server");
    assert!(server.stop().woke, "first stop wakes and joins");
    // Idempotent: the accept thread is already joined, so a second stop
    // reports the loop gone without dialing anything.
    assert!(server.stop().woke);
    rt.shutdown();
}
