//! Metrics reported by a simulated accelerator run.

use crate::energy::ActivityCounts;
use crate::exec::ScratchStats;
use crate::plan::TilePlan;

/// DRAM traffic split into the infinite-buffer baseline and the extra
/// streaming traffic caused by overbooked tiles (Fig. 9a's two bar
/// segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramBreakdown {
    /// Total DRAM traffic in elements.
    pub total: u128,
    /// Traffic the same tiling would produce with buffers that never
    /// overflow.
    pub baseline: u128,
    /// Extra traffic from streaming bumped data through Tailors (or from
    /// whole-tile refetches when overbooking support is disabled).
    pub overbook_extra: u128,
}

impl DramBreakdown {
    /// Fraction of total traffic that is overbooking overhead.
    pub fn overhead_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overbook_extra as f64 / self.total as f64
        }
    }
}

/// Data-reuse statistics for the stationary operand (Fig. 9b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseStats {
    /// Fraction of the operand's nonzeros that are bumped out of their
    /// buffer (averaged over tiles).
    pub bumped_fraction: f64,
    /// Fraction of child reads served without a fresh parent fetch.
    pub reused_fraction: f64,
    /// Number of A tiles whose occupancy exceeds the buffer capacity.
    pub overbooked_a_tiles: usize,
    /// Total A tiles.
    pub total_a_tiles: usize,
    /// Number of B tiles whose occupancy exceeds the buffer capacity.
    pub overbooked_b_tiles: usize,
    /// Total B tiles.
    pub total_b_tiles: usize,
}

impl ReuseStats {
    /// Achieved overbooking rate on the stationary operand.
    pub fn overbooking_rate_a(&self) -> f64 {
        if self.total_a_tiles == 0 {
            0.0
        } else {
            self.overbooked_a_tiles as f64 / self.total_a_tiles as f64
        }
    }
}

/// Everything one simulated run reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Execution time in cycles (roofline over DRAM, GB, intersection, and
    /// MAC throughput).
    pub cycles: f64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Raw activity counts.
    pub activity: ActivityCounts,
    /// DRAM traffic breakdown.
    pub dram: DramBreakdown,
    /// Reuse statistics.
    pub reuse: ReuseStats,
    /// The (normalized) tile plan that was simulated.
    pub plan: TilePlan,
    /// Software execution-planner accounting: how a functional replay of
    /// this tiling blocks its per-thread dense scratch under the run's
    /// [`MemBudget`](crate::exec::MemBudget).
    pub scratch: ScratchStats,
    /// Which resource bounds the roofline ("dram", "global-buffer",
    /// "intersection", or "compute").
    pub bound_by: &'static str,
}

impl RunMetrics {
    /// Speedup of this run relative to `other` (`other.cycles / cycles`).
    pub fn speedup_over(&self, other: &RunMetrics) -> f64 {
        other.cycles / self.cycles
    }

    /// Energy-efficiency gain relative to `other`
    /// (`other.energy / energy`).
    pub fn energy_gain_over(&self, other: &RunMetrics) -> f64 {
        other.energy_pj / self.energy_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(cycles: f64, energy: f64) -> RunMetrics {
        RunMetrics {
            cycles,
            energy_pj: energy,
            activity: ActivityCounts::default(),
            dram: DramBreakdown {
                total: 100,
                baseline: 80,
                overbook_extra: 20,
            },
            reuse: ReuseStats {
                bumped_fraction: 0.1,
                reused_fraction: 0.8,
                overbooked_a_tiles: 1,
                total_a_tiles: 10,
                overbooked_b_tiles: 0,
                total_b_tiles: 10,
            },
            plan: TilePlan {
                gb_rows_a: 1,
                gb_cols_b: 1,
                pe_rows_a: 1,
                pe_cols_b: 1,
                full_k: true,
                overbooking: true,
            },
            scratch: ScratchStats {
                col_blocks: 1,
                block_cols: 1,
                bytes_per_thread: 8,
                fits_budget: true,
                grid: crate::exec::GridMode::Panels,
                parallel_units: 1,
            },
            bound_by: "dram",
        }
    }

    #[test]
    fn ratios() {
        let fast = dummy(10.0, 5.0);
        let slow = dummy(30.0, 20.0);
        assert!((fast.speedup_over(&slow) - 3.0).abs() < 1e-12);
        assert!((fast.energy_gain_over(&slow) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_and_rates() {
        let m = dummy(1.0, 1.0);
        assert!((m.dram.overhead_fraction() - 0.2).abs() < 1e-12);
        assert!((m.reuse.overbooking_rate_a() - 0.1).abs() < 1e-12);
    }
}
