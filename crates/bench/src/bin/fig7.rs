//! Fig. 7: speedup of ExTensor-P and ExTensor-OB relative to ExTensor-N
//! on all 22 workloads, plus geometric means.
//!
//! Usage: `cargo run --release -p tailors-bench --bin fig7 [scale]`

use tailors_bench::{rule, scale_from_args, simulate_suite};
use tailors_tensor::stats::geomean;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 7 — speedup over ExTensor-N (scale = {scale})");
    rule(66);
    println!(
        "{:<20} {:>12} {:>12} {:>12}",
        "workload", "ExTensor-P", "ExTensor-OB", "OB / P"
    );
    rule(66);
    let runs = simulate_suite(scale);
    let mut p = Vec::new();
    let mut ob = Vec::new();
    for r in &runs {
        let (sp, sob) = (r.speedup_p(), r.speedup_ob());
        println!(
            "{:<20} {:>11.2}x {:>11.2}x {:>11.2}x",
            r.workload.name,
            sp,
            sob,
            sob / sp
        );
        p.push(sp);
        ob.push(sob);
    }
    rule(66);
    let gp = geomean(&p).expect("non-empty suite");
    let gob = geomean(&ob).expect("non-empty suite");
    println!(
        "{:<20} {:>11.2}x {:>11.2}x {:>11.2}x",
        "geomean",
        gp,
        gob,
        gob / gp
    );
    println!();
    println!("paper reports:       geomean OB/N = 52.7x, OB/P = 2.3x");
}
