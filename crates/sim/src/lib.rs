//! Analytical and functional models of an ExTensor-class sparse tensor
//! algebra accelerator, used to evaluate buffer overbooking (Tailors +
//! Swiftiles, MICRO 2023).
//!
//! * [`arch`] — the accelerator configuration (30 MB global buffer, 128
//!   PEs, 68.25 GB/s DRAM, §5.2), including Tailors FIFO-region sizing.
//! * [`energy`] — the per-action energy model (Accelergy/CACTI substitute).
//! * [`plan`] / [`dataflow`] — closed-form per-level access counts for the
//!   A-stationary intersection SpMSpM schedule, a roofline cycle model,
//!   and overbooking streaming-traffic accounting.
//! * [`variants`] — ExTensor-N / ExTensor-P / ExTensor-OB tile planners.
//! * [`exec`] — the memory-governed execution planner: 2-D (row-panel ×
//!   column-block) work-unit grids that bound the software engines'
//!   per-thread dense scratch to a configurable byte budget, the
//!   [`GridMode`] parallel decomposition, and the cost-balanced
//!   work-partitioner ([`balanced_partition`]) the engines schedule with.
//! * [`functional`] — an operation-level engine that executes the same
//!   schedule through real `tailors-eddo` buffers, validating both the
//!   computed output and the analytical traffic counts; with a
//!   [`MemBudget`] it scales to wide outputs (50 k+ columns) while staying
//!   bit-identical to the unbudgeted path, and with [`GridMode::Grid2D`]
//!   it fans out over `panels × blocks` work units (per-unit buffer
//!   drivers with exact block-local traffic accounting).
//!
//! # Example
//!
//! ```
//! use tailors_sim::{ArchConfig, Variant};
//! use tailors_tensor::gen::GenSpec;
//!
//! let a = GenSpec::power_law(30_000, 30_000, 300_000).seed(3).generate();
//! let profile = a.profile();
//! let arch = ArchConfig::extensor();
//! let p = Variant::ExTensorP.run(&profile, &arch);
//! let ob = Variant::default_ob().run(&profile, &arch);
//! println!("overbooking speedup: {:.2}x", ob.speedup_over(&p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod dataflow;
pub mod energy;
pub mod exec;
pub mod functional;
pub mod metrics;
pub mod plan;
pub mod variants;

pub use arch::{ArchConfig, ArchKey};
pub use dataflow::{simulate, simulate_budgeted, simulate_gridded, simulate_planned};
pub use exec::{
    auto_plan_from_env, balanced_partition, cost_model_from_env, grid_from_env,
    mem_budget_from_env, run_balanced, AutoPlanner, BufferParams, CostModel, ExecutionPlan,
    GridMode, MemBudget, PlanCost, PlanUnit, ScratchStats,
};

/// Worker-thread count from the `TAILORS_THREADS` environment variable
/// when set (`1` = the serial path), otherwise whatever rayon advertises.
/// Results never depend on this — every fan-out in the workspace
/// reassembles in item order.
///
/// # Panics
///
/// Panics if `TAILORS_THREADS` is set but not a positive integer.
pub fn threads_from_env() -> usize {
    match std::env::var("TAILORS_THREADS") {
        Err(_) => rayon::current_num_threads(),
        Ok(s) => {
            let n: usize = s.trim().parse().unwrap_or_else(|_| {
                panic!("TAILORS_THREADS must be a positive integer, got {s:?}")
            });
            assert!(n > 0, "TAILORS_THREADS must be positive");
            n
        }
    }
}

/// Runs `f` with a rayon pool of exactly `threads` workers active: the
/// ambient pool when it already has that width (no setup cost), otherwise
/// a pool built for the call. Shared by the functional engine and the
/// bench suite driver so the dispatch policy lives in one place.
pub fn in_thread_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    if threads == rayon::current_num_threads() {
        f()
    } else {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool construction cannot fail in the vendored shim")
            .install(f)
    }
}
pub use energy::{ActivityCounts, EnergyModel};
pub use metrics::{DramBreakdown, ReuseStats, RunMetrics};
pub use plan::TilePlan;
pub use variants::{Variant, VariantKey};
