//! Runs every figure/table reproduction in sequence (the full evaluation).
//!
//! Usage: `cargo run --release -p tailors-bench --bin run_all --
//! [scale] [--threads N] [--mem-budget SPEC] [--grid MODE] [--auto-plan]
//! [--calibrate] [--no-simd] [--no-gen-cache] [--serve]`
//!
//! At `scale = 1.0` (default) the workloads are generated at the paper's
//! full dimensions; expect a few minutes, dominated by tensor generation.
//! `--threads N` pins the suite's worker threads in every child binary
//! (`--threads 1` is the fully serial, deterministic path); without it the
//! children use all available cores.
//!
//! `--mem-budget SPEC` (e.g. `256MiB`, `1G`, `unbounded`) forwards a
//! per-thread scratch budget to every child via `TAILORS_MEM_BUDGET`; the
//! suite records the induced execution plans in its metrics, and the
//! functional smoke honours it directly. `--grid MODE` (`panels` or `2d`)
//! forwards the functional grid decomposition the same way via
//! `TAILORS_GRID` — `2d` fans functional runs out over `panels x blocks`
//! work units with per-unit buffer drivers (results are bit-identical
//! either way). `--auto-plan` forwards `TAILORS_AUTO_PLAN=1`: execution
//! plans come from the budget-aware auto planner (panel height
//! co-optimized against the scratch budget) instead of the variants'
//! fixed heights — the suite records the chosen plans in its scratch
//! stats, and the functional smoke executes (and verifies) them.
//!
//! `--no-simd` forwards `TAILORS_SIMD=off`: every fiber intersection in
//! every child takes the portable scalar superblock path instead of the
//! runtime-dispatched SIMD kernel (results are bit-identical either way
//! — this is the isolation knob CI runs the whole suite under).
//! `--calibrate` forwards `TAILORS_CALIBRATE=1`: auto planners minimize
//! measured per-term costs ([`CostModel::calibrated`]) instead of raw
//! element touches; chosen tilings may differ, replayed results never do.
//!
//! [`CostModel::calibrated`]: https://docs.rs/tailors-sim
//!
//! Generated tensors are memoized on disk across the child binaries
//! (`TAILORS_GEN_CACHE`, defaulting to `target/gen-cache`) so the ten
//! children stop regenerating ten identical copies of the suite;
//! `--no-gen-cache` disables the disk layer.
//!
//! `--serve` appends the `tailors-serve` sweep driver (`serve` binary) to
//! the sequence: repeated suite × variant sweeps through the long-lived
//! [`SimService`](https://docs.rs/tailors-serve) with `--verify`, proving
//! plan-hot steady-state responses bit-identical to cold `Variant` runs.
//! All the knobs above reach it through the same environment variables.
//!
//! `--wire` appends the wire-transport smoke (`serve --wire-smoke`): the
//! same suite sweep driven through the fault-tolerant service runtime —
//! line-delimited JSON over a real TCP socket, bounded mailboxes, worker
//! pool — verified bit-identical against an in-process baseline and
//! fully accounted. Set `TAILORS_FAULTS` (e.g. `panic:7,latency:3`) to
//! run it under deterministic fault injection; it inherits the
//! environment.
//!
//! `--router` appends the sharded-router smoke (`serve --router-smoke`):
//! the suite batch consistent-hash-routed across three spawned wire
//! shard processes and proven bit-identical to an in-process baseline,
//! then replayed with one shard hard-killed mid-stream to prove failover
//! completes with the fleet accounting ledger intact.

use std::process::Command;

fn main() {
    let mut scale: Option<String> = None;
    let mut threads: Option<String> = None;
    let mut mem_budget: Option<String> = None;
    let mut grid: Option<String> = None;
    let mut auto_plan = false;
    let mut calibrate = false;
    let mut no_simd = false;
    let mut gen_cache = true;
    let mut serve = false;
    let mut wire = false;
    let mut router = false;
    let mut args = std::env::args().skip(1);
    const USAGE: &str = "usage: run_all [scale] [--threads N] [--mem-budget SPEC] [--grid MODE] \
         [--auto-plan] [--calibrate] [--no-simd] [--no-gen-cache] [--serve] [--wire] [--router]";
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let n = args.next().expect("--threads requires a value");
            assert!(
                n.parse::<usize>().map(|v| v > 0).unwrap_or(false),
                "--threads must be a positive integer, got {n:?}"
            );
            threads = Some(n);
        } else if arg == "--mem-budget" {
            let spec = args.next().expect("--mem-budget requires a value");
            // Fail fast here rather than in every child.
            if let Err(e) = tailors_sim::MemBudget::parse(&spec) {
                panic!("--mem-budget: {e}");
            }
            mem_budget = Some(spec);
        } else if arg == "--grid" {
            let mode = args.next().expect("--grid requires a value");
            if let Err(e) = tailors_sim::GridMode::parse(&mode) {
                panic!("--grid: {e}");
            }
            grid = Some(mode);
        } else if arg == "--auto-plan" {
            auto_plan = true;
        } else if arg == "--calibrate" {
            calibrate = true;
        } else if arg == "--no-simd" {
            no_simd = true;
        } else if arg == "--no-gen-cache" {
            gen_cache = false;
        } else if arg == "--serve" {
            serve = true;
        } else if arg == "--wire" {
            wire = true;
        } else if arg == "--router" {
            router = true;
        } else if arg.starts_with('-') {
            panic!("unknown flag {arg:?}; {USAGE}");
        } else if scale.is_none() {
            scale = Some(arg);
        } else {
            panic!("unexpected extra argument {arg:?}; {USAGE}");
        }
    }
    let scale = scale.unwrap_or_else(|| "1.0".to_string());
    let cache_dir =
        std::env::var("TAILORS_GEN_CACHE").unwrap_or_else(|_| "target/gen-cache".to_string());
    let mut bins: Vec<(&str, &str, &[&str])> = vec![
        ("table2", "table2", &[]),
        ("fig1", "fig1", &[]),
        ("table1", "table1", &[]),
        ("fig7", "fig7", &[]),
        ("fig8", "fig8", &[]),
        ("fig9", "fig9", &[]),
        ("fig10", "fig10", &[]),
        ("fig11", "fig11", &[]),
        ("fig12", "fig12", &[]),
        ("fig13", "fig13", &[]),
    ];
    if serve {
        // The serving sweep rides at the end so its generation-cache hits
        // demonstrate the cross-binary disk tier too.
        bins.push(("serve", "serve", &["--sweeps", "3", "--verify"]));
    }
    if wire {
        // Late: the wire smoke exercises the full runtime stack (codec,
        // TCP, mailbox, workers) over the already-cached suite tensors.
        bins.push(("serve --wire-smoke", "serve", &["--wire-smoke"]));
    }
    if router {
        // Last: the sharded-router smoke spawns three wire shard
        // processes of its own and exercises ring placement + failover
        // on top of everything the wire smoke covers.
        bins.push(("serve --router-smoke", "serve", &["--router-smoke"]));
    }
    for (label, bin, extra) in bins {
        println!();
        println!("==================== {label} ====================");
        let mut cmd = Command::new(
            std::env::current_exe()
                .expect("self path")
                .parent()
                .expect("bin dir")
                .join(bin),
        );
        cmd.arg(&scale);
        cmd.args(extra);
        if let Some(t) = &threads {
            cmd.env("TAILORS_THREADS", t);
        }
        if let Some(b) = &mem_budget {
            cmd.env("TAILORS_MEM_BUDGET", b);
        }
        if let Some(g) = &grid {
            cmd.env("TAILORS_GRID", g);
        }
        if auto_plan {
            cmd.env("TAILORS_AUTO_PLAN", "1");
        }
        if calibrate {
            cmd.env("TAILORS_CALIBRATE", "1");
        }
        if no_simd {
            cmd.env("TAILORS_SIMD", "off");
        }
        if gen_cache {
            cmd.env("TAILORS_GEN_CACHE", &cache_dir);
        } else {
            cmd.env_remove("TAILORS_GEN_CACHE");
        }
        let status = cmd.status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{label} exited with {s}"),
            Err(e) => eprintln!("failed to launch {label}: {e}"),
        }
    }
}
