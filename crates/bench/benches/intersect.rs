//! Criterion benchmarks for the compute substrate: fiber intersection
//! (ExTensor's core primitive), the reference SpMSpM, the analytical
//! simulator itself, and the functional engine.
//!
//! The `spmspm` group tracks the dense-scratch (SPA) rewrite against the
//! retained seed kernels — `seed_hashmap_a_at_2k` and
//! `seed_functional_engine_a_at_2k` are the before, everything else is the
//! after. Run with `CRITERION_JSON=$PWD/BENCH_spmspm.json cargo bench --bench
//! intersect` (absolute path: benches run from `crates/bench/`) to refresh
//! the machine-readable trajectory file (schema in
//! `DESIGN.md`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tailors_serve::{SimRequest, SimService};
use tailors_sim::functional::{
    reference_run, run, run_spilled, run_with_threads, FunctionalConfig,
};
use tailors_sim::{ArchConfig, GridMode, MemBudget, Variant};
use tailors_tensor::gen::GenSpec;
use tailors_tensor::ops::{self, count_work, spmspm_a_at, spmspm_into, SpmspmScratch};
use tailors_tensor::storage::MmapStorage;

fn bench_intersection(c: &mut Criterion) {
    let a = GenSpec::uniform(1, 100_000, 10_000).seed(1).generate();
    let b = GenSpec::uniform(1, 100_000, 10_000).seed(2).generate();
    let (fa, fb) = (a.row(0), b.row(0));

    // Balanced operands: the scalar two-finger merge is the baseline; the
    // `blocked` row pins the portable scalar superblock walk (so this
    // trajectory row keeps meaning the same thing on every runner), and
    // the `simd` row is what `intersect_counted` now dispatches to on
    // this shape when the CPU allows (identical reported counts).
    println!(
        "fiber_intersection/simd dispatch level: {}",
        tailors_tensor::simd::active_level()
    );
    let mut g = c.benchmark_group("fiber_intersection");
    g.throughput(Throughput::Elements((fa.len() + fb.len()) as u64));
    g.bench_function("two_finger_10k_x_10k", |bch| {
        bch.iter(|| black_box(fa.intersect_counted_linear(&fb)))
    });
    g.bench_function("blocked_10k_x_10k", |bch| {
        bch.iter(|| black_box(fa.intersect_counted_blocked_scalar(&fb)))
    });
    g.bench_function("simd_10k_x_10k", |bch| {
        bch.iter(|| black_box(fa.intersect_counted_blocked(&fb)))
    });
    g.bench_function("dot_product_10k_x_10k", |bch| {
        bch.iter(|| black_box(fa.dot(&fb)))
    });
    g.finish();

    // Asymmetric operands: the adaptive dispatch gallops; the `_linear`
    // row is the scalar baseline it replaces on this shape. The operand
    // ratio is tied to the dispatch threshold so the rows keep measuring
    // the galloping side of the crossover if `GALLOP_RATIO` moves.
    let small = GenSpec::uniform(1, 100_000, 200).seed(5).generate();
    let fs = small.row(0);
    assert!(
        fb.len() > fs.len() * tailors_tensor::fiber::GALLOP_RATIO,
        "asymmetric rows must sit past the gallop crossover \
         ({} x {} vs ratio {})",
        fs.len(),
        fb.len(),
        tailors_tensor::fiber::GALLOP_RATIO,
    );
    let mut g = c.benchmark_group("fiber_intersection_asymmetric");
    g.throughput(Throughput::Elements((fs.len() + fb.len()) as u64));
    g.bench_function("two_finger_200_x_10k", |bch| {
        bch.iter(|| black_box(fs.intersect_counted_linear(&fb)))
    });
    g.bench_function("galloping_200_x_10k", |bch| {
        bch.iter(|| black_box(fs.intersect_counted(&fb)))
    });
    g.bench_function("galloping_10k_x_200", |bch| {
        bch.iter(|| black_box(fb.intersect_counted(&fs)))
    });
    g.finish();
}

fn bench_spmspm(c: &mut Criterion) {
    let a = GenSpec::power_law(2_000, 2_000, 20_000).seed(3).generate();
    let at = a.transpose();
    let mut g = c.benchmark_group("spmspm");
    g.sample_size(10);
    // Before: the seed's HashMap-accumulator Gustavson.
    g.bench_function("seed_hashmap_a_at_2k", |bch| {
        bch.iter(|| black_box(ops::reference::spmspm_a_at(&a)))
    });
    // After: the dense-scratch SPA kernel (same public entry point).
    g.bench_function("reference_a_at_2k", |bch| {
        bch.iter(|| black_box(spmspm_a_at(&a)))
    });
    // After, allocation-reusing: scratch and transpose hoisted out.
    g.bench_function("spa_into_a_at_2k", |bch| {
        let mut scratch = SpmspmScratch::new();
        bch.iter(|| black_box(spmspm_into(&a, &at, &mut scratch).unwrap()))
    });
    // Work counting: symbolic marker pass vs materializing the product.
    g.bench_function("count_work_symbolic_2k", |bch| {
        bch.iter(|| black_box(count_work(&a, &at).unwrap()))
    });

    let config = FunctionalConfig {
        capacity: 2_048,
        fifo_region: 256,
        rows_a: 256,
        cols_b: 256,
        overbooking: true,
        mem_budget: MemBudget::Unbounded,
        grid: GridMode::Panels,
        auto_plan: false,
    };
    // The parallel row runs the full 2-D (panel × block) grid: a 1 MiB
    // budget groups the 256-col tiles in pairs (4 blocks × 8 panels = 32
    // independently schedulable units instead of 8 skew-bound panels).
    // Results are bit-identical to `config` and to the seed engine.
    let grid_config = FunctionalConfig {
        mem_budget: MemBudget::bytes(256 * 512 * 8),
        grid: GridMode::Grid2D,
        auto_plan: false,
        ..config
    };
    // Before: the seed engine (tile materialization + per-element searches
    // + HashMap output accumulator).
    g.bench_function("seed_functional_engine_a_at_2k", |bch| {
        bch.iter(|| black_box(reference_run(&a, &config).unwrap()))
    });
    // After: CSR-slice walking, prefix-sliced B tiles, bitmask-blocked
    // panel scratch, 2-D grid fan-out across all available threads.
    g.bench_function("functional_engine_a_at_2k", |bch| {
        bch.iter(|| black_box(run(&a, &grid_config).unwrap()))
    });
    // After, pinned serial: the deterministic --threads 1 panels path.
    g.bench_function("functional_engine_serial_a_at_2k", |bch| {
        bch.iter(|| black_box(run_with_threads(&a, &config, 1).unwrap()))
    });
    g.finish();
}

fn bench_planner(c: &mut Criterion) {
    // The budget-aware auto planner vs the fixed-height plan it replaces,
    // at a tight (64 KiB) scratch budget on the 2 k point with 32-column
    // streamed tiles: the fixed 256-row panels overbook the 2048-slot
    // operand buffer and leave 63 single-tile column blocks, so every
    // output row is drained 63 times; the cost model halves the panels
    // (128 rows), which doubles the block width (32 blocks), stops the
    // overbooking, and fits the budget exactly. Both runs are
    // bit-identical to `reference_run` at their own tiling — the rows
    // measure what the plan *shape* costs.
    let a = GenSpec::power_law(2_000, 2_000, 20_000).seed(3).generate();
    let fixed = FunctionalConfig {
        capacity: 2_048,
        fifo_region: 256,
        rows_a: 256,
        cols_b: 32,
        overbooking: true,
        mem_budget: MemBudget::bytes(64 << 10),
        grid: GridMode::Panels,
        auto_plan: false,
    };
    let auto = FunctionalConfig {
        auto_plan: true,
        ..fixed
    };
    let fixed_plan = fixed.execution_plan(a.nrows(), a.ncols());
    let auto_plan = tailors_sim::functional::auto_execution_plan(&a, &auto);
    println!(
        "planner/auto_vs_fixed at 64KiB: fixed {} rows x {} blocks \
         ({} row-drain passes) -> auto {} rows x {} blocks ({} passes)",
        fixed_plan.rows_a(),
        fixed_plan.n_col_blocks(),
        a.nrows() * fixed_plan.n_col_blocks(),
        auto_plan.rows_a(),
        auto_plan.n_col_blocks(),
        a.nrows() * auto_plan.n_col_blocks(),
    );
    assert!(
        auto_plan.n_col_blocks() < fixed_plan.n_col_blocks(),
        "the auto planner must strictly reduce extraction passes here"
    );
    // The measurement-calibrated model at the same operating point: plan
    // once under the per-arch measured weights (the one-time calibration
    // cost is paid outside the timed region, as the serving layer pays it
    // once per process), then execute at the chosen tiling. The row is
    // the check that planning in measured picoseconds instead of raw
    // element touches never *loses* to the uniform model where the
    // uniform model was already right.
    let model = tailors_sim::CostModel::calibrated();
    let calibrated_plan = tailors_sim::functional::auto_execution_plan_costed(&a, &auto, model);
    let calibrated = FunctionalConfig {
        rows_a: calibrated_plan.rows_a(),
        auto_plan: false,
        ..fixed
    };
    println!(
        "planner/calibrated at 64KiB: weights fill {} / refetch {} / extract {} ps \
         -> {} rows x {} blocks",
        model.w_fill,
        model.w_refetch,
        model.w_extract,
        calibrated_plan.rows_a(),
        calibrated_plan.n_col_blocks(),
    );
    let mut g = c.benchmark_group("planner");
    g.sample_size(10);
    g.bench_function("auto_vs_fixed_fixed_64KiB_2k", |bch| {
        bch.iter(|| black_box(run_with_threads(&a, &fixed, 1).unwrap()))
    });
    g.bench_function("auto_vs_fixed_auto_64KiB_2k", |bch| {
        bch.iter(|| black_box(run_with_threads(&a, &auto, 1).unwrap()))
    });
    g.bench_function("calibrated_vs_uniform_64KiB_2k", |bch| {
        bch.iter(|| black_box(run_with_threads(&a, &calibrated, 1).unwrap()))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let profile = GenSpec::power_law(200_000, 200_000, 2_000_000)
        .seed(4)
        .generate()
        .profile();
    let arch = ArchConfig::extensor();
    let mut g = c.benchmark_group("analytical_simulator");
    g.sample_size(20);
    for v in [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ] {
        g.bench_function(v.name(), |bch| {
            bch.iter(|| black_box(v.run(&profile, &arch)))
        });
    }
    g.finish();
}

fn bench_suite(c: &mut Criterion) {
    // The 22-workload suite: generation (cached after the first pass) +
    // three variant runs per workload, serial vs cost-chunked parallel
    // fan-out. The 1/64 point is where per-workload simulation cost is
    // large and skewed enough for the chunking to matter — uniform splits
    // tie serial there because one bin inherits all the giants.
    let mut g = c.benchmark_group("suite");
    g.sample_size(10);
    g.bench_function("simulate_suite_serial_1_256", |bch| {
        bch.iter(|| black_box(tailors_bench::simulate_suite_with_threads(1.0 / 256.0, 1)))
    });
    g.bench_function("simulate_suite_parallel_1_256", |bch| {
        let threads = rayon::current_num_threads();
        bch.iter(|| {
            black_box(tailors_bench::simulate_suite_with_threads(
                1.0 / 256.0,
                threads,
            ))
        })
    });
    g.bench_function("simulate_suite_serial_1_64", |bch| {
        bch.iter(|| black_box(tailors_bench::simulate_suite_with_threads(1.0 / 64.0, 1)))
    });
    g.bench_function("simulate_suite_parallel_1_64", |bch| {
        let threads = rayon::current_num_threads();
        bch.iter(|| {
            black_box(tailors_bench::simulate_suite_with_threads(
                1.0 / 64.0,
                threads,
            ))
        })
    });
    g.finish();
}

fn bench_serving(c: &mut Criterion) {
    // Cold vs hot request latency through the serving layer: one batch of
    // 22 workloads × 3 variants at 1/64 scale. The tensors are pinned so
    // the cold row measures the serving layer's own per-request work —
    // content hashing, profiling, tile/execution planning — and the hot
    // row what remains once the profile and plan tiers answer (the pure
    // `run_planned` replay). The gap is the construction cost every
    // steady-state request skips.
    let scale = 1.0 / 64.0;
    let arch = ArchConfig::extensor().scaled(scale);
    let reqs: Vec<SimRequest> = tailors_workloads::suite()
        .iter()
        .flat_map(|wl| {
            [
                Variant::ExTensorN,
                Variant::ExTensorP,
                Variant::default_ob(),
            ]
            .map(|variant| SimRequest {
                workload: wl.scaled(scale),
                variant,
                arch,
                budget: MemBudget::Unbounded,
                grid: GridMode::Panels,
                auto_plan: false,
            })
        })
        .collect();
    let pinned: Vec<_> = reqs
        .iter()
        .map(|r| tailors_bench::generate_cached(&r.workload))
        .collect();
    let mut g = c.benchmark_group("serving");
    g.sample_size(10);
    g.throughput(Throughput::Elements(reqs.len() as u64));
    g.bench_function("suite_batch_cold_1_64", |bch| {
        bch.iter(|| {
            let service = SimService::new();
            black_box(service.submit_batch(&reqs, 1))
        })
    });
    let service = std::sync::Arc::new(SimService::new());
    service.submit_batch(&reqs, 1);
    g.bench_function("suite_batch_hot_1_64", |bch| {
        bch.iter(|| black_box(service.submit_batch(&reqs, 1)))
    });
    // The zero-alloc steady state: the same warm batch served one
    // request at a time, the loop `tests/zero_alloc.rs` pins at exactly
    // zero allocator calls (no response vector, no scheduler bin — the
    // pure hot path a long-lived session sees per request).
    g.bench_function("suite_batch_hot_pooled_1_64", |bch| {
        bch.iter(|| {
            for req in &reqs {
                black_box(service.submit(req));
            }
        })
    });
    // The same hot batch pushed through the full service runtime — JSON
    // codec, loopback TCP, bounded mailbox, worker pool — against the
    // same warmed cache tiers. The gap to `suite_batch_hot_1_64` is the
    // wire front door's per-request overhead.
    let runtime = std::sync::Arc::new(tailors_serve::ServiceRuntime::over(
        std::sync::Arc::clone(&service),
        tailors_serve::RuntimeConfig::default(),
    ));
    let mut server =
        tailors_serve::WireTcpServer::spawn(std::sync::Arc::clone(&runtime), "127.0.0.1:0")
            .expect("bind wire server");
    let mut client = tailors_serve::WireClient::connect(server.addr()).expect("connect");
    g.bench_function("wire_overhead_hot_1_64", |bch| {
        bch.iter(|| {
            for req in &reqs {
                black_box(
                    client
                        .sim(req)
                        .expect("wire protocol")
                        .expect("request served"),
                );
            }
        })
    });
    // The same hot batch through the consistent-hash shard router over
    // three in-process wire shards (each its own runtime + cache tiers,
    // warmed by one routed pass). The gap to `wire_overhead_hot_1_64` is
    // the routing layer itself: identity memo + ring lookup, per-shard
    // LPT fan-out, and reply reassembly.
    let mut shard_runtimes = Vec::new();
    let mut shard_servers = Vec::new();
    for _ in 0..3 {
        let rt = std::sync::Arc::new(tailors_serve::ServiceRuntime::new(
            tailors_serve::RuntimeConfig::default(),
        ));
        shard_servers.push(
            tailors_serve::WireTcpServer::spawn(std::sync::Arc::clone(&rt), "127.0.0.1:0")
                .expect("bind shard server"),
        );
        shard_runtimes.push(rt);
    }
    let endpoints: Vec<String> = shard_servers.iter().map(|s| s.addr().to_string()).collect();
    let router =
        tailors_serve::ShardRouter::connect(&endpoints, tailors_serve::RouterConfig::default())
            .expect("router dials shards");
    let works: Vec<tailors_serve::Work> =
        reqs.iter().cloned().map(tailors_serve::Work::Sim).collect();
    for outcome in router.submit_batch(&works) {
        outcome.expect("warming pass served");
    }
    g.bench_function("router_overhead_hot_1_64", |bch| {
        bch.iter(|| {
            for outcome in router.submit_batch(&works) {
                black_box(outcome.expect("request served"));
            }
        })
    });
    g.finish();
    drop(router);
    for mut s in shard_servers {
        s.stop();
    }
    for rt in &shard_runtimes {
        rt.shutdown();
    }
    server.stop();
    runtime.shutdown();
    drop(pinned);
}

fn bench_spill(c: &mut Criterion) {
    // The spill tier's overhead at the 2 k point: the same panels-mode
    // run with `A` and `B = Aᵀ` paged in from the TSPILL file instead of
    // resident CSR. `spilled_resident_a_at_2k` keeps every tile cached
    // (file parsing + panel loads are the only overhead);
    // `spilled_tight_a_at_2k` caps tile residency at one megabyte so the
    // clock-LRU cache churns — the worst case the planner's spill-traffic
    // term exists to steer away from. Both are bit-identical to the
    // in-RAM row.
    let a = GenSpec::power_law(2_000, 2_000, 20_000).seed(3).generate();
    let config = FunctionalConfig {
        capacity: 2_048,
        fifo_region: 256,
        rows_a: 256,
        cols_b: 256,
        overbooking: true,
        mem_budget: MemBudget::Unbounded,
        grid: GridMode::Panels,
        auto_plan: false,
    };
    let path =
        std::env::temp_dir().join(format!("tailors_bench_spill_{}.tspill", std::process::id()));
    MmapStorage::store(&a, config.cols_b, &path).expect("store spill file");
    let resident = MmapStorage::open(&path, None).expect("open spill file");
    let tight = MmapStorage::open(&path, Some(1 << 20)).expect("open spill file");
    assert_eq!(
        run_spilled(&resident, &config, 1).unwrap(),
        run_with_threads(&a, &config, 1).unwrap(),
        "spilled run must be bit-identical to the in-RAM engine"
    );
    let mut g = c.benchmark_group("spill");
    g.sample_size(10);
    g.bench_function("in_ram_a_at_2k", |bch| {
        bch.iter(|| black_box(run_with_threads(&a, &config, 1).unwrap()))
    });
    g.bench_function("spilled_resident_a_at_2k", |bch| {
        bch.iter(|| black_box(run_spilled(&resident, &config, 1).unwrap()))
    });
    g.bench_function("spilled_tight_a_at_2k", |bch| {
        bch.iter(|| black_box(run_spilled(&tight, &config, 1).unwrap()))
    });
    g.finish();
    println!(
        "spill/tight tile cache: {:?} over {} tiles",
        tight.stats(),
        tight.n_tiles()
    );
    std::fs::remove_file(&path).ok();
}

criterion_group!(
    benches,
    bench_intersection,
    bench_spmspm,
    bench_planner,
    bench_simulator,
    bench_suite,
    bench_serving,
    bench_spill
);
criterion_main!(benches);
