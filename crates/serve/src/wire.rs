//! The wire front door: a line-delimited JSON protocol over stdio or
//! TCP, hand-rolled (no serde — the container pins the dependency set)
//! on top of the [`ServiceRuntime`](crate::runtime::ServiceRuntime).
//!
//! # Protocol
//!
//! One request per line, one reply per line, in order:
//!
//! ```text
//! → {"id":1,"kind":"sim","req":{...}}
//! ← {"id":1,"ok":{"kind":"sim","resp":{...}}}
//! → {"id":2,"kind":"functional","req":{...}}
//! ← {"id":2,"err":{"code":"overloaded","reason":"mailbox-full",...}}
//! → not json at all
//! ← {"id":null,"err":{"code":"malformed","message":"..."}}
//! ```
//!
//! A malformed or truncated line gets a *protocol-level error reply*
//! (`code: "malformed"`, `id: null`) — the connection stays up and later
//! well-formed requests are served; nothing panics and nothing is
//! dropped. Every server-side failure travels back as the typed
//! [`ServeError`] it was, so a wire client sees exactly the outcomes an
//! in-process caller sees.
//!
//! # Bit-exactness
//!
//! Every `f64` crosses the wire as the decimal rendering of its
//! [`f64::to_bits`] pattern (and `u128` counters as plain decimal), so a
//! decoded reply is **bit-identical** to the in-process response — the
//! serving layer's determinism contract survives the transport, which
//! the wire determinism suite asserts against cold in-process runs.
//! A welcome side effect: the codec never parses or prints floating
//! point, so there is no rounding to reason about.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tailors_sim::functional::{FunctionalConfig, FunctionalResult};
use tailors_sim::{
    ActivityCounts, ArchConfig, DramBreakdown, GridMode, MemBudget, ReuseStats, RunMetrics,
    ScratchStats, TilePlan, Variant,
};
use tailors_tensor::CsrMatrix;
use tailors_workloads::{Workload, WorkloadClass};

use crate::runtime::{
    OverloadReason, Reply, RetryPolicy, RuntimeStats, ServeError, ServiceRuntime, Work,
};
use crate::service::{CacheHits, FunctionalRequest, FunctionalResponse, SimRequest, SimResponse};

/// Transport- and protocol-level failures (distinct from [`ServeError`],
/// which is a *successful* protocol exchange reporting a service
/// failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line was not a well-formed protocol message.
    Malformed(String),
    /// The underlying transport failed.
    Io(String),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Malformed(m) => write!(f, "malformed wire message: {m}"),
            WireError::Io(m) => write!(f, "wire transport error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

// ---------------------------------------------------------------------------
// A minimal JSON value model: numbers stay raw decimal tokens, which is
// all this protocol emits (every float is carried as its bit pattern).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Public so the codec round-trip property tests can
/// exercise the parser directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (this protocol only emits decimal
    /// integers).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in emission order. Keys are `Cow` so the encoders
    /// borrow their `'static` field names (no per-key allocation on the
    /// hot reply path) while the parser stores owned keys.
    Obj(Vec<(std::borrow::Cow<'static, str>, Json)>),
}

/// Nesting depth bound — protocol messages nest ~5 deep; anything deeper
/// is hostile or corrupt and is refused rather than recursed into.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] with a position-carrying description;
    /// never panics, for any input.
    pub fn parse(input: &str) -> Result<Json, WireError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(malformed(format!(
                "trailing bytes at offset {} of {:?}",
                p.pos,
                truncate_for_error(input)
            )));
        }
        Ok(v)
    }

    /// Serializes to a single line (no internal newlines, ever — the
    /// framing depends on it).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Serializes into a caller-owned buffer, clearing it first. The
    /// buffer's capacity survives across calls, so a session that reuses
    /// one buffer renders every steady-state reply without touching the
    /// allocator (capacity only ever ratchets up to the largest message
    /// seen).
    pub fn render_into(&self, out: &mut String) {
        out.clear();
        self.write(out);
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(tok) => out.push_str(tok),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // -- typed accessors; every failure is a Malformed with context --

    fn get(&self, key: &str) -> Result<&Json, WireError> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| malformed(format!("missing field {key:?}"))),
            _ => Err(malformed(format!("expected an object with field {key:?}"))),
        }
    }

    fn opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str_(&self) -> Result<&str, WireError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(malformed(format!("expected a string, got {other:?}"))),
        }
    }

    fn bool_(&self) -> Result<bool, WireError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(malformed(format!("expected a bool, got {other:?}"))),
        }
    }

    fn num_tok(&self) -> Result<&str, WireError> {
        match self {
            Json::Num(tok) => Ok(tok),
            other => Err(malformed(format!("expected a number, got {other:?}"))),
        }
    }

    fn u64_(&self) -> Result<u64, WireError> {
        let tok = self.num_tok()?;
        tok.parse()
            .map_err(|_| malformed(format!("number {tok:?} is not a u64")))
    }

    fn u128_(&self) -> Result<u128, WireError> {
        let tok = self.num_tok()?;
        tok.parse()
            .map_err(|_| malformed(format!("number {tok:?} is not a u128")))
    }

    fn usize_(&self) -> Result<usize, WireError> {
        let tok = self.num_tok()?;
        tok.parse()
            .map_err(|_| malformed(format!("number {tok:?} is not a usize")))
    }

    fn u32_(&self) -> Result<u32, WireError> {
        let tok = self.num_tok()?;
        tok.parse()
            .map_err(|_| malformed(format!("number {tok:?} is not a u32")))
    }

    /// An `f64` carried as the decimal rendering of its bit pattern.
    fn f64_bits(&self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64_()?))
    }

    fn arr(&self) -> Result<&[Json], WireError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(malformed(format!("expected an array, got {other:?}"))),
        }
    }
}

fn truncate_for_error(s: &str) -> String {
    const LIMIT: usize = 80;
    if s.len() <= LIMIT {
        s.to_string()
    } else {
        let mut end = LIMIT;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, msg: &str) -> WireError {
        malformed(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.fail("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.fail("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect_byte(b':')?;
                    let value = self.value(depth + 1)?;
                    fields.push((key.into(), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.fail("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.fail("unexpected byte")),
        }
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.fail("expected digits"));
        }
        // Accept (but never emit) fraction/exponent syntax so foreign
        // senders fail at typed decoding, not tokenization.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac {
                return Err(self.fail("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp {
                return Err(self.fail("expected exponent digits"));
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid utf-8 in number"))?;
        Ok(Json::Num(tok.to_string()))
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // A high surrogate must pair with \uDC00..
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.fail("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.fail("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.fail("invalid escape code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.fail("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // boundaries are valid; find the next one).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.fail("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.fail("invalid utf-8 in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Interning: wire messages carry owned strings, but `Workload::name`,
// `SimResponse::name`, and `RunMetrics::bound_by` are `&'static str`.
// Suite names resolve back to their existing statics; anything else is
// leaked once into a deduplicating pool (bounded by the number of
// distinct names a process ever decodes).
// ---------------------------------------------------------------------------

fn intern(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock, PoisonError};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut pool = pool.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(&existing) = pool.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

fn intern_workload_name(s: &str) -> &'static str {
    match tailors_workloads::by_name(s) {
        Some(w) => w.name,
        None => intern(s),
    }
}

fn intern_bound_by(s: &str) -> &'static str {
    match s {
        "dram" => "dram",
        "global-buffer" => "global-buffer",
        "intersection" => "intersection",
        "compute" => "compute",
        other => intern(other),
    }
}

// ---------------------------------------------------------------------------
// Domain codecs
// ---------------------------------------------------------------------------

fn num_u64(v: u64) -> Json {
    Json::Num(v.to_string())
}

fn num_u128(v: u128) -> Json {
    Json::Num(v.to_string())
}

fn num_usize(v: usize) -> Json {
    Json::Num(v.to_string())
}

fn bits(v: f64) -> Json {
    Json::Num(v.to_bits().to_string())
}

// Field names are compile-time literals, so the arena borrows them:
// building an envelope allocates only the (exact-sized) field vector,
// never the keys.
fn obj(fields: Vec<(&'static str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (std::borrow::Cow::Borrowed(k), v))
            .collect(),
    )
}

fn encode_workload(wl: &Workload) -> Json {
    let class = match wl.class {
        WorkloadClass::LinearSystem => "linear-system",
        WorkloadClass::Graph => "graph",
        WorkloadClass::RoadNetwork => "road-network",
    };
    obj(vec![
        ("name", Json::Str(wl.name.to_string())),
        ("nrows", num_usize(wl.nrows)),
        ("ncols", num_usize(wl.ncols)),
        ("target_nnz", num_usize(wl.target_nnz)),
        ("class", Json::Str(class.to_string())),
        ("paper_sparsity", bits(wl.paper_sparsity)),
        ("variability", bits(wl.variability)),
        ("seed", num_u64(wl.seed)),
    ])
}

fn decode_workload(v: &Json) -> Result<Workload, WireError> {
    let class = match v.get("class")?.str_()? {
        "linear-system" => WorkloadClass::LinearSystem,
        "graph" => WorkloadClass::Graph,
        "road-network" => WorkloadClass::RoadNetwork,
        other => return Err(malformed(format!("unknown workload class {other:?}"))),
    };
    Ok(Workload {
        name: intern_workload_name(v.get("name")?.str_()?),
        nrows: v.get("nrows")?.usize_()?,
        ncols: v.get("ncols")?.usize_()?,
        target_nnz: v.get("target_nnz")?.usize_()?,
        class,
        paper_sparsity: v.get("paper_sparsity")?.f64_bits()?,
        variability: v.get("variability")?.f64_bits()?,
        seed: v.get("seed")?.u64_()?,
    })
}

fn encode_variant(v: Variant) -> Json {
    match v {
        Variant::ExTensorN => obj(vec![("kind", Json::Str("n".into()))]),
        Variant::ExTensorP => obj(vec![("kind", Json::Str("p".into()))]),
        Variant::ExTensorOB { y, k } => obj(vec![
            ("kind", Json::Str("ob".into())),
            ("y", bits(y)),
            ("k", num_usize(k)),
        ]),
        // `Variant` is non_exhaustive upstream; refuse rather than
        // silently mis-encode a future variant.
        other => unreachable!("unencodable variant {other:?}"),
    }
}

fn decode_variant(v: &Json) -> Result<Variant, WireError> {
    match v.get("kind")?.str_()? {
        "n" => Ok(Variant::ExTensorN),
        "p" => Ok(Variant::ExTensorP),
        "ob" => Ok(Variant::ExTensorOB {
            y: v.get("y")?.f64_bits()?,
            k: v.get("k")?.usize_()?,
        }),
        other => Err(malformed(format!("unknown variant kind {other:?}"))),
    }
}

fn encode_arch(a: &ArchConfig) -> Json {
    obj(vec![
        ("gb_bytes", num_u64(a.gb_bytes)),
        ("pe_buf_bytes", num_u64(a.pe_buf_bytes)),
        ("pe_count", num_u64(a.pe_count)),
        ("bytes_per_element", num_u64(a.bytes_per_element)),
        ("dram_bytes_per_cycle", bits(a.dram_bytes_per_cycle)),
        ("gb_elems_per_cycle", bits(a.gb_elems_per_cycle)),
        ("isect_coords_per_cycle", bits(a.isect_coords_per_cycle)),
        ("macs_per_pe_per_cycle", bits(a.macs_per_pe_per_cycle)),
        ("operand_fraction", bits(a.operand_fraction)),
        ("dram_latency_cycles", num_u64(a.dram_latency_cycles)),
        ("gb_latency_cycles", num_u64(a.gb_latency_cycles)),
    ])
}

fn decode_arch(v: &Json) -> Result<ArchConfig, WireError> {
    Ok(ArchConfig {
        gb_bytes: v.get("gb_bytes")?.u64_()?,
        pe_buf_bytes: v.get("pe_buf_bytes")?.u64_()?,
        pe_count: v.get("pe_count")?.u64_()?,
        bytes_per_element: v.get("bytes_per_element")?.u64_()?,
        dram_bytes_per_cycle: v.get("dram_bytes_per_cycle")?.f64_bits()?,
        gb_elems_per_cycle: v.get("gb_elems_per_cycle")?.f64_bits()?,
        isect_coords_per_cycle: v.get("isect_coords_per_cycle")?.f64_bits()?,
        macs_per_pe_per_cycle: v.get("macs_per_pe_per_cycle")?.f64_bits()?,
        operand_fraction: v.get("operand_fraction")?.f64_bits()?,
        dram_latency_cycles: v.get("dram_latency_cycles")?.u64_()?,
        gb_latency_cycles: v.get("gb_latency_cycles")?.u64_()?,
    })
}

fn encode_budget(b: MemBudget) -> Json {
    match b.limit_bytes() {
        None => Json::Str("unbounded".into()),
        Some(n) => num_u64(n),
    }
}

fn decode_budget(v: &Json) -> Result<MemBudget, WireError> {
    match v {
        Json::Str(s) if s == "unbounded" => Ok(MemBudget::Unbounded),
        Json::Num(_) => Ok(MemBudget::Bytes(v.u64_()?)),
        other => Err(malformed(format!("invalid budget {other:?}"))),
    }
}

fn encode_grid(g: GridMode) -> Json {
    Json::Str(
        match g {
            GridMode::Panels => "panels",
            GridMode::Grid2D => "grid2d",
        }
        .into(),
    )
}

fn decode_grid(v: &Json) -> Result<GridMode, WireError> {
    GridMode::parse(v.str_()?).map_err(malformed)
}

fn encode_sim_request(r: &SimRequest) -> Json {
    obj(vec![
        ("workload", encode_workload(&r.workload)),
        ("variant", encode_variant(r.variant)),
        ("arch", encode_arch(&r.arch)),
        ("budget", encode_budget(r.budget)),
        ("grid", encode_grid(r.grid)),
        ("auto_plan", Json::Bool(r.auto_plan)),
    ])
}

fn decode_sim_request(v: &Json) -> Result<SimRequest, WireError> {
    Ok(SimRequest {
        workload: decode_workload(v.get("workload")?)?,
        variant: decode_variant(v.get("variant")?)?,
        arch: decode_arch(v.get("arch")?)?,
        budget: decode_budget(v.get("budget")?)?,
        grid: decode_grid(v.get("grid")?)?,
        auto_plan: v.get("auto_plan")?.bool_()?,
    })
}

fn encode_functional_request(r: &FunctionalRequest) -> Json {
    obj(vec![
        ("workload", encode_workload(&r.workload)),
        ("variant", encode_variant(r.variant)),
        ("arch", encode_arch(&r.arch)),
        ("budget", encode_budget(r.budget)),
        ("grid", encode_grid(r.grid)),
        ("auto_plan", Json::Bool(r.auto_plan)),
        ("threads", num_usize(r.threads)),
    ])
}

fn decode_functional_request(v: &Json) -> Result<FunctionalRequest, WireError> {
    Ok(FunctionalRequest {
        workload: decode_workload(v.get("workload")?)?,
        variant: decode_variant(v.get("variant")?)?,
        arch: decode_arch(v.get("arch")?)?,
        budget: decode_budget(v.get("budget")?)?,
        grid: decode_grid(v.get("grid")?)?,
        auto_plan: v.get("auto_plan")?.bool_()?,
        threads: v.get("threads")?.usize_()?,
    })
}

fn encode_metrics(m: &RunMetrics) -> Json {
    obj(vec![
        ("cycles", bits(m.cycles)),
        ("energy_pj", bits(m.energy_pj)),
        (
            "activity",
            obj(vec![
                ("dram_elems", num_u128(m.activity.dram_elems)),
                ("gb_accesses", num_u128(m.activity.gb_accesses)),
                ("pe_buf_accesses", num_u128(m.activity.pe_buf_accesses)),
                ("macs", num_u128(m.activity.macs)),
                ("isect_coords", num_u128(m.activity.isect_coords)),
            ]),
        ),
        (
            "dram",
            obj(vec![
                ("total", num_u128(m.dram.total)),
                ("baseline", num_u128(m.dram.baseline)),
                ("overbook_extra", num_u128(m.dram.overbook_extra)),
            ]),
        ),
        (
            "reuse",
            obj(vec![
                ("bumped_fraction", bits(m.reuse.bumped_fraction)),
                ("reused_fraction", bits(m.reuse.reused_fraction)),
                ("overbooked_a_tiles", num_usize(m.reuse.overbooked_a_tiles)),
                ("total_a_tiles", num_usize(m.reuse.total_a_tiles)),
                ("overbooked_b_tiles", num_usize(m.reuse.overbooked_b_tiles)),
                ("total_b_tiles", num_usize(m.reuse.total_b_tiles)),
            ]),
        ),
        (
            "plan",
            obj(vec![
                ("gb_rows_a", num_usize(m.plan.gb_rows_a)),
                ("gb_cols_b", num_usize(m.plan.gb_cols_b)),
                ("pe_rows_a", num_usize(m.plan.pe_rows_a)),
                ("pe_cols_b", num_usize(m.plan.pe_cols_b)),
                ("full_k", Json::Bool(m.plan.full_k)),
                ("overbooking", Json::Bool(m.plan.overbooking)),
            ]),
        ),
        (
            "scratch",
            obj(vec![
                ("col_blocks", num_usize(m.scratch.col_blocks)),
                ("block_cols", num_usize(m.scratch.block_cols)),
                ("bytes_per_thread", num_u64(m.scratch.bytes_per_thread)),
                ("fits_budget", Json::Bool(m.scratch.fits_budget)),
                ("grid", encode_grid(m.scratch.grid)),
                ("parallel_units", num_usize(m.scratch.parallel_units)),
            ]),
        ),
        ("bound_by", Json::Str(m.bound_by.to_string())),
    ])
}

fn decode_metrics(v: &Json) -> Result<RunMetrics, WireError> {
    let a = v.get("activity")?;
    let d = v.get("dram")?;
    let r = v.get("reuse")?;
    let p = v.get("plan")?;
    let s = v.get("scratch")?;
    Ok(RunMetrics {
        cycles: v.get("cycles")?.f64_bits()?,
        energy_pj: v.get("energy_pj")?.f64_bits()?,
        activity: ActivityCounts {
            dram_elems: a.get("dram_elems")?.u128_()?,
            gb_accesses: a.get("gb_accesses")?.u128_()?,
            pe_buf_accesses: a.get("pe_buf_accesses")?.u128_()?,
            macs: a.get("macs")?.u128_()?,
            isect_coords: a.get("isect_coords")?.u128_()?,
        },
        dram: DramBreakdown {
            total: d.get("total")?.u128_()?,
            baseline: d.get("baseline")?.u128_()?,
            overbook_extra: d.get("overbook_extra")?.u128_()?,
        },
        reuse: ReuseStats {
            bumped_fraction: r.get("bumped_fraction")?.f64_bits()?,
            reused_fraction: r.get("reused_fraction")?.f64_bits()?,
            overbooked_a_tiles: r.get("overbooked_a_tiles")?.usize_()?,
            total_a_tiles: r.get("total_a_tiles")?.usize_()?,
            overbooked_b_tiles: r.get("overbooked_b_tiles")?.usize_()?,
            total_b_tiles: r.get("total_b_tiles")?.usize_()?,
        },
        plan: TilePlan {
            gb_rows_a: p.get("gb_rows_a")?.usize_()?,
            gb_cols_b: p.get("gb_cols_b")?.usize_()?,
            pe_rows_a: p.get("pe_rows_a")?.usize_()?,
            pe_cols_b: p.get("pe_cols_b")?.usize_()?,
            full_k: p.get("full_k")?.bool_()?,
            overbooking: p.get("overbooking")?.bool_()?,
        },
        scratch: ScratchStats {
            col_blocks: s.get("col_blocks")?.usize_()?,
            block_cols: s.get("block_cols")?.usize_()?,
            bytes_per_thread: s.get("bytes_per_thread")?.u64_()?,
            fits_budget: s.get("fits_budget")?.bool_()?,
            grid: decode_grid(s.get("grid")?)?,
            parallel_units: s.get("parallel_units")?.usize_()?,
        },
        bound_by: intern_bound_by(v.get("bound_by")?.str_()?),
    })
}

fn encode_hits(h: &CacheHits) -> Json {
    obj(vec![
        ("tensor", Json::Bool(h.tensor)),
        ("profile", Json::Bool(h.profile)),
        ("plan", Json::Bool(h.plan)),
    ])
}

fn decode_hits(v: &Json) -> Result<CacheHits, WireError> {
    Ok(CacheHits {
        tensor: v.get("tensor")?.bool_()?,
        profile: v.get("profile")?.bool_()?,
        plan: v.get("plan")?.bool_()?,
    })
}

fn encode_csr(m: &CsrMatrix) -> Json {
    obj(vec![
        ("nrows", num_usize(m.nrows())),
        ("ncols", num_usize(m.ncols())),
        (
            "row_ptr",
            Json::Arr(m.row_ptr().iter().map(|&p| num_usize(p)).collect()),
        ),
        (
            "cols",
            Json::Arr(
                m.col_indices()
                    .iter()
                    .map(|&c| num_u64(u64::from(c)))
                    .collect(),
            ),
        ),
        (
            "vals",
            Json::Arr(m.values().iter().map(|&x| bits(x)).collect()),
        ),
    ])
}

fn decode_csr(v: &Json) -> Result<CsrMatrix, WireError> {
    let row_ptr = v
        .get("row_ptr")?
        .arr()?
        .iter()
        .map(Json::usize_)
        .collect::<Result<Vec<_>, _>>()?;
    let cols = v
        .get("cols")?
        .arr()?
        .iter()
        .map(Json::u32_)
        .collect::<Result<Vec<_>, _>>()?;
    let vals = v
        .get("vals")?
        .arr()?
        .iter()
        .map(Json::f64_bits)
        .collect::<Result<Vec<_>, _>>()?;
    CsrMatrix::from_parts(
        v.get("nrows")?.usize_()?,
        v.get("ncols")?.usize_()?,
        row_ptr,
        cols,
        vals,
    )
    .map_err(|e| malformed(format!("invalid CSR payload: {e:?}")))
}

fn encode_functional_config(c: &FunctionalConfig) -> Json {
    obj(vec![
        ("capacity", num_usize(c.capacity)),
        ("fifo_region", num_usize(c.fifo_region)),
        ("rows_a", num_usize(c.rows_a)),
        ("cols_b", num_usize(c.cols_b)),
        ("overbooking", Json::Bool(c.overbooking)),
        ("mem_budget", encode_budget(c.mem_budget)),
        ("grid", encode_grid(c.grid)),
        ("auto_plan", Json::Bool(c.auto_plan)),
    ])
}

fn decode_functional_config(v: &Json) -> Result<FunctionalConfig, WireError> {
    Ok(FunctionalConfig {
        capacity: v.get("capacity")?.usize_()?,
        fifo_region: v.get("fifo_region")?.usize_()?,
        rows_a: v.get("rows_a")?.usize_()?,
        cols_b: v.get("cols_b")?.usize_()?,
        overbooking: v.get("overbooking")?.bool_()?,
        mem_budget: decode_budget(v.get("mem_budget")?)?,
        grid: decode_grid(v.get("grid")?)?,
        auto_plan: v.get("auto_plan")?.bool_()?,
    })
}

fn encode_sim_response(r: &SimResponse) -> Json {
    obj(vec![
        ("name", Json::Str(r.name.to_string())),
        ("metrics", encode_metrics(&r.metrics)),
        ("hits", encode_hits(&r.hits)),
    ])
}

fn decode_sim_response(v: &Json) -> Result<SimResponse, WireError> {
    Ok(SimResponse {
        name: intern_workload_name(v.get("name")?.str_()?),
        metrics: decode_metrics(v.get("metrics")?)?,
        hits: decode_hits(v.get("hits")?)?,
    })
}

fn encode_functional_response(r: &FunctionalResponse) -> Json {
    obj(vec![
        ("config", encode_functional_config(&r.config)),
        (
            "result",
            obj(vec![
                ("z", encode_csr(&r.result.z)),
                ("dram_a_fetches", num_u64(r.result.dram_a_fetches)),
                ("dram_b_fetches", num_u64(r.result.dram_b_fetches)),
                ("overbooked_a_tiles", num_usize(r.result.overbooked_a_tiles)),
            ]),
        ),
        ("hits", encode_hits(&r.hits)),
    ])
}

fn decode_functional_response(v: &Json) -> Result<FunctionalResponse, WireError> {
    let res = v.get("result")?;
    Ok(FunctionalResponse {
        config: decode_functional_config(v.get("config")?)?,
        result: FunctionalResult {
            z: decode_csr(res.get("z")?)?,
            dram_a_fetches: res.get("dram_a_fetches")?.u64_()?,
            dram_b_fetches: res.get("dram_b_fetches")?.u64_()?,
            overbooked_a_tiles: res.get("overbooked_a_tiles")?.usize_()?,
        },
        hits: decode_hits(v.get("hits")?)?,
    })
}

fn encode_serve_error(e: &ServeError) -> Json {
    match e {
        ServeError::Overloaded(OverloadReason::MailboxFull { capacity }) => obj(vec![
            ("code", Json::Str("overloaded".into())),
            ("reason", Json::Str("mailbox-full".into())),
            ("capacity", num_usize(*capacity)),
        ]),
        ServeError::Overloaded(OverloadReason::TensorBytes { estimated, limit }) => obj(vec![
            ("code", Json::Str("overloaded".into())),
            ("reason", Json::Str("tensor-bytes".into())),
            ("estimated", num_u64(*estimated)),
            ("limit", num_u64(*limit)),
        ]),
        ServeError::Overloaded(OverloadReason::PlanPressure { pressure, hit_rate }) => obj(vec![
            ("code", Json::Str("overloaded".into())),
            ("reason", Json::Str("plan-pressure".into())),
            ("pressure", bits(*pressure)),
            ("hit_rate", bits(*hit_rate)),
        ]),
        ServeError::Timeout { deadline } => obj(vec![
            ("code", Json::Str("timeout".into())),
            ("deadline_secs", num_u64(deadline.as_secs())),
            (
                "deadline_nanos",
                num_u64(u64::from(deadline.subsec_nanos())),
            ),
        ]),
        ServeError::Faulted { panic, message } => obj(vec![
            ("code", Json::Str("faulted".into())),
            ("panic", Json::Bool(*panic)),
            ("message", Json::Str(message.clone())),
        ]),
        ServeError::BadRequest(m) => obj(vec![
            ("code", Json::Str("bad-request".into())),
            ("message", Json::Str(m.clone())),
        ]),
        ServeError::Shutdown => obj(vec![("code", Json::Str("shutdown".into()))]),
    }
}

fn decode_serve_error(v: &Json) -> Result<ServeError, WireError> {
    match v.get("code")?.str_()? {
        "overloaded" => match v.get("reason")?.str_()? {
            "mailbox-full" => Ok(ServeError::Overloaded(OverloadReason::MailboxFull {
                capacity: v.get("capacity")?.usize_()?,
            })),
            "tensor-bytes" => Ok(ServeError::Overloaded(OverloadReason::TensorBytes {
                estimated: v.get("estimated")?.u64_()?,
                limit: v.get("limit")?.u64_()?,
            })),
            "plan-pressure" => Ok(ServeError::Overloaded(OverloadReason::PlanPressure {
                pressure: v.get("pressure")?.f64_bits()?,
                hit_rate: v.get("hit_rate")?.f64_bits()?,
            })),
            other => Err(malformed(format!("unknown overload reason {other:?}"))),
        },
        "timeout" => {
            let secs = v.get("deadline_secs")?.u64_()?;
            let nanos = v.get("deadline_nanos")?.u64_()?;
            let nanos =
                u32::try_from(nanos).map_err(|_| malformed("timeout nanos out of range"))?;
            if nanos >= 1_000_000_000 {
                return Err(malformed("timeout nanos out of range"));
            }
            Ok(ServeError::Timeout {
                deadline: Duration::new(secs, nanos),
            })
        }
        "faulted" => Ok(ServeError::Faulted {
            panic: v.get("panic")?.bool_()?,
            message: v.get("message")?.str_()?.to_string(),
        }),
        "bad-request" => Ok(ServeError::BadRequest(
            v.get("message")?.str_()?.to_string(),
        )),
        "shutdown" => Ok(ServeError::Shutdown),
        // A protocol-level error reply from the server: surface it as the
        // bad request it (from the server's view) was.
        "malformed" => Ok(ServeError::BadRequest(format!(
            "protocol error: {}",
            v.get("message")?.str_()?
        ))),
        other => Err(malformed(format!("unknown error code {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------------

/// Encodes one request line (no trailing newline).
pub fn encode_request(id: u64, work: &Work) -> String {
    let mut out = String::new();
    encode_request_into(id, work, &mut out);
    out
}

/// [`encode_request`] into a reusable buffer (cleared first): a client
/// that keeps one buffer per session renders steady-state requests
/// without allocating the line itself.
pub fn encode_request_into(id: u64, work: &Work, out: &mut String) {
    encode_request_flagged_into(id, work, false, out);
}

/// [`encode_request_into`] with the warm-up flag: `warm == true` adds
/// `"warm":true` to the envelope, asking the server to queue the request
/// on its low-priority lane (cache-warming replay must never delay live
/// traffic).
pub fn encode_request_flagged_into(id: u64, work: &Work, warm: bool, out: &mut String) {
    let (kind, req) = match work {
        Work::Sim(r) => ("sim", encode_sim_request(r)),
        Work::Functional(r) => ("functional", encode_functional_request(r)),
    };
    let mut fields = vec![
        ("id", num_u64(id)),
        ("kind", Json::Str(kind.into())),
        ("req", req),
    ];
    if warm {
        fields.push(("warm", Json::Bool(true)));
    }
    obj(fields).render_into(out);
}

/// Encodes a ping request line: `{"id":N,"kind":"ping"}` — no payload.
/// The server answers from its session loop without queueing anything,
/// so a ping is safe against a wedged worker pool and never enters the
/// outcome ledger.
pub fn encode_ping_into(id: u64, out: &mut String) {
    obj(vec![
        ("id", num_u64(id)),
        ("kind", Json::Str("ping".into())),
    ])
    .render_into(out);
}

/// Encodes the pong reply to a ping: the envelope carries a snapshot of
/// the shard runtime's outcome counters, so one probe both proves
/// liveness and fetches shard stats.
pub fn encode_pong_into(id: u64, stats: &RuntimeStats, out: &mut String) {
    obj(vec![
        ("id", num_u64(id)),
        (
            "ok",
            obj(vec![
                ("kind", Json::Str("pong".into())),
                ("stats", encode_runtime_stats(stats)),
            ]),
        ),
    ])
    .render_into(out);
}

fn encode_runtime_stats(s: &RuntimeStats) -> Json {
    obj(vec![
        ("submitted", num_u64(s.submitted)),
        ("completed", num_u64(s.completed)),
        ("rejected", num_u64(s.rejected)),
        ("timed_out", num_u64(s.timed_out)),
        ("faulted", num_u64(s.faulted)),
        ("panics_isolated", num_u64(s.panics_isolated)),
        ("retries", num_u64(s.retries)),
        ("injected_panics", num_u64(s.injected_panics)),
        ("injected_latency", num_u64(s.injected_latency)),
        ("injected_rejects", num_u64(s.injected_rejects)),
        ("injected_drops", num_u64(s.injected_drops)),
    ])
}

fn decode_runtime_stats(v: &Json) -> Result<RuntimeStats, WireError> {
    Ok(RuntimeStats {
        submitted: v.get("submitted")?.u64_()?,
        completed: v.get("completed")?.u64_()?,
        rejected: v.get("rejected")?.u64_()?,
        timed_out: v.get("timed_out")?.u64_()?,
        faulted: v.get("faulted")?.u64_()?,
        panics_isolated: v.get("panics_isolated")?.u64_()?,
        retries: v.get("retries")?.u64_()?,
        injected_panics: v.get("injected_panics")?.u64_()?,
        injected_latency: v.get("injected_latency")?.u64_()?,
        injected_rejects: v.get("injected_rejects")?.u64_()?,
        injected_drops: v.get("injected_drops")?.u64_()?,
    })
}

/// A decoded request envelope: real work (possibly flagged for the
/// warm-up lane) or a session-level ping.
///
/// The size disparity between the variants is deliberate: one value
/// exists per decoded line and is destructured immediately, so boxing
/// the work payload would buy nothing except a per-request heap
/// allocation — the exact cost the zero-alloc regression suite polices.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum WireRequest {
    /// A sim/functional request to submit to the runtime.
    Work {
        /// The decoded work.
        work: Work,
        /// Whether the client asked for the low-priority warm-up lane.
        warm: bool,
    },
    /// A liveness probe, answered in the session loop with a stats pong.
    Ping,
}

/// Decodes one request line into a [`WireRequest`].
///
/// # Errors
///
/// [`WireError::Malformed`] for anything that is not a well-formed
/// request; never panics.
pub fn decode_request_line(line: &str) -> Result<(u64, WireRequest), WireError> {
    let v = Json::parse(line)?;
    let id = v.get("id")?.u64_()?;
    let kind = v.get("kind")?.str_()?;
    if kind == "ping" {
        return Ok((id, WireRequest::Ping));
    }
    let req = v.get("req")?;
    let work = match kind {
        "sim" => Work::Sim(decode_sim_request(req)?),
        "functional" => Work::Functional(Box::new(decode_functional_request(req)?)),
        other => return Err(malformed(format!("unknown request kind {other:?}"))),
    };
    let warm = match v.opt("warm") {
        Some(w) => w.bool_()?,
        None => false,
    };
    Ok((id, WireRequest::Work { work, warm }))
}

/// Decodes one *work* request line (the pre-ping compatibility surface:
/// a ping envelope is `Malformed` here, and the warm flag is dropped).
///
/// # Errors
///
/// [`WireError::Malformed`] for anything that is not a well-formed work
/// request; never panics.
pub fn decode_request(line: &str) -> Result<(u64, Work), WireError> {
    match decode_request_line(line)? {
        (id, WireRequest::Work { work, .. }) => Ok((id, work)),
        (_, WireRequest::Ping) => Err(malformed("ping envelope where work was expected")),
    }
}

/// Encodes one reply line (no trailing newline). `id` is `None` only for
/// protocol-level (`malformed`) error replies, which answer lines whose
/// id could not be read.
pub fn encode_reply(id: Option<u64>, outcome: &Result<Reply, ServeError>) -> String {
    let mut out = String::new();
    encode_reply_into(id, outcome, &mut out);
    out
}

/// [`encode_reply`] into a reusable buffer (cleared first): the server
/// session loops keep one buffer per connection so steady-state replies
/// reuse its capacity instead of allocating a fresh line each time.
pub fn encode_reply_into(id: Option<u64>, outcome: &Result<Reply, ServeError>, out: &mut String) {
    let id_json = match id {
        Some(id) => num_u64(id),
        None => Json::Null,
    };
    let body = match outcome {
        Ok(Reply::Sim(r)) => (
            "ok",
            obj(vec![
                ("kind", Json::Str("sim".into())),
                ("resp", encode_sim_response(r)),
            ]),
        ),
        Ok(Reply::Functional(r)) => (
            "ok",
            obj(vec![
                ("kind", Json::Str("functional".into())),
                ("resp", encode_functional_response(r)),
            ]),
        ),
        Err(e) => ("err", encode_serve_error(e)),
    };
    obj(vec![("id", id_json), (body.0, body.1)]).render_into(out);
}

/// Encodes the protocol-level error reply for an undecodable line.
pub fn encode_malformed_reply(err: &WireError) -> String {
    let mut out = String::new();
    encode_malformed_reply_into(err, &mut out);
    out
}

/// [`encode_malformed_reply`] into a reusable buffer (cleared first).
pub fn encode_malformed_reply_into(err: &WireError, out: &mut String) {
    obj(vec![
        ("id", Json::Null),
        (
            "err",
            obj(vec![
                ("code", Json::Str("malformed".into())),
                ("message", Json::Str(err.to_string())),
            ]),
        ),
    ])
    .render_into(out);
}

/// Decodes one reply line into `(id, outcome)`; `id` is `None` for
/// protocol-level error replies.
///
/// # Errors
///
/// [`WireError::Malformed`] for anything that is not a well-formed reply.
pub fn decode_reply(line: &str) -> Result<(Option<u64>, Result<Reply, ServeError>), WireError> {
    let v = Json::parse(line)?;
    let id = match v.get("id")? {
        Json::Null => None,
        other => Some(other.u64_()?),
    };
    if let Some(ok) = v.opt("ok") {
        let resp = ok.get("resp")?;
        let reply = match ok.get("kind")?.str_()? {
            "sim" => Reply::Sim(decode_sim_response(resp)?),
            "functional" => Reply::Functional(Box::new(decode_functional_response(resp)?)),
            other => return Err(malformed(format!("unknown reply kind {other:?}"))),
        };
        return Ok((id, Ok(reply)));
    }
    if let Some(err) = v.opt("err") {
        return Ok((id, Err(decode_serve_error(err)?)));
    }
    Err(malformed("reply has neither \"ok\" nor \"err\""))
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// What one wire session (connection or stdio stream) observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireServeReport {
    /// Well-formed requests submitted to the runtime.
    pub served: u64,
    /// Undecodable lines answered with protocol-level error replies.
    pub protocol_errors: u64,
    /// Liveness probes answered from the session loop (never submitted,
    /// never in the runtime ledger).
    pub pings: u64,
}

/// Serves line-delimited requests from `reader`, writing one reply per
/// line to `writer`, until the reader reaches end of stream. Malformed
/// lines are answered (never dropped, never fatal); requests are
/// submitted to `runtime` in arrival order.
///
/// # Errors
///
/// Only transport I/O errors; protocol problems are replies.
pub fn serve_lines<R: BufRead, W: Write>(
    runtime: &ServiceRuntime,
    mut reader: R,
    mut writer: W,
) -> std::io::Result<WireServeReport> {
    let mut report = WireServeReport::default();
    // One request-line and one reply buffer per session, reused across
    // every request: in the steady state both have ratcheted up to the
    // largest message seen and the codec stops touching the allocator.
    let mut line = String::new();
    let mut reply = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(report);
        }
        if line.trim().is_empty() {
            continue;
        }
        match decode_request_line(line.trim_end_matches(['\n', '\r'])) {
            Ok((id, WireRequest::Ping)) => {
                report.pings += 1;
                encode_pong_into(id, &runtime.stats(), &mut reply);
            }
            Ok((id, WireRequest::Work { work, warm })) => {
                report.served += 1;
                let outcome = if warm {
                    runtime.submit_warm(work)
                } else {
                    runtime.submit(work)
                };
                encode_reply_into(Some(id), &outcome, &mut reply);
            }
            Err(e) => {
                report.protocol_errors += 1;
                encode_malformed_reply_into(&e, &mut reply);
            }
        }
        reply.push('\n');
        writer.write_all(reply.as_bytes())?;
        writer.flush()?;
    }
}

/// How often an idle TCP session wakes from its blocking read to check
/// the server's stop flag.
const SESSION_READ_TICK: Duration = Duration::from_millis(25);
/// Timed reads a stopping session grants a half-received request line
/// before dropping the connection.
const STOP_GRACE_READS: u32 = 40;

/// TCP session loop: like [`serve_lines`], but wakes from its (timed)
/// socket read between requests to honor the server's stop flag — an
/// idle client holding its connection open must not be able to hold
/// [`WireTcpServer::stop`] hostage. The in-flight request (if any)
/// always completes and its reply is written before the session exits;
/// only *waiting for the next request* is interruptible.
fn serve_connection(
    runtime: &ServiceRuntime,
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    stop: &AtomicBool,
) -> std::io::Result<WireServeReport> {
    use std::io::BufRead as _;
    let mut report = WireServeReport::default();
    let mut line = String::new();
    // Reused across requests like `line`: steady-state replies render
    // into retained capacity instead of allocating a line per reply.
    let mut reply = String::new();
    let mut stop_grace = 0u32;
    loop {
        line.clear();
        // Accumulate one line across read timeouts: `read_line` appends
        // whatever arrived before the timeout, so a request split across
        // TCP segments survives any number of stop-flag checks.
        let eof = loop {
            match reader.read_line(&mut line) {
                Ok(0) => break true,
                Ok(_) if line.ends_with('\n') => break false,
                Ok(_) => {} // mid-line: keep reading
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop.load(Ordering::SeqCst) {
                        // Idle: leave at once. Mid-request: a bounded
                        // grace for the rest of the line, then give up —
                        // a half-sent request must not stall shutdown
                        // indefinitely either.
                        if line.trim().is_empty() || stop_grace >= STOP_GRACE_READS {
                            return Ok(report);
                        }
                        stop_grace += 1;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        if eof && line.trim().is_empty() {
            return Ok(report);
        }
        if line.trim().is_empty() {
            continue;
        }
        match decode_request_line(line.trim_end_matches(['\n', '\r'])) {
            Ok((id, WireRequest::Ping)) => {
                report.pings += 1;
                encode_pong_into(id, &runtime.stats(), &mut reply);
            }
            Ok((id, WireRequest::Work { work, warm })) => {
                // The `drop_conn` fault severs the session *here* — after
                // the work decoded, before anything reaches the runtime —
                // so the client sees EOF on an in-flight request and must
                // reconnect + resend; nothing enters the ledger. Pings
                // are exempt: a probe must stay answerable under the same
                // fault plan the failover paths are being exercised with.
                if runtime.fire_conn_drop() {
                    return Ok(report);
                }
                report.served += 1;
                let outcome = if warm {
                    runtime.submit_warm(work)
                } else {
                    runtime.submit(work)
                };
                encode_reply_into(Some(id), &outcome, &mut reply);
            }
            Err(e) => {
                report.protocol_errors += 1;
                encode_malformed_reply_into(&e, &mut reply);
            }
        }
        // One write per reply — a separate tiny "\n" write would incur
        // the Nagle/delayed-ACK stall `set_nodelay` exists to avoid.
        reply.push('\n');
        writer.write_all(reply.as_bytes())?;
        writer.flush()?;
        if eof {
            return Ok(report);
        }
    }
}

/// A TCP front door: an accept loop on its own thread, one serving
/// thread per connection, all funnelling into one shared
/// [`ServiceRuntime`] (whose mailbox and admission control provide the
/// backpressure).
#[derive(Debug)]
pub struct WireTcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WireTcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting.
    ///
    /// # Errors
    ///
    /// Bind/listen failures.
    pub fn spawn(runtime: Arc<ServiceRuntime>, addr: &str) -> std::io::Result<WireTcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("tailors-wire-accept".into())
            .spawn(move || {
                let mut sessions = Vec::new();
                for stream in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // The timed read is what lets sessions notice the
                    // stop flag between requests; a socket we cannot
                    // configure or clone is dropped (the client sees
                    // EOF) — it must not take the server down.
                    if stream.set_read_timeout(Some(SESSION_READ_TICK)).is_err()
                        || stream.set_nodelay(true).is_err()
                    {
                        continue;
                    }
                    let runtime = Arc::clone(&runtime);
                    let stop3 = Arc::clone(&stop2);
                    let session = std::thread::Builder::new()
                        .name("tailors-wire-conn".into())
                        .spawn(move || {
                            if let Ok(read_half) = stream.try_clone() {
                                let _ = serve_connection(
                                    &runtime,
                                    BufReader::new(read_half),
                                    stream,
                                    &stop3,
                                );
                            }
                        });
                    if let Ok(handle) = session {
                        sessions.push(handle);
                    }
                }
                for s in sessions {
                    let _ = s.join();
                }
            })?;
        Ok(WireTcpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight *requests* to finish, and
    /// joins the accept loop. Idempotent. Sessions notice the stop
    /// between requests (their socket reads are timed), so an idle
    /// client holding its connection open cannot stall this — it simply
    /// observes EOF on its next call.
    ///
    /// The accept loop blocks in `incoming()`, so stopping pokes it awake
    /// with a throwaway connection — to the **loopback** interface at the
    /// bound port: a server bound to a wildcard address (`0.0.0.0` /
    /// `[::]`) is not connectable *at* that address, and dialing it would
    /// leave the accept loop asleep until the next real client arrived.
    /// A failed wake is reported (and logged) instead of hanging: the
    /// accept thread is left to notice the flag on its next connection
    /// rather than joined.
    pub fn stop(&mut self) -> WireStopReport {
        if self.stop.swap(true, Ordering::SeqCst) {
            return WireStopReport {
                woke: self.accept_thread.is_none(),
            };
        }
        let woke = TcpStream::connect_timeout(&self.wake_addr(), STOP_WAKE_TIMEOUT).is_ok();
        if woke {
            if let Some(h) = self.accept_thread.take() {
                let _ = h.join();
            }
        } else {
            // Surface the failure instead of blocking in `join` until the
            // next client happens to connect; the detached accept thread
            // exits on the stop flag the moment one does.
            eprintln!(
                "wire: stop() could not wake the accept loop at {} — \
                 it will exit on the next incoming connection",
                self.wake_addr()
            );
        }
        WireStopReport { woke }
    }

    /// The address the stop wake dials: the bound port on the concrete
    /// bound interface, or the same-family loopback when the server is
    /// bound to a wildcard address.
    fn wake_addr(&self) -> SocketAddr {
        use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
        let ip = match self.addr.ip() {
            IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            concrete => concrete,
        };
        SocketAddr::new(ip, self.addr.port())
    }
}

/// How long [`WireTcpServer::stop`] gives its wake connection before
/// reporting the accept loop unwakeable.
const STOP_WAKE_TIMEOUT: Duration = Duration::from_secs(1);

/// What [`WireTcpServer::stop`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStopReport {
    /// Whether the accept loop was woken (and joined). `false` means the
    /// wake connection failed; the accept thread was left running and
    /// exits on the next incoming connection.
    pub woke: bool,
}

impl Drop for WireTcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking wire client: sends one request per line and reads the
/// matching reply. The double-layered result separates transport
/// problems ([`WireError`]) from the server's typed request outcomes
/// ([`ServeError`]).
///
/// The client remembers the address it connected to, so a broken
/// transport is recoverable: [`WireClient::reconnect`] re-establishes the
/// stream in place, and [`WireClient::call_with_retry`] does so
/// automatically before retrying after an I/O failure (a server restart
/// between calls is survivable without rebuilding the client).
#[derive(Debug)]
pub struct WireClient {
    /// The peer address the stream was established to — the reconnect
    /// target after a transport failure.
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    reconnects: u64,
    // Per-session codec buffers, reused across calls so steady-state
    // requests and replies run on retained capacity.
    line: String,
    reply_line: String,
}

impl WireClient {
    /// Connects to a [`WireTcpServer`].
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<WireClient> {
        let (writer, addr) = Self::open(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(WireClient {
            addr,
            reader,
            writer,
            next_id: 1,
            reconnects: 0,
            line: String::new(),
            reply_line: String::new(),
        })
    }

    fn open<A: ToSocketAddrs>(addr: A) -> std::io::Result<(TcpStream, SocketAddr)> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply over one socket is the worst case for Nagle +
        // delayed-ACK (~40 ms stalls per exchange); every message is a
        // complete line, so there is nothing to coalesce anyway.
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok((stream, peer))
    }

    /// The peer address this client talks (and reconnects) to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Reconnections performed so far (manual or via
    /// [`WireClient::call_with_retry`]).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Drops the current stream and establishes a fresh one to the same
    /// address. Any half-exchanged request on the old stream is abandoned
    /// — the protocol is strictly one reply per request, so a fresh
    /// stream starts from a clean slate (ids need not restart; the server
    /// echoes whatever id it reads).
    ///
    /// # Errors
    ///
    /// Connection failures; the client keeps the (broken) old stream in
    /// that case so a later attempt can try again.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let (writer, addr) = Self::open(self.addr)?;
        self.reader = BufReader::new(writer.try_clone()?);
        self.writer = writer;
        self.addr = addr;
        self.reconnects += 1;
        Ok(())
    }

    /// Sends `work` and blocks for its outcome.
    ///
    /// # Errors
    ///
    /// Outer: transport/protocol failure. Inner: the server's typed
    /// [`ServeError`] for this request.
    pub fn call(&mut self, work: &Work) -> Result<Result<Reply, ServeError>, WireError> {
        self.call_flagged(work, false)
    }

    /// [`WireClient::call`] on the warm-up lane: the request carries
    /// `"warm":true`, so the server queues it at low priority. Used by
    /// the router's warm-up replay after a shard joins or recovers.
    ///
    /// # Errors
    ///
    /// As [`WireClient::call`].
    pub fn call_warm(&mut self, work: &Work) -> Result<Result<Reply, ServeError>, WireError> {
        self.call_flagged(work, true)
    }

    /// Sends a ping and blocks for the pong, returning the shard
    /// runtime's stats snapshot. Answered in the server's session loop
    /// (never queued), so a pong proves the session is alive even when
    /// the worker pool is saturated.
    ///
    /// # Errors
    ///
    /// Transport failure, or a malformed/mismatched pong.
    pub fn ping(&mut self) -> Result<RuntimeStats, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        encode_ping_into(id, &mut self.line);
        self.line.push('\n');
        self.writer
            .write_all(self.line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| WireError::Io(e.to_string()))?;
        self.reply_line.clear();
        let n = self
            .reader
            .read_line(&mut self.reply_line)
            .map_err(|e| WireError::Io(e.to_string()))?;
        if n == 0 {
            return Err(WireError::Io("server closed the connection".into()));
        }
        let v = Json::parse(self.reply_line.trim_end())?;
        let rid = v.get("id")?.u64_()?;
        if rid != id {
            return Err(malformed(format!(
                "pong id {rid} does not match ping id {id}"
            )));
        }
        let ok = v.get("ok")?;
        if ok.get("kind")?.str_()? != "pong" {
            return Err(malformed("ping answered by a non-pong reply"));
        }
        decode_runtime_stats(ok.get("stats")?)
    }

    fn call_flagged(
        &mut self,
        work: &Work,
        warm: bool,
    ) -> Result<Result<Reply, ServeError>, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        // One syscall per message: a trailing small write of just "\n"
        // would re-trigger the Nagle stall `set_nodelay` avoids.
        encode_request_flagged_into(id, work, warm, &mut self.line);
        self.line.push('\n');
        self.writer
            .write_all(self.line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| WireError::Io(e.to_string()))?;
        self.reply_line.clear();
        let n = self
            .reader
            .read_line(&mut self.reply_line)
            .map_err(|e| WireError::Io(e.to_string()))?;
        if n == 0 {
            return Err(WireError::Io("server closed the connection".into()));
        }
        let (reply_id, outcome) = decode_reply(self.reply_line.trim_end())?;
        match reply_id {
            // A protocol-level (id-less) error reply still answers *this*
            // request: the protocol is strictly one reply per line, in
            // order.
            None => Ok(outcome),
            Some(rid) if rid == id => Ok(outcome),
            Some(rid) => Err(malformed(format!(
                "reply id {rid} does not match request id {id}"
            ))),
        }
    }

    /// [`WireClient::call`] with client-side capped-exponential-backoff
    /// retries on transient ([`ServeError::retryable`]) rejections — the
    /// wire mirror of
    /// [`ServiceRuntime::submit_with_retry`](crate::runtime::ServiceRuntime::submit_with_retry)
    /// — and on transport I/O failures, which **reconnect first**: a
    /// retry on the same dead `TcpStream` can only fail again, so each
    /// I/O failure tears the stream down and dials `self.addr` afresh
    /// before the next attempt (a server restart between calls is
    /// absorbed here). Requests are pure and idempotent, so resending
    /// after an ambiguous failure (request written, connection lost
    /// before the reply) is safe. Protocol-level `Malformed` replies are
    /// never retried — a deterministic codec disagreement would just
    /// repeat.
    ///
    /// # Errors
    ///
    /// As [`WireClient::call`]; the outer/inner error is the final
    /// attempt's.
    pub fn call_with_retry(
        &mut self,
        work: &Work,
        policy: &RetryPolicy,
    ) -> Result<Result<Reply, ServeError>, WireError> {
        let mut retry = 0u32;
        // Jitter seed: the request id this exchange will use. Distinct
        // clients (and successive requests of one client) back off on
        // de-synchronized schedules, so N callers retrying a recovering
        // shard don't stampede it in lockstep — while any given request
        // id always sleeps the same amounts, keeping tests reproducible.
        let seed = self.next_id;
        loop {
            let attempts_left = retry + 1 < policy.max_attempts.max(1);
            match self.call(work) {
                Err(WireError::Io(e)) if attempts_left => {
                    std::thread::sleep(policy.backoff_jittered(retry, seed));
                    retry += 1;
                    // Reconnect failure is not final either — the server
                    // may still be coming back up; later attempts redial.
                    if let Err(re) = self.reconnect() {
                        if retry + 1 >= policy.max_attempts.max(1) {
                            return Err(WireError::Io(format!("{e}; reconnect failed: {re}")));
                        }
                    }
                }
                Err(e) => return Err(e),
                Ok(outcome) => match &outcome {
                    Err(e) if e.retryable() && attempts_left => {
                        std::thread::sleep(policy.backoff_jittered(retry, seed));
                        retry += 1;
                    }
                    _ => return Ok(outcome),
                },
            }
        }
    }

    /// Typed convenience for [`Work::Sim`].
    ///
    /// # Errors
    ///
    /// As [`WireClient::call`]; a functional reply to a sim request is a
    /// protocol error.
    pub fn sim(&mut self, req: &SimRequest) -> Result<Result<SimResponse, ServeError>, WireError> {
        match self.call(&Work::Sim(req.clone()))? {
            Ok(Reply::Sim(r)) => Ok(Ok(r)),
            Ok(Reply::Functional(_)) => Err(malformed("functional reply to a sim request")),
            Err(e) => Ok(Err(e)),
        }
    }

    /// Typed convenience for [`Work::Functional`].
    ///
    /// # Errors
    ///
    /// As [`WireClient::call`]; a sim reply to a functional request is a
    /// protocol error.
    pub fn functional(
        &mut self,
        req: &FunctionalRequest,
    ) -> Result<Result<FunctionalResponse, ServeError>, WireError> {
        match self.call(&Work::Functional(Box::new(req.clone())))? {
            Ok(Reply::Functional(r)) => Ok(Ok(*r)),
            Ok(Reply::Sim(_)) => Err(malformed("sim reply to a functional request")),
            Err(e) => Ok(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_strings_and_structure() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num("18446744073709551615".into())),
            (
                "b".into(),
                Json::Arr(vec![
                    Json::Null,
                    Json::Bool(true),
                    Json::Str("x\"\\\n".into()),
                ]),
            ),
        ]);
        let line = v.render();
        assert!(!line.contains('\n'), "framing requires single-line output");
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "[1,2",
            "\"unterminated",
            "nul",
            "01x",
            "{\"a\":1}trailing",
            "\"\\u12\"",
            "\"\\ud800\"",
            "--3",
            "{\"a\" 1}",
            "[,]",
            "\u{0}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Deep nesting is refused, not recursed into.
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn request_lines_round_trip_bitwise() {
        let req = SimRequest::suite("email-Enron", 1.0 / 256.0, Variant::default_ob()).unwrap();
        let line = encode_request(42, &Work::Sim(req.clone()));
        let (id, work) = decode_request(&line).unwrap();
        assert_eq!(id, 42);
        let Work::Sim(decoded) = work else {
            panic!("wrong kind")
        };
        assert_eq!(decoded.workload, req.workload);
        assert_eq!(decoded.arch, req.arch);
        assert_eq!(decoded.budget, req.budget);
        assert_eq!(decoded.grid, req.grid);
        assert_eq!(decoded.variant.cache_key(), req.variant.cache_key());
        // Interning preserved pointer-stable suite names.
        assert_eq!(decoded.workload.name, "email-Enron");
    }

    #[test]
    fn error_replies_round_trip() {
        for err in [
            ServeError::Overloaded(OverloadReason::MailboxFull { capacity: 64 }),
            ServeError::Overloaded(OverloadReason::TensorBytes {
                estimated: 10,
                limit: 5,
            }),
            ServeError::Overloaded(OverloadReason::PlanPressure {
                pressure: 1.0,
                hit_rate: 0.125,
            }),
            ServeError::Timeout {
                deadline: Duration::from_millis(1500),
            },
            ServeError::Faulted {
                panic: true,
                message: "injected fault: worker panic".into(),
            },
            ServeError::BadRequest("no".into()),
            ServeError::Shutdown,
        ] {
            let line = encode_reply(Some(7), &Err(err.clone()));
            let (id, outcome) = decode_reply(&line).unwrap();
            assert_eq!(id, Some(7));
            assert_eq!(outcome.unwrap_err(), err);
        }
    }

    #[test]
    fn ping_and_warm_envelopes_round_trip() {
        // Warm flag survives the codec; its absence decodes as false.
        let req = SimRequest::suite("email-Enron", 1.0 / 512.0, Variant::ExTensorP).unwrap();
        let mut line = String::new();
        encode_request_flagged_into(9, &Work::Sim(req.clone()), true, &mut line);
        let (id, parsed) = decode_request_line(&line).unwrap();
        assert_eq!(id, 9);
        assert!(matches!(parsed, WireRequest::Work { warm: true, .. }));
        let plain = encode_request(10, &Work::Sim(req));
        assert!(matches!(
            decode_request_line(&plain).unwrap().1,
            WireRequest::Work { warm: false, .. }
        ));
        // Ping decodes as Ping, and the compat work decoder refuses it.
        line.clear();
        encode_ping_into(11, &mut line);
        assert!(matches!(
            decode_request_line(&line).unwrap(),
            (11, WireRequest::Ping)
        ));
        assert!(decode_request(&line).is_err());
        // Pong carries the stats snapshot losslessly.
        let stats = RuntimeStats {
            submitted: 7,
            completed: 5,
            rejected: 1,
            timed_out: 1,
            faulted: 0,
            panics_isolated: 0,
            retries: 3,
            injected_panics: 0,
            injected_latency: 2,
            injected_rejects: 0,
            injected_drops: 4,
        };
        line.clear();
        encode_pong_into(11, &stats, &mut line);
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().u64_().unwrap(), 11);
        let ok = v.get("ok").unwrap();
        assert_eq!(ok.get("kind").unwrap().str_().unwrap(), "pong");
        assert_eq!(
            decode_runtime_stats(ok.get("stats").unwrap()).unwrap(),
            stats
        );
    }

    #[test]
    fn serve_lines_answers_pings_outside_the_ledger() {
        let runtime = ServiceRuntime::new(crate::runtime::RuntimeConfig::default());
        let req = SimRequest::suite("email-Enron", 1.0 / 512.0, Variant::ExTensorP).unwrap();
        let mut ping = String::new();
        encode_ping_into(1, &mut ping);
        let mut warm = String::new();
        encode_request_flagged_into(2, &Work::Sim(req), true, &mut warm);
        let input = format!("{ping}\n{warm}\n");
        let mut out = Vec::new();
        let report = serve_lines(&runtime, input.as_bytes(), &mut out).unwrap();
        assert_eq!(report.pings, 1);
        assert_eq!(report.served, 1);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        // The pong's stats snapshot predates the warm request.
        let v = Json::parse(lines[0]).unwrap();
        let pong_stats = decode_runtime_stats(v.get("ok").unwrap().get("stats").unwrap()).unwrap();
        assert_eq!(pong_stats.submitted, 0);
        // The warm request completed and is in the shard-local ledger.
        let (id, outcome) = decode_reply(lines[1]).unwrap();
        assert_eq!(id, Some(2));
        assert!(outcome.is_ok());
        let stats = runtime.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn malformed_lines_get_protocol_replies_and_the_session_survives() {
        let runtime = ServiceRuntime::new(crate::runtime::RuntimeConfig::default());
        let req = SimRequest::suite("email-Enron", 1.0 / 512.0, Variant::ExTensorP).unwrap();
        let good = encode_request(1, &Work::Sim(req));
        let input = format!("not json\n\n{good}\n{{\"id\":2,\"kind\":\"nope\",\"req\":{{}}}}\n");
        let mut out = Vec::new();
        let report = serve_lines(&runtime, input.as_bytes(), &mut out).unwrap();
        assert_eq!(report.served, 1);
        assert_eq!(report.protocol_errors, 2);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        let (id0, out0) = decode_reply(lines[0]).unwrap();
        assert_eq!(id0, None);
        assert!(matches!(out0, Err(ServeError::BadRequest(_))));
        let (id1, out1) = decode_reply(lines[1]).unwrap();
        assert_eq!(id1, Some(1));
        assert!(out1.is_ok());
        let (id2, _) = decode_reply(lines[2]).unwrap();
        assert_eq!(id2, None);
    }
}
