//! Shared harness code for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper (see `DESIGN.md`'s per-experiment index). They all accept one
//! optional positional argument: the workload scale factor in `(0, 1]`
//! (default `1.0` = paper scale; use e.g. `0.03125` for a quick pass).
//! Architecture capacities are scaled by the same factor so tensor-to-
//! buffer ratios — and hence the evaluation's shape — are preserved.
//!
//! Cross-cutting environment knobs (all forwarded by `run_all` flags):
//! `TAILORS_THREADS` pins suite worker threads, `TAILORS_MEM_BUDGET`
//! bounds per-thread scratch via the execution planner (see
//! [`mem_budget_from_env`]), `TAILORS_GRID` picks the functional grid
//! decomposition (see [`grid_from_env`]), and `TAILORS_GEN_CACHE` names
//! the on-disk tensor-generation cache directory (see
//! [`generate_cached`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tailors_sim::{run_balanced, ArchConfig, RunMetrics, Variant};
use tailors_tensor::MatrixProfile;
use tailors_workloads::Workload;

// The generation caches moved to `tailors-workloads` so the serving layer
// (`tailors-serve`) can share them without depending on the bench harness;
// re-exported here so existing `tailors_bench::generate_cached` callers
// keep working.
pub use tailors_workloads::{generate_cached, profile_cached};

/// Results of running all three variants on one workload.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// The workload (already scaled).
    pub workload: Workload,
    /// The workload's occupancy profile.
    pub profile: MatrixProfile,
    /// ExTensor-N metrics.
    pub n: RunMetrics,
    /// ExTensor-P metrics.
    pub p: RunMetrics,
    /// ExTensor-OB metrics (y = 10 %, k = 10).
    pub ob: RunMetrics,
}

impl SuiteRun {
    /// Speedup of P over N (a Fig. 7 bar).
    pub fn speedup_p(&self) -> f64 {
        self.p.speedup_over(&self.n)
    }

    /// Speedup of OB over N (a Fig. 7 bar).
    pub fn speedup_ob(&self) -> f64 {
        self.ob.speedup_over(&self.n)
    }

    /// Energy gain of P over N (a Fig. 8 bar).
    pub fn energy_gain_p(&self) -> f64 {
        self.p.energy_gain_over(&self.n)
    }

    /// Energy gain of OB over N (a Fig. 8 bar).
    pub fn energy_gain_ob(&self) -> f64 {
        self.ob.energy_gain_over(&self.n)
    }
}

/// Parses the scale factor from the first CLI argument (default 1.0).
///
/// # Panics
///
/// Panics with a usage message if the argument is present but not a number
/// in `(0, 1]`.
pub fn scale_from_args() -> f64 {
    match std::env::args().nth(1) {
        None => 1.0,
        Some(s) => {
            let v: f64 = s
                .parse()
                .unwrap_or_else(|_| panic!("usage: <bin> [scale in (0,1]], got {s:?}"));
            assert!(v > 0.0 && v <= 1.0, "scale must be in (0, 1]");
            v
        }
    }
}

// The environment-knob parsers live in `tailors-sim` next to the types
// they produce (one definition for the figure binaries, the serving
// sweeps, and anything else); re-exported here so existing
// `tailors_bench::*_from_env` callers keep working.
pub use tailors_sim::{auto_plan_from_env, grid_from_env, mem_budget_from_env, threads_from_env};

/// The architecture used by every figure, scaled consistently.
pub fn arch_at(scale: f64) -> ArchConfig {
    ArchConfig::extensor().scaled(scale)
}

/// Generates one workload at `scale` (through the generation caches — see
/// [`generate_cached`] / [`profile_cached`]) and returns its profile. The
/// full tensor is released as soon as the profile is extracted; repeated
/// calls for the same workload and scale hit the strong profile cache.
pub fn profile_at(workload: &Workload, scale: f64) -> (Workload, MatrixProfile) {
    let scaled = workload.scaled(scale);
    let profile = MatrixProfile::clone(&profile_cached(&scaled));
    (scaled, profile)
}

/// Runs the three variants over the whole 22-workload suite, fanning the
/// independent workload runs across [`threads_from_env`] worker threads.
pub fn simulate_suite(scale: f64) -> Vec<SuiteRun> {
    simulate_suite_with_threads(scale, threads_from_env())
}

/// [`simulate_suite_with_threads`] routed through a long-lived
/// [`SimService`](tailors_serve::SimService): one request per
/// (workload, variant), submitted as a single cost-balanced batch, with
/// profiles and plans answered from the service's cache tiers when hot.
/// Output is bit-identical to the direct suite run at every thread count
/// and for any cache state — a repeated sweep only gets *faster*, never
/// different (`suite_results_are_identical_under_serving` pins this).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn simulate_suite_served(
    service: &tailors_serve::SimService,
    scale: f64,
    threads: usize,
) -> Vec<SuiteRun> {
    assert!(threads > 0, "thread count must be positive");
    let arch = arch_at(scale);
    let budget = mem_budget_from_env();
    let grid = grid_from_env();
    let auto_plan = auto_plan_from_env();
    let suite = tailors_workloads::suite();
    let variants = [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ];
    let reqs: Vec<tailors_serve::SimRequest> = suite
        .iter()
        .flat_map(|wl| {
            variants.map(|variant| tailors_serve::SimRequest {
                workload: wl.scaled(scale),
                variant,
                arch,
                budget,
                grid,
                auto_plan,
            })
        })
        .collect();
    let responses = service.submit_batch(&reqs, threads);
    suite
        .iter()
        .zip(responses.chunks(variants.len()))
        .map(|(wl, r)| {
            let (workload, profile) = profile_at(wl, scale);
            SuiteRun {
                workload,
                profile,
                n: r[0].metrics,
                p: r[1].metrics,
                ob: r[2].metrics,
            }
        })
        .collect()
}

/// [`simulate_suite`] with an explicit thread count (`1` = fully serial).
/// Every workload is seeded and independent and results are reassembled
/// in suite order, so the output is identical for any count.
///
/// The fan-out is *cost-chunked*: workloads land in
/// [`balanced_partition`] bins weighted by their scaled size instead of
/// uniform contiguous splits. The suite's sizes span two orders of
/// magnitude (Table 2 runs from 63 k- to 2 M-row tensors), so a uniform
/// split leaves every thread but the one holding the giants idle —
/// cost-shaped bins are what actually separates the parallel and serial
/// curves (the vendored rayon never steals work).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn simulate_suite_with_threads(scale: f64, threads: usize) -> Vec<SuiteRun> {
    assert!(threads > 0, "thread count must be positive");
    let arch = arch_at(scale);
    // Budget, grid, and auto-planning never change hardware counts; they
    // are recorded in each run's `scratch` stats so sweeps can report
    // feasibility and parallel width.
    let budget = mem_budget_from_env();
    let grid = grid_from_env();
    let auto_plan = auto_plan_from_env();
    let one = |wl: &Workload| {
        let (workload, profile) = profile_at(wl, scale);
        let run = |v: Variant| {
            if auto_plan {
                v.run_auto(&profile, &arch, budget, grid)
            } else {
                v.run_gridded(&profile, &arch, budget, grid)
            }
        };
        let n = run(Variant::ExTensorN);
        let p = run(Variant::ExTensorP);
        let ob = run(Variant::default_ob());
        SuiteRun {
            workload,
            profile,
            n,
            p,
            ob,
        }
    };
    let suite = tailors_workloads::suite();
    // Generation and simulation cost both scale with the tensor's nonzero
    // count (plus a per-row term for profiles and row-panel sums).
    let costs: Vec<u128> = suite
        .iter()
        .map(|wl| {
            let s = wl.scaled(scale);
            s.target_nnz as u128 + s.nrows as u128 + 1
        })
        .collect();
    run_balanced(suite.len(), &costs, threads, |i| one(&suite[i]))
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a count with thousands separators for table readability.
pub fn fmt_count(v: u128) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// An ASCII bar of `frac` (clamped to `[0, 1]`) out of `width` cells.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 3), "###");
        assert_eq!(bar(-1.0, 3), "...");
    }

    #[test]
    fn suite_results_do_not_depend_on_thread_count() {
        let scale = 1.0 / 256.0;
        let serial = simulate_suite_with_threads(scale, 1);
        let parallel = simulate_suite_with_threads(scale, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.workload.name, p.workload.name);
            assert_eq!(s.n.cycles.to_bits(), p.n.cycles.to_bits());
            assert_eq!(s.speedup_ob().to_bits(), p.speedup_ob().to_bits());
            assert_eq!(s.energy_gain_p().to_bits(), p.energy_gain_p().to_bits());
        }
    }

    #[test]
    fn suite_results_are_identical_under_serving() {
        let scale = 1.0 / 256.0;
        let direct = simulate_suite_with_threads(scale, 1);
        let service = tailors_serve::SimService::new();
        // Cold pass, then a fully plan-hot pass, at different widths:
        // all bit-identical to the direct suite.
        for threads in [1, 3] {
            let served = simulate_suite_served(&service, scale, threads);
            assert_eq!(served.len(), direct.len());
            for (s, d) in served.iter().zip(&direct) {
                assert_eq!(s.workload.name, d.workload.name);
                assert_eq!(s.n, d.n, "{} threads={threads}", s.workload.name);
                assert_eq!(s.p, d.p, "{} threads={threads}", s.workload.name);
                assert_eq!(s.ob, d.ob, "{} threads={threads}", s.workload.name);
            }
        }
        let stats = service.stats();
        assert_eq!(stats.plan_hits, 66, "second pass must be fully plan-hot");
    }

    #[test]
    fn suite_run_smoke() {
        // A very small scale keeps this test fast while exercising the
        // whole pipeline.
        let runs = simulate_suite(1.0 / 256.0);
        assert_eq!(runs.len(), 22);
        for r in &runs {
            assert!(r.n.cycles > 0.0);
            assert!(r.speedup_p() > 0.0);
            assert!(r.speedup_ob() > 0.0);
            assert!(r.energy_gain_ob() > 0.0);
        }
    }
}
