//! Occupancy profiles: the per-row / per-column nonzero-count summary.

/// Per-row and per-column nonzero counts of a sparse matrix.
///
/// The analytical accelerator model in `tailors-sim` never needs nonzero
/// *positions* — only how many nonzeros fall in each coordinate-space tile.
/// Because the paper's tile construction expands along the shared dimension
/// `K` first (§5.2), every tile is a *row panel* spanning all of `K`, and a
/// tile's occupancy is simply a contiguous range-sum over per-row counts.
/// This type precomputes the prefix sums so any panel occupancy is O(1),
/// which is what lets the simulator evaluate 2 M-row tensors exactly.
///
/// # Example
///
/// ```
/// use tailors_tensor::MatrixProfile;
///
/// let p = MatrixProfile::new(4, 4, vec![1, 0, 3, 2], vec![2, 1, 1, 2]);
/// assert_eq!(p.nnz(), 6);
/// assert_eq!(p.row_range_nnz(1, 4), 5); // rows 1..4
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixProfile {
    nrows: usize,
    ncols: usize,
    row_nnz: Vec<u32>,
    col_nnz: Vec<u32>,
    /// Prefix sums over `row_nnz`, length `nrows + 1`.
    row_prefix: Vec<u64>,
    /// Largest single-row count, cached so single-row-panel capacity
    /// checks (the floor of every prescient search) are O(1).
    max_row_nnz: u32,
}

impl MatrixProfile {
    /// Creates a profile from per-row and per-column counts.
    ///
    /// # Panics
    ///
    /// Panics if the count vectors do not match the dimensions, or if the row
    /// and column totals disagree (they must both equal `nnz`).
    pub fn new(nrows: usize, ncols: usize, row_nnz: Vec<u32>, col_nnz: Vec<u32>) -> Self {
        assert_eq!(row_nnz.len(), nrows, "row_nnz length must equal nrows");
        assert_eq!(col_nnz.len(), ncols, "col_nnz length must equal ncols");
        let row_total: u64 = row_nnz.iter().map(|&x| x as u64).sum();
        let col_total: u64 = col_nnz.iter().map(|&x| x as u64).sum();
        assert_eq!(row_total, col_total, "row and column totals must agree");
        let mut row_prefix = Vec::with_capacity(nrows + 1);
        let mut acc = 0u64;
        row_prefix.push(0);
        let mut max_row_nnz = 0u32;
        for &n in &row_nnz {
            acc += n as u64;
            row_prefix.push(acc);
            max_row_nnz = max_row_nnz.max(n);
        }
        MatrixProfile {
            nrows,
            ncols,
            row_nnz,
            col_nnz,
            row_prefix,
            max_row_nnz,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Total number of nonzeros.
    pub fn nnz(&self) -> u64 {
        *self.row_prefix.last().expect("prefix is non-empty")
    }

    /// Per-row nonzero counts.
    pub fn row_nnz(&self) -> &[u32] {
        &self.row_nnz
    }

    /// Per-column nonzero counts.
    pub fn col_nnz(&self) -> &[u32] {
        &self.col_nnz
    }

    /// Largest single-row count — the maximum occupancy of a one-row
    /// panel, cached at construction. O(1).
    pub fn max_row_nnz(&self) -> u32 {
        self.max_row_nnz
    }

    /// Fraction of the coordinate space that is zero (Table 2's "Sparsity").
    pub fn sparsity(&self) -> f64 {
        let size = self.nrows as f64 * self.ncols as f64;
        if size == 0.0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / size
        }
    }

    /// Density (`1 - sparsity`).
    pub fn density(&self) -> f64 {
        1.0 - self.sparsity()
    }

    /// Number of nonzeros in rows `lo..hi` — the occupancy of the row panel
    /// `[lo, hi)`. O(1) via prefix sums.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > nrows`.
    pub fn row_range_nnz(&self, lo: usize, hi: usize) -> u64 {
        assert!(lo <= hi && hi <= self.nrows, "row range out of bounds");
        self.row_prefix[hi] - self.row_prefix[lo]
    }

    /// The row-count prefix sums (`nrows + 1` entries, `prefix[i]` =
    /// nonzeros in rows `0..i`). The raw array behind
    /// [`MatrixProfile::row_range_nnz`], exposed so per-panel sweeps can
    /// walk it directly.
    pub fn row_prefix(&self) -> &[u64] {
        &self.row_prefix
    }

    /// Occupancies of consecutive `rows_per_tile`-row panels, in panel
    /// order (the last panel may be ragged). A tight walk over the prefix
    /// sums — no per-panel bounds checks or index arithmetic beyond one
    /// subtraction — which is what lets the analytical model sweep
    /// near-per-row tilings (`rows_per_tile` of a few) over million-row
    /// tensors inside its hot path.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_tile == 0`.
    pub fn panel_occupancies(&self, rows_per_tile: usize) -> impl Iterator<Item = u64> + '_ {
        assert!(rows_per_tile > 0, "rows_per_tile must be positive");
        // Prefix values at panel boundaries: every rows_per_tile-th entry
        // (the whole panels), then the final total once more if a ragged
        // tail panel remains.
        let ragged = !self.nrows.is_multiple_of(rows_per_tile);
        let bounds = self
            .row_prefix
            .iter()
            .skip(rows_per_tile)
            .step_by(rows_per_tile)
            .copied()
            .chain(ragged.then(|| self.nnz()));
        let mut prev = 0u64;
        bounds.map(move |b| {
            let occ = b - prev;
            prev = b;
            occ
        })
    }

    /// Exact count of effectual scalar multiplications for `Z = A·Aᵀ`.
    ///
    /// `Z[m][n] = Σ_k A[m][k]·A[n][k]`, so every column `k` with `c_k`
    /// nonzeros contributes `c_k²` multiplies: the result is `Σ_k c_k²`.
    pub fn mults_a_at(&self) -> u128 {
        self.col_nnz
            .iter()
            .map(|&c| (c as u128) * (c as u128))
            .sum()
    }

    /// Exact count of effectual scalar multiplications for `Z = A·B`,
    /// where `self` profiles `A` and `other` profiles `B`.
    ///
    /// Each shared coordinate `k` contributes
    /// `colA(k) × rowB(k)` multiplies.
    ///
    /// # Panics
    ///
    /// Panics if `A.ncols != B.nrows`.
    pub fn mults_a_b(&self, other: &MatrixProfile) -> u128 {
        assert_eq!(
            self.ncols, other.nrows,
            "inner dimensions must agree for A·B"
        );
        self.col_nnz
            .iter()
            .zip(&other.row_nnz)
            .map(|(&c, &r)| (c as u128) * (r as u128))
            .sum()
    }

    /// The profile of the transpose (rows and columns swapped).
    pub fn transpose(&self) -> MatrixProfile {
        MatrixProfile::new(
            self.ncols,
            self.nrows,
            self.col_nnz.clone(),
            self.row_nnz.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn prefix_sums_give_panel_occupancy() {
        let p = MatrixProfile::new(5, 3, vec![2, 0, 1, 4, 3], vec![4, 3, 3]);
        assert_eq!(p.nnz(), 10);
        assert_eq!(p.row_range_nnz(0, 5), 10);
        assert_eq!(p.row_range_nnz(0, 0), 0);
        assert_eq!(p.row_range_nnz(2, 4), 5);
        assert_eq!(p.row_range_nnz(4, 5), 3);
    }

    #[test]
    #[should_panic(expected = "row and column totals")]
    fn mismatched_totals_panic() {
        let _ = MatrixProfile::new(2, 2, vec![1, 1], vec![3, 0]);
    }

    #[test]
    fn panel_occupancies_match_range_sums() {
        let p = MatrixProfile::new(5, 3, vec![2, 0, 1, 4, 3], vec![4, 3, 3]);
        for rpt in 1..=6 {
            let direct: Vec<u64> = p.panel_occupancies(rpt).collect();
            let expected: Vec<u64> = (0..5usize.div_ceil(rpt))
                .map(|i| p.row_range_nnz(i * rpt, ((i + 1) * rpt).min(5)))
                .collect();
            assert_eq!(direct, expected, "rows_per_tile={rpt}");
            assert_eq!(direct.iter().sum::<u64>(), p.nnz());
        }
        let empty = MatrixProfile::new(0, 0, vec![], vec![]);
        assert_eq!(empty.panel_occupancies(3).count(), 0);
        assert_eq!(p.row_prefix(), &[0, 2, 2, 3, 7, 10]);
    }

    #[test]
    fn mults_a_at_matches_reference() {
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 1, 1.0),
                (1, 1, 1.0),
                (2, 0, 1.0),
                (2, 2, 1.0),
            ],
        )
        .unwrap();
        let p = a.profile();
        // col counts: [2, 2, 1] -> 4 + 4 + 1 = 9
        assert_eq!(p.mults_a_at(), 9);
        // Count by brute force: for each k, (nnz in col k)^2.
        let t = a.transpose();
        let brute: u128 = (0..a.ncols()).map(|k| (t.row_nnz(k) as u128).pow(2)).sum();
        assert_eq!(p.mults_a_at(), brute);
    }

    #[test]
    fn mults_a_b_symmetric_case() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 0, 1.0), (1, 2, 1.0)]).unwrap();
        let b = a.transpose();
        let (pa, pb) = (a.profile(), b.profile());
        assert_eq!(pa.mults_a_b(&pb), pa.mults_a_at());
    }

    #[test]
    fn transpose_swaps_counts() {
        let p = MatrixProfile::new(2, 3, vec![2, 1], vec![1, 1, 1]);
        let t = p.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.row_nnz(), &[1, 1, 1]);
        assert_eq!(t.col_nnz(), &[2, 1]);
    }

    #[test]
    fn sparsity_and_density() {
        let p = MatrixProfile::new(10, 10, vec![1; 10], vec![1; 10]);
        assert!((p.sparsity() - 0.9).abs() < 1e-12);
        assert!((p.density() - 0.1).abs() < 1e-12);
    }
}
