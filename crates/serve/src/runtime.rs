//! The fault-tolerant service runtime: a fixed pool of actor-shaped
//! worker threads consuming a bounded priority [`Mailbox`], with
//! admission control in front of the queue and panic isolation around
//! every request.
//!
//! # Request lifecycle
//!
//! ```text
//! submit ── validate ──► BadRequest (typed reject)
//!    │
//!    ├── admission ────► Overloaded{TensorBytes | PlanPressure}
//!    │
//!    ├── try_push ─────► Overloaded{MailboxFull}   (backpressure,
//!    │                   value handed back — retry with capped
//!    │                   exponential backoff via [`RetryPolicy`])
//!    │
//!    └── queued ──► worker pop ──► deadline check ──► Timeout
//!                        │
//!                        └─ catch_unwind(execute) ─► Ok(Reply)
//!                                    │               Faulted{panic:false}
//!                                    └─ panic ─────► Faulted{panic:true}
//!                                                    (worker survives)
//! ```
//!
//! Every submitted request is accounted for exactly once:
//! `completed + faulted + rejected + timed_out == submitted` — the
//! invariant the fault-injection suite asserts under injected panics,
//! latency, and forced mailbox-full conditions. Completed responses are
//! bit-identical to cold in-process runs for any fault history, because
//! workers only ever execute [`SimService`] calls whose determinism the
//! PR 4 suites already pin.
//!
//! # Fault injection
//!
//! A [`FaultPlan`] (programmatic, or `TAILORS_FAULTS=panic:7,latency:3`
//! from the environment) deterministically injects worker panics,
//! artificial latency, and forced mailbox-full rejections into every
//! N-th request, so the whole failure surface is exercisable in CI
//! without flaky timing games.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tailors_sim::functional::{scratch_pool_stats, EngineError};
use tailors_tensor::storage::PoolStats;

use crate::mailbox::{Mailbox, MailboxStats, Priority, PushError};
use crate::service::{FunctionalRequest, FunctionalResponse, SimRequest, SimResponse, SimService};
use crate::sync::PoisonFreeMutex;

/// One unit of work a client can submit.
#[derive(Debug, Clone)]
pub enum Work {
    /// An analytical simulation request (high-priority lane).
    Sim(SimRequest),
    /// A functional-engine request (low-priority lane; admission-gated on
    /// estimated tensor bytes).
    Functional(Box<FunctionalRequest>),
}

impl Work {
    fn priority(&self) -> Priority {
        match self {
            Work::Sim(_) => Priority::High,
            Work::Functional(_) => Priority::Low,
        }
    }

    pub(crate) fn workload(&self) -> &tailors_workloads::Workload {
        match self {
            Work::Sim(r) => &r.workload,
            Work::Functional(r) => &r.workload,
        }
    }
}

/// A successful reply.
// Sim stays inline: analytical replies are the cache-hot microsecond
// lane, and boxing them would put a heap allocation on every reply of
// the common path to shrink an enum that lives on the stack briefly.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Reply {
    /// Response to [`Work::Sim`].
    Sim(SimResponse),
    /// Response to [`Work::Functional`].
    Functional(Box<FunctionalResponse>),
}

impl Reply {
    /// The analytical response, if this reply is one.
    pub fn into_sim(self) -> Option<SimResponse> {
        match self {
            Reply::Sim(r) => Some(r),
            Reply::Functional(_) => None,
        }
    }

    /// The functional response, if this reply is one.
    pub fn into_functional(self) -> Option<FunctionalResponse> {
        match self {
            Reply::Functional(r) => Some(*r),
            Reply::Sim(_) => None,
        }
    }
}

/// Why admission control refused a request.
#[derive(Debug, Clone, PartialEq)]
pub enum OverloadReason {
    /// The bounded mailbox is at capacity — transient backpressure;
    /// retryable.
    MailboxFull {
        /// The mailbox's capacity bound.
        capacity: usize,
    },
    /// A functional request's estimated resident tensor footprint exceeds
    /// the admission limit. Not retryable: the same request will always
    /// exceed it.
    TensorBytes {
        /// Estimated bytes the request would make resident.
        estimated: u64,
        /// The configured admission limit.
        limit: u64,
    },
    /// The plan tier is thrashing (resident/capacity at the configured
    /// threshold while the hit rate is below its floor); analytical
    /// requests are shed until the tier stabilizes. Retryable.
    PlanPressure {
        /// Plan-tier occupancy in `[0, 1]` at rejection time.
        pressure: f64,
        /// Plan-tier hit rate in `[0, 1]` at rejection time.
        hit_rate: f64,
    },
}

/// Every way a submitted request can fail — always typed, never a worker
/// abort or a silent drop.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Refused by admission control or the bounded mailbox; see the
    /// reason for whether a backoff-retry can succeed.
    Overloaded(OverloadReason),
    /// The per-request deadline elapsed before a worker produced a reply.
    Timeout {
        /// The deadline that was exceeded.
        deadline: Duration,
    },
    /// The request reached a worker and failed there: a caught panic
    /// (`panic == true` — the worker kept serving) or an engine error.
    Faulted {
        /// Whether the failure was an isolated panic.
        panic: bool,
        /// Human-readable failure description.
        message: String,
    },
    /// The request was structurally invalid (caught before queueing).
    BadRequest(String),
    /// The runtime is shutting down and did not serve the request.
    Shutdown,
}

impl ServeError {
    /// Whether resubmitting the identical request after a backoff can
    /// plausibly succeed (transient overload) — the condition
    /// [`ServiceRuntime::submit_with_retry`] retries on.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded(
                OverloadReason::MailboxFull { .. } | OverloadReason::PlanPressure { .. }
            )
        )
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Overloaded(OverloadReason::MailboxFull { capacity }) => {
                write!(f, "overloaded: mailbox full (capacity {capacity})")
            }
            ServeError::Overloaded(OverloadReason::TensorBytes { estimated, limit }) => {
                write!(
                    f,
                    "overloaded: estimated tensor footprint {estimated} B exceeds limit {limit} B"
                )
            }
            ServeError::Overloaded(OverloadReason::PlanPressure { pressure, hit_rate }) => {
                write!(
                    f,
                    "overloaded: plan-cache pressure {pressure:.2} with hit rate {hit_rate:.2}"
                )
            }
            ServeError::Timeout { deadline } => {
                write!(f, "deadline of {deadline:?} exceeded")
            }
            ServeError::Faulted { panic, message } => {
                if *panic {
                    write!(f, "request panicked (worker isolated it): {message}")
                } else {
                    write!(f, "request faulted: {message}")
                }
            }
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Shutdown => write!(f, "runtime is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why a `TAILORS_FAULTS` spec was refused by [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// An entry was not of the form `kind:N`.
    NotKindCount(String),
    /// The count after the `:` was not an unsigned integer.
    BadCount {
        /// The fault kind whose count failed to parse.
        kind: String,
        /// The offending count text.
        count: String,
    },
    /// The kind is not one the injector knows.
    UnknownKind(String),
    /// The same kind (counting `full`/`reject` as one) appeared twice.
    DuplicateKind(String),
}

impl core::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultSpecError::NotKindCount(part) => {
                write!(f, "fault spec {part:?} is not kind:N")
            }
            FaultSpecError::BadCount { kind, count } => {
                write!(
                    f,
                    "fault count {count:?} for kind {kind:?} is not an integer"
                )
            }
            FaultSpecError::UnknownKind(kind) => write!(f, "unknown fault kind {kind:?}"),
            FaultSpecError::DuplicateKind(kind) => {
                write!(f, "fault kind {kind:?} appears more than once")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// Deterministic fault injection: each kind fires on every `N`-th
/// occasion its counter reaches a multiple of `N` (counters are global
/// across workers, so exactly `⌊executed / N⌋` faults fire regardless of
/// interleaving).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Panic inside the worker on every `N`-th executed request.
    pub panic_every: Option<u64>,
    /// Sleep [`FaultPlan::latency`] before every `N`-th executed request.
    pub latency_every: Option<u64>,
    /// Injected latency duration (default 1 ms).
    pub latency_ms: u64,
    /// Force an `Overloaded(MailboxFull)` rejection on every `N`-th
    /// submission, as if the mailbox had no free slot.
    pub reject_every: Option<u64>,
    /// Sever the TCP session after every `N`-th decoded wire request
    /// (TCP sessions only — stdio has no connection to drop). The
    /// request is discarded *before* it reaches the runtime, so the
    /// client observes an EOF mid-call and must reconnect and resend —
    /// exactly the failure [`WireClient::call_with_retry`] and the
    /// router's failover path are built to absorb.
    ///
    /// [`WireClient::call_with_retry`]: crate::wire::WireClient::call_with_retry
    pub drop_conn_every: Option<u64>,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        FaultPlan {
            latency_ms: 1,
            ..FaultPlan::default()
        }
    }

    /// Whether any fault kind is armed.
    pub fn is_active(&self) -> bool {
        self.panic_every.is_some()
            || self.latency_every.is_some()
            || self.reject_every.is_some()
            || self.drop_conn_every.is_some()
    }

    /// Parses a spec like `"panic:7,latency:3,full:5"`. Kinds: `panic`,
    /// `latency`, `full` (alias `reject`), `drop_conn` (sever the TCP
    /// session after every N-th wire request), plus `latency_ms:<ms>` to
    /// size the injected delay. Entries and their pieces are
    /// whitespace-trimmed, so `" panic:7 , latency:3 "` parses the same
    /// as its tight form. An empty spec is [`FaultPlan::none`].
    ///
    /// Each kind may appear **at most once** (`full`/`reject` count as
    /// one kind): a duplicate is refused with
    /// [`FaultSpecError::DuplicateKind`] rather than silently letting the
    /// last entry win — a fault harness whose spec says two different
    /// things must not quietly run under one of them.
    ///
    /// # Errors
    ///
    /// A typed [`FaultSpecError`] describing the malformed input.
    pub fn parse(s: &str) -> Result<Self, FaultSpecError> {
        let mut plan = FaultPlan::none();
        let mut seen: Vec<&'static str> = Vec::new();
        let mut claim = |kind: &'static str| {
            if seen.contains(&kind) {
                Err(FaultSpecError::DuplicateKind(kind.to_string()))
            } else {
                seen.push(kind);
                Ok(())
            }
        };
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, count) = part
                .split_once(':')
                .ok_or_else(|| FaultSpecError::NotKindCount(part.to_string()))?;
            let n: u64 = count.trim().parse().map_err(|_| FaultSpecError::BadCount {
                kind: kind.trim().to_string(),
                count: count.trim().to_string(),
            })?;
            match kind.trim().to_ascii_lowercase().as_str() {
                "panic" => {
                    claim("panic")?;
                    plan.panic_every = (n > 0).then_some(n);
                }
                "latency" => {
                    claim("latency")?;
                    plan.latency_every = (n > 0).then_some(n);
                }
                // One underlying knob, two spellings: a spec naming both
                // is a duplicate, not two settings.
                "full" | "reject" => {
                    claim("full")?;
                    plan.reject_every = (n > 0).then_some(n);
                }
                "drop_conn" => {
                    claim("drop_conn")?;
                    plan.drop_conn_every = (n > 0).then_some(n);
                }
                "latency_ms" => {
                    claim("latency_ms")?;
                    plan.latency_ms = n;
                }
                other => return Err(FaultSpecError::UnknownKind(other.to_string())),
            }
        }
        Ok(plan)
    }

    /// The plan named by `TAILORS_FAULTS`, or [`FaultPlan::none`] when
    /// unset.
    ///
    /// # Panics
    ///
    /// Panics if `TAILORS_FAULTS` is set but unparseable — a broken fault
    /// harness must not silently run faultless.
    pub fn from_env() -> Self {
        match std::env::var("TAILORS_FAULTS") {
            Err(_) => FaultPlan::none(),
            Ok(s) => Self::parse(&s).unwrap_or_else(|e| panic!("TAILORS_FAULTS: {e}")),
        }
    }
}

/// Shared fire-on-every-Nth counters backing a [`FaultPlan`].
#[derive(Debug, Default)]
struct FaultState {
    executed: AtomicU64,
    latencies: AtomicU64,
    submissions: AtomicU64,
    conn_requests: AtomicU64,
}

impl FaultState {
    fn fires(counter: &AtomicU64, every: Option<u64>) -> bool {
        match every {
            None => false,
            Some(n) => (counter.fetch_add(1, Ordering::SeqCst) + 1).is_multiple_of(n),
        }
    }
}

/// Sizing and policy knobs for a [`ServiceRuntime`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Worker threads consuming the mailbox.
    pub workers: usize,
    /// Mailbox capacity across both priority lanes — the backpressure
    /// bound on queued requests.
    pub mailbox_capacity: usize,
    /// Admission limit on a functional request's estimated resident
    /// tensor bytes (tensor + transpose + index structure).
    pub max_tensor_bytes: u64,
    /// Plan-tier occupancy (resident/capacity) at or above which
    /// analytical requests are pressure-checked.
    pub plan_pressure_threshold: f64,
    /// Plan-tier hit rate *below* which a pressure-checked analytical
    /// request is shed. The default of `0.0` disables pressure shedding
    /// (a hit rate is never negative).
    pub plan_hit_rate_floor: f64,
    /// Deadline applied to [`ServiceRuntime::submit`] when the caller
    /// does not pass one.
    pub default_deadline: Option<Duration>,
    /// Injected faults (see [`FaultPlan`]).
    pub faults: FaultPlan,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            mailbox_capacity: 64,
            // Generous: admission is a guard against pathological single
            // requests (a paper-scale webbase-1M functional run estimates
            // ~0.2 GiB), not a memory governor.
            max_tensor_bytes: 8 << 30,
            plan_pressure_threshold: 1.0,
            plan_hit_rate_floor: 0.0,
            default_deadline: None,
            faults: FaultPlan::none(),
        }
    }
}

/// Monotone outcome counters; see [`RuntimeStats::accounted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Requests submitted (each retry attempt counts as a submission).
    pub submitted: u64,
    /// Requests that returned `Ok(Reply)`.
    pub completed: u64,
    /// Typed rejections: overload, bad request, shutdown.
    pub rejected: u64,
    /// Requests whose deadline elapsed first.
    pub timed_out: u64,
    /// Structured `Faulted` replies (isolated panics and engine errors).
    pub faulted: u64,
    /// Panics caught by worker isolation (a subset of `faulted`).
    pub panics_isolated: u64,
    /// Backoff retries performed by [`ServiceRuntime::submit_with_retry`].
    pub retries: u64,
    /// Faults fired by the [`FaultPlan`].
    pub injected_panics: u64,
    /// Latency injections fired.
    pub injected_latency: u64,
    /// Forced mailbox-full rejections fired.
    pub injected_rejects: u64,
    /// TCP sessions severed by the `drop_conn` fault kind. The dropped
    /// request never reaches the ledger (the client resends it on a new
    /// connection), so this is observability, not an outcome row.
    pub injected_drops: u64,
}

impl RuntimeStats {
    /// Requests accounted for by a terminal outcome. The runtime's core
    /// invariant is `accounted() == submitted` whenever no submission is
    /// in flight — nothing is ever silently lost.
    pub fn accounted(&self) -> u64 {
        self.completed + self.rejected + self.timed_out + self.faulted
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    faulted: AtomicU64,
    panics_isolated: AtomicU64,
    retries: AtomicU64,
    injected_panics: AtomicU64,
    injected_latency: AtomicU64,
    injected_rejects: AtomicU64,
    injected_drops: AtomicU64,
}

/// A queued request: the work, its absolute deadline, and the one-shot
/// reply channel its submitter is blocked on.
#[derive(Debug)]
struct Envelope {
    work: Work,
    deadline: Option<Instant>,
    deadline_budget: Duration,
    reply: SyncSender<Result<Reply, ServeError>>,
}

/// Capped-exponential-backoff client retry policy for transient
/// [`ServeError::retryable`] rejections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (so `1` disables retrying).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Per-attempt deadline handed to the runtime.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (0-based), capped.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .map_or(self.max_backoff, |d| d.min(self.max_backoff))
    }

    /// [`RetryPolicy::backoff`] with deterministic equal jitter: the
    /// sleep is drawn from `[backoff/2, backoff]`, positioned by a
    /// splitmix64 mix of `(seed, retry)`. N clients retrying the same
    /// recovering shard with distinct seeds (the wire client seeds with
    /// its request id) spread out instead of stampeding in lockstep,
    /// while any one `(seed, retry)` pair always sleeps the same amount
    /// — tests stay reproducible.
    pub fn backoff_jittered(&self, retry: u32, seed: u64) -> Duration {
        let full = self.backoff(retry);
        let nanos = full.as_nanos().min(u64::MAX as u128) as u64;
        if nanos < 2 {
            return full;
        }
        let mix = splitmix64(seed ^ (u64::from(retry).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        // Equal jitter: keep half the backoff, scatter the other half.
        let half = nanos / 2;
        Duration::from_nanos(half + mix % (nanos - half + 1))
    }
}

/// SplitMix64 finalizer — a tiny, well-distributed bit mixer (Steele et
/// al.), used only to position retry jitter; not a security primitive.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The front door: a [`SimService`] behind a bounded priority mailbox
/// and a fixed worker pool, with typed failure for every outcome. See
/// the [module docs](self) for the lifecycle.
#[derive(Debug)]
pub struct ServiceRuntime {
    service: Arc<SimService>,
    mailbox: Arc<Mailbox<Envelope>>,
    config: RuntimeConfig,
    counters: Arc<Counters>,
    faults: Arc<FaultState>,
    workers: PoisonFreeMutex<Vec<JoinHandle<()>>>,
    // One slot per worker: each worker publishes a snapshot of its own
    // thread-local scratch-pool counters after every request (workers
    // run the engine at threads=1, so the worker thread's pool IS the
    // per-worker pool). Snapshots are replaced, never accumulated, so
    // the merged view double-counts nothing.
    pool_slots: Arc<PoisonFreeMutex<Vec<PoolStats>>>,
}

impl ServiceRuntime {
    /// Spawns the worker pool over a fresh [`SimService`].
    pub fn new(config: RuntimeConfig) -> Self {
        Self::over(Arc::new(SimService::new()), config)
    }

    /// Spawns the worker pool over an existing service (sharing its cache
    /// tiers with in-process callers).
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0` or `config.mailbox_capacity == 0`
    /// — structural misconfiguration, not load.
    pub fn over(service: Arc<SimService>, config: RuntimeConfig) -> Self {
        assert!(config.workers > 0, "worker count must be positive");
        let mailbox = Arc::new(Mailbox::bounded(config.mailbox_capacity));
        let counters = Arc::new(Counters::default());
        let faults = Arc::new(FaultState::default());
        let pool_slots = Arc::new(PoisonFreeMutex::new(vec![
            PoolStats::default();
            config.workers
        ]));
        let workers = (0..config.workers)
            .map(|i| {
                let mailbox = Arc::clone(&mailbox);
                let service = Arc::clone(&service);
                let counters = Arc::clone(&counters);
                let faults = Arc::clone(&faults);
                let pool_slots = Arc::clone(&pool_slots);
                let plan = config.faults;
                std::thread::Builder::new()
                    .name(format!("tailors-serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&mailbox, &service, &counters, &faults, plan, &pool_slots, i)
                    })
                    .expect("worker thread spawn")
            })
            .collect();
        ServiceRuntime {
            service,
            mailbox,
            config,
            counters,
            faults,
            workers: PoisonFreeMutex::new(workers),
            pool_slots,
        }
    }

    /// The service whose caches this runtime serves from.
    pub fn service(&self) -> &Arc<SimService> {
        &self.service
    }

    /// The configuration the runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// A snapshot of the outcome counters.
    pub fn stats(&self) -> RuntimeStats {
        let c = &self.counters;
        RuntimeStats {
            submitted: c.submitted.load(Ordering::SeqCst),
            completed: c.completed.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            timed_out: c.timed_out.load(Ordering::SeqCst),
            faulted: c.faulted.load(Ordering::SeqCst),
            panics_isolated: c.panics_isolated.load(Ordering::SeqCst),
            retries: c.retries.load(Ordering::SeqCst),
            injected_panics: c.injected_panics.load(Ordering::SeqCst),
            injected_latency: c.injected_latency.load(Ordering::SeqCst),
            injected_rejects: c.injected_rejects.load(Ordering::SeqCst),
            injected_drops: c.injected_drops.load(Ordering::SeqCst),
        }
    }

    /// A snapshot of the mailbox's traffic counters.
    pub fn mailbox_stats(&self) -> MailboxStats {
        self.mailbox.stats()
    }

    /// The worker pool's scratch-pool counters, rolled up across all
    /// workers (each worker owns one thread-local [`ScratchPool`] and
    /// publishes a snapshot after every request it serves). A healthy
    /// steady state shows `misses` flat while `checkouts` climbs: hot
    /// requests run entirely on recycled pool inventory.
    ///
    /// [`ScratchPool`]: tailors_tensor::storage::ScratchPool
    pub fn scratch_pool_stats(&self) -> PoolStats {
        self.pool_slots
            .lock()
            .iter()
            .fold(PoolStats::default(), |acc, s| acc.merge(*s))
    }

    /// Submits one request and blocks for its outcome, applying the
    /// configured default deadline.
    ///
    /// # Errors
    ///
    /// Every failure is a typed [`ServeError`]; see the module docs for
    /// the lifecycle.
    pub fn submit(&self, work: Work) -> Result<Reply, ServeError> {
        self.submit_with_deadline(work, self.config.default_deadline)
    }

    /// [`ServiceRuntime::submit`] with an explicit per-request deadline
    /// (`None` waits indefinitely).
    ///
    /// # Errors
    ///
    /// As [`ServiceRuntime::submit`].
    pub fn submit_with_deadline(
        &self,
        work: Work,
        deadline: Option<Duration>,
    ) -> Result<Reply, ServeError> {
        self.submit_accounted(work, deadline, None)
    }

    /// Submits warm-up replay work: identical to [`ServiceRuntime::submit`]
    /// except the request is queued on the **low-priority lane** whatever
    /// its kind, so cache-warming replay after a shard joins or recovers
    /// never delays live analytical traffic. Warm work is accounted in
    /// this runtime's ledger exactly like any other request — the
    /// *router's* ledger is what excludes it (see `serve::shard`).
    ///
    /// # Errors
    ///
    /// As [`ServiceRuntime::submit`].
    pub fn submit_warm(&self, work: Work) -> Result<Reply, ServeError> {
        self.submit_accounted(work, self.config.default_deadline, Some(Priority::Low))
    }

    /// Whether the `drop_conn` fault fires for the wire session's next
    /// decoded request. Called by the TCP session loop once per decoded
    /// work request; a `true` return severs the session before the
    /// request reaches the mailbox (so nothing enters the ledger).
    pub fn fire_conn_drop(&self) -> bool {
        let fired = FaultState::fires(
            &self.faults.conn_requests,
            self.config.faults.drop_conn_every,
        );
        if fired {
            self.counters.injected_drops.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    fn submit_accounted(
        &self,
        work: Work,
        deadline: Option<Duration>,
        priority: Option<Priority>,
    ) -> Result<Reply, ServeError> {
        self.counters.submitted.fetch_add(1, Ordering::SeqCst);
        let outcome = self.submit_inner(work, deadline, priority);
        match &outcome {
            Ok(_) => self.counters.completed.fetch_add(1, Ordering::SeqCst),
            Err(ServeError::Timeout { .. }) => {
                self.counters.timed_out.fetch_add(1, Ordering::SeqCst)
            }
            Err(ServeError::Faulted { .. }) => self.counters.faulted.fetch_add(1, Ordering::SeqCst),
            Err(ServeError::Overloaded(_) | ServeError::BadRequest(_) | ServeError::Shutdown) => {
                self.counters.rejected.fetch_add(1, Ordering::SeqCst)
            }
        };
        outcome
    }

    /// Submits with capped-exponential-backoff retries on transient
    /// ([`ServeError::retryable`]) rejections. Each attempt is its own
    /// accounted submission.
    ///
    /// # Errors
    ///
    /// The final attempt's [`ServeError`] when retries are exhausted.
    pub fn submit_with_retry(&self, work: Work, policy: &RetryPolicy) -> Result<Reply, ServeError> {
        let mut retry = 0u32;
        loop {
            let outcome = self.submit_with_deadline(work.clone(), policy.deadline);
            match &outcome {
                Err(e) if e.retryable() && retry + 1 < policy.max_attempts.max(1) => {
                    self.counters.retries.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(policy.backoff(retry));
                    retry += 1;
                }
                _ => return outcome,
            }
        }
    }

    fn submit_inner(
        &self,
        work: Work,
        deadline: Option<Duration>,
        priority_override: Option<Priority>,
    ) -> Result<Reply, ServeError> {
        validate(&work)?;
        self.admit(&work)?;
        if FaultState::fires(&self.faults.submissions, self.config.faults.reject_every) {
            self.counters
                .injected_rejects
                .fetch_add(1, Ordering::SeqCst);
            return Err(ServeError::Overloaded(OverloadReason::MailboxFull {
                capacity: self.mailbox.capacity(),
            }));
        }
        let (tx, rx) = sync_channel(1);
        let deadline_budget = deadline.unwrap_or(Duration::MAX);
        let envelope = Envelope {
            work,
            deadline: deadline.map(|d| Instant::now() + d),
            deadline_budget,
            reply: tx,
        };
        let priority = priority_override.unwrap_or_else(|| envelope.work.priority());
        self.mailbox
            .try_push(priority, envelope)
            .map_err(|e| match e {
                PushError::Full(_) => ServeError::Overloaded(OverloadReason::MailboxFull {
                    capacity: self.mailbox.capacity(),
                }),
                PushError::Closed(_) => ServeError::Shutdown,
            })?;
        match deadline {
            None => rx.recv().unwrap_or(Err(ServeError::Shutdown)),
            Some(d) => match rx.recv_timeout(d) {
                Ok(reply) => reply,
                Err(RecvTimeoutError::Timeout) => Err(ServeError::Timeout { deadline: d }),
                Err(RecvTimeoutError::Disconnected) => Err(ServeError::Shutdown),
            },
        }
    }

    /// Structural validation before queueing: requests the engines would
    /// panic on are refused as [`ServeError::BadRequest`] instead.
    fn admit(&self, work: &Work) -> Result<(), ServeError> {
        match work {
            Work::Functional(req) => {
                let estimated = estimated_tensor_bytes(&req.workload);
                if estimated > self.config.max_tensor_bytes {
                    return Err(ServeError::Overloaded(OverloadReason::TensorBytes {
                        estimated,
                        limit: self.config.max_tensor_bytes,
                    }));
                }
            }
            Work::Sim(_) => {
                let stats = self.service.stats();
                let pressure = stats.plan_pressure();
                let hit_rate = stats.plan_hit_rate();
                if pressure >= self.config.plan_pressure_threshold
                    && hit_rate < self.config.plan_hit_rate_floor
                {
                    return Err(ServeError::Overloaded(OverloadReason::PlanPressure {
                        pressure,
                        hit_rate,
                    }));
                }
            }
        }
        Ok(())
    }

    /// Graceful shutdown: closes the mailbox (no new admissions), lets
    /// the workers drain every queued request, joins them, and reports.
    /// Idempotent; callable through an `Arc`.
    pub fn shutdown(&self) -> ShutdownReport {
        self.mailbox.close();
        self.join_workers();
        ShutdownReport {
            unserved: 0,
            stats: self.stats(),
        }
    }

    /// Aborting shutdown: closes the mailbox and refuses every queued
    /// request with [`ServeError::Shutdown`] (each blocked submitter
    /// receives the typed error — nothing is silently lost), then joins
    /// the workers.
    pub fn shutdown_now(&self) -> ShutdownReport {
        let drained = self.mailbox.close_and_drain();
        let unserved = drained.len();
        for envelope in drained {
            let _ = envelope.reply.send(Err(ServeError::Shutdown));
        }
        self.join_workers();
        ShutdownReport {
            unserved,
            stats: self.stats(),
        }
    }

    fn join_workers(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            // A worker that somehow died still must not wedge shutdown.
            let _ = h.join();
        }
    }
}

impl Drop for ServiceRuntime {
    fn drop(&mut self) {
        self.mailbox.close();
        self.join_workers();
    }
}

/// What a shutdown observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Queued requests refused with [`ServeError::Shutdown`]
    /// (always 0 for a draining [`ServiceRuntime::shutdown`]).
    pub unserved: usize,
    /// Final outcome counters.
    pub stats: RuntimeStats,
}

/// Estimated resident bytes of a functional request's tensor working set:
/// the CSR matrix and its transpose (values + column indices) plus both
/// row-pointer arrays. The admission gate compares this against
/// [`RuntimeConfig::max_tensor_bytes`].
pub fn estimated_tensor_bytes(wl: &tailors_workloads::Workload) -> u64 {
    let nnz = wl.target_nnz as u64;
    let rows = wl.nrows as u64;
    let cols = wl.ncols as u64;
    2 * nnz * (8 + 4) + (rows + cols + 2) * 8
}

fn validate(work: &Work) -> Result<(), ServeError> {
    let wl = work.workload();
    if wl.nrows == 0 || wl.ncols == 0 {
        return Err(ServeError::BadRequest(format!(
            "workload {:?} has a zero dimension ({}x{})",
            wl.name, wl.nrows, wl.ncols
        )));
    }
    if wl.nrows != wl.ncols {
        return Err(ServeError::BadRequest(format!(
            "workload {:?} is not square ({}x{}); Z = A·Aᵀ requires square A",
            wl.name, wl.nrows, wl.ncols
        )));
    }
    if wl.target_nnz == 0 {
        return Err(ServeError::BadRequest(format!(
            "workload {:?} targets zero nonzeros; planners require a non-empty tensor",
            wl.name
        )));
    }
    if let Work::Functional(req) = work {
        if req.threads == 0 {
            return Err(ServeError::BadRequest(
                "functional thread count must be positive".to_string(),
            ));
        }
    }
    Ok(())
}

fn worker_loop(
    mailbox: &Mailbox<Envelope>,
    service: &SimService,
    counters: &Counters,
    faults: &FaultState,
    plan: FaultPlan,
    pool_slots: &PoisonFreeMutex<Vec<PoolStats>>,
    index: usize,
) {
    while let Some(envelope) = mailbox.pop() {
        if let Some(deadline) = envelope.deadline {
            if Instant::now() >= deadline {
                let _ = envelope.reply.send(Err(ServeError::Timeout {
                    deadline: envelope.deadline_budget,
                }));
                continue;
            }
        }
        if FaultState::fires(&faults.latencies, plan.latency_every) {
            counters.injected_latency.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(plan.latency_ms));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if FaultState::fires(&faults.executed, plan.panic_every) {
                counters.injected_panics.fetch_add(1, Ordering::SeqCst);
                panic!("injected fault: worker panic");
            }
            execute(service, &envelope.work)
        }));
        let reply = match outcome {
            Ok(r) => r,
            Err(payload) => {
                counters.panics_isolated.fetch_add(1, Ordering::SeqCst);
                Err(ServeError::Faulted {
                    panic: true,
                    message: panic_message(payload.as_ref()),
                })
            }
        };
        // Publish this worker's thread-local pool counters (replace, not
        // accumulate — the thread-local counters are already cumulative)
        // *before* the reply: a submitter that has its answer must see
        // the pool activity that produced it.
        pool_slots.lock()[index] = scratch_pool_stats();
        // A submitter that timed out (or disconnected) dropped its
        // receiver; the send error is expected and the outcome was
        // already accounted as the timeout the submitter observed.
        let _ = envelope.reply.send(reply);
    }
}

fn execute(service: &SimService, work: &Work) -> Result<Reply, ServeError> {
    match work {
        Work::Sim(req) => Ok(Reply::Sim(service.submit(req))),
        Work::Functional(req) => match service.run_functional(req) {
            Ok(resp) => Ok(Reply::Functional(Box::new(resp))),
            Err(EngineError::Config(e)) => Err(ServeError::BadRequest(e.to_string())),
            Err(e) => Err(ServeError::Faulted {
                panic: false,
                message: e.to_string(),
            }),
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailors_sim::Variant;

    fn sim_work(name: &str) -> Work {
        Work::Sim(SimRequest::suite(name, 1.0 / 512.0, Variant::ExTensorP).expect("suite"))
    }

    #[test]
    fn fault_plan_parses_the_documented_grammar() {
        let p = FaultPlan::parse("panic:7,latency:3,full:5,latency_ms:2").unwrap();
        assert_eq!(p.panic_every, Some(7));
        assert_eq!(p.latency_every, Some(3));
        assert_eq!(p.reject_every, Some(5));
        assert_eq!(p.latency_ms, 2);
        assert!(p.is_active());
        assert!(!FaultPlan::parse("").unwrap().is_active());
        assert!(FaultPlan::parse("panic:0").unwrap().panic_every.is_none());
        assert_eq!(
            FaultPlan::parse("panic"),
            Err(FaultSpecError::NotKindCount("panic".into()))
        );
        assert_eq!(
            FaultPlan::parse("panic:x"),
            Err(FaultSpecError::BadCount {
                kind: "panic".into(),
                count: "x".into(),
            })
        );
        assert_eq!(
            FaultPlan::parse("explode:3"),
            Err(FaultSpecError::UnknownKind("explode".into()))
        );
    }

    #[test]
    fn drop_conn_fault_parses_fires_and_counts() {
        let p = FaultPlan::parse("drop_conn:3").unwrap();
        assert_eq!(p.drop_conn_every, Some(3));
        assert!(p.is_active());
        assert!(FaultPlan::parse("drop_conn:0")
            .unwrap()
            .drop_conn_every
            .is_none());
        assert_eq!(
            FaultPlan::parse("drop_conn:3,drop_conn:5"),
            Err(FaultSpecError::DuplicateKind("drop_conn".into()))
        );
        let runtime = ServiceRuntime::new(RuntimeConfig {
            workers: 1,
            faults: p,
            ..RuntimeConfig::default()
        });
        // Fires on exactly every 3rd decoded wire request; a drop never
        // touches the outcome ledger.
        let fired: Vec<bool> = (0..6).map(|_| runtime.fire_conn_drop()).collect();
        assert_eq!(fired, [false, false, true, false, false, true]);
        let stats = runtime.stats();
        assert_eq!(stats.injected_drops, 2);
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.accounted(), 0);
    }

    #[test]
    fn jittered_backoff_is_deterministic_bounded_and_spread() {
        let policy = RetryPolicy::default();
        for retry in 0..4 {
            let full = policy.backoff(retry);
            for seed in [0u64, 1, 7, u64::MAX] {
                let j = policy.backoff_jittered(retry, seed);
                assert_eq!(j, policy.backoff_jittered(retry, seed), "reproducible");
                assert!(
                    j >= full / 2 && j <= full,
                    "{j:?} not in [{full:?}/2, {full:?}]"
                );
            }
        }
        // Distinct seeds must actually de-synchronize (the whole point):
        // at least two of these four sleeps differ.
        let sleeps: Vec<Duration> = [0u64, 1, 7, 42]
            .iter()
            .map(|&s| policy.backoff_jittered(2, s))
            .collect();
        assert!(sleeps.windows(2).any(|w| w[0] != w[1]), "{sleeps:?}");
    }

    #[test]
    fn warm_submissions_ride_the_low_lane_and_account_normally() {
        let runtime = ServiceRuntime::new(RuntimeConfig {
            workers: 1,
            ..RuntimeConfig::default()
        });
        let reply = runtime.submit_warm(sim_work("email-Enron")).expect("warm");
        assert!(matches!(reply, Reply::Sim(_)));
        let stats = runtime.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.accounted(), stats.submitted);
        // Bit parity with the high-lane path: the lane changes queueing
        // order, never the answer.
        let hot = runtime.submit(sim_work("email-Enron")).expect("served");
        match (reply, hot) {
            (Reply::Sim(a), Reply::Sim(b)) => assert_eq!(a.metrics, b.metrics),
            _ => panic!("expected sim replies"),
        }
    }

    #[test]
    fn fault_plan_tolerates_whitespace_around_entries() {
        let p = FaultPlan::parse("  panic : 7 ,\tlatency:3 , latency_ms: 2  ,").unwrap();
        assert_eq!(p.panic_every, Some(7));
        assert_eq!(p.latency_every, Some(3));
        assert_eq!(p.latency_ms, 2);
        assert_eq!(
            p,
            FaultPlan::parse("panic:7,latency:3,latency_ms:2").unwrap()
        );
    }

    #[test]
    fn fault_plan_rejects_duplicate_kinds() {
        assert_eq!(
            FaultPlan::parse("panic:7,panic:3"),
            Err(FaultSpecError::DuplicateKind("panic".into()))
        );
        // `full` and `reject` spell the same knob — together they are a
        // duplicate, not two settings.
        assert_eq!(
            FaultPlan::parse("full:5,reject:9"),
            Err(FaultSpecError::DuplicateKind("full".into()))
        );
        assert_eq!(
            FaultPlan::parse("latency_ms:2,latency:4,latency_ms:8"),
            Err(FaultSpecError::DuplicateKind("latency_ms".into()))
        );
    }

    #[test]
    fn completed_plus_rejected_accounts_for_everything() {
        let runtime = ServiceRuntime::new(RuntimeConfig {
            workers: 2,
            mailbox_capacity: 8,
            ..RuntimeConfig::default()
        });
        let ok = runtime.submit(sim_work("email-Enron"));
        assert!(ok.is_ok());
        // A non-square workload is a typed bad request, not a panic.
        let mut bad = SimRequest::suite("cant", 1.0 / 512.0, Variant::ExTensorP).unwrap();
        bad.workload.nrows += 1;
        let e = runtime.submit(Work::Sim(bad)).unwrap_err();
        assert!(matches!(e, ServeError::BadRequest(_)), "{e}");
        let stats = runtime.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn injected_panics_are_isolated_and_typed() {
        let runtime = ServiceRuntime::new(RuntimeConfig {
            workers: 1,
            faults: FaultPlan {
                panic_every: Some(2),
                ..FaultPlan::none()
            },
            ..RuntimeConfig::default()
        });
        let first = runtime.submit(sim_work("email-Enron"));
        assert!(first.is_ok());
        let second = runtime.submit(sim_work("email-Enron")).unwrap_err();
        assert!(
            matches!(&second, ServeError::Faulted { panic: true, .. }),
            "{second}"
        );
        // The single worker survived the panic and keeps serving — and the
        // reply payload still matches the pre-panic one bitwise.
        let third = runtime.submit(sim_work("email-Enron")).expect("served");
        match (first.unwrap(), third) {
            (Reply::Sim(a), Reply::Sim(b)) => assert_eq!(a.metrics, b.metrics),
            _ => panic!("expected sim replies"),
        }
        let stats = runtime.stats();
        assert_eq!(stats.panics_isolated, 1);
        assert_eq!(stats.injected_panics, 1);
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn retry_recovers_from_injected_overload() {
        let runtime = ServiceRuntime::new(RuntimeConfig {
            workers: 1,
            faults: FaultPlan {
                reject_every: Some(2),
                ..FaultPlan::none()
            },
            ..RuntimeConfig::default()
        });
        // Every second submission is force-rejected; the retry loop eats
        // the rejection and the request completes on the next attempt.
        for _ in 0..4 {
            let reply = runtime
                .submit_with_retry(sim_work("email-Enron"), &RetryPolicy::default())
                .expect("retry should recover from forced overload");
            assert!(matches!(reply, Reply::Sim(_)));
        }
        let stats = runtime.stats();
        assert!(stats.retries >= 2, "stats: {stats:?}");
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn zero_deadline_times_out_with_type() {
        let runtime = ServiceRuntime::new(RuntimeConfig::default());
        let e = runtime
            .submit_with_deadline(sim_work("email-Enron"), Some(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(e, ServeError::Timeout { .. }), "{e}");
        let stats = runtime.stats();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.accounted(), stats.submitted);
    }

    #[test]
    fn graceful_shutdown_drains_and_reports() {
        let runtime = ServiceRuntime::new(RuntimeConfig::default());
        runtime.submit(sim_work("email-Enron")).expect("served");
        let report = runtime.shutdown();
        assert_eq!(report.unserved, 0);
        assert_eq!(report.stats.completed, 1);
        // Post-shutdown submissions are typed rejections.
        let e = runtime.submit(sim_work("email-Enron")).unwrap_err();
        assert_eq!(e, ServeError::Shutdown);
    }

    #[test]
    fn worker_pool_stats_roll_up_across_workers() {
        let runtime = ServiceRuntime::new(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        });
        assert_eq!(runtime.scratch_pool_stats(), PoolStats::default());
        let wl = tailors_workloads::by_name("email-Enron")
            .unwrap()
            .scaled(1.0 / 512.0);
        let req = FunctionalRequest {
            workload: wl,
            variant: Variant::ExTensorP,
            arch: tailors_sim::ArchConfig::extensor().scaled(1.0 / 512.0),
            budget: tailors_sim::MemBudget::mib(4),
            grid: tailors_sim::GridMode::Panels,
            auto_plan: false,
            threads: 1,
        };
        runtime
            .submit(Work::Functional(Box::new(req.clone())))
            .expect("served");
        let after_one = runtime.scratch_pool_stats();
        if tailors_tensor::storage::pooling_enabled() {
            assert!(after_one.checkouts > 0, "engine run must draw scratch");
            assert_eq!(after_one.checkouts, after_one.hits + after_one.misses);
        }
        // Sim work never touches the functional scratch pool, so the
        // rolled-up counters stay put (slots publish before each reply).
        runtime.submit(sim_work("email-Enron")).expect("served");
        let after_sim = runtime.scratch_pool_stats();
        assert_eq!(after_sim.checkouts, after_one.checkouts);
        runtime.shutdown();
    }

    #[test]
    fn tensor_byte_admission_rejects_oversized_functional_requests() {
        let runtime = ServiceRuntime::new(RuntimeConfig {
            max_tensor_bytes: 1024,
            ..RuntimeConfig::default()
        });
        let wl = tailors_workloads::by_name("email-Enron")
            .unwrap()
            .scaled(1.0 / 512.0);
        let req = FunctionalRequest {
            workload: wl,
            variant: Variant::ExTensorP,
            arch: tailors_sim::ArchConfig::extensor().scaled(1.0 / 512.0),
            budget: tailors_sim::MemBudget::mib(4),
            grid: tailors_sim::GridMode::Panels,
            auto_plan: false,
            threads: 1,
        };
        let e = runtime.submit(Work::Functional(Box::new(req))).unwrap_err();
        assert!(
            matches!(
                e,
                ServeError::Overloaded(OverloadReason::TensorBytes { .. })
            ),
            "{e}"
        );
        assert!(!e.retryable());
    }
}
