//! Multi-tile lifecycle tests: a Tailor reused across many tiles, mixed
//! fitting and overbooked, mirrors how the accelerator drives one buffer
//! through a whole workload.

use tailors_eddo::{EddoError, Tailor, TailorConfig};

fn drive_tile(t: &mut Tailor<u32>, tile: &[u32]) -> u64 {
    t.set_tile_len(tile.len());
    let mut fetches = 0;
    for (i, &v) in tile.iter().enumerate() {
        loop {
            match t.read(i) {
                Ok(got) => {
                    assert_eq!(got, v, "wrong data at index {i}");
                    break;
                }
                Err(EddoError::NotYetFilled { .. }) => match t.fill(tile[t.occupancy()]) {
                    Ok(()) => fetches += 1,
                    Err(EddoError::Full) => {
                        let idx = t.next_stream_index().unwrap_or(t.occupancy());
                        t.ow_fill(tile[idx]).unwrap();
                        fetches += 1;
                    }
                    Err(e) => panic!("unexpected {e}"),
                },
                Err(EddoError::Bumped { .. }) => {
                    let idx = t.next_stream_index().expect("overbooked");
                    t.ow_fill(tile[idx]).unwrap();
                    fetches += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
    }
    fetches
}

#[test]
fn alternating_fitting_and_overbooked_tiles() {
    let config = TailorConfig::new(16, 4).unwrap();
    let mut t: Tailor<u32> = Tailor::new(config);
    // Tiles of alternating sizes: 8 (fits), 40 (overbooks), 16 (exactly
    // fits), 17 (barely overbooks).
    for (len, should_overbook) in [(8usize, false), (40, true), (16, false), (17, true)] {
        let tile: Vec<u32> = (0..len as u32).collect();
        let fetches = drive_tile(&mut t, &tile);
        assert_eq!(t.is_overbooked(), should_overbook, "len {len}");
        assert_eq!(fetches, len as u64, "first traversal fetches the tile once");
        // Retire the tile as the dataflow would.
        let occ = t.occupancy();
        t.shrink(occ).unwrap();
        assert_eq!(t.occupancy(), 0);
    }
}

#[test]
fn stats_accumulate_across_tiles() {
    let config = TailorConfig::new(8, 2).unwrap();
    let mut t: Tailor<u32> = Tailor::new(config);
    let tile_a: Vec<u32> = (0..6).collect();
    let tile_b: Vec<u32> = (0..20).collect();
    let f1 = drive_tile(&mut t, &tile_a);
    let f2 = drive_tile(&mut t, &tile_b);
    let s = t.stats();
    assert_eq!(s.parent_traffic(), f1 + f2);
    assert_eq!(s.fills, 6 + 8); // conventional fills until full
    assert_eq!(s.ow_fills, 12); // the overbooked remainder of tile_b
}

#[test]
fn set_tile_len_discards_previous_tile() {
    let config = TailorConfig::new(8, 2).unwrap();
    let mut t: Tailor<u32> = Tailor::new(config);
    let tile: Vec<u32> = (100..120).collect();
    drive_tile(&mut t, &tile);
    assert!(t.is_overbooked());
    // Declaring a new tile resets everything, including overbooked mode.
    t.set_tile_len(4);
    assert!(!t.is_overbooked());
    assert_eq!(t.occupancy(), 0);
    assert_eq!(t.credits(), 8);
    t.fill(7).unwrap();
    assert_eq!(t.read(0).unwrap(), 7);
}

#[test]
fn repeated_traversals_converge_to_steady_state_traffic() {
    // After the first traversal, every further traversal of an overbooked
    // tile costs exactly the bumped remainder.
    let config = TailorConfig::new(10, 3).unwrap();
    let tile: Vec<u32> = (0..25).collect();
    let mut t: Tailor<u32> = Tailor::new(config);
    let first = drive_tile(&mut t, &tile);
    assert_eq!(first, 25);
    let resident = config.resident_region() as u64; // 7
    for pass in 0..4 {
        let before = t.stats().parent_traffic();
        for (i, &v) in tile.iter().enumerate() {
            loop {
                match t.read(i) {
                    Ok(got) => {
                        assert_eq!(got, v);
                        break;
                    }
                    Err(EddoError::Bumped { .. }) => {
                        let idx = t.next_stream_index().unwrap();
                        t.ow_fill(tile[idx]).unwrap();
                    }
                    Err(e) => panic!("unexpected {e} in pass {pass}"),
                }
            }
        }
        let delta = t.stats().parent_traffic() - before;
        assert_eq!(delta, 25 - resident, "steady-state pass cost");
    }
}
