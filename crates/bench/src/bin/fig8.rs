//! Fig. 8: energy efficiency of ExTensor-P and ExTensor-OB normalized to
//! ExTensor-N on all 22 workloads, plus geometric means.
//!
//! Usage: `cargo run --release -p tailors-bench --bin fig8 [scale]`

use tailors_bench::{rule, scale_from_args, simulate_suite};
use tailors_tensor::stats::geomean;

fn main() {
    let scale = scale_from_args();
    println!("Fig. 8 — energy efficiency normalized to ExTensor-N (scale = {scale})");
    rule(66);
    println!(
        "{:<20} {:>12} {:>12} {:>12}",
        "workload", "ExTensor-P", "ExTensor-OB", "OB / P"
    );
    rule(66);
    let runs = simulate_suite(scale);
    let mut p = Vec::new();
    let mut ob = Vec::new();
    for r in &runs {
        let (ep, eob) = (r.energy_gain_p(), r.energy_gain_ob());
        println!(
            "{:<20} {:>11.2}x {:>11.2}x {:>11.2}x",
            r.workload.name,
            ep,
            eob,
            eob / ep
        );
        p.push(ep);
        ob.push(eob);
    }
    rule(66);
    let gp = geomean(&p).expect("non-empty suite");
    let gob = geomean(&ob).expect("non-empty suite");
    println!(
        "{:<20} {:>11.2}x {:>11.2}x {:>11.2}x",
        "geomean",
        gp,
        gob,
        gob / gp
    );
    println!();
    println!("paper reports:       geomean OB/N = 22.5x, OB/P = 2.5x");
}
