//! Deterministic synthetic sparse-matrix generators.
//!
//! The paper evaluates on 22 SuiteSparse matrices (Table 2). This repository
//! cannot ship those datasets, so it generates synthetic stand-ins that
//! reproduce the properties the evaluation actually depends on:
//!
//! * dimensions and nonzero counts (Table 2),
//! * the *tile-occupancy distribution* shape — uniform vs heavy-tailed vs
//!   clustered — which §6 identifies as the driver of every result,
//! * qualitative structure: linear-system matrices are diagonally banded
//!   with off-diagonal scatter; graph matrices have heavy-tailed degrees;
//!   road networks are near-diagonal with a few dense urban clusters.
//!
//! All generators are deterministic for a given seed.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CooMatrix, CsrMatrix};

/// Structural family of a synthetic matrix.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Structure {
    /// Linear-system style: a dense diagonal band plus random scatter, with
    /// per-region degree modulation to create panel-scale occupancy
    /// variability (the paper's rma10/cant/consph/... family).
    Banded {
        /// Half-width of the diagonal band, as a fraction of `ncols`.
        band_halfwidth_frac: f64,
        /// Fraction of nonzeros placed uniformly at random instead of in the
        /// band.
        scatter_frac: f64,
        /// Log-normal sigma of the per-block row-degree multiplier; `0.0`
        /// gives uniform rows, larger values give more tile-occupancy
        /// variability.
        degree_variability: f64,
    },
    /// Graph style: heavy-tailed (Zipf) row degrees with preferential column
    /// attachment (the email/soc/sx/web/amazon family).
    PowerLaw {
        /// Rank exponent of the degree sequence: `deg(rank i) ∝ i^-alpha`.
        /// A degree PDF `P(d) ∝ d^-γ` corresponds to `alpha = 1/(γ-1)`, so
        /// real graphs (γ ≈ 2.2–3) map to `alpha ≈ 0.5–0.8`; larger = heavier
        /// tail.
        alpha: f64,
        /// Fraction of high-degree rows packed into contiguous id ranges
        /// (`0.0` = degrees shuffled uniformly over row ids, `1.0` = all
        /// hubs clustered). Clustering is what creates tile-occupancy
        /// asymmetry.
        hub_clustering: f64,
    },
    /// Road-network style: uniformly low degree near the diagonal, plus a
    /// small fraction of row-id space ("urban clusters") holding a large
    /// share of the nonzeros (the paper's roadNet-CA, whose tile-occupancy
    /// distribution it describes as highly asymmetric).
    Clustered {
        /// Fraction of the row-id space covered by dense clusters.
        cluster_frac: f64,
        /// Share of all nonzeros placed inside the clusters.
        cluster_share: f64,
    },
    /// Uniform random scatter (maximally uniform tile occupancy).
    Uniform,
}

/// Specification for one synthetic matrix. Construct with the
/// [`GenSpec::banded`] / [`GenSpec::power_law`] / [`GenSpec::clustered`] /
/// [`GenSpec::uniform`] constructors, optionally override the seed, then
/// call [`GenSpec::generate`].
///
/// # Example
///
/// ```
/// use tailors_tensor::gen::GenSpec;
///
/// let a = GenSpec::power_law(10_000, 10_000, 80_000).seed(42).generate();
/// let b = GenSpec::power_law(10_000, 10_000, 80_000).seed(42).generate();
/// assert_eq!(a.nnz(), b.nnz()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GenSpec {
    nrows: usize,
    ncols: usize,
    target_nnz: usize,
    structure: Structure,
    seed: u64,
}

impl GenSpec {
    /// A banded linear-system matrix with default band parameters.
    pub fn banded(nrows: usize, ncols: usize, target_nnz: usize) -> Self {
        GenSpec {
            nrows,
            ncols,
            target_nnz,
            structure: Structure::Banded {
                band_halfwidth_frac: 0.01,
                scatter_frac: 0.1,
                degree_variability: 0.6,
            },
            seed: 0,
        }
    }

    /// A power-law graph matrix with default exponent and clustering.
    pub fn power_law(nrows: usize, ncols: usize, target_nnz: usize) -> Self {
        GenSpec {
            nrows,
            ncols,
            target_nnz,
            structure: Structure::PowerLaw {
                alpha: 0.7,
                hub_clustering: 0.5,
            },
            seed: 0,
        }
    }

    /// A clustered road-network-style matrix.
    pub fn clustered(nrows: usize, ncols: usize, target_nnz: usize) -> Self {
        GenSpec {
            nrows,
            ncols,
            target_nnz,
            structure: Structure::Clustered {
                cluster_frac: 0.02,
                cluster_share: 0.5,
            },
            seed: 0,
        }
    }

    /// A uniform random matrix.
    pub fn uniform(nrows: usize, ncols: usize, target_nnz: usize) -> Self {
        GenSpec {
            nrows,
            ncols,
            target_nnz,
            structure: Structure::Uniform,
            seed: 0,
        }
    }

    /// Overrides the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the structural family.
    pub fn structure(mut self, structure: Structure) -> Self {
        self.structure = structure;
        self
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Requested nonzero count (the generated matrix lands close to, but not
    /// exactly on, this figure because duplicate coordinates collapse).
    pub fn target_nnz(&self) -> usize {
        self.target_nnz
    }

    /// Generates the matrix.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero dimensions with nonzero target,
    /// or a target that exceeds the coordinate space).
    pub fn generate(&self) -> CsrMatrix {
        assert!(
            self.target_nnz == 0 || (self.nrows > 0 && self.ncols > 0),
            "cannot place nonzeros in an empty matrix"
        );
        let space = self.nrows as u128 * self.ncols as u128;
        assert!(
            self.target_nnz as u128 <= space,
            "target_nnz exceeds the coordinate space"
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ SEED_MIX);
        let coo = match &self.structure {
            Structure::Banded {
                band_halfwidth_frac,
                scatter_frac,
                degree_variability,
            } => self.gen_banded(
                &mut rng,
                *band_halfwidth_frac,
                *scatter_frac,
                *degree_variability,
            ),
            Structure::PowerLaw {
                alpha,
                hub_clustering,
            } => self.gen_power_law(&mut rng, *alpha, *hub_clustering),
            Structure::Clustered {
                cluster_frac,
                cluster_share,
            } => self.gen_clustered(&mut rng, *cluster_frac, *cluster_share),
            Structure::Uniform => self.gen_uniform(&mut rng),
        };
        CsrMatrix::from_coo(&coo)
    }

    /// Distributes `target_nnz` across rows according to per-row weights.
    fn degrees_from_weights(&self, weights: &[f64]) -> Vec<usize> {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return vec![0; self.nrows];
        }
        let mut degrees: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * self.target_nnz as f64).floor() as usize)
            .collect();
        // Distribute the rounding remainder to the highest-weighted rows so
        // the total hits the target exactly (pre-dedup).
        let assigned: usize = degrees.iter().sum();
        let mut remainder = self.target_nnz.saturating_sub(assigned);
        if remainder > 0 {
            let mut order: Vec<usize> = (0..self.nrows).collect();
            order.sort_unstable_by(|&a, &b| {
                weights[b].partial_cmp(&weights[a]).expect("finite weights")
            });
            for &r in order.iter().cycle().take(remainder) {
                degrees[r] += 1;
                remainder -= 1;
                if remainder == 0 {
                    break;
                }
            }
        }
        // No row can exceed the column count.
        for d in &mut degrees {
            *d = (*d).min(self.ncols);
        }
        degrees
    }

    fn gen_banded(
        &self,
        rng: &mut StdRng,
        band_halfwidth_frac: f64,
        scatter_frac: f64,
        degree_variability: f64,
    ) -> CooMatrix {
        // The band must hold the per-row degree with headroom or duplicate
        // coordinates collapse; widen it beyond the nominal fraction when
        // rows are dense relative to the matrix size (small scaled runs).
        let mean_deg = self.target_nnz / self.nrows.max(1);
        let halfwidth = ((self.ncols as f64 * band_halfwidth_frac) as usize)
            .max(2 * mean_deg + 1)
            .max(1);
        // Multi-scale per-block degree modulation: coarse and fine row
        // blocks each carry a log-normal multiplier (Box-Muller), creating
        // the heavy-tailed panel-scale occupancy variability the paper
        // attributes to FEM matrices' dense diagonal regions. Two scales
        // matter: variability must survive aggregation into panels of
        // thousands of rows (coarse) while still differentiating small PE
        // subtiles (fine).
        let mut lognormal = |sigma: f64| -> f64 {
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen::<f64>();
            let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (sigma * normal).exp()
        };
        let sigma = 1.2 * degree_variability / std::f64::consts::SQRT_2;
        let coarse_block = (self.nrows / 16).max(1);
        let fine_block = (self.nrows / 256).max(1);
        let coarse: Vec<f64> = (0..self.nrows.div_ceil(coarse_block))
            .map(|_| lognormal(sigma))
            .collect();
        let fine: Vec<f64> = (0..self.nrows.div_ceil(fine_block))
            .map(|_| lognormal(sigma))
            .collect();
        let weights: Vec<f64> = (0..self.nrows)
            .map(|r| coarse[r / coarse_block] * fine[r / fine_block])
            .collect();
        let degrees = self.degrees_from_weights(&weights);
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.target_nnz);
        for (r, &deg) in degrees.iter().enumerate() {
            let lo = r
                .saturating_sub(halfwidth)
                .min(self.ncols.saturating_sub(1));
            let hi = (r + halfwidth + 1).min(self.ncols);
            for _ in 0..deg {
                let c = if rng.gen::<f64>() < scatter_frac || lo >= hi {
                    rng.gen_range(0..self.ncols)
                } else {
                    rng.gen_range(lo..hi)
                };
                coo.push(r, c, value(rng))
                    .expect("in bounds by construction");
            }
        }
        coo
    }

    fn gen_power_law(&self, rng: &mut StdRng, alpha: f64, hub_clustering: f64) -> CooMatrix {
        // Zipf rank weights, assigned to rows either clustered or shuffled.
        // Hub degrees are capped (real web/social graphs cap out well below
        // their nnz: webbase-1M's max degree is ≈4.7 K of 3.1 M nonzeros,
        // web-Google's is ≈460 of 5.1 M); heavier-tailed specs get looser
        // caps so the cap tracks the intended variability.
        let cap_weight_share = 0.0002 + 0.0015 * hub_clustering;
        let mut rank_weights: Vec<f64> = (0..self.nrows)
            .map(|i| 1.0 / ((i + 1) as f64).powf(alpha))
            .collect();
        let total_w: f64 = rank_weights.iter().sum();
        // Never cap below ~20x the mean weight, so small matrices keep
        // meaningful hubs; the share term dominates at realistic scales.
        let floor_share = 20.0 / self.nrows.max(1) as f64;
        let max_w = total_w * cap_weight_share.max(floor_share);
        for w in &mut rank_weights {
            *w = w.min(max_w);
        }
        // Assign ranks to row ids: clustered hubs stay contiguous at the
        // front with probability `hub_clustering`, otherwise get shuffled.
        let mut row_weights = vec![0.0f64; self.nrows];
        let mut free: Vec<usize> = (0..self.nrows).collect();
        // Shuffle the free list once; clustered ranks take consecutive slots
        // starting at a random base, scattered ranks take shuffled slots.
        for i in (1..free.len()).rev() {
            let j = rng.gen_range(0..=i);
            free.swap(i, j);
        }
        let cluster_base = rng.gen_range(0..self.nrows.max(1));
        let mut cluster_next = cluster_base;
        let mut scattered_next = 0usize;
        for (rank, w) in rank_weights.drain(..).enumerate() {
            let _ = rank;
            if rng.gen::<f64>() < hub_clustering {
                row_weights[cluster_next % self.nrows] += w;
                cluster_next += 1;
            } else {
                row_weights[free[scattered_next % free.len()]] += w;
                scattered_next += 1;
            }
        }
        let degrees = self.degrees_from_weights(&row_weights);
        // Column attachment: preferential by the same weight profile (so
        // column degrees are heavy-tailed too), mixed with a uniform floor
        // to bound duplicate-sampling collisions on hub rows.
        let mean_w = row_weights.iter().sum::<f64>() / self.nrows.max(1) as f64;
        let col_weights: Vec<f64> = (0..self.ncols)
            .map(|c| row_weights[c % self.nrows] + 0.5 * mean_w + 1e-12)
            .collect();
        let col_dist = WeightedIndex::new(&col_weights).expect("positive weights");
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.target_nnz);
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (r, &deg) in degrees.iter().enumerate() {
            // Sample distinct columns by rejection with a bounded budget;
            // rows close to full width fall back to merging repeats away
            // (degrees are capped at ncols upstream).
            seen.clear();
            let budget = deg * 6 + 16;
            let mut attempts = 0;
            while seen.len() < deg && attempts < budget {
                attempts += 1;
                let c = col_dist.sample(rng) as u32;
                if seen.insert(c) {
                    coo.push(r, c as usize, value(rng))
                        .expect("in bounds by construction");
                }
            }
        }
        coo
    }

    fn gen_clustered(&self, rng: &mut StdRng, cluster_frac: f64, cluster_share: f64) -> CooMatrix {
        let in_cluster_nnz = (self.target_nnz as f64 * cluster_share) as usize;
        let background_nnz = self.target_nnz - in_cluster_nnz;
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.target_nnz);
        // Background: near-diagonal low-degree structure (grid roads). Size
        // the band so duplicate collapse stays small (≥4 cells per sample).
        let min_halfwidth = (4 * background_nnz / self.nrows.max(1)).div_ceil(2);
        let halfwidth = (self.ncols / 1000).max(2).max(min_halfwidth);
        for _ in 0..background_nnz {
            let r = rng.gen_range(0..self.nrows);
            let lo = r
                .saturating_sub(halfwidth)
                .min(self.ncols.saturating_sub(1));
            let hi = (r + halfwidth + 1).min(self.ncols);
            let c = if lo < hi {
                rng.gen_range(lo..hi)
            } else {
                rng.gen_range(0..self.ncols)
            };
            coo.push(r, c, value(rng))
                .expect("in bounds by construction");
        }
        // Clusters: dense diagonal blocks ("urban cores") with power-law
        // sizes, so the tile-occupancy distribution stays heavy-tailed at
        // every panel granularity (the property §6.2 attributes to
        // roadNet-CA: very few very dense tiles, many sparse ones). Each
        // block is sized for ~15 % internal density so it actually holds
        // its share.
        let n_clusters = 24usize;
        let rank_weights: Vec<f64> = (1..=n_clusters).map(|i| 1.0 / i as f64).collect();
        let weight_total: f64 = rank_weights.iter().sum();
        let cluster_nnz: Vec<usize> = rank_weights
            .iter()
            .map(|w| ((w / weight_total) * in_cluster_nnz as f64) as usize)
            .collect();
        let max_side = self.nrows.min(self.ncols);
        let sides: Vec<usize> = cluster_nnz
            .iter()
            .map(|&q| {
                let geo = ((q.max(1) as f64 / 0.15).sqrt().ceil()) as usize;
                let frac = ((self.nrows as f64 * cluster_frac / n_clusters as f64) as usize).max(1);
                geo.max(frac).clamp(1, max_side)
            })
            .collect();
        let starts: Vec<usize> = sides
            .iter()
            .map(|&side| rng.gen_range(0..self.nrows.saturating_sub(side).max(1)))
            .collect();
        for (k, &q) in cluster_nnz.iter().enumerate() {
            let (start, side) = (starts[k], sides[k]);
            for _ in 0..q {
                let r = (start + rng.gen_range(0..side)).min(self.nrows - 1);
                let c = (start + rng.gen_range(0..side)).min(self.ncols - 1);
                coo.push(r, c, value(rng))
                    .expect("in bounds by construction");
            }
        }
        coo
    }

    fn gen_uniform(&self, rng: &mut StdRng) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.target_nnz);
        for _ in 0..self.target_nnz {
            let r = rng.gen_range(0..self.nrows);
            let c = rng.gen_range(0..self.ncols);
            coo.push(r, c, value(rng))
                .expect("in bounds by construction");
        }
        coo
    }
}

/// Nonzero values: uniform in `[0.5, 1.5)` so products never cancel to zero,
/// keeping structural and numerical nonzero counts identical.
fn value(rng: &mut StdRng) -> f64 {
    0.5 + rng.gen::<f64>()
}

/// Seed-mixing constant so `seed(0)` does not collide with `StdRng` defaults
/// elsewhere in the workspace.
const SEED_MIX: u64 = 0x7A11_0B5E_ED5E_ED00;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::RowPanels;

    #[test]
    fn generators_hit_target_nnz_approximately() {
        for spec in [
            GenSpec::banded(2_000, 2_000, 20_000),
            GenSpec::power_law(2_000, 2_000, 20_000),
            GenSpec::clustered(2_000, 2_000, 20_000),
            GenSpec::uniform(2_000, 2_000, 20_000),
        ] {
            let m = spec.generate();
            assert_eq!(m.nrows(), 2_000);
            assert_eq!(m.ncols(), 2_000);
            let nnz = m.nnz() as f64;
            assert!(
                nnz > 0.85 * 20_000.0 && nnz <= 20_000.0,
                "nnz {} too far from target for {:?}",
                m.nnz(),
                spec
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GenSpec::power_law(500, 500, 3_000).seed(9).generate();
        let b = GenSpec::power_law(500, 500, 3_000).seed(9).generate();
        assert_eq!(a, b);
        let c = GenSpec::power_law(500, 500, 3_000).seed(10).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn banded_concentrates_near_diagonal() {
        let m = GenSpec::banded(1_000, 1_000, 10_000).seed(1).generate();
        // Matches the generator's adaptive widening: max(0.01*1000, 2*10+1).
        let halfwidth = 21;
        let near = m
            .iter()
            .filter(|&(r, c, _)| (r as i64 - c as i64).unsigned_abs() as usize <= halfwidth)
            .count();
        // ~90% of entries target the band (minus duplicates and scatter).
        assert!(near as f64 > 0.7 * m.nnz() as f64);
    }

    #[test]
    fn power_law_has_heavy_tail() {
        let m = GenSpec::power_law(2_000, 2_000, 30_000).seed(3).generate();
        let p = m.profile();
        let max_deg = *p.row_nnz().iter().max().unwrap() as f64;
        let mean_deg = m.nnz() as f64 / 2_000.0;
        assert!(
            max_deg > 10.0 * mean_deg,
            "expected hub rows: max {max_deg}, mean {mean_deg}"
        );
    }

    #[test]
    fn clustered_has_asymmetric_panels() {
        let m = GenSpec::clustered(10_000, 10_000, 50_000)
            .seed(4)
            .generate();
        let p = m.profile();
        let panels = RowPanels::new(&p, 100);
        let occ: Vec<u64> = panels.occupancies().collect();
        let s = crate::stats::summarize(&occ).unwrap();
        // Few very dense panels, many sparse ones: max far above median.
        assert!(
            s.max as f64 > 4.0 * s.median.max(1) as f64,
            "expected asymmetry: {s:?}"
        );
    }

    #[test]
    fn uniform_has_even_panels() {
        let m = GenSpec::uniform(10_000, 10_000, 100_000).seed(5).generate();
        let p = m.profile();
        let panels = RowPanels::new(&p, 500);
        let occ: Vec<u64> = panels.occupancies().collect();
        let s = crate::stats::summarize(&occ).unwrap();
        assert!(
            (s.max as f64) < 1.5 * s.mean,
            "uniform scatter should have even panels: {s:?}"
        );
    }

    #[test]
    fn zero_target_is_empty() {
        let m = GenSpec::uniform(10, 10, 0).generate();
        assert_eq!(m.nnz(), 0);
    }
}
