//! The buffet storage idiom (Pellauer et al., ASPLOS 2019).

use crate::{AccessStats, EddoError};

/// A buffet: a credit-synchronized queue with random read/update access
/// relative to the head (§3.2).
///
/// The four buffet operations are:
///
/// * **Fill(Data)** — append new data at the tail ([`Buffet::fill`]).
/// * **Read(Index)** — random access at `head + Index` ([`Buffet::read`]).
/// * **Update(Index, Data)** — in-place modify ([`Buffet::update`]).
/// * **Shrink(Num)** — retire `Num` elements from the head, releasing
///   credits ([`Buffet::shrink`]).
///
/// The buffet behaves as a sliding window over a data stream: it can only
/// free the *oldest* data. The paper's key observation (Fig. 3) is that this
/// makes buffets unable to retain any reuse once a tile's reuse window
/// exceeds the buffer: they must drop everything and refill per traversal.
/// [`crate::Tailor`] fixes exactly that.
///
/// # Example
///
/// ```
/// use tailors_eddo::Buffet;
///
/// let mut b = Buffet::new(3);
/// b.fill(10)?;
/// b.fill(20)?;
/// assert_eq!(b.read(1)?, 20);
/// b.update(0, 11)?;
/// b.shrink(1)?;              // retire the head
/// assert_eq!(b.read(0)?, 20); // indices are head-relative
/// # Ok::<(), tailors_eddo::EddoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Buffet<T> {
    /// Physical storage, used as a ring.
    slots: Vec<Option<T>>,
    /// Physical position of logical index 0.
    head: usize,
    /// Number of valid elements.
    occupancy: usize,
    stats: AccessStats,
}

impl<T: Clone> Buffet<T> {
    /// Creates a buffet with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffet capacity must be positive");
        Buffet {
            slots: vec![None; capacity],
            head: 0,
            occupancy: 0,
            stats: AccessStats::default(),
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current occupancy in elements.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Remaining credits (free slots the parent may fill).
    pub fn credits(&self) -> usize {
        self.capacity() - self.occupancy
    }

    /// Whether the buffet is at capacity.
    pub fn is_full(&self) -> bool {
        self.occupancy == self.capacity()
    }

    /// Whether the buffet holds no data.
    pub fn is_empty(&self) -> bool {
        self.occupancy == 0
    }

    /// **Fill(Data)**: appends `value` at the tail of the queue.
    ///
    /// # Errors
    ///
    /// Returns [`EddoError::Full`] when no credits remain (in hardware the
    /// parent would simply not have been granted the credit).
    pub fn fill(&mut self, value: T) -> Result<(), EddoError> {
        if self.is_full() {
            return Err(EddoError::Full);
        }
        let pos = self.physical(self.occupancy);
        self.slots[pos] = Some(value);
        self.occupancy += 1;
        self.stats.fills += 1;
        Ok(())
    }

    /// **Read(Index)**: returns the element at `head + index`.
    ///
    /// # Errors
    ///
    /// Returns [`EddoError::NotYetFilled`] if `index` is at or beyond the
    /// tail (in hardware the read would stall until the fill arrives).
    pub fn read(&mut self, index: usize) -> Result<T, EddoError> {
        if index >= self.occupancy {
            self.stats.read_misses += 1;
            return Err(EddoError::NotYetFilled { index });
        }
        let pos = self.physical(index);
        self.stats.reads += 1;
        Ok(self.slots[pos].clone().expect("occupied slot holds data"))
    }

    /// **Update(Index, Data)**: overwrites the element at `head + index`.
    ///
    /// # Errors
    ///
    /// Returns [`EddoError::NotYetFilled`] if `index` is at or beyond the
    /// tail.
    pub fn update(&mut self, index: usize, value: T) -> Result<(), EddoError> {
        if index >= self.occupancy {
            return Err(EddoError::NotYetFilled { index });
        }
        let pos = self.physical(index);
        self.slots[pos] = Some(value);
        self.stats.updates += 1;
        Ok(())
    }

    /// **Shrink(Num)**: retires `num` elements from the head, releasing
    /// `num` credits.
    ///
    /// # Errors
    ///
    /// Returns [`EddoError::ShrinkTooLarge`] if `num` exceeds occupancy.
    pub fn shrink(&mut self, num: usize) -> Result<(), EddoError> {
        if num > self.occupancy {
            return Err(EddoError::ShrinkTooLarge {
                requested: num,
                occupancy: self.occupancy,
            });
        }
        for i in 0..num {
            let pos = self.physical(i);
            self.slots[pos] = None;
        }
        self.head = (self.head + num) % self.capacity();
        self.occupancy -= num;
        self.stats.shrunk += num as u64;
        Ok(())
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Logical-to-physical index mapping.
    fn physical(&self, index: usize) -> usize {
        (self.head + index) % self.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_read_update_shrink_roundtrip() {
        let mut b = Buffet::new(4);
        for i in 0..4 {
            b.fill(i * 10).unwrap();
        }
        assert!(b.is_full());
        assert_eq!(b.fill(99), Err(EddoError::Full));
        assert_eq!(b.read(2).unwrap(), 20);
        b.update(2, 21).unwrap();
        assert_eq!(b.read(2).unwrap(), 21);
        b.shrink(2).unwrap();
        // Indices are head-relative: old index 2 is now index 0.
        assert_eq!(b.read(0).unwrap(), 21);
        assert_eq!(b.credits(), 2);
    }

    #[test]
    fn ring_wraps_across_shrink_fill_cycles() {
        let mut b = Buffet::new(3);
        b.fill('a').unwrap();
        b.fill('b').unwrap();
        b.fill('c').unwrap();
        b.shrink(2).unwrap();
        b.fill('d').unwrap();
        b.fill('e').unwrap(); // wraps physically
        assert_eq!(b.read(0).unwrap(), 'c');
        assert_eq!(b.read(1).unwrap(), 'd');
        assert_eq!(b.read(2).unwrap(), 'e');
        assert!(b.is_full());
    }

    #[test]
    fn read_beyond_tail_is_a_stall() {
        let mut b: Buffet<u8> = Buffet::new(2);
        b.fill(1).unwrap();
        assert_eq!(b.read(1), Err(EddoError::NotYetFilled { index: 1 }));
        assert_eq!(b.stats().read_misses, 1);
    }

    #[test]
    fn shrink_too_large_is_rejected() {
        let mut b: Buffet<u8> = Buffet::new(2);
        b.fill(1).unwrap();
        assert_eq!(
            b.shrink(2),
            Err(EddoError::ShrinkTooLarge {
                requested: 2,
                occupancy: 1
            })
        );
        // State untouched.
        assert_eq!(b.occupancy(), 1);
    }

    #[test]
    fn update_beyond_tail_is_rejected() {
        let mut b: Buffet<u8> = Buffet::new(2);
        assert_eq!(b.update(0, 5), Err(EddoError::NotYetFilled { index: 0 }));
    }

    #[test]
    fn stats_accumulate() {
        let mut b = Buffet::new(2);
        b.fill(1).unwrap();
        b.fill(2).unwrap();
        let _ = b.read(0);
        let _ = b.read(5);
        b.update(1, 3).unwrap();
        b.shrink(1).unwrap();
        let s = b.stats();
        assert_eq!(
            (s.fills, s.reads, s.read_misses, s.updates, s.shrunk),
            (2, 1, 1, 1, 1)
        );
    }
}
