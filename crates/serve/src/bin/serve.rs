//! Drives repeated variant sweeps through the long-lived [`SimService`],
//! demonstrating plan-hot steady state: sweep 1 pays profile + plan
//! construction, every later sweep answers from the caches and is proven
//! bit-identical to the first.
//!
//! Usage: `cargo run --release -p tailors-serve --bin serve --
//! [scale] [--sweeps N] [--threads N] [--mem-budget SPEC] [--grid MODE]
//! [--auto-plan] [--verify] [--smoke-functional]`
//!
//! The batch is the full 22-workload suite × the three variants at
//! `scale` (default 1.0), submitted through
//! [`SimService::submit_batch`]'s cost-balanced LPT scheduler. `--threads`
//! falls back to `TAILORS_THREADS`, `--mem-budget` to
//! `TAILORS_MEM_BUDGET`, `--grid` to `TAILORS_GRID`, and `--auto-plan`
//! to `TAILORS_AUTO_PLAN`, so `run_all --serve` reaches this binary with
//! the same knobs as every other child. With auto-planning on, execution
//! plans come from the budget-aware auto planner (cached per request key
//! like any other plan) and `--verify` diffs against `Variant::run_auto`.
//!
//! `--verify` additionally recomputes every response cold — a direct
//! `Variant::run_gridded` on a freshly built profile — and asserts
//! bit-identical metrics. `--smoke-functional` runs a batch of mixed
//! variants *functionally* on a 50 000-column tensor through the service
//! and diffs each result against the seed engine
//! (`functional::reference_run`) under the identical configuration.

use std::time::Instant;

use tailors_serve::{FunctionalRequest, SimRequest, SimService};
use tailors_sim::functional::reference_run;
use tailors_sim::{
    auto_plan_from_env, grid_from_env, mem_budget_from_env, threads_from_env, ArchConfig, GridMode,
    MemBudget, Variant,
};
use tailors_workloads::{Workload, WorkloadClass};

fn main() {
    let mut scale = 1.0f64;
    let mut sweeps = 3usize;
    let mut threads: Option<usize> = None;
    let mut budget: Option<MemBudget> = None;
    let mut grid: Option<GridMode> = None;
    let mut auto_plan = false;
    let mut verify = false;
    let mut smoke_functional = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--sweeps" => {
                sweeps = next("--sweeps")
                    .parse()
                    .expect("--sweeps: positive integer")
            }
            "--threads" => {
                threads = Some(
                    next("--threads")
                        .parse()
                        .expect("--threads: positive integer"),
                )
            }
            "--mem-budget" => {
                budget = Some(MemBudget::parse(&next("--mem-budget")).expect("--mem-budget"))
            }
            "--grid" => grid = Some(GridMode::parse(&next("--grid")).expect("--grid")),
            "--auto-plan" => auto_plan = true,
            "--verify" => verify = true,
            "--smoke-functional" => smoke_functional = true,
            other if !other.starts_with('-') => {
                scale = other.parse().expect("scale: a number in (0, 1]");
                assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
            }
            other => panic!("unknown argument {other:?}; see the module docs"),
        }
    }
    assert!(sweeps > 0, "--sweeps must be positive");
    let threads = threads.unwrap_or_else(threads_from_env);
    let budget = budget.unwrap_or_else(mem_budget_from_env);
    let grid = grid.unwrap_or_else(grid_from_env);
    let auto_plan = auto_plan || auto_plan_from_env();

    let variants = [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ];
    let arch = ArchConfig::extensor().scaled(scale);
    let batch: Vec<SimRequest> = tailors_workloads::suite()
        .iter()
        .flat_map(|wl| {
            variants.map(|variant| SimRequest {
                workload: wl.scaled(scale),
                variant,
                arch,
                budget,
                grid,
                auto_plan,
            })
        })
        .collect();
    println!(
        "serve: {} requests/sweep ({} workloads x {} variants) at scale {scale}, \
         {threads} threads, budget {budget}, grid {grid}, auto-plan {auto_plan}",
        batch.len(),
        batch.len() / variants.len(),
        variants.len(),
    );

    let service = SimService::new();
    let mut first: Option<Vec<tailors_serve::SimResponse>> = None;
    for sweep in 1..=sweeps {
        let before = service.stats();
        let t = Instant::now();
        let responses = service.submit_batch(&batch, threads);
        let elapsed = t.elapsed();
        let after = service.stats();
        println!(
            "sweep {sweep}: {elapsed:.2?}  (profile {} hit / {} miss, plan {} hit / {} miss)",
            after.profile_hits - before.profile_hits,
            after.profile_misses - before.profile_misses,
            after.plan_hits - before.plan_hits,
            after.plan_misses - before.plan_misses,
        );
        match &first {
            None => {
                // Steady state starts at sweep 2: every tier hot.
                first = Some(responses);
            }
            Some(cold) => {
                assert!(
                    responses.iter().all(|r| r.hits.profile && r.hits.plan),
                    "steady-state sweeps must hit the profile and plan tiers"
                );
                for (c, h) in cold.iter().zip(&responses) {
                    assert_eq!(c.name, h.name);
                    assert_eq!(
                        c.metrics, h.metrics,
                        "{}: hot response diverged from cold",
                        c.name
                    );
                }
            }
        }
    }
    let stats = service.stats();
    println!(
        "steady state: plan hit rate {:.1} %, profile hit rate {:.1} % over {} requests",
        100.0 * stats.plan_hit_rate(),
        100.0 * stats.profile_hit_rate(),
        stats.requests,
    );

    if verify {
        println!("verify: diffing every served response against a cold Variant run ...");
        let t = Instant::now();
        let responses = first.as_ref().expect("at least one sweep ran");
        // The batch is grouped per workload (one request per variant), so
        // the O(nnz) profiling pass runs once per workload, not per
        // request.
        for (reqs, resps) in batch
            .chunks(variants.len())
            .zip(responses.chunks(variants.len()))
        {
            let profile = tailors_workloads::generate_cached(&reqs[0].workload).profile();
            for (req, resp) in reqs.iter().zip(resps) {
                let direct = if req.auto_plan {
                    req.variant
                        .run_auto(&profile, &req.arch, req.budget, req.grid)
                } else {
                    req.variant
                        .run_gridded(&profile, &req.arch, req.budget, req.grid)
                };
                assert_eq!(
                    resp.metrics,
                    direct,
                    "{} / {}: served metrics diverged from the direct run",
                    req.workload.name,
                    req.variant.name()
                );
            }
        }
        println!(
            "verify: all {} responses bit-identical ({:.2?})",
            batch.len(),
            t.elapsed()
        );
    }

    if smoke_functional {
        functional_smoke(threads, budget, grid, auto_plan);
    }
    println!("OK");
}

/// The CI serving smoke: a batch of mixed variants executed *functionally*
/// at 50 000 columns through the service, each result diffed against the
/// seed engine under the identical derived configuration.
fn functional_smoke(threads: usize, budget: MemBudget, grid: GridMode, auto_plan: bool) {
    let workload = Workload {
        name: "serve-smoke-50k",
        nrows: 50_000,
        ncols: 50_000,
        target_nnz: 300_000,
        class: WorkloadClass::Graph,
        paper_sparsity: 1.0 - 300_000.0 / (50_000.0 * 50_000.0),
        variability: 0.5,
        seed: 77,
    };
    // A 1/64-scaled architecture keeps tile plans small enough that the
    // overbooked variant actually overbooks at this occupancy.
    let arch = ArchConfig::extensor().scaled(1.0 / 64.0);
    let budget = match budget {
        // The suite sweep above may run unbounded; the functional engine
        // at 50 k columns must not (a full-width panel scratch would be
        // gigabytes), so floor the smoke at 256 MiB.
        MemBudget::Unbounded => MemBudget::mib(256),
        bounded => bounded,
    };
    println!(
        "functional smoke: {} x {} tensor, mixed variants, budget {budget}, grid {grid}",
        workload.nrows, workload.ncols
    );
    let service = SimService::new();
    let a = tailors_workloads::generate_cached(&workload);
    for variant in [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ] {
        let req = FunctionalRequest {
            workload: workload.clone(),
            variant,
            arch,
            budget,
            grid,
            auto_plan,
            threads,
        };
        let t = Instant::now();
        let served = service.run_functional(&req).expect("served functional run");
        let served_time = t.elapsed();
        let t = Instant::now();
        let oracle = reference_run(&a, &served.config).expect("seed engine run");
        println!(
            "  {}: served {served_time:.2?} (tiling {} x {}), seed engine {:.2?}, z nnz {}",
            variant.name(),
            served.config.rows_a,
            served.config.cols_b,
            t.elapsed(),
            served.result.z.nnz(),
        );
        assert_eq!(
            served.result,
            oracle,
            "{}: served functional result diverged from reference_run",
            variant.name()
        );
    }
    println!("functional smoke: all variants bit-identical to reference_run");
}
