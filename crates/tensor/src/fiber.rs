//! Fibers: sorted coordinate/value streams, and their intersection.
//!
//! In the terminology the paper adopts from Sze et al., a *fiber* is a
//! one-dimensional slice of a compressed tensor: a stream of
//! `(coordinate, value)` pairs with strictly increasing coordinates.
//! ExTensor's core compute primitive is the *intersection* of two coordinate
//! streams over the shared dimension, which this module implements both as a
//! lazy iterator and with explicit scan-cost accounting (the accelerator
//! model charges cycles for every coordinate scanned, not just for matches).

/// A borrowed fiber: a sorted stream of `(coordinate, value)` pairs.
///
/// # Example
///
/// ```
/// use tailors_tensor::fiber::Fiber;
///
/// let a = Fiber::new(&[1, 3, 5], &[1.0, 2.0, 3.0]);
/// let b = Fiber::new(&[3, 4, 5], &[10.0, 20.0, 30.0]);
/// let matches: Vec<_> = a.intersect(&b).collect();
/// assert_eq!(matches, vec![(3, 2.0, 10.0), (5, 3.0, 30.0)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fiber<'a> {
    coords: &'a [u32],
    vals: &'a [f64],
}

impl<'a> Fiber<'a> {
    /// Creates a fiber from parallel coordinate and value slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths. Coordinates are assumed
    /// strictly increasing (guaranteed when the fiber comes from a
    /// [`crate::CsrMatrix`] row); this is checked only in debug builds.
    pub fn new(coords: &'a [u32], vals: &'a [f64]) -> Self {
        assert_eq!(coords.len(), vals.len(), "coords and vals must be parallel");
        debug_assert!(
            coords.windows(2).all(|w| w[0] < w[1]),
            "fiber coordinates must be strictly increasing"
        );
        Fiber { coords, vals }
    }

    /// The coordinate stream.
    pub fn coords(&self) -> &'a [u32] {
        self.coords
    }

    /// The value stream.
    pub fn values(&self) -> &'a [f64] {
        self.vals
    }

    /// Number of nonzeros in the fiber.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the fiber holds no nonzeros.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Lazily intersects two fibers, yielding `(coord, self_val, other_val)`
    /// for every shared coordinate.
    pub fn intersect<'b>(&self, other: &Fiber<'b>) -> Intersect<'a, 'b> {
        Intersect {
            a: *self,
            b: Fiber {
                coords: other.coords,
                vals: other.vals,
            },
            ai: 0,
            bi: 0,
        }
    }

    /// Intersects two fibers while counting scan work, ExTensor-style.
    ///
    /// Returns `(matches, coords_scanned)`: the matching coordinate count and
    /// the total number of coordinate-stream elements the two-finger scan
    /// advanced past. The accelerator model charges intersection-unit cycles
    /// proportional to `coords_scanned`.
    pub fn intersect_counted(&self, other: &Fiber<'_>) -> (usize, usize) {
        let (mut ai, mut bi) = (0usize, 0usize);
        let (mut matches, mut scanned) = (0usize, 0usize);
        while ai < self.coords.len() && bi < other.coords.len() {
            scanned += 1;
            match self.coords[ai].cmp(&other.coords[bi]) {
                core::cmp::Ordering::Equal => {
                    matches += 1;
                    ai += 1;
                    bi += 1;
                }
                core::cmp::Ordering::Less => ai += 1,
                core::cmp::Ordering::Greater => bi += 1,
            }
        }
        (matches, scanned)
    }

    /// Dot product of two fibers (sum over the intersection).
    pub fn dot(&self, other: &Fiber<'_>) -> f64 {
        self.intersect(other).map(|(_, a, b)| a * b).sum()
    }
}

/// Iterator over the intersection of two fibers.
///
/// Produced by [`Fiber::intersect`].
#[derive(Debug, Clone)]
pub struct Intersect<'a, 'b> {
    a: Fiber<'a>,
    b: Fiber<'b>,
    ai: usize,
    bi: usize,
}

impl Iterator for Intersect<'_, '_> {
    type Item = (u32, f64, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.ai < self.a.len() && self.bi < self.b.len() {
            let (ca, cb) = (self.a.coords[self.ai], self.b.coords[self.bi]);
            match ca.cmp(&cb) {
                core::cmp::Ordering::Equal => {
                    let out = (ca, self.a.vals[self.ai], self.b.vals[self.bi]);
                    self.ai += 1;
                    self.bi += 1;
                    return Some(out);
                }
                core::cmp::Ordering::Less => self.ai += 1,
                core::cmp::Ordering::Greater => self.bi += 1,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_finds_shared_coords() {
        let a = Fiber::new(&[0, 2, 4, 6], &[1.0, 2.0, 3.0, 4.0]);
        let b = Fiber::new(&[2, 3, 6], &[5.0, 6.0, 7.0]);
        let out: Vec<_> = a.intersect(&b).collect();
        assert_eq!(out, vec![(2, 2.0, 5.0), (6, 4.0, 7.0)]);
    }

    #[test]
    fn intersect_empty_is_empty() {
        let a = Fiber::new(&[], &[]);
        let b = Fiber::new(&[1], &[1.0]);
        assert_eq!(a.intersect(&b).count(), 0);
        assert_eq!(b.intersect(&a).count(), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn intersect_disjoint_scans_everything() {
        let a = Fiber::new(&[0, 1, 2], &[1.0; 3]);
        let b = Fiber::new(&[10, 11], &[1.0; 2]);
        let (matches, scanned) = a.intersect_counted(&b);
        assert_eq!(matches, 0);
        // The two-finger scan advances through all of `a` before exhausting.
        assert_eq!(scanned, 3);
    }

    #[test]
    fn intersect_counted_matches_iterator() {
        let a = Fiber::new(&[1, 4, 9, 16], &[1.0; 4]);
        let b = Fiber::new(&[2, 4, 8, 16], &[1.0; 4]);
        let (matches, _) = a.intersect_counted(&b);
        assert_eq!(matches, a.intersect(&b).count());
    }

    #[test]
    fn dot_product() {
        let a = Fiber::new(&[1, 3], &[2.0, 3.0]);
        let b = Fiber::new(&[3, 5], &[4.0, 5.0]);
        assert_eq!(a.dot(&b), 12.0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_slices_panic() {
        let _ = Fiber::new(&[1, 2], &[1.0]);
    }
}
