//! Property-based tests for the sparse-tensor substrate.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tailors_tensor::fiber::Fiber;
use tailors_tensor::ops::{self, count_work, spmspm, spmspm_into, SpmspmScratch};
use tailors_tensor::simd;
use tailors_tensor::stats::{geomean, overbooking_quantile, quantile, summarize};
use tailors_tensor::tiling::{grid_tile_occupancies, RowPanels};
use tailors_tensor::{CooMatrix, CsrMatrix};

fn triplets_strategy() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0usize..24, 0usize..24, -10.0f64..10.0), 0..200)
}

/// Strictly positive values: no exact cancellation, so the structural
/// output-nonzero count of the symbolic pass equals the reference's
/// materialized count.
fn positive_triplets_strategy() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0usize..24, 0usize..24, 0.5f64..10.0), 0..200)
}

proptest! {
    /// CSR construction from arbitrary (possibly duplicated) triplets
    /// agrees with a BTreeMap reference model.
    #[test]
    fn csr_matches_reference_map(triplets in triplets_strategy()) {
        let mut reference: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for &(r, c, v) in &triplets {
            *reference.entry((r, c)).or_insert(0.0) += v;
        }
        let m = CsrMatrix::from_triplets(24, 24, &triplets).unwrap();
        // Every reference entry is reachable (entries that summed to zero
        // remain structurally present).
        for (&(r, c), &v) in &reference {
            prop_assert!((m.get(r, c).unwrap_or(f64::NAN) - v).abs() < 1e-9);
        }
        prop_assert_eq!(m.nnz(), reference.len());
        // Row fibers are strictly sorted.
        for r in 0..24 {
            let coords = m.row(r).coords();
            prop_assert!(coords.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Transposing twice is the identity; the transpose relocates every
    /// entry exactly.
    #[test]
    fn transpose_is_involution(triplets in triplets_strategy()) {
        let m = CsrMatrix::from_triplets(24, 24, &triplets).unwrap();
        let t = m.transpose();
        prop_assert_eq!(&t.transpose(), &m);
        for (r, c, v) in m.iter() {
            prop_assert_eq!(t.get(c, r), Some(v));
        }
    }

    /// Profiles conserve nonzeros: row totals = column totals = nnz, and
    /// any partition into row panels sums back to nnz.
    #[test]
    fn profile_and_panels_conserve_nnz(
        triplets in triplets_strategy(),
        rows_per_tile in 1usize..30,
    ) {
        let m = CsrMatrix::from_triplets(24, 24, &triplets).unwrap();
        let p = m.profile();
        prop_assert_eq!(p.nnz(), m.nnz() as u64);
        let panels = RowPanels::new(&p, rows_per_tile);
        prop_assert_eq!(panels.occupancies().sum::<u64>(), p.nnz());
        prop_assert!(panels.max_occupancy() <= p.nnz());
        // Overbooking rate is monotone non-increasing in capacity.
        let r_small = panels.overbooking_rate(1);
        let r_big = panels.overbooking_rate(1_000_000);
        prop_assert!(r_small >= r_big);
    }

    /// 2-D grid tiles partition the nonzeros too.
    #[test]
    fn grid_tiles_partition_nnz(
        triplets in triplets_strategy(),
        tr in 1usize..10,
        tc in 1usize..10,
    ) {
        let m = CsrMatrix::from_triplets(24, 24, &triplets).unwrap();
        let occ = grid_tile_occupancies(&m, tr, tc);
        prop_assert_eq!(occ.iter().sum::<u64>(), m.nnz() as u64);
        prop_assert_eq!(occ.len(), 24usize.div_ceil(tr) * 24usize.div_ceil(tc));
    }

    /// Quantiles are monotone in q, bounded by the extremes, and the
    /// overbooking quantile complements them.
    #[test]
    fn quantile_properties(mut values in proptest::collection::vec(0u64..10_000, 1..100)) {
        values.sort_unstable();
        let lo = *values.first().unwrap();
        let hi = *values.last().unwrap();
        let mut prev = lo;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = quantile(&values, q);
            prop_assert!(v >= lo && v <= hi);
            prop_assert!(v >= prev, "quantile must be monotone");
            prev = v;
        }
        prop_assert_eq!(overbooking_quantile(&values, 0.0), hi);
        // At most y of the values strictly exceed Q_y.
        for y in [0.1, 0.25, 0.5] {
            let qy = overbooking_quantile(&values, y);
            let over = values.iter().filter(|&&v| v > qy).count();
            prop_assert!(over as f64 <= y * values.len() as f64 + 1e-9);
        }
    }

    /// Summaries are internally consistent.
    #[test]
    fn summary_is_consistent(values in proptest::collection::vec(0u64..100_000, 1..200)) {
        let s = summarize(&values).unwrap();
        prop_assert_eq!(s.count, values.len());
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        prop_assert!(s.median <= s.p90);
        prop_assert!(s.p90 <= s.p99);
        prop_assert!(s.p99 <= s.max);
        prop_assert!(s.mean <= s.max as f64 + 1e-9);
    }

    /// Geomean sits between min and max for positive inputs.
    #[test]
    fn geomean_bounds(values in proptest::collection::vec(0.01f64..100.0, 1..50)) {
        let g = geomean(&values).unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
    }

    /// The SPA multiply is bit-identical to the retained hash-accumulator
    /// oracle on arbitrary operands (duplicates, negatives, empty rows).
    #[test]
    fn spa_spmspm_matches_hash_oracle(
        ta in triplets_strategy(),
        tb in triplets_strategy(),
    ) {
        let a = CsrMatrix::from_triplets(24, 24, &ta).unwrap();
        let b = CsrMatrix::from_triplets(24, 24, &tb).unwrap();
        let fast = spmspm(&a, &b).unwrap();
        let oracle = ops::reference::spmspm(&a, &b).unwrap();
        prop_assert_eq!(&fast, &oracle);
        // Scratch reuse changes nothing.
        let mut scratch = SpmspmScratch::new();
        prop_assert_eq!(&spmspm_into(&a, &b, &mut scratch).unwrap(), &oracle);
        prop_assert_eq!(&spmspm_into(&a, &b, &mut scratch).unwrap(), &oracle);
    }

    /// The bitmask-blocked accumulator is bit-identical to the classic
    /// dense scratch (a sorted touched-coordinate list over a dense
    /// array) for arbitrary accumulation sequences and block tilings:
    /// same extraction order, same bits, same exact-cancellation drops —
    /// per block, with blocks drained in any column partition.
    #[test]
    fn blocked_spa_matches_dense_scratch_on_arbitrary_tilings(
        writes in proptest::collection::vec(
            (0usize..6, 0usize..96, 0usize..5), 0..200),
        block_cols in 1usize..97,
        rows in 1usize..7,
    ) {
        let width = 96usize;
        let mut spa = ops::BlockedSpa::new();
        spa.reset_shape(rows, block_cols.min(width));
        // Model: dense array + touched list per row, drained per block —
        // exactly the pre-blocked engine formulation.
        let mut dense = vec![vec![0.0f64; width]; rows];
        let mut touched: Vec<Vec<usize>> = vec![Vec::new(); rows];
        let mut got: (Vec<u32>, Vec<f64>) = Default::default();
        let mut want: (Vec<u32>, Vec<f64>) = Default::default();
        for c0 in (0..width).step_by(block_cols) {
            let c1 = (c0 + block_cols).min(width);
            for &(r, c, v) in &writes {
                let r = r % rows;
                if c < c0 || c >= c1 {
                    continue;
                }
                let val = (v as f64 - 2.0) * 0.5;
                spa.accumulate(r, c - c0, val);
                let slot = &mut dense[r][c];
                if *slot == 0.0 {
                    touched[r].push(c);
                }
                *slot += val;
            }
            for r in 0..rows {
                spa.drain_row(r, c0 as u32, &mut got.0, &mut got.1);
                touched[r].sort_unstable();
                for &c in touched[r].iter() {
                    let v = core::mem::take(&mut dense[r][c]);
                    if v != 0.0 {
                        want.0.push(c as u32);
                        want.1.push(v);
                    }
                }
                touched[r].clear();
            }
        }
        prop_assert_eq!(&got.0, &want.0);
        for (g, w) in got.1.iter().zip(&want.1) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
        prop_assert!(spa.is_clear());
    }

    /// The accumulator's dense mode (the functional engine's near-dense
    /// kernel: unmasked accumulate + full-width scan-and-wipe drain) is
    /// bit-identical to the masked mode on arbitrary write sequences:
    /// same emitted columns and value bits per drain, same
    /// exact-cancellation drops, same all-zero state afterwards — so
    /// per-unit kernel dispatch can never change a result.
    #[test]
    fn dense_mode_matches_masked_mode_on_arbitrary_writes(
        writes in proptest::collection::vec(
            (0usize..6, 0usize..96, 0usize..5), 0..200),
        rows in 1usize..7,
        width in 1usize..97,
        rounds in 1usize..4,
    ) {
        let mut masked = ops::BlockedSpa::new();
        let mut dense = ops::BlockedSpa::new();
        masked.reset_shape(rows, width);
        dense.reset_shape(rows, width);
        for round in 0..rounds {
            for &(r, c, v) in &writes {
                let (r, c) = (r % rows, c % width);
                // Include exact cancellations (v - 2 spans negatives and
                // zero) and rotate values per round.
                let val = (v as f64 - 2.0) * 0.5 + round as f64;
                masked.accumulate(r, c, val);
                dense.accumulate_dense(r, c, val);
            }
            for r in 0..rows {
                let (mut bc, mut bv) = (Vec::new(), Vec::new());
                let (mut dc, mut dv) = (Vec::new(), Vec::new());
                masked.drain_row(r, 7, &mut bc, &mut bv);
                dense.drain_row_dense(r, 7, &mut dc, &mut dv);
                prop_assert_eq!(&bc, &dc);
                prop_assert_eq!(bv.len(), dv.len());
                for (b, d) in bv.iter().zip(&dv) {
                    prop_assert_eq!(b.to_bits(), d.to_bits());
                }
            }
            prop_assert!(masked.is_clear());
            prop_assert!(dense.is_clear());
        }
    }

    /// The symbolic work counter agrees with the materializing oracle
    /// whenever values cannot cancel.
    #[test]
    fn symbolic_count_work_matches_oracle(
        ta in positive_triplets_strategy(),
        tb in positive_triplets_strategy(),
    ) {
        let a = CsrMatrix::from_triplets(24, 24, &ta).unwrap();
        let b = CsrMatrix::from_triplets(24, 24, &tb).unwrap();
        let fast = count_work(&a, &b).unwrap();
        let oracle = ops::reference::count_work(&a, &b).unwrap();
        prop_assert_eq!(fast, oracle);
    }

    /// The tile column-pointer view agrees with per-element binary search
    /// at every width, on every row.
    #[test]
    fn tile_col_ptr_matches_binary_search(
        triplets in triplets_strategy(),
        tile_cols in 1usize..30,
    ) {
        let m = CsrMatrix::from_triplets(24, 24, &triplets).unwrap();
        let view = m.tile_col_ptr(tile_cols);
        prop_assert_eq!(view.n_tiles(), 24usize.div_ceil(tile_cols));
        for r in 0..24 {
            let (lo, hi) = (m.row_ptr()[r], m.row_ptr()[r + 1]);
            let coords = &m.col_indices()[lo..hi];
            for t in 0..view.n_tiles() {
                let n0 = (t * tile_cols) as u32;
                let n1 = ((t + 1) * tile_cols).min(24) as u32;
                let want = (
                    lo + coords.partition_point(|&c| c < n0),
                    lo + coords.partition_point(|&c| c < n1),
                );
                prop_assert_eq!(view.row_tile_range(r, t), want);
            }
        }
    }

    /// Galloping intersection is exactly equivalent to the linear
    /// two-finger merge — matches *and* the modeled scan count — on
    /// arbitrary fibers, including the extreme length ratios that trigger
    /// the automatic dispatch.
    #[test]
    fn galloping_intersection_matches_linear(
        mut ca in proptest::collection::vec(0u32..5_000, 0..40),
        mut cb in proptest::collection::vec(0u32..5_000, 0..2_000),
    ) {
        ca.sort_unstable();
        ca.dedup();
        cb.sort_unstable();
        cb.dedup();
        let va = vec![1.0; ca.len()];
        let vb = vec![1.0; cb.len()];
        let a = Fiber::new(&ca, &va);
        let b = Fiber::new(&cb, &vb);
        let lin = a.intersect_counted_linear(&b);
        prop_assert_eq!(a.intersect_counted_galloping(&b), lin);
        prop_assert_eq!(a.intersect_counted_blocked(&b), lin);
        prop_assert_eq!(a.intersect_counted(&b), lin);
        // And flipped operands (gallop over either side).
        let lin_flipped = b.intersect_counted_linear(&a);
        prop_assert_eq!(b.intersect_counted_galloping(&a), lin_flipped);
        prop_assert_eq!(b.intersect_counted_blocked(&a), lin_flipped);
        prop_assert_eq!(b.intersect_counted(&a), lin_flipped);
        prop_assert_eq!(lin.0, lin_flipped.0);
    }

    /// Every SIMD intersection kernel the CPU supports agrees exactly
    /// with the linear two-finger merge, and the dispatched blocked path
    /// (whatever level the environment resolves) reproduces the portable
    /// scalar superblock path bit-for-bit — matches *and* modeled scan
    /// counts. The fibers exercise the kernels' edge geometry: empty
    /// operands, lengths below one SIMD width (so the whole intersection
    /// is the scalar tail), ragged tails of every residue mod 16, and a
    /// spliced fully-dense superblock (256 consecutive shared coords, the
    /// all-hit mask path).
    #[test]
    fn simd_intersection_matches_scalar(
        mut ca in proptest::collection::vec(0u32..4_000, 0..600),
        mut cb in proptest::collection::vec(0u32..4_000, 0..600),
        dense in proptest::bool::ANY,
        dense_block in 0u32..4,
    ) {
        ca.sort_unstable();
        ca.dedup();
        cb.sort_unstable();
        cb.dedup();
        if dense {
            // 256 consecutive coords shared by both sides, above every
            // random coord so sortedness is preserved.
            let base = 4_096 + dense_block * 256;
            ca.extend(base..base + 256);
            cb.extend(base..base + 256);
        }
        let va = vec![1.0; ca.len()];
        let vb = vec![1.0; cb.len()];
        let a = Fiber::new(&ca, &va);
        let b = Fiber::new(&cb, &vb);
        let lin = a.intersect_counted_linear(&b);
        prop_assert_eq!(a.intersect_counted_blocked_scalar(&b), lin);
        prop_assert_eq!(a.intersect_counted_blocked(&b), lin);
        for level in [simd::SimdLevel::Avx2, simd::SimdLevel::Avx512] {
            // None ⇔ this CPU lacks the level; Some must be exact.
            if let Some(m) = simd::intersect_matches_at(level, &ca, &cb) {
                prop_assert_eq!(m, lin.0, "kernel {} diverged", level);
            }
            if let Some(m) = simd::intersect_matches_at(level, &cb, &ca) {
                prop_assert_eq!(m, lin.0, "kernel {} diverged flipped", level);
            }
        }
        // Flipped operands through the dispatcher too.
        prop_assert_eq!(b.intersect_counted_blocked(&a), b.intersect_counted_blocked_scalar(&a));
    }

    /// The tile column-pointer span of a whole tile run equals the union
    /// of its per-tile ranges, and the row-panel slice of the stationary
    /// operand is consistent with per-row sums.
    #[test]
    fn block_slicing_is_consistent(
        triplets in triplets_strategy(),
        tile_cols in 1usize..30,
        t0 in 0usize..25,
        span in 0usize..25,
        r0 in 0usize..25,
        rspan in 0usize..25,
    ) {
        let m = CsrMatrix::from_triplets(24, 24, &triplets).unwrap();
        let view = m.tile_col_ptr(tile_cols);
        let n_tiles = view.n_tiles();
        let t0 = t0.min(n_tiles);
        let t1 = (t0 + span).min(n_tiles);
        for r in 0..24 {
            let (lo, hi) = view.row_tile_span(r, t0, t1);
            prop_assert!(lo <= hi);
            let per_tile: usize = (t0..t1)
                .map(|t| {
                    let (a, b) = view.row_tile_range(r, t);
                    b - a
                })
                .sum();
            prop_assert_eq!(hi - lo, per_tile);
        }
        let r0 = r0.min(24);
        let r1 = (r0 + rspan).min(24);
        let per_row: usize = (r0..r1).map(|r| m.row_nnz(r)).sum();
        prop_assert_eq!(m.row_range_nnz(r0, r1), per_row);
    }

    /// COO round-trips its pushes and CSR conversion never loses mass.
    #[test]
    fn coo_value_mass_is_conserved(triplets in triplets_strategy()) {
        let mut coo = CooMatrix::new(24, 24);
        for &(r, c, v) in &triplets {
            coo.push(r, c, v).unwrap();
        }
        let mass: f64 = coo.iter().map(|(_, _, v)| v).sum();
        let m = CsrMatrix::from_coo(&coo);
        let csr_mass: f64 = m.values().iter().sum();
        prop_assert!((mass - csr_mass).abs() < 1e-9);
    }
}
